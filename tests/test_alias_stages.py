"""Unit tests for the four alias-analysis stages."""

import pytest

from repro.compiler.aliasing import (
    analyze_stage1,
    prune_stage3,
    refine_stage2,
    refine_stage4,
)
from repro.compiler.aliasing.stage3 import retain_all
from repro.compiler.labels import AliasLabel, AliasMatrix, PairKind, pair_kind
from repro.ir import (
    AffineExpr,
    IVar,
    MemObject,
    PointerParam,
    RegionBuilder,
)


def region_two_objects():
    """st a[8i]; ld b[8i] — provably distinct objects."""
    a = MemObject("a", 4096, base_addr=0x1000)
    bo = MemObject("b", 4096, base_addr=0x8000)
    iv = IVar("i", 32)
    b = RegionBuilder()
    x = b.input("x")
    st = b.store(a, AffineExpr.of(ivs={iv: 8}), value=x)
    ld = b.load(bo, AffineExpr.of(ivs={iv: 8}))
    return b.build(), st, ld


def region_params(prov_a=None, prov_b=None, same_target=False):
    ta = MemObject("ta", 4096, base_addr=0x1000)
    tb = ta if same_target else MemObject("tb", 4096, base_addr=0x8000)
    p = PointerParam("p", runtime_object=ta, provenance=prov_a)
    q = PointerParam("q", runtime_object=tb, provenance=prov_b)
    iv = IVar("i", 32)
    b = RegionBuilder()
    x = b.input("x")
    st = b.store(p, AffineExpr.of(ivs={iv: 8}), value=x)
    ld = b.load(q, AffineExpr.of(ivs={iv: 8}))
    return b.build(), st, ld, ta, tb


class TestLabelsMatrix:
    def test_universe_excludes_ld_ld(self):
        a = MemObject("a", 4096)
        iv = IVar("i", 8)
        b = RegionBuilder()
        b.load(a, AffineExpr.of(ivs={iv: 8}))
        b.load(a, AffineExpr.of(const=8, ivs={iv: 8}))
        g = b.build()
        assert AliasMatrix.universe(g).total == 0

    def test_universe_counts_all_store_pairs(self, may_region):
        m = AliasMatrix.universe(may_region)
        # 2 stores, 2 loads: st-st 1, st-ld ordered pairs, ld-st pairs.
        mem = may_region.memory_ops
        expected = 0
        for i, older in enumerate(mem):
            for younger in mem[i + 1 :]:
                if pair_kind(older, younger) is not None:
                    expected += 1
        assert m.total == expected

    def test_set_unknown_pair_raises(self, may_region):
        m = AliasMatrix.universe(may_region)
        with pytest.raises(KeyError):
            m.set(999, 1000, AliasLabel.NO)

    def test_counts_and_fraction(self, may_region):
        m = AliasMatrix.universe(may_region)
        assert m.count(AliasLabel.MAY) == m.total
        assert m.fraction(AliasLabel.MAY) == 1.0
        counts = m.counts()
        assert counts[AliasLabel.MAY] == m.total

    def test_copy_is_independent(self, may_region):
        m = AliasMatrix.universe(may_region)
        c = m.copy()
        pair = c.pairs()[0]
        c.set(*pair, AliasLabel.NO)
        assert m.get(*pair) is AliasLabel.MAY


class TestStage1:
    def test_distinct_objects_no(self):
        g, st, ld = region_two_objects()
        m = analyze_stage1(g)
        assert m.get(st.op_id, ld.op_id) is AliasLabel.NO

    def test_same_object_same_offset_must_exact(self):
        a = MemObject("a", 4096)
        iv = IVar("i", 16)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.of(ivs={iv: 8}), value=x)
        ld = b.load(a, AffineExpr.of(ivs={iv: 8}))
        g = b.build()
        exact = set()
        m = analyze_stage1(g, exact_pairs=exact)
        assert m.get(st.op_id, ld.op_id) is AliasLabel.MUST
        assert (st.op_id, ld.op_id) in exact

    def test_opaque_params_are_may(self):
        g, st, ld, *_ = region_params()
        m = analyze_stage1(g)
        assert m.get(st.op_id, ld.op_id) is AliasLabel.MAY

    def test_same_param_offsets_decide(self):
        target = MemObject("t", 4096)
        p = PointerParam("p", runtime_object=target)
        iv = IVar("i", 16)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(p, AffineExpr.of(ivs={iv: 16}), value=x)
        ld = b.load(p, AffineExpr.of(const=8, ivs={iv: 16}))
        g = b.build()
        m = analyze_stage1(g)
        assert m.get(st.op_id, ld.op_id) is AliasLabel.NO

    def test_tbaa_disjoint_types(self):
        target = MemObject("t", 4096)
        p = PointerParam("p", runtime_object=target)
        q = PointerParam("q", runtime_object=target)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(p, AffineExpr.constant(0), value=x, type_tag="double")
        ld = b.load(q, AffineExpr.constant(0), type_tag="int32")
        g = b.build()
        assert analyze_stage1(g, use_tbaa=True).get(st.op_id, ld.op_id) is AliasLabel.NO
        assert analyze_stage1(g, use_tbaa=False).get(st.op_id, ld.op_id) is AliasLabel.MAY

    def test_multidim_stays_may_at_stage1(self):
        a = MemObject("a", 1 << 16)
        i, j = IVar("i", 16), IVar("j", 16)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.of(const=8192, ivs={i: 8}), value=x)
        ld = b.load(a, AffineExpr.of(ivs={j: 8}))
        g = b.build()
        assert analyze_stage1(g).get(st.op_id, ld.op_id) is AliasLabel.MAY


class TestStage2:
    def test_resolves_distinct_provenance(self):
        ta = MemObject("ta", 4096)
        tb = MemObject("tb", 4096, base_addr=0x8000)
        g, st, ld, *_ = region_params(prov_a=None, prov_b=None)
        # rebuild with provenance set
        p = PointerParam("p", runtime_object=ta, provenance=ta)
        q = PointerParam("q", runtime_object=tb, provenance=tb)
        iv = IVar("i", 32)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(p, AffineExpr.of(ivs={iv: 8}), value=x)
        ld = b.load(q, AffineExpr.of(ivs={iv: 8}))
        g = b.build()
        m1 = analyze_stage1(g)
        assert m1.get(st.op_id, ld.op_id) is AliasLabel.MAY
        m2 = refine_stage2(g, m1)
        assert m2.get(st.op_id, ld.op_id) is AliasLabel.NO

    def test_same_provenance_compares_offsets(self):
        t = MemObject("t", 4096)
        p = PointerParam("p", runtime_object=t, provenance=t)
        q = PointerParam("q", runtime_object=t, provenance=t)
        iv = IVar("i", 16)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(p, AffineExpr.of(ivs={iv: 16}), value=x)
        ld = b.load(q, AffineExpr.of(ivs={iv: 16}))
        g = b.build()
        m2 = refine_stage2(g, analyze_stage1(g))
        assert m2.get(st.op_id, ld.op_id) is AliasLabel.MUST

    def test_lost_provenance_stays_may(self):
        g, st, ld, *_ = region_params(prov_a=None, prov_b=None)
        m2 = refine_stage2(g, analyze_stage1(g))
        assert m2.get(st.op_id, ld.op_id) is AliasLabel.MAY

    def test_monotone_only_may_changes(self, may_region):
        m1 = analyze_stage1(may_region)
        m2 = refine_stage2(may_region, m1)
        for pair, label in m1:
            if label is not AliasLabel.MAY:
                assert m2.get(*pair) is label


class TestStage3:
    def test_data_dependent_pair_pruned(self):
        # ld a[8i] -> add -> st a[8i]: LD->ST MUST ordered by data dep.
        a = MemObject("a", 4096)
        iv = IVar("i", 16)
        b = RegionBuilder()
        c = b.const(1)
        ld = b.load(a, AffineExpr.of(ivs={iv: 8}))
        s = b.add(ld, c)
        st = b.store(a, AffineExpr.of(ivs={iv: 8}), value=s)
        g = b.build()
        plan = prune_stage3(g, analyze_stage1(g))
        assert plan.removed_must == 1
        assert plan.retained == []

    def test_independent_pair_retained(self):
        a = MemObject("a", 4096)
        iv = IVar("i", 16)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.of(ivs={iv: 8}), value=x)
        ld = b.load(a, AffineExpr.of(ivs={iv: 8}))
        g = b.build()
        plan = prune_stage3(g, analyze_stage1(g))
        assert len(plan.retained) == 1
        assert plan.retained[0].kind is PairKind.ST_LD

    def test_st_ld_forwarding_kept_even_if_redundant(self):
        # st a[c] (value x); ld a[c] whose address gep depends on the store?
        # Build: st; compute consuming store is impossible (stores have no
        # users), so make the load data-reachable via an MDE-irrelevant
        # path is impossible too; instead check the flag is honored by
        # passing keep_st_ld_forwarding=False on a plain pair.
        a = MemObject("a", 4096)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.constant(0), value=x)
        ld = b.load(a, AffineExpr.constant(0))
        g = b.build()
        plan = prune_stage3(g, analyze_stage1(g), keep_st_ld_forwarding=False)
        assert len(plan.retained) == 1  # not reachable anyway

    def test_may_edges_do_not_justify_pruning(self):
        """Transitive pruning through MAY edges is unsound under NACHOS."""
        t1 = MemObject("t1", 4096, base_addr=0x1000)
        t2 = MemObject("t2", 4096, base_addr=0x2000)
        t3 = MemObject("t3", 4096, base_addr=0x3000)
        p1 = PointerParam("p1", runtime_object=t1)
        p2 = PointerParam("p2", runtime_object=t2)
        p3 = PointerParam("p3", runtime_object=t3)
        b = RegionBuilder()
        x = b.input("x")
        s1 = b.store(p1, AffineExpr.constant(0), value=x)
        s2 = b.store(p2, AffineExpr.constant(0), value=x)
        s3 = b.store(p3, AffineExpr.constant(0), value=x)
        g = b.build()
        plan = prune_stage3(g, analyze_stage1(g))
        # All three MAY pairs retained: (1,2) and (2,3) do not order (1,3).
        assert len(plan.retained_may) == 3

    def test_must_edges_do_justify_pruning(self):
        a = MemObject("a", 4096)
        b = RegionBuilder()
        x = b.input("x")
        s1 = b.store(a, AffineExpr.constant(0), value=x)
        s2 = b.store(a, AffineExpr.constant(0), value=x)
        s3 = b.store(a, AffineExpr.constant(0), value=x)
        g = b.build()
        plan = prune_stage3(g, analyze_stage1(g))
        # MUST(1,2) + MUST(2,3) imply MUST(1,3): 2 retained, 1 removed.
        assert len(plan.retained_must) == 2
        assert plan.removed_must == 1

    def test_retain_all_fallback(self, may_region):
        m = analyze_stage1(may_region)
        plan = retain_all(may_region, m)
        enforceable = m.count(AliasLabel.MAY) + m.count(AliasLabel.MUST)
        assert len(plan.retained) == enforceable
        assert plan.removed == 0


class TestStage4:
    def test_resolves_disjoint_multidim_blocks(self):
        a = MemObject("a", 1 << 16)
        i, j = IVar("i", 16), IVar("j", 16)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.of(const=8192, ivs={i: 8}), value=x)
        ld = b.load(a, AffineExpr.of(ivs={j: 8}))
        g = b.build()
        m1 = analyze_stage1(g)
        assert m1.get(st.op_id, ld.op_id) is AliasLabel.MAY
        m4 = refine_stage4(g, m1)
        assert m4.get(st.op_id, ld.op_id) is AliasLabel.NO

    def test_leaves_sym_accesses_may(self):
        from repro.ir.address import Sym

        a = MemObject("a", 4096)
        s = Sym("s")
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.of(syms={s: 8}), value=x)
        ld = b.load(a, AffineExpr.constant(0))
        g = b.build()
        m4 = refine_stage4(g, analyze_stage1(g))
        assert m4.get(st.op_id, ld.op_id) is AliasLabel.MAY

    def test_resolves_base_via_provenance(self):
        ta = MemObject("ta", 4096)
        tb = MemObject("tb", 4096, base_addr=0x9000)
        p = PointerParam("p", runtime_object=ta, provenance=ta)
        q = PointerParam("q", runtime_object=tb, provenance=tb)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(p, AffineExpr.constant(0), value=x)
        ld = b.load(q, AffineExpr.constant(0))
        g = b.build()
        m4 = refine_stage4(g, analyze_stage1(g))
        assert m4.get(st.op_id, ld.op_id) is AliasLabel.NO
