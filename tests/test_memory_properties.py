"""Property tests: the set-associative cache against a reference model."""

from collections import OrderedDict
from typing import Dict

from hypothesis import given, settings, strategies as st

from repro.memory import CacheConfig, MemoryHierarchy, SetAssociativeCache


class ReferenceLRUCache:
    """A brute-force per-set LRU model (the specification)."""

    def __init__(self, n_sets: int, ways: int, line_bytes: int) -> None:
        self.n_sets = n_sets
        self.ways = ways
        self.line_bytes = line_bytes
        self.sets: Dict[int, "OrderedDict[int, None]"] = {}

    def access(self, addr: int) -> bool:
        line = addr // self.line_bytes
        idx = line % self.n_sets
        ways = self.sets.setdefault(idx, OrderedDict())
        hit = line in ways
        if hit:
            ways.move_to_end(line)
        else:
            if len(ways) >= self.ways:
                ways.popitem(last=False)
            ways[line] = None
        return hit


@st.composite
def access_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    return [
        (draw(st.integers(0, 4096)), draw(st.booleans())) for _ in range(n)
    ]


class TestCacheAgainstReference:
    @settings(max_examples=80, deadline=None)
    @given(seq=access_sequences())
    def test_hit_miss_sequence_matches_reference(self, seq):
        config = CacheConfig("t", size_bytes=512, ways=2, line_bytes=64)
        cache = SetAssociativeCache(config)
        ref = ReferenceLRUCache(config.n_sets, config.ways, config.line_bytes)
        for addr, is_write in seq:
            assert cache.access(addr, is_write) == ref.access(addr)

    @settings(max_examples=50, deadline=None)
    @given(seq=access_sequences())
    def test_occupancy_bounded_by_capacity(self, seq):
        config = CacheConfig("t", size_bytes=512, ways=2, line_bytes=64)
        cache = SetAssociativeCache(config)
        for addr, is_write in seq:
            cache.access(addr, is_write)
        assert cache.occupancy <= config.n_sets * config.ways

    @settings(max_examples=50, deadline=None)
    @given(seq=access_sequences())
    def test_stats_accounting_consistent(self, seq):
        config = CacheConfig("t", size_bytes=512, ways=2, line_bytes=64)
        cache = SetAssociativeCache(config)
        for addr, is_write in seq:
            cache.access(addr, is_write)
        s = cache.stats
        assert s.accesses == len(seq)
        assert s.hits + s.misses == len(seq)
        assert s.writebacks <= s.evictions

    @settings(max_examples=40, deadline=None)
    @given(seq=access_sequences())
    def test_hierarchy_latencies_well_formed(self, seq):
        h = MemoryHierarchy()
        cycle = 0
        for addr, is_write in seq:
            r = h.access(addr, is_write, cycle)
            assert r.start >= cycle
            assert r.complete > r.start
            cycle = r.start + 1

    @settings(max_examples=40, deadline=None)
    @given(seq=access_sequences())
    def test_second_touch_is_l1_hit(self, seq):
        """Immediately repeating an access (after the fill lands) must
        hit the L1 at the hit latency."""
        h = MemoryHierarchy()
        cycle = 0
        for addr, is_write in seq[:20]:
            first = h.access(addr, is_write, cycle)
            again = h.access(addr, False, first.complete + 1)
            assert again.latency == h.config.l1.latency
            cycle = again.complete + 1
