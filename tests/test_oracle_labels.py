"""Tests for the oracle (trace-derived) labeling."""

import pytest

from repro.compiler import AliasLabel
from repro.compiler.oracle_labels import compile_with_oracle, oracle_matrix
from repro.ir import AffineExpr, MemObject, RegionBuilder, Sym
from repro.workloads import build_workload, get_spec


def sym_region():
    a = MemObject("a", 4096, base_addr=0x1000)
    b = RegionBuilder()
    x = b.input("x")
    st = b.store(a, AffineExpr.of(syms={Sym("s1"): 8}), value=x)
    ld = b.load(a, AffineExpr.of(syms={Sym("s2"): 8}))
    return b.build(), st, ld


class TestOracleMatrix:
    def test_never_conflicting_is_no(self):
        g, st, ld = sym_region()
        matrix, exact = oracle_matrix(g, [{"s1": 0, "s2": 5}, {"s1": 1, "s2": 6}])
        assert matrix.get(st.op_id, ld.op_id) is AliasLabel.NO
        assert not exact

    def test_sometimes_conflicting_is_must(self):
        g, st, ld = sym_region()
        matrix, exact = oracle_matrix(g, [{"s1": 0, "s2": 5}, {"s1": 5, "s2": 5}])
        assert matrix.get(st.op_id, ld.op_id) is AliasLabel.MUST
        assert (st.op_id, ld.op_id) not in exact  # not exact *every* time

    def test_always_exact_detected(self):
        g, st, ld = sym_region()
        matrix, exact = oracle_matrix(g, [{"s1": 3, "s2": 3}, {"s1": 7, "s2": 7}])
        assert matrix.get(st.op_id, ld.op_id) is AliasLabel.MUST
        assert (st.op_id, ld.op_id) in exact

    def test_empty_trace_all_no(self):
        g, st, ld = sym_region()
        matrix, _ = oracle_matrix(g, [])
        assert matrix.count(AliasLabel.MUST) == 0

    def test_compile_with_oracle_is_correct(self):
        from repro.cgra.placement import place_region
        from repro.memory import MemoryHierarchy
        from repro.sim import DataflowEngine, NachosSWBackend, golden_execute

        w = build_workload(get_spec("histogram"))
        envs = w.invocations(10)
        compile_with_oracle(w.graph, envs)
        engine = DataflowEngine(
            w.graph, place_region(w.graph), MemoryHierarchy(), NachosSWBackend()
        )
        result = engine.run(envs)
        golden = golden_execute(w.graph, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_oracle_never_worse_than_real_compiler_in_mdes(self):
        """The oracle enforces a subset of the real pipeline's relations:
        every oracle MUST pair is MAY or MUST for the real compiler."""
        from repro.compiler import compile_region

        w = build_workload(get_spec("soplex"))
        envs = w.invocations(8)
        matrix, _ = oracle_matrix(w.graph, envs)
        real = compile_region(w.graph, )
        for pair in matrix.pairs(AliasLabel.MUST):
            assert real.final_labels.get(*pair) is not AliasLabel.NO, pair
