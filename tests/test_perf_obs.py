"""Perf observatory: ledger append/read invariants, record builders,
budget-driven regression checking (including blessing and noise
floors), dashboard rendering, the ``nachos-repro perf`` CLI, and the
coverage/bench feeders."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments import cli
from repro.obs import (
    LEDGER_SCHEMA,
    MetricsRegistry,
    PerfLedger,
    PerfRecord,
    SweepProfile,
    capture_context,
    check_ledger,
    default_ledger_path,
    load_budgets,
    record_from_bench,
    record_from_coverage,
    record_from_fuzz,
    record_from_profile,
    record_from_registries,
    record_from_vector,
    render_html,
    render_markdown,
)
from repro.obs.regress import (
    OK,
    REGRESSION,
    SKIPPED,
    Budget,
    BudgetError,
    check_budget,
)
from repro.obs.report import sparkline

REPO = Path(__file__).resolve().parents[1]


def _load_module(rel):
    path = REPO / rel
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def bench_record(cold, context=None, **metrics):
    metrics["cold_seconds"] = cold
    return PerfRecord(
        source="bench",
        metrics={k: float(v) for k, v in metrics.items()},
        context=context or {"mode": "full", "git_sha": "cafe", "host": "h"},
    )


# ---------------------------------------------------------------------------
# Ledger invariants
# ---------------------------------------------------------------------------
def test_fingerprint_excludes_timestamp_and_is_byte_stable():
    a = bench_record(75.0)
    b = bench_record(75.0)
    b.ts = "2026-01-01T00:00:00Z"
    assert a.fingerprint() == b.fingerprint()
    # Identical inputs serialize to identical bytes (fixed ts).
    a.ts = b.ts
    assert a.to_line() == b.to_line()
    # Any content change moves the fingerprint.
    assert bench_record(75.1).fingerprint() != a.fingerprint()
    assert (
        bench_record(75.0, context={"mode": "quick"}).fingerprint()
        != a.fingerprint()
    )


def test_ledger_append_only_roundtrip(tmp_path):
    path = tmp_path / "perf" / "history.ndjson"  # parent dirs auto-created
    ledger = PerfLedger(path)
    assert not ledger.exists() and ledger.records() == []
    fp1 = ledger.append(bench_record(75.0), ts="2026-01-01T00:00:00Z")
    first_line = path.read_text()
    ledger.append(bench_record(74.0), ts="2026-01-02T00:00:00Z")
    # Appending never rewrites existing lines.
    assert path.read_text().startswith(first_line)
    records = ledger.records()
    assert [r.metrics["cold_seconds"] for r in records] == [75.0, 74.0]
    assert records[0].fingerprint() == fp1
    assert records[0].ts == "2026-01-01T00:00:00Z"
    assert records[0].context["mode"] == "full"
    assert len(ledger) == 2


def test_ledger_skips_newer_schema_and_garbage(tmp_path):
    path = tmp_path / "l.ndjson"
    ledger = PerfLedger(path)
    ledger.append(bench_record(75.0))
    future = bench_record(10.0)
    future.schema = LEDGER_SCHEMA + 1
    ledger.append(future)
    with open(path, "a") as fh:
        fh.write("not json at all\n")
        fh.write('{"source": "bench"}\n')  # missing metrics
    records = ledger.records()
    assert [r.metrics["cold_seconds"] for r in records] == [75.0]
    assert ledger.skipped == 3


def test_capture_context_overrides(monkeypatch):
    monkeypatch.setenv("NACHOS_GIT_SHA", "deadbeef")
    monkeypatch.setenv("NACHOS_HOST_ID", "runner-1")
    ctx = capture_context(engine="fast", jobs=4, mode="quick", seed=7)
    assert ctx == {
        "git_sha": "deadbeef",
        "host": "runner-1",
        "engine": "fast",
        "jobs": "4",
        "mode": "quick",
        "seed": "7",
    }
    monkeypatch.setenv("NACHOS_PERF_LEDGER", "elsewhere.ndjson")
    assert default_ledger_path() == Path("elsewhere.ndjson")


# ---------------------------------------------------------------------------
# Record builders
# ---------------------------------------------------------------------------
def test_record_from_bench():
    report = {
        "mode": "full",
        "jobs": 1,
        "cold_seconds": 75.06,
        "warm_seconds": 5.23,
        "warm_speedup_vs_cold": 14.35,
        "cache": {"hits": 978, "misses": 1005},
        "engine_compare": {
            "fast_speedup_vs_reference": 1.223,
            "identical": True,  # booleans must not leak in as metrics
            "modes": "nope",    # nor strings
        },
        "per_figure_wall_seconds": {"fig11": 9.5, "tab3": 1.2},
    }
    rec = record_from_bench(report, context={"mode": "full"})
    assert rec.source == "bench"
    assert rec.metrics["cold_seconds"] == 75.06
    assert rec.metrics["cache_hit_rate"] == pytest.approx(978 / 1983)
    assert rec.metrics["fast_speedup_vs_reference"] == 1.223
    assert rec.metrics["figure.fig11.wall_seconds"] == 9.5
    assert "identical" not in rec.metrics and "modes" not in rec.metrics


def test_record_from_profile_and_vector():
    profile = SweepProfile(enabled=True)
    profile.record_task("bzip2", "nachos", 2.0, worker=11, hits=1)
    profile.record_task("lbm", "nachos", 0.5, worker=12, misses=1)
    profile.record_sweep(tasks=2, jobs=2, wall_seconds=1.5)
    rec = record_from_profile(
        profile, {"fig11": 1.6}, context={"engine": "fast-vector"}
    )
    assert rec.source == "profile"
    assert rec.metrics["tasks"] == 2.0
    assert rec.metrics["sweep_wall_seconds"] == 1.5
    assert rec.metrics["cache_hit_rate"] == 0.5
    assert rec.metrics["region.bzip2.seconds"] == 2.0
    assert rec.metrics["figure.fig11.wall_seconds"] == 1.6

    # No VectorRecords -> no vector ledger record at all.
    assert record_from_vector(profile, context={}) is None
    stats = {
        "invocations": 40, "captured": 2, "replayed": 36, "divergences": 1,
        "ops_vectorized": 360, "ops_dynamic": 40, "fallback_reasons": {},
    }
    profile.record_vector("bzip2", "nachos", stats)
    vec = record_from_vector(profile, context={"engine": "fast-vector"})
    assert vec.source == "vector"
    assert vec.metrics["replay_fraction"] == pytest.approx(36 / 40)
    assert vec.metrics["vectorized_op_fraction"] == pytest.approx(0.9)
    assert vec.metrics["region.bzip2.replay_fraction"] == pytest.approx(0.9)


def test_record_from_coverage_fuzz_registries():
    summary = {
        "total": {"pct": 97.2, "lines": 1000, "hit": 972},
        "packages": {"src/repro/sim": {"pct": 98.0, "lines": 1, "hit": 1}},
    }
    cov = record_from_coverage(summary, context={})
    assert cov.source == "coverage"
    assert cov.metrics["total_pct"] == 97.2
    assert cov.metrics["package.src.repro.sim.pct"] == 98.0

    fuzz = record_from_fuzz(12, 200, 0, 4.0, seed=0, context={})
    assert fuzz.source == "verify"
    assert fuzz.metrics["runs_per_second"] == 50.0

    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("cache.hits").inc(3)
    b.counter("cache.hits").inc(4)
    b.histogram("task_s").observe_many([1.0, 3.0])
    rec = record_from_registries([a, b], context={})
    assert rec.source == "metrics"
    assert rec.metrics["cache.hits"] == 7.0
    assert rec.metrics["task_s.p50"] == 1.0
    assert rec.metrics["task_s.count"] == 2.0


# ---------------------------------------------------------------------------
# Regression checking
# ---------------------------------------------------------------------------
def series(values, metric="cold_seconds", **ctx):
    return [
        PerfRecord(
            source="bench",
            metrics={metric: float(v)},
            context={"mode": "full", **{k: str(v2) for k, v2 in ctx.items()}},
        )
        for v in values
    ]


BUDGET = Budget(
    metric="cold_seconds", source="bench", direction="lower",
    max_regression=0.15, min_samples=3, where={"mode": "full"},
)


def test_check_budget_flags_regression():
    verdict = check_budget(series([74.0, 75.0, 76.0, 120.0]), BUDGET)
    assert verdict.status == REGRESSION
    assert verdict.baseline == 75.0
    assert verdict.regression == pytest.approx(0.6)
    assert "regression" in verdict.describe()
    # Same latest within budget passes.
    assert check_budget(series([74.0, 75.0, 76.0, 80.0]), BUDGET).status == OK


def test_check_budget_min_samples_and_where():
    verdict = check_budget(series([75.0, 120.0]), BUDGET)
    assert verdict.status == SKIPPED and verdict.ok
    # Records failing the where filter don't count toward the series.
    quick = series([0.5, 0.5, 0.6], mode="quick")
    for rec in quick:
        rec.context["mode"] = "quick"
    verdict = check_budget(quick + series([75.0, 120.0]), BUDGET)
    assert verdict.status == SKIPPED


def test_noise_floor_suppresses_relative_blowups():
    budget = Budget(
        metric="warm_seconds", source="bench", direction="lower",
        max_regression=0.10, min_samples=3, noise_floor=0.75,
    )
    # +50% relative but only +0.5s absolute: under the floor, passes.
    values = series([1.0, 1.0, 1.5], metric="warm_seconds")
    assert check_budget(values, budget).status == OK
    # Past both bounds: fails.
    values = series([1.0, 1.0, 2.0], metric="warm_seconds")
    assert check_budget(values, budget).status == REGRESSION


def test_higher_is_better_direction():
    budget = Budget(
        metric="replay_fraction", source="bench", direction="higher",
        max_regression=0.10, min_samples=3,
    )
    drop = series([0.9, 0.9, 0.5], metric="replay_fraction")
    assert check_budget(drop, budget).status == REGRESSION
    rise = series([0.9, 0.9, 0.95], metric="replay_fraction")
    assert check_budget(rise, budget).status == OK


def test_blessing_restarts_history():
    # The sweep legitimately got bigger: 10s -> ~30s.
    records = series([10.0, 11.0, 12.0, 30.0, 30.5, 31.0])
    budget = Budget(
        metric="cold_seconds", source="bench", direction="lower",
        max_regression=0.15, min_samples=3,
    )
    assert check_budget(records, budget).status == REGRESSION
    blessed = [records[3].fingerprint()]
    verdict = check_budget(records, budget, blessed)
    # History restarts at the blessed 30.0 record; 31.0 vs median(30, 30.5)
    # is a ~2.5% move, well inside the budget.
    assert verdict.status == OK
    assert verdict.baseline == pytest.approx(30.25)


def test_load_budgets_committed_file_and_errors(tmp_path):
    budgets, blessed = load_budgets(REPO / "perf_budgets.toml")
    keys = {b.key for b in budgets}
    assert {
        "bench:cold_seconds", "bench:warm_seconds",
        "bench:fast_speedup_vs_reference",
        "bench:fast_vector_speedup_vs_reference",
        "bench:cache_hit_rate", "vector:replay_fraction",
        "coverage:total_pct",
    } <= keys
    assert blessed == []
    cold = next(b for b in budgets if b.key == "bench:cold_seconds")
    assert cold.direction == "lower" and cold.where == {"mode": "full"}
    assert cold.noise_floor == 5.0

    bad = tmp_path / "bad.toml"
    bad.write_text(
        '[[budget]]\nmetric = "x"\nsource = "bench"\ndirection = "sideways"\n'
    )
    with pytest.raises(BudgetError):
        load_budgets(bad)
    bad.write_text('[[budget]]\nmetric = "x"\ndirection = "lower"\n')
    with pytest.raises(BudgetError):
        load_budgets(bad)


# ---------------------------------------------------------------------------
# Dashboard rendering
# ---------------------------------------------------------------------------
def test_sparkline():
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4 and line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(list(range(100)))) == 32  # width cap


def test_render_markdown_and_html_from_two_records():
    records = series([75.0, 120.0]) + [
        PerfRecord(
            source="profile",
            metrics={"tasks": 30.0, "figure.fig11.wall_seconds": 9.5},
            context={},
        )
    ]
    verdicts = check_ledger(
        records, [Budget(
            metric="cold_seconds", source="bench", direction="lower",
            max_regression=0.15, min_samples=2, where={"mode": "full"},
        )],
    )
    md = render_markdown(records, verdicts)
    assert "# NACHOS perf observatory" in md
    assert "## Worst regressions" in md and "bench:cold_seconds" in md
    assert "## bench" in md and "`cold_seconds`" in md
    assert "## profile" in md
    # Breakdown series render in their own section, not the trend table.
    assert "`figure.fig11.wall_seconds`" not in md
    assert "## Per-figure wall breakdown" in md and "`fig11`" in md
    # Deterministic: same ledger, same bytes.
    assert md == render_markdown(records, verdicts)

    html = render_html(records, verdicts)
    assert html.startswith("<!doctype html>")
    assert 'class="bad"' in html and "cold_seconds" in html
    assert html == render_html(records, verdicts)


# ---------------------------------------------------------------------------
# The `nachos-repro perf` CLI
# ---------------------------------------------------------------------------
def seeded_ledger(tmp_path, values):
    path = tmp_path / "history.ndjson"
    ledger = PerfLedger(path)
    for i, v in enumerate(series(values)):
        ledger.append(v, ts=f"2026-01-{i + 1:02d}T00:00:00Z")
    return path


def test_cli_perf_check_fails_on_fabricated_slow_record(tmp_path, capsys):
    """Acceptance: a fabricated slow record must fail `perf check`."""
    path = seeded_ledger(tmp_path, [74.5, 75.0, 75.5, 120.0])
    rc = cli.main(
        ["perf", "check", "--ledger", str(path),
         "--budgets", str(REPO / "perf_budgets.toml")]
    )
    out = capsys.readouterr()
    assert rc == 1
    assert "bench:cold_seconds" in out.out and "regression" in out.out
    assert "FAIL" in out.err and "bless" in out.err


def test_cli_perf_check_passes_without_regression(tmp_path, capsys):
    path = seeded_ledger(tmp_path, [74.5, 75.0, 75.5, 76.0])
    rc = cli.main(
        ["perf", "check", "--ledger", str(path),
         "--budgets", str(REPO / "perf_budgets.toml")]
    )
    assert rc == 0
    assert "0 regression(s)" in capsys.readouterr().out
    # Missing budget file is a usage error, not a silent pass.
    rc = cli.main(
        ["perf", "check", "--ledger", str(path),
         "--budgets", str(tmp_path / "nope.toml")]
    )
    assert rc == 2


def test_cli_perf_check_on_tracked_ledger():
    """The committed ledger + budgets never start out failing."""
    assert cli.main(
        ["perf", "check", "--ledger", str(REPO / "perf" / "history.ndjson"),
         "--budgets", str(REPO / "perf_budgets.toml")]
    ) == 0


def test_cli_perf_report_renders_two_records(tmp_path, capsys):
    """Acceptance: `perf report` renders from >= 2 ledger records."""
    path = seeded_ledger(tmp_path, [75.0, 76.0])
    out_md = tmp_path / "report.md"
    out_html = tmp_path / "report.html"
    rc = cli.main(
        ["perf", "report", "--ledger", str(path),
         "--budgets", str(REPO / "perf_budgets.toml"),
         "--out", str(out_md), "--html", str(out_html)]
    )
    assert rc == 0
    assert "cold_seconds" in out_md.read_text()
    assert out_html.read_text().startswith("<!doctype html>")
    capsys.readouterr()
    # No --out/--html: markdown goes to stdout.
    rc = cli.main(["perf", "report", "--ledger", str(path)])
    assert rc == 0
    assert "# NACHOS perf observatory" in capsys.readouterr().out
    # An empty ledger has nothing to report.
    rc = cli.main(["perf", "report", "--ledger", str(tmp_path / "empty")])
    assert rc == 2


def test_cli_perf_record_and_ls(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("NACHOS_GIT_SHA", "cafe")
    bench = tmp_path / "BENCH_sweep.json"
    bench.write_text(json.dumps({
        "mode": "quick", "jobs": 4, "cold_seconds": 0.5,
        "warm_seconds": 0.1, "cache": {"hits": 10, "misses": 30},
    }))
    coverage = tmp_path / "coverage.json"
    coverage.write_text(json.dumps({
        "total": {"pct": 97.0, "lines": 100, "hit": 97}, "packages": {},
    }))
    path = tmp_path / "history.ndjson"
    rc = cli.main(
        ["perf", "record", "--ledger", str(path),
         "--bench", str(bench), "--coverage", str(coverage)]
    )
    assert rc == 0
    records = PerfLedger(path).records()
    assert [r.source for r in records] == ["bench", "coverage"]
    assert records[0].context["mode"] == "quick"
    capsys.readouterr()

    rc = cli.main(["perf", "ls", "--ledger", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2 record(s)" in out
    assert "bench" in out and "coverage" in out and "sha=cafe" in out

    # `record` without a source document is a usage error.
    assert cli.main(["perf", "record", "--ledger", str(path)]) == 2
    # And so is an unknown action.
    assert cli.main(["perf", "frobnicate", "--ledger", str(path)]) == 2


# ---------------------------------------------------------------------------
# Feeders: approx_coverage --json and bench figure-wall parsing
# ---------------------------------------------------------------------------
def test_approx_coverage_split_args_and_summarize(tmp_path, monkeypatch):
    mod = _load_module("tools/approx_coverage.py")
    assert mod.split_args(["-k", "foo"]) == (None, ["-k", "foo"])
    assert mod.split_args(["--json", "c.json", "-q"]) == ("c.json", ["-q"])
    assert mod.split_args(["--json=c.json"]) == ("c.json", [])
    with pytest.raises(SystemExit):
        mod.split_args(["--json"])

    pkg = tmp_path / "pkg"
    pkg.mkdir()
    source = pkg / "mod.py"
    source.write_text("a = 1\nb = 2\nc = 3\n")
    monkeypatch.setattr(mod, "MEASURED", ("pkg",))
    executable = mod.executable_lines(str(source))
    hit = {str(source): set(list(executable)[:2])}
    summary = mod.summarize(hit, str(tmp_path))
    assert summary["schema"] == mod.JSON_SCHEMA
    assert summary["total"]["lines"] == len(executable)
    assert summary["total"]["hit"] == 2
    assert summary["packages"]["pkg"]["pct"] == summary["total"]["pct"]
    rendered = mod.render(summary)
    assert "TOTAL" in rendered and "<- package" in rendered
    # The summary document round-trips through the ledger builder.
    rec = record_from_coverage(summary, context={})
    assert rec.metrics["total_hit"] == 2.0


def test_bench_parse_figure_walls():
    mod = _load_module("benchmarks/bench_sweep.py")
    output = "\n".join([
        "preamble noise",
        "[tab3: 0.41s]",
        "[fig11: 9.52s]",
        "[cache: 1203 entries]",
        "[cache: 0.10s]",   # the cache summary line is not a figure
        "[fig15: 3.00s]",
        "not [a: 1.0s] match",
    ])
    assert mod._parse_figure_walls(output) == {
        "tab3": 0.41, "fig11": 9.52, "fig15": 3.0,
    }
