"""Unit tests for the energy model."""

import pytest

from repro.energy import (
    DecentralizedCheckModel,
    EnergyConfig,
    EnergyEvent,
    EnergyLedger,
)
from repro.energy.accounting import COMPUTE, L1, LSQ_BLOOM, LSQ_CAM, MDE


class TestConfig:
    def test_paper_values(self):
        cfg = EnergyConfig.paper_default()
        assert cfg.cost_of(EnergyEvent.ALU_INT) == 500.0
        assert cfg.cost_of(EnergyEvent.ALU_FP) == 1500.0
        assert cfg.cost_of(EnergyEvent.NET_LINK) == 600.0
        assert cfg.cost_of(EnergyEvent.MDE_MAY_CHECK) == 500.0
        assert cfg.cost_of(EnergyEvent.MDE_MUST) == 250.0
        assert cfg.cost_of(EnergyEvent.LSQ_CAM_LOAD) == 2500.0
        assert cfg.cost_of(EnergyEvent.LSQ_CAM_STORE) == 3500.0

    def test_every_event_priced(self):
        cfg = EnergyConfig.paper_default()
        for event in EnergyEvent:
            assert cfg.cost_of(event) >= 0


class TestLedger:
    def test_charging_accumulates(self):
        ledger = EnergyLedger()
        ledger.charge(EnergyEvent.ALU_INT, 3)
        ledger.charge(EnergyEvent.ALU_INT)
        assert ledger.counts[EnergyEvent.ALU_INT] == 4
        assert ledger.energy_of(EnergyEvent.ALU_INT) == 4 * 500.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger().charge(EnergyEvent.ALU_INT, -1)

    def test_total_is_sum(self):
        ledger = EnergyLedger()
        ledger.charge(EnergyEvent.ALU_FP, 2)
        ledger.charge(EnergyEvent.L1_READ, 1)
        assert ledger.total == 2 * 1500.0 + 5000.0

    def test_breakdown_categories(self):
        ledger = EnergyLedger()
        ledger.charge(EnergyEvent.ALU_INT, 1)
        ledger.charge(EnergyEvent.NET_LINK, 1)
        ledger.charge(EnergyEvent.MDE_MAY_CHECK, 1)
        ledger.charge(EnergyEvent.LSQ_BLOOM, 1)
        ledger.charge(EnergyEvent.LSQ_CAM_LOAD, 1)
        ledger.charge(EnergyEvent.L1_WRITE, 1)
        bd = ledger.breakdown()
        assert bd.by_category[COMPUTE] == 1100.0
        assert bd.by_category[MDE] == 500.0
        assert bd.by_category[LSQ_BLOOM] == 2500.0
        assert bd.by_category[LSQ_CAM] == 2500.0
        assert bd.by_category[L1] == 6000.0
        assert bd.total == ledger.total

    def test_disambiguation_fraction(self):
        ledger = EnergyLedger()
        ledger.charge(EnergyEvent.ALU_INT, 1)       # 500 compute
        ledger.charge(EnergyEvent.MDE_MUST, 2)      # 500 ordering
        bd = ledger.breakdown()
        assert bd.disambiguation == 500.0
        assert bd.disambiguation_fraction == pytest.approx(0.5)

    def test_merge(self):
        a, b = EnergyLedger(), EnergyLedger()
        a.charge(EnergyEvent.ALU_INT, 1)
        b.charge(EnergyEvent.ALU_INT, 2)
        a.merge(b)
        assert a.counts[EnergyEvent.ALU_INT] == 3

    def test_empty_breakdown_fraction(self):
        bd = EnergyLedger().breakdown()
        assert bd.fraction(COMPUTE) == 0.0
        assert bd.disambiguation_fraction == 0.0


class TestDecentralizedCheckModel:
    def test_breakeven_matches_paper(self):
        model = DecentralizedCheckModel()
        assert model.breakeven_ratio == pytest.approx(6.0)

    def test_lsq_energy_linear(self):
        model = DecentralizedCheckModel()
        assert model.lsq_energy(10) == 30000.0

    def test_nachos_energy(self):
        model = DecentralizedCheckModel()
        assert model.nachos_energy(pairs_may=4, pairs_must=2) == 4 * 500 + 2 * 250

    def test_profitability_threshold(self):
        model = DecentralizedCheckModel()
        assert model.profitable(n_mem_ops=10, pairs_may=59)
        assert not model.profitable(n_mem_ops=10, pairs_may=60)

    def test_zero_mem_ops(self):
        model = DecentralizedCheckModel()
        assert model.profitable(0, 0)
        assert model.nachos_vs_lsq(0, 0) == 0.0

    def test_ratio_below_one_for_few_mays(self):
        model = DecentralizedCheckModel()
        assert model.nachos_vs_lsq(100, 50) < 1.0
        assert model.nachos_vs_lsq(10, 600) > 1.0
