"""Smoke tests: every example script runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=None):
    path = EXAMPLES / name
    assert path.exists(), path
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "Pairwise alias labels" in out
        assert "correct" in out
        assert "NO" not in [l.split()[-1] for l in out.splitlines() if "cycles" in l]

    def test_histogram_kernel(self, capsys):
        run_example("histogram_kernel.py")
        out = capsys.readouterr().out
        assert "MAY MDEs" in out
        assert "buckets" in out

    def test_suite_comparison(self, capsys):
        run_example("suite_comparison.py")
        out = capsys.readouterr().out
        assert "benchmark" in out
        assert "gzip" in out and "bzip2" in out

    def test_lsq_design_space(self, capsys):
        run_example("lsq_design_space.py")
        out = capsys.readouterr().out
        assert "LSQ geometry" in out
        assert "NACHOS" in out

    def test_timeline_debug(self, capsys):
        run_example("timeline_debug.py")
        out = capsys.readouterr().out
        assert "=== NACHOS-SW ===" in out
        assert "#" in out

    def test_inspect_region(self, capsys):
        run_example("inspect_region.py", ["gzip"])
        out = capsys.readouterr().out
        assert "COMPILATION REPORT" in out
        assert "pipeline labels identical after reload: True" in out

    def test_dsl_kernel(self, capsys):
        run_example("dsl_kernel.py")
        out = capsys.readouterr().out
        assert "Label census" in out
        assert "True" in out  # correctness column
        assert "False" not in out
