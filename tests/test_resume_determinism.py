"""Kill a sweep mid-flight, resume it, and demand byte-identical output.

The chaos harness's ``abort@N`` point SIGKILLs the *supervisor* right
before dispatching task N — the honest version of a user hitting Ctrl-\\
or the OOM killer taking the parent.  A resumed run must pick up the
checkpoint journal and end byte-identical to a never-interrupted run.
"""

from __future__ import annotations

import pickle
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.common import clear_memos
from repro.runtime.cache import configure_cache, get_cache
from repro.runtime.checkpoint import SweepCheckpoint, configure_checkpoint
from repro.runtime.executor import SimTask, run_tasks_detailed
from repro.runtime.retry import RetryPolicy
from repro.workloads.micro import build_micro

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Lines like ``[tiny: 0.1s]`` / ``[checkpoint /tmp/... cleared — ...]``
#: carry wall times and temp paths; everything else must match exactly.
_STATUS_LINE = re.compile(r"^\[.*\]$")

CHILD_SCRIPT = """\
import sys

from repro.experiments import cli
from repro.runtime.sweep import sweep_comparisons
from repro.workloads.micro import build_micro


def run(invocations=4):
    workloads = [build_micro(n) for n in ("stream_triad", "gather", "rmw")]
    return sweep_comparisons(
        workloads, systems=("opt-lsq", "nachos"), invocations=invocations,
        jobs=2,
    )


def render(result):
    import hashlib, pickle
    lines = []
    for comp in result:
        for system in sorted(comp.runs):
            r = comp.runs[system]
            digest = hashlib.sha256(pickle.dumps(r.sim)).hexdigest()[:16]
            lines.append(
                f"{comp.workload.name}/{system}: cycles={r.sim.cycles} "
                f"energy={r.sim.total_energy:.1f} sha={digest}"
            )
    return "\\n".join(lines)


cli.EXPERIMENTS["tiny"] = (run, render, True)
sys.exit(cli.main(
    ["tiny", "--invocations", "4", "--checkpoint-dir", sys.argv[1]]
))
"""


def _strip_status(output: str) -> str:
    return "\n".join(
        line for line in output.splitlines() if not _STATUS_LINE.match(line)
    )


def _run_child(script: Path, checkpoint_dir: Path, env_extra=None):
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["NACHOS_CACHE"] = "off"  # the checkpoint, not the cache, must carry
    env["PYTHONHASHSEED"] = "0"
    env.pop("NACHOS_CHAOS", None)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, str(script), str(checkpoint_dir)],
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
    )


def test_killed_sweep_resumes_byte_identical(tmp_path):
    script = tmp_path / "child.py"
    script.write_text(CHILD_SCRIPT)

    control = _run_child(script, tmp_path / "ckpt-control")
    assert control.returncode == 0, control.stderr

    # Interrupted run: the supervisor SIGKILLs itself at dispatch of
    # task 4 — exactly what an external kill -9 mid-sweep looks like.
    interrupted = _run_child(
        script, tmp_path / "ckpt", env_extra={"NACHOS_CHAOS": "abort@4"}
    )
    assert interrupted.returncode in (-9, 137), (
        f"expected SIGKILL death, got rc={interrupted.returncode}\n"
        f"{interrupted.stdout}{interrupted.stderr}"
    )
    journaled = SweepCheckpoint(tmp_path / "ckpt").entries()
    assert 0 < journaled < 6, (
        f"interrupted run should have journaled a strict subset of the 6 "
        f"tasks, found {journaled}"
    )

    resumed = _run_child(script, tmp_path / "ckpt")
    assert resumed.returncode == 0, resumed.stderr
    assert _strip_status(resumed.stdout) == _strip_status(control.stdout)
    assert _strip_status(resumed.stdout)  # non-empty after stripping
    # A completed run clears its journal.
    assert SweepCheckpoint(tmp_path / "ckpt").entries() == 0


def test_checkpoint_preload_serves_identical_results(tmp_path):
    prev = get_cache()
    configure_cache(enabled=False)
    configure_checkpoint(tmp_path / "ckpt")
    clear_memos()
    try:
        tasks = [
            SimTask(build_micro(name), system, 4, check=False)
            for name in ("stream_triad", "gather")
            for system in ("opt-lsq", "nachos")
        ]
        policy = RetryPolicy(max_retries=1, backoff_base=0.01)
        first = run_tasks_detailed(tasks, jobs=2, policy=policy)
        assert first.ok and first.checkpoint_hits == 0
        clear_memos()
        second = run_tasks_detailed(tasks, jobs=2, policy=policy)
        assert second.ok
        assert second.checkpoint_hits == len(tasks)
        assert [pickle.dumps(r.sim) for r in first.results] == [
            pickle.dumps(r.sim) for r in second.results
        ]
    finally:
        configure_checkpoint(None)
        clear_memos()
        configure_cache(root=prev.root, enabled=prev.enabled)


def test_failure_journal_survives_for_resumed_runs(tmp_path):
    checkpoint = SweepCheckpoint(tmp_path / "ckpt")
    checkpoint.record_failure(
        {"index": 3, "kind": "crash", "region": "r", "system": "s"}
    )
    checkpoint.record_failure({"index": 5, "kind": "timeout"})
    failures = SweepCheckpoint(tmp_path / "ckpt").failures()
    assert [f["index"] for f in failures] == [3, 5]
    assert failures[0]["kind"] == "crash"
