"""Repository hygiene: no bulky generated artifacts sneak into git.

A 408k-line ``trace.json`` once rode along in a commit; these tests make
that class of accident fail CI instead of bloating every future clone.
"""

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Hard ceiling for any tracked file that is not an explicitly allowed
#: data artifact.  Source files, docs, and committed bench references
#: are all far below this.
MAX_TRACKED_BYTES = 1024 * 1024

#: Tracked files that are allowed to be data (still subject to the size
#: ceiling — an allowlist entry is not a bloat license).
ALLOWED_DATA = {"BENCH_sweep.json", "BENCH_sweep_quick.json"}


def _tracked_files():
    try:
        out = subprocess.run(
            ["git", "ls-files", "-z"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git unavailable")
    if out.returncode != 0:
        pytest.skip("not a git checkout")
    return [f for f in out.stdout.split("\0") if f]


def test_no_tracked_file_exceeds_size_ceiling():
    offenders = []
    for name in _tracked_files():
        path = REPO_ROOT / name
        try:
            size = path.stat().st_size
        except OSError:
            continue  # deleted in the index but not yet committed
        if size > MAX_TRACKED_BYTES:
            offenders.append(f"{name} ({size / 1048576.0:.1f} MiB)")
    assert not offenders, (
        "tracked file(s) exceed 1 MiB — generated artifacts belong in "
        ".gitignore, not in git: " + ", ".join(offenders)
    )


def test_trace_artifacts_are_not_tracked():
    tracked = set(_tracked_files())
    assert "trace.json" not in tracked, (
        "trace.json is a regenerable trace dump (nachos-repro trace ...); "
        "it must stay untracked"
    )


def test_gitignore_covers_generated_artifacts():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    for pattern in ("trace.json", "fuzz-repros/", "nachos-failure-report.json"):
        assert pattern in gitignore, f".gitignore is missing {pattern!r}"
