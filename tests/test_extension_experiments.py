"""Unit coverage for the extension experiments (limit/micro/observations).

The ablation *benches* exercise these at full scale; these tests keep
them covered by ``pytest tests/`` alone, at reduced scope.
"""

import pytest

from repro.experiments import limit_study, micro_study, observations


class TestObservations:
    @pytest.fixture(scope="class")
    def result(self):
        return observations.run(invocations=8)

    def test_row_per_benchmark(self, result):
        assert len(result.rows) == 27

    def test_observation_1_promotion(self, result):
        assert len(result.heavy_promoters) >= 8
        by_name = {r.name: r for r in result.rows}
        assert by_name["sar-backprojection"].promoted_pct > 40

    def test_observation_2_sparse_conflicts(self, result):
        assert result.mean_conflict_density < 0.2
        by_name = {r.name: r for r in result.rows}
        assert by_name["gzip"].conflict_density == 0.0

    def test_observation_3_ranges(self, result):
        lo, hi = result.mlp_range
        assert hi / max(1, lo) >= 8  # order-of-magnitude MLP spread
        mlo, mhi = result.mem_pct_range
        assert mlo == 0.0 and mhi > 25.0

    def test_render(self, result):
        out = observations.render(result)
        assert "Obs1" in out and "Obs3" in out


class TestMicroStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return micro_study.run(invocations=6)

    def test_all_idioms_all_systems(self, result):
        assert len(result.rows) == 8
        for row in result.rows:
            assert set(row.cycles) == set(micro_study.SYSTEMS)

    def test_all_correct(self, result):
        assert result.all_correct

    def test_best_system_sane(self, result):
        for row in result.rows:
            assert row.best_system() in micro_study.SYSTEMS

    def test_render(self, result):
        assert "idiom" in micro_study.render(result)


class TestLimitStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return limit_study.run(invocations=8)

    def test_all_correct(self, result):
        assert result.all_correct

    def test_oracle_never_slower_than_real_compiler(self, result):
        for r in result.rows:
            assert r.oracle_sw_cycles <= r.nachos_sw_cycles * 1.02, r.name

    def test_stage1_perfect_benchmarks_have_no_gap(self, result):
        by_name = {r.name: r for r in result.rows}
        for name in ("gzip", "crafty", "sjeng"):
            assert by_name[name].compiler_gap_pct == 0.0, name

    def test_data_dependent_hardware_need(self, result):
        # At the bench's full trace length histogram clears the 4%
        # membership threshold; at this reduced scope just the direction:
        # even the oracle static schedule is slower than runtime checks.
        by_name = {r.name: r for r in result.rows}
        assert by_name["histogram"].hardware_gap_pct > 0.0

    def test_render(self, result):
        assert "Limit study" in limit_study.render(result)
