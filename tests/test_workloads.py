"""Unit tests for the workload specs, generator, and suite."""

import pytest

from repro.compiler import AliasLabel, compile_region
from repro.workloads import (
    SUITE,
    BenchmarkSpec,
    Mechanism,
    benchmark_names,
    build_workload,
    get_spec,
)
from repro.workloads.generator import PATH_SCALES, PATH_WEIGHTS


class TestSpecSchema:
    def test_suite_has_27_benchmarks(self):
        assert len(SUITE) == 27

    def test_names_unique(self):
        names = benchmark_names()
        assert len(names) == len(set(names))

    def test_get_spec_roundtrip(self):
        for name in benchmark_names():
            assert get_spec(name).name == name

    def test_get_spec_unknown_raises(self):
        with pytest.raises(KeyError):
            get_spec("no-such-benchmark")

    def test_mem_never_exceeds_ops(self):
        for spec in SUITE:
            assert spec.n_mem <= spec.n_ops

    def test_mechanism_mix_sums_to_one(self):
        for spec in SUITE:
            if spec.n_mem:
                assert sum(spec.mechanism_mix.values()) == pytest.approx(1.0)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(name="bad", suite="x", n_ops=4, n_mem=8, mlp=2)
        with pytest.raises(ValueError):
            BenchmarkSpec(
                name="bad", suite="x", n_ops=8, n_mem=4, mlp=2,
                mechanism_mix={Mechanism.DISTINCT: 0.5},
            )

    def test_n_local_capped(self):
        spec = get_spec("povray")  # pct_local=95 would explode uncapped
        assert spec.n_local <= spec.n_ops // 4 + 2

    def test_mechanism_counts_partition(self):
        spec = get_spec("parser")
        counts = spec.mechanism_counts(20)
        assert sum(counts.values()) == 20
        assert all(v >= 0 for v in counts.values())

    def test_suites_covered(self):
        suites = {s.suite for s in SUITE}
        assert suites == {"spec2000", "spec2006", "parsec"}


class TestGenerator:
    def test_deterministic_across_builds(self):
        w1 = build_workload(get_spec("parser"))
        w2 = build_workload(get_spec("parser"))
        assert len(w1.graph) == len(w2.graph)
        assert [op.opcode for op in w1.graph.ops] == [op.opcode for op in w2.graph.ops]
        assert w1.invocations(5) == w2.invocations(5)

    def test_path_scaling_shrinks_regions(self):
        spec = get_spec("equake")
        sizes = [len(build_workload(spec, k).graph) for k in range(5)]
        assert sizes[0] > sizes[-1]

    def test_op_count_near_spec(self):
        for name in ["equake", "parser", "histogram", "bzip2"]:
            spec = get_spec(name)
            w = build_workload(spec)
            assert abs(len(w.raw_graph) - spec.n_ops) <= max(8, spec.n_ops // 4)

    def test_mem_count_near_spec(self):
        for name in ["equake", "soplex", "fft-2d"]:
            spec = get_spec(name)
            w = build_workload(spec)
            assert abs(len(w.graph.memory_ops) - spec.n_mem) <= max(
                4, spec.n_mem // 4
            )

    def test_zero_mem_specs_have_no_memory_ops(self):
        for name in ["blackscholes", "ferret"]:
            w = build_workload(get_spec(name))
            assert len(w.graph.memory_ops) == 0

    def test_promotion_happened(self):
        w = build_workload(get_spec("crafty"))  # pct_local=40
        assert w.n_promoted > 0
        # promoted ops are not memory ops anymore
        from repro.ir.opcodes import Opcode

        spads = [
            op for op in w.graph.ops
            if op.opcode in (Opcode.SPAD_LOAD, Opcode.SPAD_STORE)
        ]
        assert len(spads) == w.n_promoted

    def test_envs_bind_every_variable(self):
        for name in ["histogram", "equake", "bzip2"]:
            w = build_workload(get_spec(name))
            env = w.invocations(1)[0]
            for op in w.graph.memory_ops:
                op.addr.evaluate(env)  # must not raise

    def test_objects_do_not_overlap(self):
        w = build_workload(get_spec("soplex"))
        ranges = []
        for op in w.graph.memory_ops:
            base = op.addr.runtime_base
            ranges.append((base.base_addr, base.base_addr + base.size, base.uid))
        ranges = sorted(set(ranges))
        for (s1, e1, u1), (s2, e2, u2) in zip(ranges, ranges[1:]):
            if u1 != u2:
                assert e1 <= s2, "distinct objects must not overlap"

    def test_store_fraction_tracks_spec(self):
        spec = get_spec("histogram")  # store_frac=0.5
        w = build_workload(spec)
        mem = w.graph.memory_ops
        frac = sum(1 for op in mem if op.is_store) / len(mem)
        assert abs(frac - spec.store_frac) < 0.25

    def test_path_constants(self):
        assert len(PATH_SCALES) == len(PATH_WEIGHTS) == 5
        assert abs(sum(PATH_WEIGHTS) - 1.0) < 1e-9
        assert sorted(PATH_SCALES, reverse=True) == list(PATH_SCALES)


class TestNarrativeShapes:
    """The per-benchmark stories the suite encodes (paper Section V/VIII)."""

    def test_stage1_perfect_benchmarks(self):
        for name in ["gzip", "181.mcf", "429.mcf", "crafty", "sjeng", "sphinx3"]:
            w = build_workload(get_spec(name))
            result = compile_region(w.graph)
            assert result.final_labels.count(AliasLabel.MAY) == 0, name

    def test_stage4_benchmarks_fully_resolved(self):
        for name in ["equake", "lbm", "namd", "dwt53", "bodytrack"]:
            w = build_workload(get_spec(name))
            result = compile_region(w.graph)
            assert result.final_labels.count(AliasLabel.MAY) == 0, name

    def test_stage4_benchmarks_have_stage1_mays(self):
        for name in ["equake", "lbm"]:
            w = build_workload(get_spec(name))
            result = compile_region(w.graph)
            assert result.stage1.count(AliasLabel.MAY) > 0, name

    def test_may_heavy_benchmarks_keep_mays(self):
        for name in ["bzip2", "soplex", "povray", "fft-2d", "histogram"]:
            w = build_workload(get_spec(name))
            result = compile_region(w.graph)
            assert len(result.may_mdes) > 0, name

    def test_stage2_benchmarks_refined(self):
        for name in ["parser", "fluidanimate", "464.h264ref"]:
            w = build_workload(get_spec(name))
            result = compile_region(w.graph)
            s1_may = result.stage1.count(AliasLabel.MAY)
            s2_may = result.stage2.count(AliasLabel.MAY)
            assert s2_may < s1_may, name

    def test_bzip2_has_high_fan_in(self):
        w = build_workload(get_spec("bzip2"))
        result = compile_region(w.graph)
        fan = result.may_fan_in()
        assert max(fan.values()) >= 20

    def test_forwarding_benchmark_has_forward_edges(self):
        from repro.ir import MDEKind

        w = build_workload(get_spec("bodytrack"))
        result = compile_region(w.graph)
        assert any(e.kind is MDEKind.FORWARD for e in result.mdes)
