"""Unit tests for the region graph, builder, opcodes, and operations."""

import pytest

from repro.ir import (
    AffineExpr,
    DFGraph,
    IVar,
    MDEKind,
    MemObject,
    MemoryDependencyEdge,
    Opcode,
    Operation,
    RegionBuilder,
    is_compute,
    is_fp,
    is_memory,
    latency_of,
)
from repro.ir.graph import GraphError


class TestOpcodes:
    def test_every_opcode_has_a_latency(self):
        for opcode in Opcode:
            assert latency_of(opcode) >= 0

    def test_fp_classification(self):
        assert is_fp(Opcode.FADD)
        assert is_fp(Opcode.FDIV)
        assert not is_fp(Opcode.ADD)
        assert not is_fp(Opcode.LOAD)

    def test_memory_classification(self):
        assert is_memory(Opcode.LOAD)
        assert is_memory(Opcode.STORE)
        assert not is_memory(Opcode.SPAD_LOAD)
        assert not is_memory(Opcode.GEP)

    def test_compute_classification(self):
        assert is_compute(Opcode.ADD)
        assert is_compute(Opcode.GEP)
        assert is_compute(Opcode.SPAD_STORE)
        assert not is_compute(Opcode.LOAD)
        assert not is_compute(Opcode.INPUT)
        assert not is_compute(Opcode.CONST)

    def test_fp_slower_than_int(self):
        assert latency_of(Opcode.FADD) > latency_of(Opcode.ADD)
        assert latency_of(Opcode.FDIV) > latency_of(Opcode.FMUL)


class TestOperation:
    def test_memory_op_requires_address(self):
        with pytest.raises(ValueError):
            Operation(0, Opcode.LOAD)

    def test_non_memory_op_rejects_address(self):
        obj = MemObject("a", 64)
        addr_expr = AffineExpr.constant(0)
        from repro.ir.address import AddressExpr

        with pytest.raises(ValueError):
            Operation(0, Opcode.ADD, addr=AddressExpr(obj, addr_expr))

    def test_kind_properties(self, obj_a):
        from repro.ir.address import AddressExpr

        ld = Operation(0, Opcode.LOAD, addr=AddressExpr(obj_a, AffineExpr.constant(0)))
        assert ld.is_load and ld.is_memory and not ld.is_store


class TestBuilderAndGraph:
    def test_program_order_ids(self, simple_region):
        ids = [op.op_id for op in simple_region.ops]
        assert ids == sorted(ids) == list(range(len(simple_region)))

    def test_memory_ops_listed_in_order(self, simple_region):
        mem = simple_region.memory_ops
        assert [op.op_id for op in mem] == sorted(op.op_id for op in mem)
        assert len(simple_region.loads) == 2
        assert len(simple_region.stores) == 1

    def test_memory_rank(self, simple_region):
        rank = simple_region.memory_rank()
        assert sorted(rank.values()) == list(range(len(simple_region.memory_ops)))

    def test_users_of(self, simple_region):
        ld1 = simple_region.loads[0]
        users = simple_region.users_of(ld1.op_id)
        assert len(users) == 1  # the add

    def test_duplicate_op_id_rejected(self):
        g = DFGraph()
        g.add_op(Operation(0, Opcode.INPUT))
        with pytest.raises(GraphError):
            g.add_op(Operation(0, Opcode.INPUT))

    def test_forward_reference_rejected(self):
        g = DFGraph()
        with pytest.raises(GraphError):
            g.add_op(Operation(0, Opcode.ADD, inputs=(1, 2)))

    def test_younger_input_rejected(self):
        g = DFGraph()
        g.add_op(Operation(0, Opcode.INPUT))
        with pytest.raises(GraphError):
            g.add_op(Operation(1, Opcode.ADD, inputs=(1, 0)))

    def test_mde_endpoints_must_be_memory(self, simple_region):
        add_op = next(op for op in simple_region.ops if op.opcode is Opcode.ADD)
        ld = simple_region.loads[0]
        with pytest.raises(GraphError):
            simple_region.add_mde(
                MemoryDependencyEdge(ld.op_id, add_op.op_id, MDEKind.ORDER)
            )

    def test_mde_direction_enforced(self):
        with pytest.raises(ValueError):
            MemoryDependencyEdge(5, 3, MDEKind.ORDER)

    def test_duplicate_mde_detected_by_validate(self, simple_region):
        ld = simple_region.loads[0]
        st = simple_region.stores[0]
        edge = MemoryDependencyEdge(ld.op_id, st.op_id, MDEKind.ORDER)
        simple_region.add_mde(edge)
        simple_region.add_mde(edge)
        with pytest.raises(GraphError):
            simple_region.validate()

    def test_replace_and_clear_mdes(self, simple_region):
        ld = simple_region.loads[0]
        st = simple_region.stores[0]
        simple_region.replace_mdes(
            [MemoryDependencyEdge(ld.op_id, st.op_id, MDEKind.MAY)]
        )
        assert len(simple_region.mdes) == 1
        simple_region.clear_mdes()
        assert simple_region.mdes == []

    def test_mdes_into_and_out_of(self, simple_region):
        ld = simple_region.loads[0]
        st = simple_region.stores[0]
        edge = MemoryDependencyEdge(ld.op_id, st.op_id, MDEKind.ORDER)
        simple_region.add_mde(edge)
        assert simple_region.mdes_into(st.op_id) == [edge]
        assert simple_region.mdes_out_of(ld.op_id) == [edge]
        assert simple_region.mdes_into(ld.op_id) == []


class TestReachability:
    def test_data_reachability_transitive(self, simple_region):
        reach = simple_region.data_reachability()
        ld1 = simple_region.loads[0]
        st = simple_region.stores[0]
        # store consumes the add which consumes the load
        assert st.op_id in reach[ld1.op_id]

    def test_data_reachability_no_back_edges(self, simple_region):
        reach = simple_region.data_reachability()
        for src, dests in reach.items():
            assert all(d > src for d in dests)

    def test_full_reachability_includes_mdes(self, may_region):
        st1 = may_region.stores[0]
        last = may_region.memory_ops[-1]
        base = may_region.full_reachability()
        assert last.op_id not in base[st1.op_id]
        may_region.add_mde(
            MemoryDependencyEdge(st1.op_id, last.op_id, MDEKind.MAY)
        )
        extended = may_region.full_reachability()
        assert last.op_id in extended[st1.op_id]

    def test_critical_path_positive(self, simple_region):
        assert simple_region.critical_path_length() >= 3

    def test_critical_path_grows_with_mdes(self, may_region):
        before = may_region.critical_path_length()
        mem = may_region.memory_ops
        may_region.add_mde(
            MemoryDependencyEdge(mem[0].op_id, mem[-1].op_id, MDEKind.ORDER)
        )
        assert may_region.critical_path_length() >= before


class TestStats:
    def test_stats_counts(self, simple_region):
        stats = simple_region.stats()
        assert stats.n_ops == len(simple_region)
        assert stats.n_mem == 3
        assert stats.n_loads == 2
        assert stats.n_stores == 1
        assert 0 < stats.mem_fraction < 1

    def test_builder_store_value_is_last_input(self, simple_region):
        st = simple_region.stores[0]
        add_op = next(op for op in simple_region.ops if op.opcode is Opcode.ADD)
        assert st.inputs[-1] == add_op.op_id
