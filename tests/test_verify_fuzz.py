"""The differential alias fuzzer: deterministic generation, valid
graphs, clean campaigns on honest backends, shrinking, and the
save/load/rerun repro round-trip."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main
from repro.verify import (
    build_graph,
    fuzz,
    generate_spec,
    load_repro,
    rerun,
    run_spec,
    save_failure,
    shrink,
)
from repro.verify.fuzz import BACKENDS, FuzzFailure, MemOpSpec, RegionSpec


def test_generate_spec_is_deterministic():
    for k in range(10):
        a = generate_spec(seed=7, index=k)
        b = generate_spec(seed=7, index=k)
        assert a == b
    assert generate_spec(seed=7, index=0) != generate_spec(seed=8, index=0)


def test_generated_graphs_are_valid():
    for k in range(20):
        spec = generate_spec(seed=3, index=k)
        graph = build_graph(spec)
        mem_ops = [op for op in graph.memory_ops]
        assert len(mem_ops) == len(spec.ops)
        for env in spec.env_dicts():
            assert all(isinstance(v, int) for v in env.values())


@pytest.mark.parametrize("system", sorted(BACKENDS))
def test_run_spec_clean_on_honest_backend(system):
    spec = generate_spec(seed=0, index=0)
    oracle_ok, report = run_spec(spec, system)
    assert oracle_ok
    assert report.ok, report.render()


def test_small_campaign_is_clean():
    result = fuzz(count=10, seed=0)
    assert not result.failures
    assert result.regions == 10
    assert result.runs == 10 * len(BACKENDS)


def test_shrink_preserves_failure():
    """Shrinking a failing spec keeps it failing and never grows it."""
    base = generate_spec(seed=0, index=0)

    def fails(spec, system):
        # Synthetic predicate: "fails" iff it still has a store to
        # offset of the first op.  Exercises the shrink loop without
        # needing a live simulator bug.
        return any(
            op.is_store and op.offset == base.ops[0].offset for op in spec.ops
        )

    if not fails(base, "nachos"):
        base = RegionSpec(
            name=base.name,
            ops=(MemOpSpec(is_store=True, offset=base.ops[0].offset, width=8),)
            + base.ops,
            envs=base.envs,
            size=base.size,
        )
    small = shrink(base, "nachos", fails)
    assert fails(small, "nachos")
    assert len(small.ops) <= len(base.ops)
    assert len(small.envs) <= len(base.envs)


def test_repro_round_trip(tmp_path):
    spec = generate_spec(seed=0, index=1)
    oracle_ok, report = run_spec(spec, "nachos")
    failure = FuzzFailure(
        spec=spec, system="nachos", oracle_ok=oracle_ok, sanitizer=report
    )
    path = save_failure(failure, tmp_path / "repro.json")
    loaded_spec, system = load_repro(path)
    assert loaded_spec == spec
    assert system == "nachos"
    ok2, report2 = rerun(path)
    assert ok2 == oracle_ok
    assert report2.ok == report.ok


def test_load_repro_rejects_other_json(tmp_path):
    path = tmp_path / "not-a-repro.json"
    path.write_text('{"hello": "world"}')
    with pytest.raises(ValueError):
        load_repro(path)


def test_cli_verify_smoke(capsys):
    rc = main(["verify", "--fuzz", "5", "--seed", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean" in out.lower()


def test_cli_verify_subset_of_systems(capsys):
    rc = main(["verify", "--fuzz", "3", "--seed", "1", "--systems", "nachos"])
    assert rc == 0
    assert "nachos" in capsys.readouterr().out
