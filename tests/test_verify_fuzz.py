"""The differential alias fuzzer: deterministic generation, valid
graphs, clean campaigns on honest backends, shrinking, and the
save/load/rerun repro round-trip."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main
from repro.verify import (
    build_graph,
    fuzz,
    generate_spec,
    load_repro,
    rerun,
    run_spec,
    save_failure,
    shrink,
)
from repro.verify.fuzz import BACKENDS, FuzzFailure, MemOpSpec, RegionSpec


def test_generate_spec_is_deterministic():
    for k in range(10):
        a = generate_spec(seed=7, index=k)
        b = generate_spec(seed=7, index=k)
        assert a == b
    assert generate_spec(seed=7, index=0) != generate_spec(seed=8, index=0)


def test_generated_graphs_are_valid():
    for k in range(20):
        spec = generate_spec(seed=3, index=k)
        graph = build_graph(spec)
        mem_ops = [op for op in graph.memory_ops]
        assert len(mem_ops) == len(spec.ops)
        for env in spec.env_dicts():
            assert all(isinstance(v, int) for v in env.values())


@pytest.mark.parametrize("system", sorted(BACKENDS))
def test_run_spec_clean_on_honest_backend(system):
    spec = generate_spec(seed=0, index=0)
    oracle_ok, report = run_spec(spec, system)
    assert oracle_ok
    assert report.ok, report.render()


def test_small_campaign_is_clean():
    result = fuzz(count=10, seed=0)
    assert not result.failures
    assert result.regions == 10
    assert result.runs == 10 * len(BACKENDS)


def test_shrink_preserves_failure():
    """Shrinking a failing spec keeps it failing and never grows it."""
    base = generate_spec(seed=0, index=0)

    def fails(spec, system):
        # Synthetic predicate: "fails" iff it still has a store to
        # offset of the first op.  Exercises the shrink loop without
        # needing a live simulator bug.
        return any(
            op.is_store and op.offset == base.ops[0].offset for op in spec.ops
        )

    if not fails(base, "nachos"):
        base = RegionSpec(
            name=base.name,
            ops=(MemOpSpec(is_store=True, offset=base.ops[0].offset, width=8),)
            + base.ops,
            envs=base.envs,
            size=base.size,
        )
    small = shrink(base, "nachos", fails)
    assert fails(small, "nachos")
    assert len(small.ops) <= len(base.ops)
    assert len(small.envs) <= len(base.envs)


def test_repro_round_trip(tmp_path):
    spec = generate_spec(seed=0, index=1)
    oracle_ok, report = run_spec(spec, "nachos")
    failure = FuzzFailure(
        spec=spec, system="nachos", oracle_ok=oracle_ok, sanitizer=report
    )
    path = save_failure(failure, tmp_path / "repro.json")
    loaded_spec, system = load_repro(path)
    assert loaded_spec == spec
    assert system == "nachos"
    ok2, report2 = rerun(path)
    assert ok2 == oracle_ok
    assert report2.ok == report.ok


def test_load_repro_rejects_other_json(tmp_path):
    path = tmp_path / "not-a-repro.json"
    path.write_text('{"hello": "world"}')
    with pytest.raises(ValueError):
        load_repro(path)


def test_cli_verify_smoke(capsys):
    rc = main(["verify", "--fuzz", "5", "--seed", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean" in out.lower()


def test_cli_verify_subset_of_systems(capsys):
    rc = main(["verify", "--fuzz", "3", "--seed", "1", "--systems", "nachos"])
    assert rc == 0
    assert "nachos" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Static cross-checks: the stage-5 oracle + sync coverage in the loop
# ----------------------------------------------------------------------
class TestStaticCrossChecks:
    def test_200_region_campaign_finds_no_unsoundness_on_main(self):
        """The acceptance campaign: every stage-1..4 NO/MUST verdict of
        200 fixed-seed regions agrees with the separation-logic oracle,
        and every compiled MDE set covers the oracle's required pairs."""
        from repro.verify import fuzz as fuzz_fn

        result = fuzz_fn(
            200, seed=0, systems=["serial-mem"], oracle=True, coverage=True
        )
        assert result.static_checks == 200
        assert result.ok, [f.describe() for f in result.failures]

    def test_fault_injection_is_caught_shrunk_and_recheckable(self, tmp_path):
        from repro.verify import crosscheck_stages
        from repro.verify import fuzz as fuzz_fn

        result = fuzz_fn(
            20, seed=7, systems=["serial-mem"], oracle=True,
            fault_seed=3, max_failures=1,
        )
        assert result.failures, "an eligible region must trip the fault"
        failure = result.failures[0]
        assert failure.system == "static"
        assert failure.static_kind == "oracle"
        assert failure.fault_seed == 3
        assert failure.static_findings  # located finding survives the shrink
        assert "oracle" in failure.describe()
        assert failure.shrunk_from is not None
        assert len(failure.spec.ops) <= failure.shrunk_from
        assert len(failure.spec.ops) >= 2  # a pair is the floor

        # The standalone JSON repro re-checks: still failing with the
        # recorded fault seed, clean without it.
        path = save_failure(failure, tmp_path / "static-repro.json")
        still_ok, report = rerun(path)
        assert not still_ok
        assert not report.ok and report.backend == "static"
        assert crosscheck_stages(failure.spec) == []

    def test_coverage_only_campaign(self):
        from repro.verify import fuzz as fuzz_fn

        result = fuzz_fn(25, seed=3, systems=["serial-mem"], coverage=True)
        assert result.static_checks == 25
        assert result.ok

    def test_fault_seed_requires_oracle(self):
        from repro.verify import fuzz as fuzz_fn

        with pytest.raises(ValueError):
            fuzz_fn(1, systems=["serial-mem"], fault_seed=1)

    def test_sym_bounds_contain_every_env_value(self):
        # The invariant the static checkers lean on: a declared bound
        # that an environment violates would corrupt oracle verdicts.
        for k in range(60):
            spec = generate_spec(11, k)
            bounds = dict(spec.sym_bounds)
            for pairs in spec.envs:
                for name, value in pairs:
                    if name in bounds:
                        lo, hi = bounds[name]
                        assert lo <= value <= hi


class TestStaticCLI:
    def test_cli_oracle_coverage_clean(self, capsys):
        rc = main([
            "verify", "--fuzz", "10", "--systems", "serial-mem",
            "--oracle", "--coverage",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "statically cross-checked" in out
        assert "oracle contradiction" in out
        assert "sync coverage" in out

    def test_cli_fault_injection_writes_repro(self, tmp_path, capsys):
        rc = main([
            "verify", "--fuzz", "5", "--seed", "7", "--systems", "serial-mem",
            "--oracle", "--inject-stage-fault", "3",
            "--repro-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "injected fault seed 3" in out
        repros = list(tmp_path.glob("*.json"))
        assert repros
        still_ok, report = rerun(repros[0])
        assert not still_ok and not report.ok

    def test_cli_fault_without_oracle_is_an_error(self, capsys):
        rc = main([
            "verify", "--fuzz", "1", "--systems", "serial-mem",
            "--inject-stage-fault", "3",
        ])
        assert rc == 2
