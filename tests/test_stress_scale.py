"""Stress/scale tests: grid-capacity regions, wide fan-in, long traces."""

import pytest

from repro.cgra import CGRAConfig
from repro.cgra.placement import place_region
from repro.compiler import compile_region, verify_enforcement
from repro.ir import AffineExpr, IVar, MemObject, RegionBuilder, Sym
from repro.memory import MemoryHierarchy
from repro.sim import DataflowEngine, NachosBackend, golden_execute


class TestScale:
    def test_grid_capacity_region_places_and_runs(self):
        """A region that exactly fills the 32x32 grid."""
        b = RegionBuilder("huge")
        x = b.input("x")
        a = MemObject("a", 1 << 20, base_addr=0x100000)
        iv = IVar("i", 64)
        ops = 1  # the input
        loads = []
        for k in range(32):
            ld = b.load(a, AffineExpr.of(const=k * 8192, ivs={iv: 8}))
            loads.append(ld)
            ops += 1
        prev = x
        while ops < 1024:
            prev = b.add(prev, loads[ops % 32])
            ops += 1
        g = b.build()
        assert len(g) == 1024
        placement = place_region(g)  # exactly at capacity
        assert placement.used_cells == 1024
        engine = DataflowEngine(
            g, placement, MemoryHierarchy(), NachosBackend()
        )
        result = engine.run([{"i": 0}])
        golden = golden_execute(g, [{"i": 0}])
        assert golden.matches(result.load_values, result.memory_image)

    def test_one_op_over_capacity_rejected(self):
        b = RegionBuilder()
        x = b.input("x")
        for _ in range(4):
            x = b.add(x, x)
        g = b.build()
        with pytest.raises(ValueError):
            place_region(g, CGRAConfig(rows=2, cols=2))

    def test_extreme_fan_in_comparator(self):
        """64 MAY parents funneling into one load."""
        tab = MemObject("t", 1 << 16, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        syms = [Sym(f"s{k}") for k in range(64)]
        for sym in syms:
            b.store(tab, AffineExpr.of(syms={sym: 8}), value=x)
        ld = b.load(tab, AffineExpr.of(syms={Sym("sl"): 8}))
        g = b.build()
        result = compile_region(g)
        assert result.may_fan_in()[ld.op_id] >= 32
        assert verify_enforcement(g, result.final_labels) == []
        env = {f"s{k}": k for k in range(64)} | {"sl": 500}
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), NachosBackend()
        )
        sim = engine.run([env])
        golden = golden_execute(g, [env])
        assert golden.matches(sim.load_values, sim.memory_image)
        # 64 serialized checks bound the load's completion from below.
        assert sim.backend_stats.comparator_checks >= 32

    def test_long_trace_stable(self):
        """200 invocations: caches cycle, blooms reset, values stay right."""
        from repro.workloads import build_workload, get_spec
        from repro.experiments.common import run_system

        w = build_workload(get_spec("parser"))
        run = run_system(w, "nachos", invocations=200)
        assert run.correct
        assert run.sim.invocations == 200

    def test_pipeline_scales_to_largest_region(self):
        """equake's ~10k pairs compile in interactive time."""
        import time

        from repro.workloads import build_workload, get_spec

        w = build_workload(get_spec("equake"))
        start = time.time()
        result = compile_region(w.graph)
        elapsed = time.time() - start
        assert result.total_pairs > 5000
        assert elapsed < 5.0
