"""Property tests: ``_CalendarQueue`` is order-equivalent to a heapq.

The fast engines' bit-exactness argument leans on one queue invariant:
for any stream of ``push(time, fn)`` calls — including pushes made *by*
running events, at the current cycle, and strictly in the past — events
run in exactly the ``(time, seq)`` order a ``heapq`` of
``(time, push-counter, fn)`` tuples would produce.  These tests check
that equivalence directly on randomly generated self-spawning workloads,
plus targeted cases for each tricky seam (same-cycle FIFO append, the
late-insert overflow heap, and queue reuse after a drain).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Dict, List, Sequence, Tuple

from repro.sim.fast import _CalendarQueue

# A workload is (initial, spawns): ``initial`` seeds the queue with
# (time, event-id) pairs; ``spawns[eid]`` lists (dt, child-id) pairs the
# event pushes at ``its own time + dt`` when it runs.  Negative dt means
# a push strictly into the past once the queue has advanced.
Workload = Tuple[List[Tuple[int, int]], Dict[int, Sequence[Tuple[int, int]]]]


def _run_calendar(workload: Workload) -> List[int]:
    initial, spawns = workload
    queue = _CalendarQueue()
    order: List[int] = []

    def make(eid: int, time: int):
        def fn() -> None:
            order.append(eid)
            for dt, cid in spawns.get(eid, ()):
                queue.push(time + dt, make(cid, time + dt))

        return fn

    for time, eid in initial:
        queue.push(time, make(eid, time))
    queue.drain()
    assert len(queue) == 0
    return order


def _run_heapq(workload: Workload) -> List[int]:
    initial, spawns = workload
    heap: List[Tuple[int, int, int]] = []
    seq = itertools.count()
    order: List[int] = []

    for time, eid in initial:
        heapq.heappush(heap, (time, next(seq), eid))
    while heap:
        time, _, eid = heapq.heappop(heap)
        order.append(eid)
        for dt, cid in spawns.get(eid, ()):
            heapq.heappush(heap, (time + dt, next(seq), cid))
    return order


def _random_workload(rng: random.Random) -> Workload:
    ids = itertools.count()
    initial = [(rng.randrange(0, 40), next(ids)) for _ in range(20)]
    # Duplicate seed times force same-cycle FIFO ordering to matter.
    initial += [(initial[i][0], next(ids)) for i in range(0, 20, 4)]
    spawns: Dict[int, Sequence[Tuple[int, int]]] = {}
    frontier = [eid for _, eid in initial]
    budget = 80
    while budget > 0 and frontier:
        eid = frontier.pop(rng.randrange(len(frontier)))
        kids = []
        for _ in range(rng.randrange(0, 3)):
            if budget <= 0:
                break
            cid = next(ids)
            # Mostly future pushes, a steady minority into the past
            # (exercising the late-overflow heap) and onto "now".
            dt = rng.choice((-6, -3, -1, 0, 0, 1, 1, 2, 4, 9))
            kids.append((dt, cid))
            frontier.append(cid)
            budget -= 1
        if kids:
            spawns[eid] = tuple(kids)
    return initial, spawns


def test_matches_heapq_on_random_self_spawning_streams():
    for seed in range(60):
        rng = random.Random(seed)
        workload = _random_workload(rng)
        assert _run_calendar(workload) == _run_heapq(workload), (
            f"order diverged from heapq for seed {seed}"
        )


def test_same_cycle_pushes_drain_fifo():
    # Three seeds at one cycle; the first spawns two more at that same
    # cycle mid-drain.  heapq order: 0, 1, 2, then the two children.
    workload = ([(5, 0), (5, 1), (5, 2)], {0: ((0, 3), (0, 4))})
    assert _run_calendar(workload) == _run_heapq(workload) == [0, 1, 2, 3, 4]


def test_past_push_preempts_rest_of_bucket():
    # Event 0 (cycle 9) pushes event 3 at cycle 2 — strictly in the
    # past.  heapq pops (2, ...) before (9, ...) entries still queued,
    # i.e. the late event runs before 1 and 2 finish the bucket.
    workload = ([(9, 0), (9, 1), (9, 2)], {0: ((-7, 3),)})
    assert _run_calendar(workload) == _run_heapq(workload) == [0, 3, 1, 2]


def test_late_overflow_heap_orders_by_time_then_seq():
    # Two past pushes at different past cycles plus one tie: drained in
    # (time, seq) order, not push order.
    workload = (
        [(10, 0), (10, 1)],
        {0: ((-2, 2), (-5, 3), (-5, 4)), 2: ((-1, 5),)},
    )
    assert _run_calendar(workload) == _run_heapq(workload)


def test_cascading_past_pushes_inside_late_drain():
    # A late event itself pushes further into the past, and also spawns
    # a future event; both must interleave exactly as heapq would.
    workload = (
        [(20, 0), (20, 1), (25, 6)],
        {0: ((-10, 2),), 2: ((-5, 3), (3, 4)), 3: ((0, 5),)},
    )
    assert _run_calendar(workload) == _run_heapq(workload)


def test_queue_reusable_after_drain():
    queue = _CalendarQueue()
    order: List[int] = []
    queue.push(3, lambda: order.append(0))
    queue.drain()
    # After a full drain the clock rewinds: pushing at an *earlier*
    # absolute cycle than the previous drain reached is a normal future
    # push for the next drain, exactly like a fresh heapq.
    queue.push(1, lambda: order.append(1))
    queue.push(1, lambda: order.append(2))
    assert len(queue) == 2
    queue.drain()
    assert order == [0, 1, 2]
    assert len(queue) == 0
