"""Property tests for the retry/backoff scheduler.

The :class:`~repro.runtime.retry.RetryScheduler` is a pure, time-injected
state machine, so these tests drive it with a fake clock over seeded
failure patterns and assert the invariants the executor depends on:

* every task ends in exactly one of {result, terminal failure};
* no task is lost, duplicated, or attempted more than ``max_retries + 1``
  times;
* backoff delays are deterministic in the seed and bounded by the
  jittered, capped exponential.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.runtime.retry import (
    RetryPolicy,
    RetryScheduler,
    stable_unit,
)

#: (n_tasks, max_retries, failure probability, pattern seed) grid — a
#: spread of always-succeed, flaky, and pathological always-fail mixes.
PATTERNS = [
    (1, 0, 0.0, 0),
    (1, 0, 1.0, 0),
    (5, 2, 0.0, 1),
    (5, 2, 0.3, 2),
    (8, 1, 0.5, 3),
    (8, 3, 0.9, 4),
    (12, 2, 1.0, 5),
    (20, 4, 0.25, 6),
    (20, 0, 0.5, 7),
]


def _drive(n_tasks: int, policy: RetryPolicy, p_fail: float, seed: int):
    """Run the scheduler to completion against a seeded failure oracle.

    Returns (attempt log, successes, now) where the log holds every
    ``(index, attempt)`` pair the scheduler handed out, in order.
    """
    sched = RetryScheduler(n_tasks, policy)
    log = []
    successes = set()
    now = 0.0
    for _ in range(n_tasks * (policy.max_retries + 1) + 1):
        progressed = False
        while True:
            claimed = sched.pop_eligible(now)
            if claimed is None:
                break
            progressed = True
            index, attempt = claimed
            log.append((index, attempt))
            if stable_unit(seed, "fail?", index, attempt) < p_fail:
                sched.record_failure(index, now)
            else:
                sched.record_success(index)
                successes.add(index)
        if sched.finished:
            break
        nxt = sched.next_eligible_time()
        assert nxt is not None, "unfinished scheduler with nothing pending"
        assert nxt > now or not progressed
        now = max(nxt, now)
    return log, successes, now


@pytest.mark.parametrize("n_tasks,max_retries,p_fail,seed", PATTERNS)
def test_every_task_ends_in_exactly_one_state(n_tasks, max_retries, p_fail, seed):
    policy = RetryPolicy(max_retries=max_retries, backoff_base=0.01)
    sched = RetryScheduler(n_tasks, policy)
    log, successes, _ = _drive(n_tasks, policy, p_fail, seed)

    # Rebuild terminal set by re-driving (fresh scheduler, same oracle).
    sched = RetryScheduler(n_tasks, policy)
    now = 0.0
    while not sched.finished:
        claimed = sched.pop_eligible(now)
        if claimed is None:
            now = sched.next_eligible_time()
            continue
        index, attempt = claimed
        if stable_unit(seed, "fail?", index, attempt) < p_fail:
            sched.record_failure(index, now)
        else:
            sched.record_success(index)
    terminal = {index for index, _ in sched.terminal}

    # Exactly one terminal state per task; together they cover the grid.
    assert successes | terminal == set(range(n_tasks))
    assert successes & terminal == set()
    # The terminal list itself holds no duplicates.
    assert len(terminal) == len(sched.terminal)


@pytest.mark.parametrize("n_tasks,max_retries,p_fail,seed", PATTERNS)
def test_no_attempt_lost_duplicated_or_over_budget(
    n_tasks, max_retries, p_fail, seed
):
    policy = RetryPolicy(max_retries=max_retries, backoff_base=0.01)
    log, successes, _ = _drive(n_tasks, policy, p_fail, seed)

    # No (index, attempt) pair is handed out twice.
    assert len(log) == len(set(log))
    per_task = {}
    for index, attempt in log:
        attempts = per_task.setdefault(index, [])
        # Attempts arrive in order 0, 1, 2, ... with none skipped.
        assert attempt == len(attempts)
        attempts.append(attempt)
    # Every task was attempted at least once, none beyond its budget.
    assert set(per_task) == set(range(n_tasks))
    for index, attempts in per_task.items():
        assert len(attempts) <= max_retries + 1
        if index not in successes:
            assert len(attempts) == max_retries + 1


@pytest.mark.parametrize("n_tasks,max_retries,p_fail,seed", PATTERNS)
def test_schedule_is_deterministic_given_seed(n_tasks, max_retries, p_fail, seed):
    policy = RetryPolicy(max_retries=max_retries, backoff_base=0.01, seed=seed)
    first = _drive(n_tasks, policy, p_fail, seed)
    second = _drive(n_tasks, policy, p_fail, seed)
    assert first == second


def test_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(
        backoff_base=0.05, backoff_factor=2.0, backoff_max=2.0,
        jitter=0.25, seed=11,
    )
    for key in range(10):
        for attempt in range(8):
            delay = policy.backoff(key, attempt)
            assert delay == policy.backoff(key, attempt)
            raw = min(0.05 * 2.0 ** attempt, 2.0)
            assert raw * 0.75 <= delay <= raw * 1.25
    # A different seed yields a different (jittered) schedule.
    other = dataclasses.replace(policy, seed=12)
    assert any(
        policy.backoff(k, a) != other.backoff(k, a)
        for k in range(10)
        for a in range(8)
    )


def test_backoff_grows_then_caps():
    policy = RetryPolicy(
        backoff_base=0.1, backoff_factor=2.0, backoff_max=0.8, jitter=0.0
    )
    delays = [policy.backoff(0, a) for a in range(6)]
    assert delays == [0.1, 0.2, 0.4, 0.8, 0.8, 0.8]


def test_requeue_does_not_burn_an_attempt():
    policy = RetryPolicy(max_retries=1, backoff_base=0.01)
    sched = RetryScheduler(2, policy)
    index, attempt = sched.pop_eligible(0.0)
    assert (index, attempt) == (0, 0)
    # Dispatch itself failed (dead worker's pipe): the task goes back to
    # the queue still at attempt 0 and immediately eligible.
    sched.requeue(index)
    assert sched.pop_eligible(0.0) == (0, 0)
    assert sched.retries == 0


def test_mark_done_preloads_without_attempts():
    policy = RetryPolicy(max_retries=2, backoff_base=0.01)
    sched = RetryScheduler(3, policy)
    sched.mark_done(1)  # checkpoint preload
    claimed = []
    while True:
        got = sched.pop_eligible(0.0)
        if got is None:
            break
        claimed.append(got[0])
        sched.record_success(got[0])
    assert claimed == [0, 2]
    assert sched.finished


def test_policy_from_env(monkeypatch):
    monkeypatch.setenv("NACHOS_TIMEOUT", "12.5")
    monkeypatch.setenv("NACHOS_MAX_RETRIES", "4")
    monkeypatch.setenv("NACHOS_BACKOFF_BASE", "0.2")
    monkeypatch.setenv("NACHOS_BACKOFF_SEED", "9")
    policy = RetryPolicy.from_env()
    assert policy.timeout == 12.5
    assert policy.max_retries == 4
    assert policy.backoff_base == 0.2
    assert policy.seed == 9
    monkeypatch.setenv("NACHOS_TIMEOUT", "0")  # 0/negative disables
    assert RetryPolicy.from_env().timeout is None
    monkeypatch.setenv("NACHOS_MAX_RETRIES", "junk")
    assert RetryPolicy.from_env().max_retries == RetryPolicy.max_retries
