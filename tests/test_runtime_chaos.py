"""Chaos matrix for the supervised executor.

Every recovery path gets a deterministic injected fault — worker crash,
hang past the per-task timeout, corrupt result pickle — at seeded
injection points, and the sweep must come back with results identical
to a fault-free run, bounded retries, and correct failure reports when
retries run out.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.common import clear_memos
from repro.runtime.cache import configure_cache, get_cache
from repro.runtime.chaos import ChaosSpec, get_chaos, parse_chaos, set_chaos
from repro.runtime.executor import SimTask, run_tasks, run_tasks_detailed
from repro.runtime.retry import CRASH, RetryPolicy, SweepError
from repro.workloads.micro import build_micro

INVOCATIONS = 4

#: Fast-backoff policy so injected faults don't slow the suite down.
FAST = RetryPolicy(max_retries=3, backoff_base=0.01, backoff_max=0.05)


@pytest.fixture
def no_cache():
    """Disable the result cache so chaos-hit tasks genuinely recompute."""
    prev = get_cache()
    configure_cache(enabled=False)
    clear_memos()
    yield
    clear_memos()
    configure_cache(root=prev.root, enabled=prev.enabled)


@pytest.fixture
def chaos_env(monkeypatch):
    """Install a chaos spec via the environment (crosses the fork into
    pool workers) and guarantee cleanup."""

    def install(spec: str) -> None:
        monkeypatch.setenv("NACHOS_CHAOS", spec)

    set_chaos(None)
    yield install
    set_chaos(None)


def _tasks():
    return [
        SimTask(build_micro(name), system, INVOCATIONS, check=False)
        for name in ("stream_triad", "gather")
        for system in ("opt-lsq", "nachos")
    ]


def _sigs(runs):
    return [pickle.dumps(r.sim) for r in runs]


def _baseline():
    baseline = _sigs(run_tasks(_tasks(), jobs=1, policy=FAST))
    clear_memos()
    return baseline


# ----------------------------------------------------------------------
# Recovery: each fault kind, pooled
# ----------------------------------------------------------------------
def test_pool_recovers_from_worker_crash(no_cache, chaos_env):
    baseline = _baseline()
    chaos_env("crash@1,crash@1:1,crash@2")
    outcome = run_tasks_detailed(_tasks(), jobs=2, policy=FAST)
    assert outcome.ok
    assert _sigs(outcome.results) == baseline
    assert outcome.retries == 3  # task 1 attempts 0+1, task 2 attempt 0


def test_pool_recovers_from_hang_via_timeout(no_cache, chaos_env):
    baseline = _baseline()
    chaos_env("hang@0,hang_s=30")
    policy = RetryPolicy(
        timeout=1.5, max_retries=2, backoff_base=0.01, backoff_max=0.05
    )
    outcome = run_tasks_detailed(_tasks(), jobs=2, policy=policy)
    assert outcome.ok
    assert _sigs(outcome.results) == baseline
    assert outcome.retries >= 1


def test_pool_recovers_from_corrupt_result(no_cache, chaos_env):
    baseline = _baseline()
    chaos_env("corrupt@0,corrupt@3")
    outcome = run_tasks_detailed(_tasks(), jobs=2, policy=FAST)
    assert outcome.ok
    assert _sigs(outcome.results) == baseline
    assert outcome.retries >= 2


def test_probabilistic_chaos_is_deterministic(no_cache, chaos_env):
    baseline = _baseline()
    chaos_env("crash=0.15,corrupt=0.1,seed=7")
    first = run_tasks_detailed(_tasks(), jobs=2, policy=FAST)
    clear_memos()
    second = run_tasks_detailed(_tasks(), jobs=2, policy=FAST)
    assert first.ok and second.ok
    assert _sigs(first.results) == _sigs(second.results) == baseline
    # Same seed, same tasks -> the exact same injected-fault schedule.
    assert first.retries == second.retries


# ----------------------------------------------------------------------
# Exhausted retries: bounded, degraded, reported
# ----------------------------------------------------------------------
def test_exhausted_retries_degrade_to_partial_results(no_cache, chaos_env):
    # Task 1 crashes on every attempt it is allowed (max_retries=2 ->
    # 3 attempts); everything else must still complete.
    chaos_env("crash@1:0,crash@1:1,crash@1:2")
    policy = RetryPolicy(max_retries=2, backoff_base=0.01, backoff_max=0.05)
    outcome = run_tasks_detailed(_tasks(), jobs=2, policy=policy)
    assert not outcome.ok
    assert outcome.results[1] is None
    assert all(
        outcome.results[i] is not None for i in range(len(outcome.results))
        if i != 1
    )
    (failure,) = outcome.failures
    assert failure.index == 1
    assert failure.kind == CRASH
    assert failure.attempts == policy.max_retries + 1
    report = outcome.as_report()
    assert report["tasks"] == 4 and report["completed"] == 3
    assert report["failures"][0]["kind"] == CRASH


def test_run_tasks_raises_sweep_error_with_outcome(no_cache, chaos_env):
    chaos_env("crash@0:0,crash@0:1,crash@0:2")
    policy = RetryPolicy(max_retries=2, backoff_base=0.01, backoff_max=0.05)
    with pytest.raises(SweepError) as exc_info:
        run_tasks(_tasks(), jobs=2, policy=policy)
    outcome = exc_info.value.outcome
    assert len(outcome.failures) == 1
    assert outcome.results[0] is None
    assert sum(1 for r in outcome.results if r is not None) == 3


# ----------------------------------------------------------------------
# Serial mode: same retry semantics without a pool
# ----------------------------------------------------------------------
def test_serial_chaos_crash_and_corrupt_retry(no_cache):
    baseline = _baseline()
    set_chaos(parse_chaos("crash@0,corrupt@2"))
    try:
        outcome = run_tasks_detailed(_tasks(), jobs=1, policy=FAST)
    finally:
        set_chaos(None)
    assert outcome.ok
    assert _sigs(outcome.results) == baseline
    assert outcome.retries == 2


def test_serial_exhausted_retries(no_cache):
    set_chaos(parse_chaos("crash@1:0,crash@1:1"))
    policy = RetryPolicy(max_retries=1, backoff_base=0.01, backoff_max=0.05)
    try:
        outcome = run_tasks_detailed(_tasks(), jobs=1, policy=policy)
    finally:
        set_chaos(None)
    assert not outcome.ok
    assert outcome.results[1] is None
    assert outcome.failures[0].attempts == 2


# ----------------------------------------------------------------------
# Spec plumbing
# ----------------------------------------------------------------------
def test_parse_chaos_grammar():
    spec = parse_chaos(
        "crash=0.05,hang=0.02,corrupt=0.01,seed=42,hang_s=3,crash@3,corrupt@5:1"
    )
    assert spec.p_crash == 0.05
    assert spec.p_hang == 0.02
    assert spec.p_corrupt == 0.01
    assert spec.seed == 42
    assert spec.hang_seconds == 3.0
    assert spec.points == (("crash", 3, 0), ("corrupt", 5, 1))
    assert spec.decide(3, 0) == "crash"
    assert spec.decide(5, 1) == "corrupt"
    assert spec.decide(5, 0) is None or spec.decide(5, 0) in (
        "crash", "hang", "corrupt",
    )


def test_parse_chaos_rejects_garbage():
    with pytest.raises(ValueError):
        parse_chaos("explode@3")
    with pytest.raises(ValueError):
        parse_chaos("crash")
    with pytest.raises(ValueError):
        parse_chaos("frequency=0.5")


def test_chaos_decisions_are_pure(monkeypatch):
    spec = ChaosSpec(p_crash=0.3, p_hang=0.2, p_corrupt=0.1, seed=9)
    table = [(i, a, spec.decide(i, a)) for i in range(20) for a in range(4)]
    again = [(i, a, spec.decide(i, a)) for i in range(20) for a in range(4)]
    assert table == again
    assert any(kind == "crash" for _, _, kind in table)
    assert any(kind is None for _, _, kind in table)


def test_get_chaos_env_roundtrip(monkeypatch):
    set_chaos(None)
    monkeypatch.setenv("NACHOS_CHAOS", "crash@7,seed=3")
    spec = get_chaos()
    assert spec is not None
    assert spec.decide(7, 0) == "crash"
    monkeypatch.delenv("NACHOS_CHAOS")
    assert get_chaos() is None
