"""Compiling and simulating must never mutate the workload's graph.

The caching layer fingerprints ``workload.graph`` once and memoizes it,
which is only sound if every system compiles into a clone.  These tests
pin that contract: the serialized graph is bit-identical before and
after any amount of experiment activity.
"""

from __future__ import annotations

import pytest

from repro.compiler.pipeline import PipelineConfig
from repro.experiments.common import (
    compare_systems,
    compile_workload,
    run_system,
)
from repro.ir.serialize import graph_to_dict
from repro.workloads.generator import build_workload
from repro.workloads.micro import build_micro
from repro.workloads.spec import BenchmarkSpec, Mechanism

ALL_SYSTEMS = (
    "opt-lsq",
    "nachos-sw",
    "nachos",
    "baseline-sw",
    "spec-lsq",
    "serial-mem",
    "oracle-sw",
)


def _may_heavy_spec() -> BenchmarkSpec:
    """Small synthetic region where the pipeline really inserts MDEs."""
    return BenchmarkSpec(
        name="purity-may",
        suite="synthetic",
        n_ops=60,
        n_mem=12,
        mlp=4,
        store_frac=0.3,
        stride=64,
        mechanism_mix={Mechanism.PARAM_OPAQUE: 0.5, Mechanism.DISTINCT: 0.5},
        chain_length=1,
    )


def test_compile_workload_leaves_graph_untouched():
    workload = build_workload(_may_heavy_spec())
    before = graph_to_dict(workload.graph)
    result = compile_workload(workload, PipelineConfig.full())
    assert result.graph is not workload.graph
    assert result.graph.mdes  # the clone did get annotated
    assert graph_to_dict(workload.graph) == before


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_run_system_leaves_graph_untouched(system):
    workload = build_workload(_may_heavy_spec())
    before = graph_to_dict(workload.graph)
    run = run_system(workload, system, invocations=3, check=False)
    assert run.sim.invocations == 3
    assert graph_to_dict(workload.graph) == before


def test_compare_systems_leaves_graph_untouched():
    workload = build_micro("scatter")
    before = graph_to_dict(workload.graph)
    cmp = compare_systems(workload, invocations=4)
    assert cmp.all_correct
    assert graph_to_dict(workload.graph) == before


def test_clone_is_independent():
    workload = build_micro("gather")
    clone = workload.graph.clone()
    before = graph_to_dict(workload.graph)
    clone.replace_mdes([])
    assert graph_to_dict(workload.graph) == before

    bare = workload.graph.clone(with_mdes=False)
    assert bare.mdes == []
    assert graph_to_dict(workload.graph) == before


def test_unknown_system_is_rejected():
    workload = build_micro("reduction")
    with pytest.raises(ValueError):
        run_system(workload, "no-such-system", invocations=2)
