"""Golden timeline corpus for the litmus patterns.

Serializes the :class:`TimelineRecorder` output (per-op start/complete
times for every invocation, every backend) of each litmus pattern and
pins it against committed JSON under ``tests/golden/``.  Two things are
on the hook:

* **semantic drift** — an engine or backend change that moves *when*
  ops execute shows up as a golden diff, even if final values stay
  correct;
* **fast-engine timeline fidelity** — the fast engine prefills static
  op timings from its schedule template instead of recording live
  events, and must serialize identically to the reference recorder.

Regenerate intentionally with ``pytest --update-golden`` (then review
the diff like any other behavior change).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.test_litmus import BACKENDS, LITMUS, NEEDS_MDES

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.memory import MemoryHierarchy
from repro.sim import TimelineRecorder, make_engine

GOLDEN_DIR = Path(__file__).parent / "golden"
INVOCATION_REPEATS = 2  # template captured on inv 0, replayed on inv 1


def _record_timelines(name: str, mode: str) -> dict:
    """One pattern's serialized timelines for every backend."""
    build_fn, envs = LITMUS[name]
    envs = envs * INVOCATION_REPEATS
    per_backend = {}
    for backend_name in sorted(BACKENDS):
        graph = build_fn()
        if backend_name in NEEDS_MDES:
            compile_region(graph)
        else:
            graph.clear_mdes()
        recorder = TimelineRecorder()
        engine = make_engine(
            graph,
            place_region(graph),
            MemoryHierarchy(),
            BACKENDS[backend_name](),
            recorder=recorder,
            mode=mode,
        )
        engine.run(envs)
        per_backend[backend_name] = [
            {
                "index": tl.index,
                "start": tl.start,
                "end": tl.end,
                "timings": [
                    [t.op_id, t.opcode, t.name, t.start, t.complete]
                    for t in tl.timings
                ],
            }
            for tl in recorder.invocations
        ]
    return {"pattern": name, "invocations": per_backend}


@pytest.mark.parametrize("litmus", sorted(LITMUS))
def test_golden_timeline(litmus, update_golden):
    current = _record_timelines(litmus, "reference")
    path = GOLDEN_DIR / f"{litmus}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(current, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden file {path}; generate with pytest --update-golden"
    )
    golden = json.loads(path.read_text())
    assert current == golden, (
        f"{litmus}: timelines drifted from golden corpus — if intended, "
        "regenerate with pytest --update-golden and review the diff"
    )


@pytest.mark.parametrize("litmus", sorted(LITMUS))
def test_fast_engine_matches_golden(litmus, update_golden):
    """The fast engine's template-prefilled recorder output must match
    the same golden corpus, not merely the live reference run."""
    if update_golden:
        pytest.skip("golden files being rewritten by the reference run")
    path = GOLDEN_DIR / f"{litmus}.json"
    assert path.exists(), (
        f"missing golden file {path}; generate with pytest --update-golden"
    )
    golden = json.loads(path.read_text())
    assert _record_timelines(litmus, "fast") == golden
