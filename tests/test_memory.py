"""Unit tests for the cache hierarchy substrate."""

import pytest

from repro.memory import (
    CacheConfig,
    HierarchyConfig,
    MemoryHierarchy,
    SetAssociativeCache,
)
from repro.memory.hierarchy import ServedBy


class TestCacheConfig:
    def test_paper_default_geometry(self):
        cfg = HierarchyConfig.paper_default()
        assert cfg.l1.size_bytes == 64 * 1024
        assert cfg.l1.ways == 4
        assert cfg.l1.latency == 3
        assert cfg.l2.latency == 25
        assert cfg.memory_latency == 200

    def test_n_sets(self):
        cfg = CacheConfig("t", 64 * 1024, 4, line_bytes=64)
        assert cfg.n_sets == 256

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("t", 1000, 3, line_bytes=64)


class TestSetAssociativeCache:
    def make(self, size=1024, ways=2, line=64):
        return SetAssociativeCache(CacheConfig("t", size, ways, line_bytes=line))

    def test_miss_then_hit(self):
        c = self.make()
        assert not c.access(0x100, is_write=False)
        assert c.access(0x100, is_write=False)
        assert c.stats.read_misses == 1
        assert c.stats.read_hits == 1

    def test_same_line_hits(self):
        c = self.make()
        c.access(0x100, is_write=False)
        assert c.access(0x13F, is_write=False)  # same 64B line

    def test_lru_eviction(self):
        c = self.make(size=256, ways=2, line=64)  # 2 sets x 2 ways
        # Set 0 lines: 0, 128, 256 ... (line % 2 == 0)
        c.access(0 * 64, False)
        c.access(2 * 64, False)
        c.access(0 * 64, False)      # touch line 0 -> line 2 is LRU
        c.access(4 * 64, False)      # evicts line 2
        assert c.access(0 * 64, False) is True
        assert c.access(2 * 64, False) is False
        assert c.stats.evictions >= 1

    def test_dirty_eviction_counts_writeback(self):
        c = self.make(size=256, ways=1, line=64)  # direct mapped, 4 sets
        c.access(0, is_write=True)
        c.access(256, is_write=False)  # same set, evicts dirty line 0
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = self.make(size=256, ways=1, line=64)
        c.access(0, is_write=False)
        c.access(256, is_write=False)
        assert c.stats.writebacks == 0

    def test_lookup_does_not_mutate(self):
        c = self.make()
        assert not c.lookup(0x100)
        assert c.stats.accesses == 0
        c.access(0x100, False)
        assert c.lookup(0x100)
        assert c.stats.accesses == 1

    def test_invalidate(self):
        c = self.make()
        c.access(0x100, False)
        c.invalidate(c.line_of(0x100))
        assert not c.lookup(0x100)

    def test_flush(self):
        c = self.make()
        c.access(0x100, False)
        c.flush()
        assert c.occupancy == 0

    def test_hit_rate(self):
        c = self.make()
        c.access(0, False)
        c.access(0, False)
        c.access(0, False)
        assert c.stats.hit_rate == pytest.approx(2 / 3)

    def test_stats_reset(self):
        c = self.make()
        c.access(0, False)
        c.stats.reset()
        assert c.stats.accesses == 0


class TestMemoryHierarchy:
    def test_l1_hit_latency(self):
        h = MemoryHierarchy()
        first = h.access(0x100, False, cycle=0)
        assert first.served_by in (ServedBy.L2, ServedBy.MEMORY)
        again = h.access(0x100, False, cycle=first.complete + 1)
        assert again.served_by is ServedBy.L1
        assert again.latency == 3

    def test_cold_miss_goes_to_memory(self):
        h = MemoryHierarchy()
        r = h.access(0x100, False, cycle=0)
        assert r.served_by is ServedBy.MEMORY
        assert r.latency == 200

    def test_l2_hit_after_warm(self):
        h = MemoryHierarchy()
        h.l2.access(0x100, False)       # warm L2 only
        r = h.access(0x100, False, cycle=0)
        assert r.served_by is ServedBy.L2
        assert r.latency == 25

    def test_mshr_merges_same_line(self):
        h = MemoryHierarchy()
        a = h.access(0x100, False, cycle=0)
        b = h.access(0x104, False, cycle=1)    # same line, fill in flight
        assert b.served_by is ServedBy.MSHR
        assert b.complete <= a.complete + 3

    def test_mshr_limit_stalls(self):
        cfg = HierarchyConfig(mshr_entries=2, cache_ports=16)
        h = MemoryHierarchy(cfg)
        r1 = h.access(0 * 64, False, 0)
        r2 = h.access(10 * 64, False, 0)
        r3 = h.access(20 * 64, False, 0)  # no free MSHR: waits
        assert r3.start >= min(r1.complete, r2.complete)

    def test_port_contention_serializes_starts(self):
        cfg = HierarchyConfig(cache_ports=1)
        h = MemoryHierarchy(cfg)
        h.l1.access(0, False)
        h.l1.access(64, False)
        a = h.access(0, False, cycle=0)
        b = h.access(64, False, cycle=0)
        assert b.start > a.start

    def test_drain(self):
        h = MemoryHierarchy()
        r = h.access(0x100, False, cycle=0)
        assert h.drain(cycle=0) == r.complete
        assert h.drain(cycle=r.complete + 1) == r.complete + 1

    def test_warm_fills_both_levels(self):
        h = MemoryHierarchy()
        h.warm([0x100])
        assert h.l1.lookup(0x100)
        assert h.l2.lookup(0x100)

    def test_reset_timing_keeps_contents(self):
        h = MemoryHierarchy()
        h.access(0x100, False, 0)
        h.reset_timing()
        assert h.l1.lookup(0x100)
