"""Unit tests for the CGRA grid model and placement."""

import pytest

from repro.cgra import CGRAConfig, Placement, place_region
from repro.ir import AffineExpr, IVar, MemObject, RegionBuilder
from tests.conftest import build_simple_region


class TestConfig:
    def test_paper_default(self):
        cfg = CGRAConfig.paper_default()
        assert cfg.rows == 32 and cfg.cols == 32
        assert cfg.capacity == 1024


class TestPlacement:
    def test_all_ops_placed_uniquely(self, simple_region):
        p = place_region(simple_region)
        cells = list(p.cells.values())
        assert len(cells) == len(simple_region)
        assert len(set(cells)) == len(cells)

    def test_cells_within_grid(self, simple_region):
        cfg = CGRAConfig(rows=8, cols=8)
        p = place_region(simple_region, cfg)
        for r, c in p.cells.values():
            assert 0 <= r < 8 and 0 <= c < 8

    def test_capacity_enforced(self):
        b = RegionBuilder()
        x = b.input("x")
        prev = x
        for _ in range(20):
            prev = b.add(prev, x)
        g = b.build()
        with pytest.raises(ValueError):
            place_region(g, CGRAConfig(rows=4, cols=4))

    def test_hops_symmetric_and_zero_on_self(self, simple_region):
        p = place_region(simple_region)
        ids = [op.op_id for op in simple_region.ops]
        assert p.hops(ids[0], ids[0]) == 0
        assert p.hops(ids[0], ids[1]) == p.hops(ids[1], ids[0])

    def test_route_latency_scales_with_hop_latency(self, simple_region):
        p1 = place_region(simple_region, CGRAConfig(hop_latency=1))
        p2 = Placement(CGRAConfig(hop_latency=3), cells=dict(p1.cells))
        ids = [op.op_id for op in simple_region.ops]
        assert p2.route_latency(ids[0], ids[1]) == 3 * p1.hops(ids[0], ids[1])

    def test_edge_hops_is_row_distance(self, simple_region):
        p = place_region(simple_region)
        for op in simple_region.memory_ops:
            r, _ = p.cell_of(op.op_id)
            assert p.edge_hops(op.op_id) == r

    def test_deterministic(self, simple_region):
        p1 = place_region(build_simple_region())
        p2 = place_region(build_simple_region())
        assert p1.cells == p2.cells

    def test_consumers_placed_near_producers(self):
        """Average data-edge length should be small on a chain."""
        b = RegionBuilder()
        x = b.input("x")
        prev = x
        for _ in range(30):
            prev = b.add(prev, x)
        g = b.build()
        p = place_region(g)
        dists = [
            p.hops(op.inputs[0], op.op_id) for op in g.ops if op.inputs
        ]
        assert sum(dists) / len(dists) < 4.0

    def test_large_region_fits_default_grid(self):
        from repro.workloads import SUITE, build_workload

        spec = max(SUITE, key=lambda s: s.n_ops)
        w = build_workload(spec)
        p = place_region(w.graph)
        assert p.used_cells == len(w.graph)
