"""The full correctness matrix: every benchmark x every backend.

The single most important integration property of the repository: all
five disambiguation backends reproduce program-order semantics on all 27
generated benchmarks.  Kept as one parametrized sweep so a regression
pinpoints exactly which (benchmark, backend) cell broke.
"""

import pytest

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.memory import MemoryHierarchy
from repro.sim import (
    DataflowEngine,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    SerialMemBackend,
    SpecLSQBackend,
    golden_execute,
)
from repro.workloads import benchmark_names, build_workload, get_spec

BACKENDS = {
    "opt-lsq": (OptLSQBackend, False),
    "spec-lsq": (SpecLSQBackend, False),
    "serial-mem": (SerialMemBackend, False),
    "nachos-sw": (NachosSWBackend, True),
    "nachos": (NachosBackend, True),
}

INVOCATIONS = 8


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@pytest.mark.parametrize("bench", benchmark_names())
def test_matrix(bench, backend_name):
    backend_cls, needs_mdes = BACKENDS[backend_name]
    workload = build_workload(get_spec(bench))
    graph = workload.graph
    if needs_mdes:
        compile_region(graph)
    else:
        graph.clear_mdes()
    engine = DataflowEngine(
        graph, place_region(graph), MemoryHierarchy(), backend_cls()
    )
    envs = workload.invocations(INVOCATIONS)
    result = engine.run(envs)
    golden = golden_execute(graph, envs)
    assert golden.matches(result.load_values, result.memory_image), (
        bench,
        backend_name,
    )
