"""Tests for the region linter + golden-stats guard on the suite."""

import pytest

from repro.ir import AffineExpr, IVar, MemObject, MemorySpace, RegionBuilder
from repro.ir.lint import lint_region
from repro.workloads import SUITE, build_workload, get_spec
from tests.conftest import build_simple_region


class TestLinter:
    def test_clean_region_has_few_warnings(self):
        g = build_simple_region()
        warnings = lint_region(g)
        # The unused input is the only legitimate nit in the fixture.
        assert all("live-in" in w for w in warnings)

    def test_dead_load_flagged(self):
        a = MemObject("a", 4096)
        b = RegionBuilder()
        b.load(a, AffineExpr.constant(0))
        g = b.build()
        assert any("dead load" in w for w in lint_region(g))

    def test_oversized_access_flagged(self):
        a = MemObject("tiny", 4)
        b = RegionBuilder()
        ld = b.load(a, AffineExpr.constant(0), width=8)
        b.add(ld, ld)
        g = b.build()
        assert any("exceeds" in w for w in lint_region(g))

    def test_unpromoted_local_flagged(self):
        stack = MemObject("frame", 64, MemorySpace.STACK)
        b = RegionBuilder()
        ld = b.load(stack, AffineExpr.constant(0))
        b.add(ld, ld)
        g = b.build()
        assert any("scratchpad promotion" in w for w in lint_region(g))

    def test_out_of_bounds_range_flagged(self):
        a = MemObject("a", 64)
        iv = IVar("i", 64)
        b = RegionBuilder()
        ld = b.load(a, AffineExpr.of(ivs={iv: 8}))  # up to 8*63+8 > 64
        b.add(ld, ld)
        g = b.build()
        assert any("outside object" in w for w in lint_region(g))

    def test_dangling_compute_flagged(self):
        b = RegionBuilder()
        x = b.input("x")
        b.add(x, x)       # dangling
        b.mul(x, x)       # last op: allowed as region result
        g = b.build()
        warnings = lint_region(g)
        assert sum("never consumed" in w for w in warnings) == 1

    def test_suite_regions_lint_clean_of_memory_warnings(self):
        """Generated workloads must never produce memory-shape lints
        (dead loads are fine: stores' values come from elsewhere)."""
        for spec in SUITE[:8]:
            w = build_workload(spec)
            for warning in lint_region(w.graph):
                assert "exceeds" not in warning, (spec.name, warning)
                assert "outside object" not in warning, (spec.name, warning)
                assert "scratchpad promotion" not in warning, (spec.name, warning)


class TestGoldenSuiteStats:
    """Pin the generated suite's shape so silent generator drift fails
    loudly (update deliberately when the generator changes)."""

    def test_region_sizes_stable(self):
        expected = {
            "gzip": (64, 4),
            "equake": (559, 215),
            "bzip2": (501, 110),
            "histogram": (522, 48),
            "blackscholes": (297, 0),
        }
        for name, (n_ops, n_mem) in expected.items():
            w = build_workload(get_spec(name))
            assert abs(len(w.graph) - n_ops) <= n_ops * 0.15 + 8, name
            assert abs(len(w.graph.memory_ops) - n_mem) <= n_mem * 0.15 + 2, name

    def test_total_suite_footprint(self):
        total_ops = sum(len(build_workload(s).graph) for s in SUITE)
        # 27 hottest regions, ~5.5k static ops (Table II sums to ~5.4k).
        assert 4000 <= total_ops <= 7500

    def test_env_determinism_across_workload_instances(self):
        w1 = build_workload(get_spec("histogram"))
        w2 = build_workload(get_spec("histogram"))
        assert w1.invocations(10) == w2.invocations(10)
