"""The ordering sanitizer: clean on every backend's honest runs, and
able to locate each class of ordering bug when one is re-introduced
(mutation tests over the satellite fixes of the verify layer)."""

from __future__ import annotations

import pytest

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.ir import AffineExpr, MemObject, RegionBuilder, Sym
from repro.ir.graph import MDEKind
from repro.memory import MemoryHierarchy
from repro.obs.tracer import TraceEvent, Tracer
from repro.obs import tracer as obs
from repro.sim import (
    DataflowEngine,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    SerialMemBackend,
    SpecLSQBackend,
    golden_execute,
)
from repro.verify import sanitize_trace
from repro.verify.sanitizer import (
    ACCESS_COUNT,
    COMPARATOR_VERDICT,
    CONFLICT_SEPARATION,
    EDGE_WAIT,
    FORWARD_SOURCE,
    INORDER_ISSUE,
    REPLAY_OBSERVES,
    SPURIOUS_VIOLATION,
)

BACKENDS = {
    "opt-lsq": OptLSQBackend,
    "spec-lsq": SpecLSQBackend,
    "serial-mem": SerialMemBackend,
    "nachos-sw": NachosSWBackend,
    "nachos": NachosBackend,
}
NEEDS_MDES = {"nachos-sw", "nachos"}


def _arr():
    return MemObject("a", 8192, base_addr=0x1000)


def _slow(b, x, n=6):
    v = x
    for _ in range(n):
        v = b.fdiv(v, x)
    return v


def conflict_region():
    """Slow older store, conflicting younger store, then a load."""
    a = _arr()
    b = RegionBuilder("conflict")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=_slow(b, x), width=8)
    b.store(a, AffineExpr.constant(4), value=x, width=8)
    b.load(a, AffineExpr.constant(0), width=8)
    return b.build()


def may_region():
    a = _arr()
    b = RegionBuilder("may")
    x = b.input("x")
    b.store(a, AffineExpr.of(syms={Sym("s1"): 8}), value=x, width=8)
    b.load(a, AffineExpr.of(syms={Sym("s2"): 4}), width=4)
    return b.build()


def traced(backend_name, envs, build_fn=conflict_region, backend=None):
    graph = build_fn()
    if backend_name in NEEDS_MDES:
        compile_region(graph)
    else:
        graph.clear_mdes()
    tracer = Tracer()
    engine = DataflowEngine(
        graph,
        place_region(graph),
        MemoryHierarchy(),
        backend if backend is not None else BACKENDS[backend_name](),
        tracer=tracer,
    )
    sim = engine.run(envs)
    golden = golden_execute(graph, envs)
    correct = golden.matches(sim.load_values, sim.memory_image)
    return graph, tracer, sim, correct


# ---------------------------------------------------------------------------
# Clean runs stay clean
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize(
    "build_fn,envs",
    [
        (conflict_region, [{}]),
        (may_region, [{"s1": 3, "s2": 6}, {"s1": 3, "s2": 1}]),
    ],
)
def test_sanitizer_clean_on_honest_backends(backend, build_fn, envs):
    graph, tracer, sim, correct = traced(backend, envs, build_fn)
    assert correct
    report = sanitize_trace(tracer.events, graph, sim.backend)
    assert report.ok, report.render()
    assert report.invocations == len(envs)
    assert sum(report.checks.values()) > 0


# ---------------------------------------------------------------------------
# Synthetic traces: each rule fires on its bug class
# ---------------------------------------------------------------------------
def two_store_graph():
    a = _arr()
    b = RegionBuilder("two-store")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=x, width=8)   # op 1
    b.store(a, AffineExpr.constant(4), value=x, width=8)   # op 2
    g = b.build()
    g.clear_mdes()
    return g


def _ev(kind, t, dur=0, inv=0, op=-1, args=None):
    return TraceEvent(kind, t, dur, inv, op, args)


def test_rule_access_count():
    g = two_store_graph()
    events = [_ev(obs.MEM_STORE, 0, 3, op=1, args={"addr": 0, "width": 8})]
    report = sanitize_trace(events, g, "serial-mem")
    assert [v.rule for v in report.violations] == [ACCESS_COUNT]
    assert report.violations[0].ops == (2,)


def test_rule_conflict_separation():
    g = two_store_graph()
    events = [
        _ev(obs.MEM_STORE, 0, 10, op=1, args={"addr": 0, "width": 8}),
        _ev(obs.MEM_STORE, 0, 10, op=2, args={"addr": 4, "width": 8}),
    ]
    report = sanitize_trace(events, g, "serial-mem")
    assert [v.rule for v in report.violations] == [CONFLICT_SEPARATION]
    assert report.violations[0].ops == (1, 2)
    # Strict inequality: one cycle of separation is enough.
    events[1] = _ev(obs.MEM_STORE, 0, 11, op=2, args={"addr": 4, "width": 8})
    assert sanitize_trace(events, g, "serial-mem").ok


def test_rule_conflict_separation_ignores_disjoint():
    g = two_store_graph()
    events = [
        _ev(obs.MEM_STORE, 0, 10, op=1, args={"addr": 0, "width": 4}),
        _ev(obs.MEM_STORE, 0, 5, op=2, args={"addr": 8, "width": 4}),
    ]
    assert sanitize_trace(events, g, "serial-mem").ok


def forward_graph():
    """ST exact / intervening partial ST / LD — forward legality cases."""
    a = _arr()
    b = RegionBuilder("fwd")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=x, width=8)   # op 1
    b.store(a, AffineExpr.constant(4), value=x, width=4)   # op 2
    b.load(a, AffineExpr.constant(0), width=8)             # op 4 (3 = value)
    g = b.build()
    g.clear_mdes()
    return g


def test_rule_forward_source():
    g = forward_graph()
    load = [op.op_id for op in g.memory_ops if op.is_load][0]
    base = [
        _ev(obs.MEM_STORE, 0, 5, op=1, args={"addr": 0, "width": 8}),
        _ev(obs.MEM_STORE, 10, 5, op=2, args={"addr": 4, "width": 4}),
    ]
    # Forward from op 1 skips the intervening overlapping store op 2.
    events = base + [
        _ev(obs.MEM_FORWARD, 20, op=load, args={"src": 1, "addr": 0, "width": 8})
    ]
    report = sanitize_trace(events, g, "opt-lsq")
    assert FORWARD_SOURCE in {v.rule for v in report.violations}
    # Forward from the youngest store whose range is not exact.
    events = base + [
        _ev(obs.MEM_FORWARD, 20, op=load, args={"src": 2, "addr": 0, "width": 8})
    ]
    report = sanitize_trace(events, g, "opt-lsq")
    assert FORWARD_SOURCE in {v.rule for v in report.violations}


def test_rule_inorder_issue():
    g = two_store_graph()
    events = [
        _ev(obs.MEM_STORE, 0, 3, op=1, args={"addr": 0, "width": 8}),
        _ev(obs.MEM_STORE, 5, 3, op=2, args={"addr": 16, "width": 8}),
        _ev(obs.LSQ_ENQUEUE, 0, op=2, args={"occupancy": 1, "bank": 0}),
        _ev(obs.LSQ_ENQUEUE, 1, op=1, args={"occupancy": 2, "bank": 0}),
    ]
    report = sanitize_trace(events, g, "opt-lsq")
    assert INORDER_ISSUE in {v.rule for v in report.violations}


def test_rule_replay_and_spurious_violation():
    g = two_store_graph()
    # A "violation" naming a store that had already published at the
    # speculative read — the strict-< tie-break bug's signature.
    events = [
        _ev(obs.MEM_STORE, 0, 10, op=1, args={"addr": 0, "width": 8}),
        _ev(obs.MEM_STORE, 11, 10, op=2, args={"addr": 4, "width": 8}),
        _ev(obs.SPECULATION, 10, op=99),
        _ev(obs.VIOLATION, 30, op=99, args={"stores": [1]}),
        _ev(obs.REPLAY, 30, op=99),
    ]
    report = sanitize_trace(events, g, "spec-lsq")
    rules = {v.rule for v in report.violations}
    assert SPURIOUS_VIOLATION in rules
    # A violation with no replay at all.
    events = [
        _ev(obs.MEM_STORE, 0, 10, op=1, args={"addr": 0, "width": 8}),
        _ev(obs.MEM_STORE, 11, 10, op=2, args={"addr": 4, "width": 8}),
        _ev(obs.VIOLATION, 30, op=99, args={"stores": [2]}),
    ]
    report = sanitize_trace(events, g, "spec-lsq")
    assert REPLAY_OBSERVES in {v.rule for v in report.violations}


# ---------------------------------------------------------------------------
# Mutation tests: re-introduced bugs are located
# ---------------------------------------------------------------------------
class NoOrderWait(NachosSWBackend):
    """Pretends every ORDER edge is resolved at invocation start."""

    def begin_invocation(self, inv, t0, addr_of):
        super().begin_invocation(inv, t0, addr_of)
        for e in self.graph.mdes:
            if e.kind is MDEKind.ORDER:
                self._resolved[(e.src, e.dst)] = t0


def test_mutation_disabled_order_wait_is_located():
    graph = conflict_region()
    compile_region(graph)
    edges = [(e.src, e.dst) for e in graph.mdes if e.kind is MDEKind.ORDER]
    assert edges, "expected an ORDER edge in the mutation region"
    tracer = Tracer()
    engine = DataflowEngine(
        graph, place_region(graph), MemoryHierarchy(), NoOrderWait(),
        tracer=tracer,
    )
    engine.run([{}])
    report = sanitize_trace(tracer.events, graph, "nachos-sw")
    assert not report.ok
    located = {v.ops[:2] for v in report.violations if v.rule == EDGE_WAIT}
    assert located & set(edges), report.render()


class LiarComparator(NachosBackend):
    """Reports every ==? check as non-conflicting."""

    def _run_check(self, edge, t):
        pair = (edge.src, edge.dst)
        if pair in self._resolved:
            return
        self.stats.comparator_checks += 1
        self._conflict[pair] = False
        if self._trace is not None:
            self._trace.emit(
                obs.COMPARATOR_CHECK, t, op=edge.dst,
                args={"src": edge.src, "conflict": False},
            )
        self._resolved[pair] = t
        self._retry(edge.dst, t)


def test_mutation_lying_comparator_is_located():
    graph = may_region()
    compile_region(graph)
    tracer = Tracer()
    engine = DataflowEngine(
        graph, place_region(graph), MemoryHierarchy(), LiarComparator(),
        tracer=tracer,
    )
    engine.run([{"s1": 2, "s2": 4}])  # store [16,24) vs load [16,20): conflict
    report = sanitize_trace(tracer.events, graph, "nachos")
    assert COMPARATOR_VERDICT in {v.rule for v in report.violations}


def test_mutation_stage3_forward_chain_pruning_is_caught():
    """Re-introduce the unsound stage-3 pruning (forwarding ST->LD edges
    treated as publish-ordering) and check the sanitizer flags the runs
    on the straddling forward-chain region."""
    import repro.compiler.aliasing.stage3 as stage3
    from repro.compiler.pipeline import AliasPipeline

    def build():
        a = _arr()
        b = RegionBuilder("fwd-chain-straddle")
        x = b.input("x")
        b.load(a, AffineExpr.constant(64))                  # warms line 1
        b.store(a, AffineExpr.constant(60), value=x)        # straddles, cold
        ld = b.load(a, AffineExpr.constant(60))             # FORWARD target
        v = b.add(ld, b.const(1))
        b.store(a, AffineExpr.constant(64), value=v, width=2)
        return b.build()

    orig = stage3.prune_stage3

    def unsound(graph, matrix, keep_st_ld_forwarding=True, exact_pairs=None):
        return orig(graph, matrix, keep_st_ld_forwarding, exact_pairs=None)

    import repro.compiler.pipeline as pipeline_mod

    pipeline_mod.prune_stage3 = unsound
    try:
        graph = build()
        AliasPipeline().run(graph)
        tracer = Tracer()
        engine = DataflowEngine(
            graph, place_region(graph), MemoryHierarchy(), NachosBackend(),
            tracer=tracer,
        )
        sim = engine.run([{}])
        golden = golden_execute(graph, [{}])
        report = sanitize_trace(tracer.events, graph, "nachos")
        assert not golden.matches(sim.load_values, sim.memory_image)
        assert CONFLICT_SEPARATION in {v.rule for v in report.violations}
    finally:
        pipeline_mod.prune_stage3 = orig

    # With the sound pruning the same region is ordered and clean.
    graph = build()
    AliasPipeline().run(graph)
    tracer = Tracer()
    engine = DataflowEngine(
        graph, place_region(graph), MemoryHierarchy(), NachosBackend(),
        tracer=tracer,
    )
    sim = engine.run([{}])
    assert golden_execute(graph, [{}]).matches(sim.load_values, sim.memory_image)
    assert sanitize_trace(tracer.events, graph, "nachos").ok
