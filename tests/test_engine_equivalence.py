"""Differential equivalence suite: reference vs fast vs fast-vector.

The fast engine (:class:`repro.sim.fast.FastEngine`) replays invocation
schedule templates instead of re-simulating the static compute subgraph
event by event; the fast-vector engine
(:class:`repro.sim.vector.VectorEngine`) adds the NumPy batch value
pass and guarded invocation replay on top.  The contract for both is
*byte-identity*: for any (region, backend, invocation stream),
``pickle.dumps(SimResult)`` must equal the reference engine's — same
cycles, load values, memory image, energy counts, cache stats, backend
stats, everything.  This suite enforces that contract over three
corpora:

* the full memory-ordering litmus suite (every pattern x every backend,
  multi-invocation so templates actually get replayed),
* a fixed-seed slice of the differential alias fuzzer's region
  generator (dense MAY graphs, late addresses, slow stores, ...),
* one real compiled region per SPEC benchmark, driven through
  ``run_system`` so the engine-mode cache-key plumbing is on the hook
  too (a cross-mode cache hit would make this test vacuous — and
  schema'd keys make it fail instead).

Plus the seams: mode resolution precedence, loud fallback, and the
fuzzer's ``engines="both"`` cross-check wiring.
"""

from __future__ import annotations

import pickle
import warnings

import pytest

from tests.test_litmus import BACKENDS, LITMUS, NEEDS_MDES

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.memory import MemoryHierarchy
from repro.obs.tracer import Tracer
from repro.sim import (
    DataflowEngine,
    EngineConfig,
    EngineModeFallback,
    FastEngine,
    make_engine,
    resolve_engine_mode,
)
from repro.sim.vector import VectorEngine
from repro.verify.fuzz import fuzz, generate_spec, run_spec_result
from repro.workloads.suite import benchmark_names

FUZZ_SEED = 0
FUZZ_SPECS = 200
FUZZ_CHUNK = 25

#: Template-based modes checked against the reference engine.
FAST_MODES = ("fast", "fast-vector")


def _result_bytes(build_fn, backend_name, envs, mode):
    """Pickled SimResult for one litmus pattern under one engine mode."""
    graph = build_fn()
    if backend_name in NEEDS_MDES:
        compile_region(graph)
    else:
        graph.clear_mdes()
    engine = make_engine(
        graph,
        place_region(graph),
        MemoryHierarchy(),
        BACKENDS[backend_name](),
        mode=mode,
    )
    return pickle.dumps(engine.run(envs))


# ---------------------------------------------------------------------------
# Corpus 1: litmus patterns
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("litmus", sorted(LITMUS))
def test_litmus_equivalence(backend, litmus):
    build_fn, envs = LITMUS[litmus]
    # x3 invocations: the template is captured on the first and
    # *replayed* on the rest, so single-invocation runs would never
    # exercise the replay path.
    envs = envs * 3
    ref = _result_bytes(build_fn, backend, envs, "reference")
    for mode in FAST_MODES:
        fast = _result_bytes(build_fn, backend, envs, mode)
        assert ref == fast, f"{litmus}/{backend}/{mode}: SimResults diverge"


# ---------------------------------------------------------------------------
# Corpus 2: fuzzer regions (fixed seed => fixed corpus)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("chunk", range(FUZZ_SPECS // FUZZ_CHUNK))
def test_fuzz_corpus_equivalence(chunk):
    for index in range(chunk * FUZZ_CHUNK, (chunk + 1) * FUZZ_CHUNK):
        spec = generate_spec(FUZZ_SEED, index)
        for system in sorted(BACKENDS):
            ref = run_spec_result(spec, system, "reference")
            for mode in FAST_MODES:
                fast = run_spec_result(spec, system, mode)
                assert ref == fast, (
                    f"{spec.name}/{system}/{mode}: SimResults diverge"
                )


def test_fuzz_engines_both_wiring():
    """``fuzz(engines='both')`` doubles the run count and stays clean."""
    result = fuzz(5, seed=3, engines="both", shrink_failures=False)
    assert result.ok, [f.describe() for f in result.failures]
    assert result.runs == 5 * len(BACKENDS) * 2


def test_fuzz_engines_all_wiring():
    """``fuzz(engines='all')`` triples the run count (3-way check)."""
    result = fuzz(5, seed=3, engines="all", shrink_failures=False)
    assert result.ok, [f.describe() for f in result.failures]
    assert result.runs == 5 * len(BACKENDS) * 3


def test_fuzz_engines_rejects_unknown():
    with pytest.raises(ValueError, match="engines"):
        fuzz(1, engines="fast")


# ---------------------------------------------------------------------------
# Corpus 3: real compiled regions through run_system (cache-key plumbing)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("bench", benchmark_names())
def test_real_region_equivalence(bench):
    from repro.experiments.common import run_system
    from repro.workloads.generator import build_workload
    from repro.workloads.suite import get_spec

    workload = build_workload(get_spec(bench), path_index=0)
    for system in sorted(BACKENDS):
        ref = run_system(
            workload, system, invocations=4,
            engine_config=EngineConfig(mode="reference"),
        )
        for mode in FAST_MODES:
            fast = run_system(
                workload, system, invocations=4,
                engine_config=EngineConfig(mode=mode),
            )
            assert pickle.dumps(ref.sim) == pickle.dumps(fast.sim), (
                f"{bench}/{system}/{mode}: SimResults diverge"
            )
            assert fast.correct


# ---------------------------------------------------------------------------
# Mode resolution and fallback seams
# ---------------------------------------------------------------------------
def _micro_engine_parts():
    build_fn, envs = LITMUS["forwarding_chain"]
    graph = build_fn()
    graph.clear_mdes()
    return graph, place_region(graph), MemoryHierarchy(), BACKENDS["opt-lsq"]()


def test_mode_precedence_config_beats_env(monkeypatch):
    monkeypatch.setenv("NACHOS_ENGINE", "fast")
    assert resolve_engine_mode(EngineConfig(mode="reference")) == "reference"
    assert resolve_engine_mode(EngineConfig()) == "fast"
    monkeypatch.delenv("NACHOS_ENGINE")
    assert resolve_engine_mode(EngineConfig()) == "reference"
    assert resolve_engine_mode(None) == "reference"


def test_mode_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError, match="unknown engine mode"):
        resolve_engine_mode(EngineConfig(mode="turbo"))
    monkeypatch.setenv("NACHOS_ENGINE", "warp")
    with pytest.raises(ValueError, match="unknown engine mode"):
        resolve_engine_mode(None)


def test_make_engine_builds_requested_class():
    graph, placement, hierarchy, backend = _micro_engine_parts()
    eng = make_engine(graph, placement, hierarchy, backend, mode="fast")
    assert type(eng) is FastEngine
    graph, placement, hierarchy, backend = _micro_engine_parts()
    eng = make_engine(graph, placement, hierarchy, backend, mode="fast-vector")
    assert type(eng) is VectorEngine
    graph, placement, hierarchy, backend = _micro_engine_parts()
    eng = make_engine(graph, placement, hierarchy, backend, mode="reference")
    assert type(eng) is DataflowEngine


@pytest.mark.parametrize("mode", FAST_MODES)
def test_fast_with_tracer_falls_back_loudly(mode):
    graph, placement, hierarchy, backend = _micro_engine_parts()
    with pytest.warns(EngineModeFallback, match="tracing"):
        eng = make_engine(
            graph, placement, hierarchy, backend, tracer=Tracer(), mode=mode
        )
    assert type(eng) is DataflowEngine


@pytest.mark.parametrize("mode", FAST_MODES)
def test_fast_with_link_contention_falls_back_loudly(mode):
    graph, placement, hierarchy, backend = _micro_engine_parts()
    cfg = EngineConfig(mode=mode, model_link_contention=True)
    with pytest.warns(EngineModeFallback, match="contention"):
        eng = make_engine(graph, placement, hierarchy, backend, config=cfg)
    assert type(eng) is DataflowEngine


@pytest.mark.parametrize("cls", [FastEngine, VectorEngine])
def test_fast_engine_direct_construction_refuses_tracer(cls):
    graph, placement, hierarchy, backend = _micro_engine_parts()
    with pytest.raises(ValueError):
        cls(graph, placement, hierarchy, backend, tracer=Tracer())


def test_disabled_tracer_does_not_trigger_fallback():
    graph, placement, hierarchy, backend = _micro_engine_parts()
    tracer = Tracer()
    tracer.enabled = False
    with warnings.catch_warnings():
        warnings.simplefilter("error", EngineModeFallback)
        eng = make_engine(
            graph, placement, hierarchy, backend, tracer=tracer, mode="fast"
        )
    assert type(eng) is FastEngine


def test_env_mode_reaches_run_system(monkeypatch):
    """$NACHOS_ENGINE alone must steer run_system (and its cache key)."""
    from repro.experiments.common import run_system
    from repro.workloads.micro import build_micro

    workload = build_micro("gather")
    ref = run_system(workload, "nachos", invocations=3)
    for mode in FAST_MODES:
        monkeypatch.setenv("NACHOS_ENGINE", mode)
        fast = run_system(workload, "nachos", invocations=3)
        assert pickle.dumps(ref.sim) == pickle.dumps(fast.sim), mode


# ---------------------------------------------------------------------------
# Fast-vector seams: replay instrumentation, batch values, fallbacks
# ---------------------------------------------------------------------------
def _vector_parts(litmus="forwarding_chain", backend="opt-lsq"):
    build_fn, envs = LITMUS[litmus]
    graph = build_fn()
    if backend in NEEDS_MDES:
        compile_region(graph)
    else:
        graph.clear_mdes()
    return graph, place_region(graph), envs


def test_vector_replay_actually_fires():
    """Repeated invocations must be served by guarded replay, and the
    cold->warm hierarchy transition must register as a divergence that
    re-captures (never as silent wrong results)."""
    graph, placement, envs = _vector_parts()
    engine = VectorEngine(
        graph, placement, MemoryHierarchy(), BACKENDS["opt-lsq"]()
    )
    result = engine.run(envs * 6)
    st = engine.vector_stats
    assert st["invocations"] == 6 * len(envs)
    assert st["captured"] >= 1
    assert st["replayed"] >= 3
    assert st["ops_vectorized"] > 0
    # Byte-identity with the reference engine on the same stream.
    graph2, placement2, _ = _vector_parts()
    ref = DataflowEngine(
        graph2, placement2, MemoryHierarchy(), BACKENDS["opt-lsq"]()
    )
    assert pickle.dumps(ref.run(envs * 6)) == pickle.dumps(result)


def test_vector_recorder_falls_back_per_invocation():
    """A timeline recorder forces the per-event path (which feeds it)
    while staying byte-exact with the reference engine's recording."""
    from repro.sim.timeline import TimelineRecorder

    graph, placement, envs = _vector_parts()
    vec_rec = TimelineRecorder()
    engine = VectorEngine(
        graph, placement, MemoryHierarchy(), BACKENDS["opt-lsq"](),
        recorder=vec_rec,
    )
    vec = engine.run(envs * 3)
    st = engine.vector_stats
    assert st["replayed"] == 0
    assert st["fallback_reasons"].get("recorder") == 3 * len(envs)

    graph2, placement2, _ = _vector_parts()
    ref_rec = TimelineRecorder()
    ref_engine = DataflowEngine(
        graph2, placement2, MemoryHierarchy(), BACKENDS["opt-lsq"](),
        recorder=ref_rec,
    )
    ref = ref_engine.run(envs * 3)
    assert pickle.dumps(ref) == pickle.dumps(vec)
    assert len(vec_rec.invocations) == len(ref_rec.invocations)


def test_vector_backend_opaque_signature_falls_back():
    """A backend whose replay_signature is None never replays (and the
    engine still matches the per-event result bit-for-bit)."""
    graph, placement, envs = _vector_parts()
    backend = BACKENDS["opt-lsq"]()
    backend.replay_signature = lambda addr_of: None
    engine = VectorEngine(graph, placement, MemoryHierarchy(), backend)
    result = engine.run(envs * 3)
    st = engine.vector_stats
    assert st["replayed"] == 0
    assert st["fallback_reasons"].get("backend-opaque") == 3 * len(envs)

    graph2, placement2, _ = _vector_parts()
    ref = DataflowEngine(
        graph2, placement2, MemoryHierarchy(), BACKENDS["opt-lsq"]()
    )
    assert pickle.dumps(ref.run(envs * 3)) == pickle.dumps(result)


def test_vector_batch_values_match_scalar_mix():
    """mix_array is lane-for-lane bit-exact with mix (the batch value
    pass depends on it)."""
    import numpy as np

    from repro.sim.values import mix, mix_array

    invs = np.arange(257, dtype=np.uint64)
    batch = mix_array(0x1F, 42, invs)
    for inv in (0, 1, 2, 100, 256):
        assert int(batch[inv]) == mix(0x1F, 42, inv)
    nested = mix_array(7, batch, mix_array(9, invs))
    for inv in (0, 3, 255):
        assert int(nested[inv]) == mix(7, mix(0x1F, 42, inv), mix(9, inv))


def test_vector_profile_counters_recorded():
    """With profiling enabled, a fast-vector run reports batch-vs-
    fallback telemetry; with it disabled, nothing is recorded."""
    from repro.obs.profile import enable_profiling, get_profile, reset_profile

    graph, placement, envs = _vector_parts()
    engine = VectorEngine(
        graph, placement, MemoryHierarchy(), BACKENDS["opt-lsq"]()
    )
    reset_profile()
    try:
        engine.run(envs * 2)
        assert not get_profile().vectors  # disabled: zero overhead path
        enable_profiling()
        graph2, placement2, _ = _vector_parts()
        engine = VectorEngine(
            graph2, placement2, MemoryHierarchy(), BACKENDS["opt-lsq"]()
        )
        engine.run(envs * 2)
        records = get_profile().vectors
        assert len(records) == 1
        assert records[0].system == "opt-lsq"
        assert records[0].invocations == 2 * len(envs)
        rollup = get_profile().vector_rollup()
        assert records[0].region in rollup
    finally:
        reset_profile()
        get_profile().enabled = False
