"""Differential equivalence suite: reference engine vs fast engine.

The fast engine (:class:`repro.sim.fast.FastEngine`) replays invocation
schedule templates instead of re-simulating the static compute subgraph
event by event.  Its contract is *byte-identity*: for any (region,
backend, invocation stream), ``pickle.dumps(SimResult)`` must equal the
reference engine's — same cycles, load values, memory image, energy
counts, cache stats, backend stats, everything.  This suite enforces
that contract over three corpora:

* the full memory-ordering litmus suite (every pattern x every backend,
  multi-invocation so templates actually get replayed),
* a fixed-seed slice of the differential alias fuzzer's region
  generator (dense MAY graphs, late addresses, slow stores, ...),
* one real compiled region per SPEC benchmark, driven through
  ``run_system`` so the engine-mode cache-key plumbing is on the hook
  too (a cross-mode cache hit would make this test vacuous — and
  schema'd keys make it fail instead).

Plus the seams: mode resolution precedence, loud fallback, and the
fuzzer's ``engines="both"`` cross-check wiring.
"""

from __future__ import annotations

import pickle
import warnings

import pytest

from tests.test_litmus import BACKENDS, LITMUS, NEEDS_MDES

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.memory import MemoryHierarchy
from repro.obs.tracer import Tracer
from repro.sim import (
    DataflowEngine,
    EngineConfig,
    EngineModeFallback,
    FastEngine,
    make_engine,
    resolve_engine_mode,
)
from repro.verify.fuzz import fuzz, generate_spec, run_spec_result
from repro.workloads.suite import benchmark_names

FUZZ_SEED = 0
FUZZ_SPECS = 200
FUZZ_CHUNK = 25


def _result_bytes(build_fn, backend_name, envs, mode):
    """Pickled SimResult for one litmus pattern under one engine mode."""
    graph = build_fn()
    if backend_name in NEEDS_MDES:
        compile_region(graph)
    else:
        graph.clear_mdes()
    engine = make_engine(
        graph,
        place_region(graph),
        MemoryHierarchy(),
        BACKENDS[backend_name](),
        mode=mode,
    )
    return pickle.dumps(engine.run(envs))


# ---------------------------------------------------------------------------
# Corpus 1: litmus patterns
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("litmus", sorted(LITMUS))
def test_litmus_equivalence(backend, litmus):
    build_fn, envs = LITMUS[litmus]
    # x3 invocations: the template is captured on the first and
    # *replayed* on the rest, so single-invocation runs would never
    # exercise the replay path.
    envs = envs * 3
    ref = _result_bytes(build_fn, backend, envs, "reference")
    fast = _result_bytes(build_fn, backend, envs, "fast")
    assert ref == fast, f"{litmus}/{backend}: SimResults diverge"


# ---------------------------------------------------------------------------
# Corpus 2: fuzzer regions (fixed seed => fixed corpus)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("chunk", range(FUZZ_SPECS // FUZZ_CHUNK))
def test_fuzz_corpus_equivalence(chunk):
    for index in range(chunk * FUZZ_CHUNK, (chunk + 1) * FUZZ_CHUNK):
        spec = generate_spec(FUZZ_SEED, index)
        for system in sorted(BACKENDS):
            ref = run_spec_result(spec, system, "reference")
            fast = run_spec_result(spec, system, "fast")
            assert ref == fast, f"{spec.name}/{system}: SimResults diverge"


def test_fuzz_engines_both_wiring():
    """``fuzz(engines='both')`` doubles the run count and stays clean."""
    result = fuzz(5, seed=3, engines="both", shrink_failures=False)
    assert result.ok, [f.describe() for f in result.failures]
    assert result.runs == 5 * len(BACKENDS) * 2


def test_fuzz_engines_rejects_unknown():
    with pytest.raises(ValueError, match="engines"):
        fuzz(1, engines="fast")


# ---------------------------------------------------------------------------
# Corpus 3: real compiled regions through run_system (cache-key plumbing)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("bench", benchmark_names())
def test_real_region_equivalence(bench):
    from repro.experiments.common import run_system
    from repro.workloads.generator import build_workload
    from repro.workloads.suite import get_spec

    workload = build_workload(get_spec(bench), path_index=0)
    for system in sorted(BACKENDS):
        ref = run_system(
            workload, system, invocations=4,
            engine_config=EngineConfig(mode="reference"),
        )
        fast = run_system(
            workload, system, invocations=4,
            engine_config=EngineConfig(mode="fast"),
        )
        assert pickle.dumps(ref.sim) == pickle.dumps(fast.sim), (
            f"{bench}/{system}: SimResults diverge"
        )
        assert fast.correct


# ---------------------------------------------------------------------------
# Mode resolution and fallback seams
# ---------------------------------------------------------------------------
def _micro_engine_parts():
    build_fn, envs = LITMUS["forwarding_chain"]
    graph = build_fn()
    graph.clear_mdes()
    return graph, place_region(graph), MemoryHierarchy(), BACKENDS["opt-lsq"]()


def test_mode_precedence_config_beats_env(monkeypatch):
    monkeypatch.setenv("NACHOS_ENGINE", "fast")
    assert resolve_engine_mode(EngineConfig(mode="reference")) == "reference"
    assert resolve_engine_mode(EngineConfig()) == "fast"
    monkeypatch.delenv("NACHOS_ENGINE")
    assert resolve_engine_mode(EngineConfig()) == "reference"
    assert resolve_engine_mode(None) == "reference"


def test_mode_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError, match="unknown engine mode"):
        resolve_engine_mode(EngineConfig(mode="turbo"))
    monkeypatch.setenv("NACHOS_ENGINE", "warp")
    with pytest.raises(ValueError, match="unknown engine mode"):
        resolve_engine_mode(None)


def test_make_engine_builds_requested_class():
    graph, placement, hierarchy, backend = _micro_engine_parts()
    eng = make_engine(graph, placement, hierarchy, backend, mode="fast")
    assert type(eng) is FastEngine
    graph, placement, hierarchy, backend = _micro_engine_parts()
    eng = make_engine(graph, placement, hierarchy, backend, mode="reference")
    assert type(eng) is DataflowEngine


def test_fast_with_tracer_falls_back_loudly():
    graph, placement, hierarchy, backend = _micro_engine_parts()
    with pytest.warns(EngineModeFallback, match="tracing"):
        eng = make_engine(
            graph, placement, hierarchy, backend, tracer=Tracer(), mode="fast"
        )
    assert type(eng) is DataflowEngine


def test_fast_with_link_contention_falls_back_loudly():
    graph, placement, hierarchy, backend = _micro_engine_parts()
    cfg = EngineConfig(mode="fast", model_link_contention=True)
    with pytest.warns(EngineModeFallback, match="contention"):
        eng = make_engine(graph, placement, hierarchy, backend, config=cfg)
    assert type(eng) is DataflowEngine


def test_fast_engine_direct_construction_refuses_tracer():
    graph, placement, hierarchy, backend = _micro_engine_parts()
    with pytest.raises(ValueError):
        FastEngine(graph, placement, hierarchy, backend, tracer=Tracer())


def test_disabled_tracer_does_not_trigger_fallback():
    graph, placement, hierarchy, backend = _micro_engine_parts()
    tracer = Tracer()
    tracer.enabled = False
    with warnings.catch_warnings():
        warnings.simplefilter("error", EngineModeFallback)
        eng = make_engine(
            graph, placement, hierarchy, backend, tracer=tracer, mode="fast"
        )
    assert type(eng) is FastEngine


def test_env_mode_reaches_run_system(monkeypatch):
    """$NACHOS_ENGINE alone must steer run_system (and its cache key)."""
    from repro.experiments.common import run_system
    from repro.workloads.micro import build_micro

    workload = build_micro("gather")
    ref = run_system(workload, "nachos", invocations=3)
    monkeypatch.setenv("NACHOS_ENGINE", "fast")
    fast = run_system(workload, "nachos", invocations=3)
    assert pickle.dumps(ref.sim) == pickle.dumps(fast.sim)
