"""Tests for the statistics helpers and the all-paths extension."""

import pytest

from repro.analysis.stats import geomean, mean, percentile, weighted_mean


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([5]) == pytest.approx(5.0)
        assert geomean([]) == 0.0

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1, 0])
        with pytest.raises(ValueError):
            geomean([-1])

    def test_weighted_mean(self):
        assert weighted_mean([10, 20], [1, 3]) == pytest.approx(17.5)
        assert weighted_mean([5], [0]) == 0.0

    def test_weighted_mean_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1], [1, 2])

    def test_percentile(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 50) == 3
        assert percentile(data, 100) == 5

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestAllPaths:
    def test_small_corpus_runs(self):
        from repro.experiments import allpaths

        result = allpaths.run(invocations=4, top_k=2)
        assert len(result.rows) == 27
        assert result.all_correct
        out = allpaths.render(result)
        assert "54 regions" in out

    def test_slowdown_group_stable_across_paths(self):
        from repro.experiments import allpaths

        result = allpaths.run(invocations=4, top_k=2)
        slow = set(result.slowdown_group)
        assert {"soplex", "povray", "fft-2d"} <= slow

    def test_nachos_weighted_tracks_lsq(self):
        from repro.experiments import allpaths

        result = allpaths.run(invocations=4, top_k=2)
        assert max(r.nachos_weighted_pct for r in result.rows) < 15.0
