"""Tests for the host model and offload planner."""

import pytest

from repro.offload import HostCoreModel, plan_offload
from repro.offload.planner import OffloadPlan, PathDecision
from repro.workloads import build_workload, get_spec
from tests.conftest import build_simple_region


class TestHostCoreModel:
    def test_cycles_scale_with_ops(self):
        host = HostCoreModel.paper_default()
        small = build_workload(get_spec("gzip")).graph
        big = build_workload(get_spec("equake")).graph
        assert host.invocation_cycles(big) > host.invocation_cycles(small)

    def test_fp_costs_extra(self):
        from repro.ir import RegionBuilder

        host = HostCoreModel.paper_default()
        b1 = RegionBuilder()
        x = b1.input("x")
        for _ in range(10):
            x = b1.add(x, x)
        int_graph = b1.build()
        b2 = RegionBuilder()
        y = b2.input("y")
        for _ in range(10):
            y = b2.fadd(y, y)
        fp_graph = b2.build()
        assert host.invocation_cycles(fp_graph) > host.invocation_cycles(int_graph)

    def test_miss_rate_override(self):
        host = HostCoreModel.paper_default()
        g = build_simple_region()
        assert host.invocation_cycles(g, miss_rate=1.0) > host.invocation_cycles(
            g, miss_rate=0.0
        )

    def test_energy_excludes_plumbing(self):
        from repro.ir import RegionBuilder

        host = HostCoreModel()
        b = RegionBuilder()
        x = b.input("x")
        c = b.const(0)
        s = b.add(x, c)
        g = b.build()
        assert host.invocation_energy(g) == host.energy_per_op_fj  # only the add


class _FakePath:
    def __init__(self, name, weight, graph):
        self.name = name
        self.weight = weight
        self.graph = graph


class TestPlanner:
    def _paths(self):
        g = build_simple_region()
        return [_FakePath("p0", 0.5, g), _FakePath("p1", 0.3, g)]

    def test_edp_decision(self):
        paths = self._paths()
        host = HostCoreModel.paper_default()
        hc = host.invocation_cycles(paths[0].graph)
        he = host.invocation_energy(paths[0].graph)
        # p0: tiny energy -> offload despite slower; p1: terrible both ways.
        plan = plan_offload(
            paths,
            accel_cycles={"p0": hc * 1.5, "p1": hc * 3},
            accel_energy={"p0": he * 0.1, "p1": he * 2},
            host=host,
            fence_cycles=0.0,
        )
        d = {x.path: x for x in plan.decisions}
        assert d["p0"].offload
        assert not d["p1"].offload
        assert plan.covered_weight == pytest.approx(0.5)

    def test_program_speedup_amdahl(self):
        plan = OffloadPlan(
            decisions=[
                PathDecision("p", 0.5, 100, 50, 1.0, 0.5, offload=True),
                PathDecision("q", 0.3, 100, 200, 1.0, 2.0, offload=False),
            ]
        )
        # new time = 0.5/2 + 0.3 + 0.2 residue = 0.75
        assert plan.program_speedup() == pytest.approx(1 / 0.75)

    def test_program_energy_ratio(self):
        plan = OffloadPlan(
            decisions=[
                PathDecision("p", 0.5, 100, 50, 100.0, 10.0, offload=True),
            ]
        )
        # 0.5*0.1 + 0.5 residue = 0.55
        assert plan.program_energy_ratio() == pytest.approx(0.55)

    def test_fence_cost_discourages_tiny_paths(self):
        paths = [self._paths()[0]]
        host = HostCoreModel.paper_default()
        hc = host.invocation_cycles(paths[0].graph)
        he = host.invocation_energy(paths[0].graph)
        cheap = plan_offload(
            paths, {"p0": hc}, {"p0": he * 0.9}, host=host, fence_cycles=0.0
        )
        dear = plan_offload(
            paths, {"p0": hc}, {"p0": he * 0.9}, host=host,
            fence_cycles=hc * 10,
        )
        assert cheap.decisions[0].offload
        assert not dear.decisions[0].offload


class TestOffloadStudy:
    def test_runs_and_favors_offload(self):
        from repro.experiments import offload_study

        result = offload_study.run(invocations=4, top_k=1)
        assert len(result.rows) == 27
        assert result.all_offload_something
        # Accelerators exist for energy: the program energy drops.
        assert result.mean_program_energy_ratio < 0.85
        assert "Offload study" in offload_study.render(result)
