"""Property-based tests (hypothesis) on the core invariants.

The central contract: *any* region graph, compiled by the pipeline and
executed by any of the three backends over any trace, must produce the
same load values and final memory image as strict program-order
execution.  Alongside it: soundness of the alias labels themselves and
algebraic properties of the symbolic layer.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.cgra.placement import place_region
from repro.compiler import AliasLabel, compile_region
from repro.compiler.aliasing.symbolic import compare_offsets
from repro.ir import (
    AddressExpr,
    AffineExpr,
    IVar,
    MemObject,
    PointerParam,
    RegionBuilder,
    Sym,
)
from repro.memory import MemoryHierarchy
from repro.sim import (
    DataflowEngine,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    golden_execute,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

IVARS = [IVar("i", 8), IVar("j", 6)]
SYMS = [Sym("s0"), Sym("s1")]


@st.composite
def affine_exprs(draw, allow_syms: bool = True):
    const = draw(st.integers(min_value=0, max_value=96))
    ivs = {}
    for iv in IVARS:
        coeff = draw(st.sampled_from([0, 0, 8, 16, -8]))
        if coeff:
            ivs[iv] = coeff
    syms = {}
    if allow_syms and draw(st.booleans()):
        syms[draw(st.sampled_from(SYMS))] = 8
    # Keep addresses inside the object.
    return AffineExpr.of(const=const + 256, ivs=ivs, syms=syms)


@st.composite
def regions(draw):
    """A random small region with a mix of alias mechanisms."""
    objects = [
        MemObject("o0", 4096, base_addr=0x1000),
        MemObject("o1", 4096, base_addr=0x3000),
    ]
    opaque_target = MemObject("t", 4096, base_addr=0x5000)
    params = [
        PointerParam("p0", runtime_object=opaque_target, provenance=None),
        PointerParam("p1", runtime_object=objects[0], provenance=objects[0]),
    ]
    bases = objects + params

    b = RegionBuilder("prop")
    x = b.input("x")
    values = [x]
    n_mem = draw(st.integers(min_value=2, max_value=8))
    for _ in range(n_mem):
        base = draw(st.sampled_from(bases))
        offset = draw(affine_exprs())
        width = draw(st.sampled_from([4, 8]))
        if draw(st.booleans()):
            value = draw(st.sampled_from(values))
            b.store_addr(AddressExpr(base, offset, width), value=value)
        else:
            ld = b.load_addr(AddressExpr(base, offset, width))
            values.append(ld)
            if draw(st.booleans()) and len(values) >= 2:
                values.append(b.add(values[-1], values[-2]))
    return b.build()


@st.composite
def envs(draw, n: int):
    out = []
    for _ in range(n):
        env = {iv.name: draw(st.integers(0, iv.trip_count - 1)) for iv in IVARS}
        for s in SYMS:
            env[s.name] = draw(st.integers(0, 40))
        out.append(env)
    return out


def _run(graph, backend):
    engine = DataflowEngine(
        graph, place_region(graph), MemoryHierarchy(), backend
    )
    return engine


# ---------------------------------------------------------------------------
# The correctness contract
# ---------------------------------------------------------------------------


class TestBackendCorrectness:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_nachos_matches_oracle(self, data):
        graph = data.draw(regions())
        compile_region(graph)
        trace = data.draw(envs(3))
        result = _run(graph, NachosBackend()).run(trace)
        golden = golden_execute(graph, trace)
        assert golden.matches(result.load_values, result.memory_image)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_nachos_sw_matches_oracle(self, data):
        graph = data.draw(regions())
        compile_region(graph)
        trace = data.draw(envs(3))
        result = _run(graph, NachosSWBackend()).run(trace)
        golden = golden_execute(graph, trace)
        assert golden.matches(result.load_values, result.memory_image)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_opt_lsq_matches_oracle(self, data):
        graph = data.draw(regions())
        graph.clear_mdes()
        trace = data.draw(envs(3))
        result = _run(graph, OptLSQBackend()).run(trace)
        golden = golden_execute(graph, trace)
        assert golden.matches(result.load_values, result.memory_image)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_spec_lsq_matches_oracle(self, data):
        from repro.sim import SpecLSQBackend

        graph = data.draw(regions())
        graph.clear_mdes()
        trace = data.draw(envs(3))
        result = _run(graph, SpecLSQBackend()).run(trace)
        golden = golden_execute(graph, trace)
        assert golden.matches(result.load_values, result.memory_image)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_serial_mem_matches_oracle(self, data):
        from repro.sim import SerialMemBackend

        graph = data.draw(regions())
        graph.clear_mdes()
        trace = data.draw(envs(3))
        result = _run(graph, SerialMemBackend()).run(trace)
        golden = golden_execute(graph, trace)
        assert golden.matches(result.load_values, result.memory_image)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_engine_is_deterministic(self, data):
        graph1 = data.draw(regions())
        trace = data.draw(envs(2))
        compile_region(graph1)
        r1 = _run(graph1, NachosBackend()).run(trace)
        r2 = _run(graph1, NachosBackend()).run(trace)
        assert r1.cycles == r2.cycles
        assert r1.load_values == r2.load_values
        assert r1.total_energy == r2.total_energy


# ---------------------------------------------------------------------------
# Alias label soundness
# ---------------------------------------------------------------------------


def _overlap(a: AddressExpr, b: AddressExpr, env) -> bool:
    x = a.evaluate(env)
    y = b.evaluate(env)
    return x < y + b.width and y < x + a.width


def _all_envs():
    for vi in IVARS[0].domain:
        for vj in IVARS[1].domain:
            yield {IVARS[0].name: vi, IVARS[1].name: vj}


class TestAliasSoundness:
    @settings(max_examples=150, deadline=None)
    @given(
        oa=affine_exprs(allow_syms=False),
        ob=affine_exprs(allow_syms=False),
        wa=st.sampled_from([4, 8]),
        wb=st.sampled_from([4, 8]),
        multi=st.booleans(),
    )
    def test_compare_offsets_sound(self, oa, ob, wa, wb, multi):
        """NO => never overlaps; MUST => always overlaps."""
        obj = MemObject("o", 1 << 16)
        a = AddressExpr(obj, oa, wa)
        b = AddressExpr(obj, ob, wb)
        rel = compare_offsets(a, b, single_iv_only=not multi)
        overlaps = [_overlap(a, b, env) for env in _all_envs()]
        if rel.label is AliasLabel.NO:
            assert not any(overlaps)
        elif rel.label is AliasLabel.MUST:
            assert all(overlaps)
        if rel.exact:
            assert wa == wb
            assert all(
                a.evaluate(env) == b.evaluate(env) for env in _all_envs()
            )

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_pipeline_labels_sound_at_runtime(self, data):
        """A NO label must never conflict in any concrete invocation."""
        graph = data.draw(regions())
        result = compile_region(graph)
        ops = {op.op_id: op for op in graph.memory_ops}
        trace = data.draw(envs(3))
        for (older, younger), label in result.final_labels:
            if label is not AliasLabel.NO:
                continue
            for env in trace:
                assert not _overlap(ops[older].addr, ops[younger].addr, env)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_stage_refinement_monotone(self, data):
        graph = data.draw(regions())
        result = compile_region(graph)
        for pair, label in result.stage1:
            if label is not AliasLabel.MAY:
                assert result.final_labels.get(*pair) is label, pair

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_labels_partition_the_universe(self, data):
        graph = data.draw(regions())
        result = compile_region(graph)
        counts = result.final_labels.counts()
        assert sum(counts.values()) == result.total_pairs


# ---------------------------------------------------------------------------
# Stage 3 / MDE structural invariants
# ---------------------------------------------------------------------------


class TestEnforcementInvariants:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_mdes_are_older_to_younger(self, data):
        graph = data.draw(regions())
        result = compile_region(graph)
        for edge in result.mdes:
            assert edge.src < edge.dst

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_every_conflicting_pair_is_ordered(self, data):
        """Each MUST/MAY pair is either an MDE or transitively ordered
        by data edges + MUST MDEs (the guaranteed-order graph)."""
        graph = data.draw(regions())
        result = compile_region(graph)
        ordered = graph.full_reachability()  # data + installed MDEs
        for (older, younger), label in result.final_labels:
            if label is AliasLabel.NO:
                continue
            assert younger in ordered[older], (older, younger, label)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_graph_with_mdes_still_validates(self, data):
        graph = data.draw(regions())
        compile_region(graph)
        graph.validate()


# ---------------------------------------------------------------------------
# Symbolic algebra
# ---------------------------------------------------------------------------


class TestAffineAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(a=affine_exprs(), b=affine_exprs(), env_seed=st.integers(0, 5))
    def test_addition_commutes_pointwise(self, a, b, env_seed):
        env = {
            IVARS[0].name: env_seed,
            IVARS[1].name: (env_seed * 3) % IVARS[1].trip_count,
            SYMS[0].name: env_seed + 1,
            SYMS[1].name: env_seed + 2,
        }
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)
        assert (a + b).evaluate(env) == (b + a).evaluate(env)

    @settings(max_examples=100, deadline=None)
    @given(a=affine_exprs())
    def test_self_subtraction_is_zero(self, a):
        assert (a - a).is_constant
        assert (a - a).const == 0

    @settings(max_examples=100, deadline=None)
    @given(a=affine_exprs(allow_syms=False))
    def test_bounds_contain_all_values(self, a):
        lo, hi = a.bounds()
        for env in _all_envs():
            assert lo <= a.evaluate(env) <= hi
