"""Unit tests for symbolic address expressions."""

import pytest

from repro.ir.address import (
    AddressExpr,
    AffineExpr,
    IVar,
    MemObject,
    MemorySpace,
    PointerParam,
    Sym,
)


class TestMemObject:
    def test_basic_fields(self):
        obj = MemObject("arr", 4096, MemorySpace.HEAP, base_addr=0x1000)
        assert obj.name == "arr"
        assert obj.size == 4096
        assert not obj.is_local

    def test_uids_are_unique(self):
        a = MemObject("x", 64)
        b = MemObject("x", 64)
        assert a.uid != b.uid

    def test_contains(self):
        obj = MemObject("arr", 100, base_addr=1000)
        assert obj.contains(1000)
        assert obj.contains(1099)
        assert not obj.contains(1100)
        assert not obj.contains(999)

    def test_stack_objects_are_local(self):
        obj = MemObject("frame", 64, MemorySpace.STACK)
        assert obj.is_local

    def test_scratchpad_objects_are_local(self):
        obj = MemObject("spad", 64, MemorySpace.SCRATCHPAD)
        assert obj.is_local

    def test_global_objects_are_not_local(self):
        obj = MemObject("g", 64, MemorySpace.GLOBAL)
        assert not obj.is_local

    @pytest.mark.parametrize("size", [0, -1])
    def test_rejects_nonpositive_size(self, size):
        with pytest.raises(ValueError):
            MemObject("bad", size)

    def test_rejects_nonpositive_element_size(self):
        with pytest.raises(ValueError):
            MemObject("bad", 64, element_size=0)


class TestPointerParam:
    def test_provenance_defaults_to_unknown(self):
        obj = MemObject("t", 64)
        p = PointerParam("p", runtime_object=obj)
        assert p.provenance is None
        assert p.runtime_object is obj

    def test_distinct_uids(self):
        obj = MemObject("t", 64)
        assert PointerParam("p", obj).uid != PointerParam("p", obj).uid


class TestIVar:
    def test_domain(self):
        iv = IVar("i", 8)
        assert list(iv.domain) == list(range(8))

    def test_rejects_nonpositive_trip_count(self):
        with pytest.raises(ValueError):
            IVar("i", 0)


class TestAffineExpr:
    def test_constant(self):
        e = AffineExpr.constant(42)
        assert e.is_constant
        assert e.const == 42
        assert e.evaluate({}) == 42

    def test_of_drops_zero_coefficients(self):
        iv = IVar("i", 4)
        e = AffineExpr.of(const=1, ivs={iv: 0})
        assert e.is_constant

    def test_addition(self):
        iv = IVar("i", 4)
        a = AffineExpr.of(const=1, ivs={iv: 2})
        b = AffineExpr.of(const=3, ivs={iv: 5})
        c = a + b
        assert c.const == 4
        assert dict(c.iv_terms)[iv] == 7

    def test_subtraction_cancels(self):
        iv = IVar("i", 4)
        a = AffineExpr.of(const=5, ivs={iv: 2})
        b = AffineExpr.of(const=1, ivs={iv: 2})
        c = a - b
        assert c.is_constant
        assert c.const == 4

    def test_scaled(self):
        iv = IVar("i", 4)
        e = AffineExpr.of(const=3, ivs={iv: 2}).scaled(4)
        assert e.const == 12
        assert dict(e.iv_terms)[iv] == 8

    def test_sym_terms_flagged(self):
        s = Sym("s")
        e = AffineExpr.of(syms={s: 8})
        assert e.has_syms
        assert not e.is_single_iv

    def test_single_iv_classification(self):
        i, j = IVar("i", 4), IVar("j", 4)
        assert AffineExpr.of(ivs={i: 8}).is_single_iv
        assert AffineExpr.constant(0).is_single_iv
        assert not AffineExpr.of(ivs={i: 8, j: 8}).is_single_iv

    def test_bounds_positive_coeff(self):
        iv = IVar("i", 10)
        lo, hi = AffineExpr.of(const=5, ivs={iv: 4}).bounds()
        assert (lo, hi) == (5, 5 + 4 * 9)

    def test_bounds_negative_coeff(self):
        iv = IVar("i", 10)
        lo, hi = AffineExpr.of(const=5, ivs={iv: -4}).bounds()
        assert (lo, hi) == (5 - 36, 5)

    def test_bounds_multi_iv(self):
        i, j = IVar("i", 3), IVar("j", 5)
        lo, hi = AffineExpr.of(ivs={i: 10, j: -2}).bounds()
        assert (lo, hi) == (-8, 20)

    def test_bounds_rejects_syms(self):
        s = Sym("s")
        with pytest.raises(ValueError):
            AffineExpr.of(syms={s: 1}).bounds()

    def test_evaluate(self):
        iv, s = IVar("i", 8), Sym("s")
        e = AffineExpr.of(const=1, ivs={iv: 8}, syms={s: 2})
        assert e.evaluate({"i": 3, "s": 5}) == 1 + 24 + 10

    def test_equality_is_structural(self):
        iv = IVar("i", 8)
        assert AffineExpr.of(const=1, ivs={iv: 8}) == AffineExpr.of(const=1, ivs={iv: 8})


class TestAddressExpr:
    def test_runtime_base_for_object(self):
        obj = MemObject("a", 64, base_addr=100)
        addr = AddressExpr(obj, AffineExpr.constant(8))
        assert addr.runtime_base is obj
        assert addr.static_base is obj
        assert addr.interprocedural_base is obj

    def test_runtime_base_for_param(self):
        target = MemObject("t", 64, base_addr=100)
        p = PointerParam("p", runtime_object=target, provenance=None)
        addr = AddressExpr(p, AffineExpr.constant(0))
        assert addr.runtime_base is target
        assert addr.static_base is None
        assert addr.interprocedural_base is None

    def test_interprocedural_base_uses_provenance(self):
        target = MemObject("t", 64)
        p = PointerParam("p", runtime_object=target, provenance=target)
        addr = AddressExpr(p, AffineExpr.constant(0))
        assert addr.static_base is None
        assert addr.interprocedural_base is target

    def test_evaluate_concrete_address(self):
        obj = MemObject("a", 1024, base_addr=0x1000)
        iv = IVar("i", 16)
        addr = AddressExpr(obj, AffineExpr.of(const=8, ivs={iv: 16}))
        assert addr.evaluate({"i": 2}) == 0x1000 + 8 + 32

    def test_rejects_nonpositive_width(self):
        obj = MemObject("a", 64)
        with pytest.raises(ValueError):
            AddressExpr(obj, AffineExpr.constant(0), width=0)
