"""Multi-daemon tests for the sharded remote cache tier.

Three live in-thread daemons form a consistent-hash ring (each with its
own on-disk payload store), traffic crosses shard boundaries through
the peer read-through protocol, one shard dies mid-load and the fleet
must degrade — not corrupt: every request completes with payloads
byte-identical to a fault-free single-daemon run, and the killed shard
rejoins serving its prefix from disk.

In-process "kill" is a graceful shutdown (a thread cannot be SIGKILLed);
the hard-kill variant of the same scenario runs in
``benchmarks/bench_serve.py --shards`` and the ``serve-shard-smoke`` CI
job, which SIGKILL a daemon subprocess.
"""

from __future__ import annotations

import http.client
import threading
import time

import pytest

from repro.serve import (
    HashRing,
    NachosServeDaemon,
    ServeClient,
    ServeError,
    parse_request,
)
from repro.serve.peers import HOPS_HEADER

#: The request mix every phase replays; small enough for CI, three
#: distinct tasks so the ring has prefixes to split.
MIX = [
    ("gather", ["nachos"], 4),
    ("scatter", ["opt-lsq"], 4),
    ("stream_triad", ["nachos"], 3),
]


def _boot(store_dir=None, **kwargs):
    daemon = NachosServeDaemon(
        port=0, quiet=True, batch_window=0.005,
        store_dir=str(store_dir) if store_dir else None, **kwargs,
    )
    thread = daemon.serve_in_thread()
    return daemon, thread


def _stop(daemon, thread):
    try:
        daemon.request_shutdown()
    except Exception:
        pass
    thread.join(timeout=30)
    assert not thread.is_alive()


def _submit_failover(clients, start, region, systems, invocations):
    """Round the fleet until a live shard answers (requests are
    content-addressed, so a resubmit is idempotent)."""
    last_exc = None
    for step in range(len(clients)):
        client = clients[(start + step) % len(clients)]
        try:
            return client.submit(
                region, systems=systems, invocations=invocations,
                wait=True, wait_timeout=60,
            )
        except (OSError, http.client.HTTPException, ServeError) as exc:
            if isinstance(exc, ServeError) and exc.status == 400:
                raise
            last_exc = exc
    raise last_exc


def _collect(clients, mix=MIX):
    out = {}
    for i, (region, systems, invocations) in enumerate(mix):
        response = _submit_failover(clients, i, region, systems, invocations)
        assert response["status"] == "done", response
        out[f"{region}:{','.join(systems)}"] = response["results"]
    return out


def _task_fp(region, systems, invocations):
    return parse_request(
        {"region": region, "systems": systems, "invocations": invocations}
    ).task_fps[0]


@pytest.fixture
def ring(tmp_path):
    """A wired 3-shard ring with per-shard stores; stopped at teardown."""
    daemons, threads, clients = [], [], []
    for i in range(3):
        daemon, thread = _boot(tmp_path / f"shard{i}")
        daemons.append(daemon)
        threads.append(thread)
        clients.append(ServeClient(port=daemon.port))
    membership = {
        f"shard{i}": f"127.0.0.1:{d.port}" for i, d in enumerate(daemons)
    }
    for i, client in enumerate(clients):
        view = client.set_peers(membership, self_name=f"shard{i}")
        assert view["self"] == f"shard{i}"
        assert sorted(view["peers"]) == sorted(membership)
    try:
        yield daemons, clients
    finally:
        for daemon, thread in zip(daemons, threads):
            _stop(daemon, thread)


def _await_peer_payload(client, fp, timeout=15.0):
    """Poll until the write-through offer lands on *client*'s store."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        payload = client.peer_result(fp)
        if payload is not None:
            return payload
        time.sleep(0.02)
    raise AssertionError(f"offer for {fp[:12]} never landed")


def test_peer_read_through_serves_cross_shard(ring):
    """Shard X computes; the owner receives the write-through offer;
    shard Y then answers the same task via a peer hit, identically."""
    daemons, clients = ring
    region, systems, invocations = MIX[0]
    fp = _task_fp(region, systems, invocations)
    owner = HashRing([f"shard{i}" for i in range(3)]).owner(fp)
    owner_idx = int(owner[len("shard"):])

    first = clients[0].submit(
        region, systems=systems, invocations=invocations, wait=True,
        wait_timeout=60,
    )
    assert first["status"] == "done"
    payload = _await_peer_payload(clients[owner_idx], fp)
    assert payload["cycles"] == first["results"][systems[0]]["cycles"]

    second_idx = next(i for i in range(3) if i not in (0, owner_idx))
    second = clients[second_idx].submit(
        region, systems=systems, invocations=invocations, wait=True,
        wait_timeout=60,
    )
    assert second["results"] == first["results"]
    metrics = clients[second_idx].metrics()
    assert metrics["serve.peer_hit"]["value"] >= 1
    assert metrics["serve.peer_fetch_seconds"]["count"] >= 1


def test_kill_one_shard_mid_load_results_stay_identical(ring, tmp_path):
    """The acceptance scenario: a 3-shard ring loses a daemon mid-load;
    every request still completes, payloads byte-identical to a
    fault-free single-daemon run; the killed peer rejoins on its old
    store and serves its prefix from disk."""
    daemons, clients = ring

    # Fault-free single-daemon baseline (no peers, no store).
    solo, solo_thread = _boot()
    try:
        baseline = _collect([ServeClient(port=solo.port)])
    finally:
        _stop(solo, solo_thread)

    # Fleet warmup must already agree with the baseline.
    assert _collect(clients) == baseline

    # Drive load and take shard1 down while it runs.
    errors, responses = [], []
    lock = threading.Lock()

    def worker(offset):
        for i in range(offset, 24, 4):
            region, systems, invocations = MIX[i % len(MIX)]
            try:
                response = _submit_failover(
                    clients, offset, region, systems, invocations
                )
                with lock:
                    responses.append(
                        (f"{region}:{','.join(systems)}", response)
                    )
            except Exception as exc:  # pragma: no cover - surfaced below
                with lock:
                    errors.append(exc)

    workers = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for t in workers:
        t.start()
    time.sleep(0.05)
    daemons[1].request_shutdown()
    for t in workers:
        t.join(timeout=120)
    assert not errors
    assert len(responses) == 24
    for key, response in responses:
        assert response["status"] == "done"
        assert response["results"] == baseline[key], (
            f"{key} diverged from the fault-free baseline after the kill"
        )

    # The two survivors, as a degraded fleet, still agree.
    survivors = [clients[0], clients[2]]
    assert _collect(survivors) == baseline

    # Rejoin: a fresh daemon on shard1's old store directory, new port.
    rejoined, rejoin_thread = _boot(tmp_path / "shard1")
    try:
        rejoin_client = ServeClient(port=rejoined.port)
        membership = {
            "shard0": f"127.0.0.1:{daemons[0].port}",
            "shard1": f"127.0.0.1:{rejoined.port}",
            "shard2": f"127.0.0.1:{daemons[2].port}",
        }
        for client, name in (
            (clients[0], "shard0"),
            (rejoin_client, "shard1"),
            (clients[2], "shard2"),
        ):
            client.set_peers(membership, self_name=name)
        assert _collect([rejoin_client]) == baseline
        metrics = rejoin_client.metrics()
        assert metrics["serve.store_hits"]["value"] >= 1, (
            "the rejoined shard recomputed everything instead of "
            "serving its prefix from its on-disk store"
        )
    finally:
        _stop(rejoined, rejoin_thread)


def test_dead_peer_marked_down_and_fleet_degrades(tmp_path):
    """With its only peer dead, a daemon still answers every request
    (local compute fallback) and stops dialing the corpse after the
    first failure — the seeded-backoff down marker."""
    alive, alive_thread = _boot(tmp_path / "alive")
    dead, dead_thread = _boot(tmp_path / "dead")
    client = ServeClient(port=alive.port)
    try:
        membership = {
            "alive": f"127.0.0.1:{alive.port}",
            "dead": f"127.0.0.1:{dead.port}",
        }
        client.set_peers(membership, self_name="alive")
        ServeClient(port=dead.port).set_peers(membership, self_name="dead")
        _stop(dead, dead_thread)

        # A task the ring routes to the dead peer forces a peer dial.
        ring = HashRing(["alive", "dead"])
        dead_owned = [
            (region, systems, invocations)
            for region, systems, invocations in MIX
            if ring.owner(_task_fp(region, systems, invocations)) == "dead"
        ]
        assert dead_owned, "fixture mix never routes to the dead peer"

        for region, systems, invocations in dead_owned:
            response = client.submit(
                region, systems=systems, invocations=invocations, wait=True,
                wait_timeout=60,
            )
            assert response["status"] == "done"

        metrics = client.metrics()
        outcomes = sum(
            metrics.get(f"serve.peer_{o}", {}).get("value", 0)
            for o in ("error", "down")
        )
        assert outcomes >= len(dead_owned)
        assert metrics.get("serve.peer_error", {}).get("value", 0) >= 1
        view = client.get_peers()
        assert view["down"] == ["dead"]
    finally:
        _stop(alive, alive_thread)


def test_hop_limit_bounds_forwarding(tmp_path):
    """Skewed membership views forward at most once, and a request at
    the hop limit is rejected — the loop can never close."""
    target, target_thread = _boot(tmp_path / "target")
    holder, holder_thread = _boot(tmp_path / "holder")
    try:
        target_client = ServeClient(port=target.port)
        holder_client = ServeClient(port=holder.port)
        membership = {
            "target": f"127.0.0.1:{target.port}",
            "holder": f"127.0.0.1:{holder.port}",
        }
        target_client.set_peers(membership, self_name="target")
        holder_client.set_peers(membership, self_name="holder")

        # A fingerprint the *target's* ring assigns to the holder, whose
        # store we seed directly via the write-through endpoint.
        ring = HashRing(["target", "holder"])
        fp = next(
            f"{i:064x}" for i in range(64)
            if ring.owner(f"{i:064x}") == "holder"
        )
        payload = {"cycles": 123, "correct": True}
        assert holder_client.peer_put(fp, payload)["stored"] is True

        # hops=0: target misses locally, forwards once, returns the hit.
        raw = target_client._request(
            "GET", f"/peer/result/{fp}", headers={HOPS_HEADER: "0"}
        )
        assert raw["payload"] == payload
        assert raw["forwarded"] is True
        assert raw["source"] == "holder"
        assert target_client.metrics()["serve.peer_forwards"]["value"] == 1

        # hops=1 (limit 2): forwarding budget exhausted -> clean miss,
        # even though the holder has the payload one hop away.
        assert target_client.peer_result(fp, hops=1) is None

        # hops at/after the limit: rejected outright.
        with pytest.raises(ServeError) as excinfo:
            target_client._request(
                "GET", f"/peer/result/{fp}", headers={HOPS_HEADER: "2"}
            )
        assert excinfo.value.status == 400
        assert target_client.metrics()["serve.peer_hop_limited"]["value"] == 1
    finally:
        _stop(target, target_thread)
        _stop(holder, holder_thread)


def test_peerless_daemon_unchanged(tmp_path):
    """No peers, no store-dir: the daemon keeps its pre-shard behavior
    (no payload store, no tier, peer endpoints answer inert views)."""
    daemon, thread = _boot()
    try:
        client = ServeClient(port=daemon.port)
        response = client.submit(
            "gather", systems=["nachos"], invocations=3, wait=True,
            wait_timeout=60,
        )
        assert response["status"] == "done"
        assert daemon.store is None
        assert daemon.peer_tier is None
        view = client.get_peers()
        assert view["peers"] == {}
        metrics = client.metrics()
        assert "serve.peers" not in metrics
        assert "serve.store_hits" not in metrics
    finally:
        _stop(daemon, thread)
