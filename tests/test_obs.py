"""Observability layer: tracer correctness, Chrome-trace schema, the
counter<->event contract, metrics, profiling, and the zero-overhead
disabled path."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.ir import AffineExpr, MemObject, RegionBuilder, Sym
from repro.memory import MemoryHierarchy
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    SweepProfile,
    Tracer,
    backend_counts,
    chrome_trace,
    metrics_from_run,
    order_wait_latencies,
    resolve_workload,
    traced_run,
)
from repro.obs.tracer import (
    COMPARATOR_CHECK,
    INVOCATION,
    MEM_LOAD,
    MEM_STORE,
    OP_EXEC,
    ORDER_WAIT,
    RUNTIME_FORWARD,
)
from repro.sim import (
    DataflowEngine,
    InvocationTimeline,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    OpTiming,
    SerialMemBackend,
    SpecLSQBackend,
    TimelineRecorder,
)
from repro.sim.result import BackendStats

BACKENDS = {
    "opt-lsq": OptLSQBackend,
    "spec-lsq": SpecLSQBackend,
    "serial-mem": SerialMemBackend,
    "nachos-sw": NachosSWBackend,
    "nachos": NachosBackend,
}
NEEDS_MDES = {"nachos-sw", "nachos"}


def may_pair():
    """One symbolic ST/LD MAY pair — the paper's ``==?`` litmus."""
    a = MemObject("a", 8192, base_addr=0x1000)
    b = RegionBuilder("may-pair")
    x = b.input("x")
    b.store(a, AffineExpr.of(syms={Sym("s1"): 8}), value=x)
    b.load(a, AffineExpr.of(syms={Sym("s2"): 8}))
    return b.build()


def run_traced(backend_name, envs, build_fn=may_pair, tracer=None,
               recorder=None):
    graph = build_fn()
    if backend_name in NEEDS_MDES:
        compile_region(graph)
    else:
        graph.clear_mdes()
    engine = DataflowEngine(
        graph,
        place_region(graph),
        MemoryHierarchy(),
        BACKENDS[backend_name](),
        recorder=recorder,
        tracer=tracer,
    )
    return engine, graph, engine.run(envs)


# ---------------------------------------------------------------------------
# MAY-pair litmus event streams
# ---------------------------------------------------------------------------
def test_nachos_may_conflict_event_stream():
    """A conflicting MAY pair under NACHOS: the comparator fires, flags
    the overlap, and the load is satisfied by a runtime forward."""
    tracer = Tracer()
    _, _, sim = run_traced("nachos", [{"s1": 3, "s2": 3}], tracer=tracer)
    checks = tracer.of_kind(COMPARATOR_CHECK)
    assert len(checks) == 1
    assert checks[0].args["conflict"] is True
    assert sim.backend_stats.comparator_conflicts == 1
    assert len(tracer.of_kind(RUNTIME_FORWARD)) == 1


def test_nachos_may_clear_event_stream():
    tracer = Tracer()
    _, _, sim = run_traced("nachos", [{"s1": 3, "s2": 7}], tracer=tracer)
    checks = tracer.of_kind(COMPARATOR_CHECK)
    assert len(checks) == 1
    assert checks[0].args["conflict"] is False
    assert sim.backend_stats.comparator_conflicts == 0
    assert not tracer.of_kind(RUNTIME_FORWARD)
    assert not tracer.of_kind(ORDER_WAIT)


def test_nachos_sw_may_serializes_as_order_wait():
    """Compiler-only NACHOS has no comparators: the same MAY pair
    serializes — one order-wait span, zero checks."""
    tracer = Tracer()
    _, _, sim = run_traced("nachos-sw", [{"s1": 3, "s2": 3}], tracer=tracer)
    waits = tracer.of_kind(ORDER_WAIT)
    assert len(waits) == 1
    assert waits[0].args["edge"] == "may"
    assert not tracer.of_kind(COMPARATOR_CHECK)
    assert sim.backend_stats.order_waits == 1


def test_event_stream_structure():
    """Events carry invocation indices and land in time order per kind."""
    tracer = Tracer()
    envs = [{"s1": 3, "s2": 3}, {"s1": 1, "s2": 5}]
    run_traced("nachos", envs, tracer=tracer)
    invs = tracer.of_kind(INVOCATION)
    assert [e.inv for e in invs] == [0, 1]
    assert len(tracer.of_kind(MEM_STORE)) == 2
    assert len(tracer.of_kind(MEM_LOAD)) + len(
        tracer.of_kind(RUNTIME_FORWARD)
    ) >= 2
    for e in tracer.events:
        assert e.inv >= 0
        assert e.t >= 0
        assert e.dur >= 0


# ---------------------------------------------------------------------------
# Counter <-> event contract
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_backend_counts_reproduce_stats(backend):
    tracer = Tracer()
    envs = [{"s1": 3, "s2": 3}, {"s1": 3, "s2": 7}] * 3
    _, _, sim = run_traced(backend, envs, tracer=tracer)
    assert backend_counts(tracer.events) == sim.backend_stats.as_dict(
        rates=False
    )


def may_partial_pair():
    """Store/load whose symbolic windows can overlap *partially* (never
    exactly), so a runtime conflict serializes instead of forwarding."""
    a = MemObject("a", 8192, base_addr=0x1000)
    b = RegionBuilder("may-partial")
    x = b.input("x")
    b.store(a, AffineExpr.of(syms={Sym("s1"): 8}), value=x, width=8)
    b.load(a, AffineExpr.of(syms={Sym("s2"): 4}, const=4), width=4)
    return b.build()


@pytest.mark.parametrize("backend", ["nachos", "nachos-sw"])
def test_backend_counts_contract_partial_overlap_serialization(backend):
    """The conflicting-MAY *serialization* path (partial overlap, no
    exact match to forward from) also keeps the one-event-per-counter
    contract: the order-wait counter bumped when the younger op stalls
    behind the flagged store has a matching ORDER_WAIT event."""
    tracer = Tracer()
    # s1=1, s2=1: store [8,16), load [8,12) — conflict, not exact.
    # s1=1, s2=5: store [8,16), load [24,28) — disjoint.
    envs = [{"s1": 1, "s2": 1}, {"s1": 1, "s2": 5}] * 2
    _, _, sim = run_traced(backend, envs, build_fn=may_partial_pair,
                           tracer=tracer)
    assert backend_counts(tracer.events) == sim.backend_stats.as_dict(
        rates=False
    )
    if backend == "nachos":
        assert sim.backend_stats.comparator_conflicts == 2
        assert not tracer.of_kind(RUNTIME_FORWARD)
        assert sim.backend_stats.order_waits >= 2
        assert len(tracer.of_kind(ORDER_WAIT)) == sim.backend_stats.order_waits


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------
def test_chrome_trace_schema():
    tracer = Tracer()
    recorder = TimelineRecorder()
    engine, graph, _ = run_traced(
        "nachos", [{"s1": 3, "s2": 3}], tracer=tracer, recorder=recorder
    )
    trace = chrome_trace(
        tracer,
        graph=graph,
        placement=engine.placement,
        region="may-pair",
        backend="nachos",
    )
    # Round-trips through JSON.
    events = json.loads(json.dumps(trace))["traceEvents"]
    assert events
    phases = set()
    for e in events:
        assert isinstance(e["name"], str) and e["name"]
        assert e["ph"] in ("X", "i", "M", "C")
        assert isinstance(e["pid"], int)
        phases.add(e["ph"])
        if e["ph"] == "M":
            assert e["args"]["name"]
            continue
        assert isinstance(e["ts"], (int, float))
        if e["ph"] == "X":
            assert e["dur"] >= 1
        elif e["ph"] == "i":
            assert e["s"] == "t"
    # Spans, instants, and metadata all present.
    assert {"X", "M"} <= phases
    # The three track groups have process names.
    names = {
        (e["pid"], e["args"]["name"])
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert {pid for pid, _ in names} == {0, 1, 2}


def test_chrome_trace_backend_tracks():
    tracer = Tracer()
    engine, graph, _ = run_traced("opt-lsq", [{"s1": 3, "s2": 3}],
                                  tracer=tracer)
    trace = chrome_trace(tracer, graph=graph, placement=engine.placement)
    cats = {e.get("cat") for e in trace["traceEvents"]}
    assert "bloom.probe" in cats
    assert "lsq.enqueue" in cats
    # Occupancy doubles as a counter series.
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert counters and all(
        "entries" in e["args"] for e in counters
    )


def test_order_wait_latencies():
    tracer = Tracer()
    run_traced("nachos-sw", [{"s1": 3, "s2": 3}], tracer=tracer)
    lats = order_wait_latencies(tracer)
    assert len(lats) == 1 and lats[0] >= 0


# ---------------------------------------------------------------------------
# Disabled path: zero events, identical results
# ---------------------------------------------------------------------------
def test_null_tracer_is_default_and_inert():
    engine, _, _ = run_traced("nachos", [{"s1": 3, "s2": 3}])
    assert engine.tracer is NULL_TRACER
    assert engine._trace is None
    assert NULL_TRACER.events == ()
    assert len(NULL_TRACER) == 0
    NULL_TRACER.emit("anything", 0)
    assert NULL_TRACER.events == ()


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_traced_run_result_byte_identical(backend):
    """Tracing must never perturb simulation: the SimResult of a traced
    run pickles byte-for-byte identical to the untraced run."""
    envs = [{"s1": 3, "s2": 3}, {"s1": 3, "s2": 7}]
    _, _, plain = run_traced(backend, envs)
    _, _, traced = run_traced(backend, envs, tracer=Tracer())
    assert pickle.dumps(plain) == pickle.dumps(traced)


# ---------------------------------------------------------------------------
# Timeline (start times + O(1) lookup)
# ---------------------------------------------------------------------------
def test_timeline_records_start_times():
    recorder = TimelineRecorder()
    _, graph, _ = run_traced("nachos", [{"s1": 3, "s2": 3}],
                             recorder=recorder)
    assert len(recorder) == 1
    timeline = recorder.invocations[0]
    for op in graph.memory_ops:
        timing = timeline.timing_of(op.op_id)
        assert timing.start >= timeline.start
        assert timing.complete >= timing.start
        assert timing.duration == timing.complete - timing.start
        assert timeline.completion_of(op.op_id) == timing.complete
        assert timeline.start_of(op.op_id) == timing.start


def test_timeline_lookup_is_dict_backed():
    timeline = InvocationTimeline(index=0, start=0, end=10)
    timeline.add(OpTiming(op_id=7, opcode="load", name="ld", start=2,
                          complete=5))
    assert timeline.completion_of(7) == 5
    with pytest.raises(KeyError):
        timeline.completion_of(99)


# ---------------------------------------------------------------------------
# BackendStats derived rates
# ---------------------------------------------------------------------------
def test_backend_stats_rates_guard_zero_division():
    empty = BackendStats()
    for name in (
        "misprediction_rate",
        "bloom_hit_rate",
        "cam_check_rate",
        "conflict_rate",
        "forward_rate",
        "order_wait_fraction",
        "replay_rate",
    ):
        assert getattr(empty, name) == 0.0
    assert empty.mde_resolutions == 0


def test_backend_stats_rates_values():
    stats = BackendStats(
        comparator_checks=10,
        comparator_conflicts=4,
        runtime_forwards=2,
        order_waits=10,
    )
    assert stats.conflict_rate == pytest.approx(0.4)
    assert stats.forward_rate == pytest.approx(0.5)
    assert stats.mde_resolutions == 20
    assert stats.order_wait_fraction == pytest.approx(0.5)
    d = stats.as_dict()
    assert d["comparator_checks"] == 10
    assert d["conflict_rate"] == pytest.approx(0.4)
    assert set(BackendStats.COUNTERS) <= set(d)
    assert "conflict_rate" not in stats.as_dict(rates=False)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
def test_metrics_registry_primitives(tmp_path):
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(4)
    reg.gauge("g").set(0.25)
    reg.histogram("h").observe_many([1, 2, 3, 4, 100])
    assert reg.counter("c").value == 5
    assert reg.histogram("h").percentile(50) == 3
    with pytest.raises(TypeError):
        reg.gauge("c")
    path = tmp_path / "m.json"
    reg.write_json(str(path))
    data = json.loads(path.read_text())
    assert data["c"] == {"type": "counter", "value": 5}
    assert data["g"]["value"] == 0.25
    assert data["h"]["count"] == 5 and data["h"]["max"] == 100.0


def test_histogram_edge_cases():
    reg = MetricsRegistry()
    empty = reg.histogram("empty")
    # Empty histograms report 0.0 at every quantile and a bare count.
    assert empty.percentile(0) == 0.0
    assert empty.percentile(50) == 0.0
    assert empty.percentile(100) == 0.0
    assert empty.summary() == {"count": 0}
    # A single sample IS every quantile.
    single = reg.histogram("single")
    single.observe(7.5)
    assert single.percentile(0) == 7.5
    assert single.percentile(50) == 7.5
    assert single.percentile(100) == 7.5
    assert single.summary()["mean"] == 7.5
    # Out-of-range quantiles are caller bugs, not clamped.
    with pytest.raises(ValueError):
        single.percentile(101)
    with pytest.raises(ValueError):
        single.percentile(-0.1)
    with pytest.raises(ValueError):
        empty.percentile(200)


def test_metrics_registry_merge():
    a = MetricsRegistry()
    a.counter("c").inc(3)
    a.gauge("g").set(0.25)
    a.histogram("h").observe_many([1.0, 2.0])
    a.counter("only_a").inc()
    b = MetricsRegistry()
    b.counter("c").inc(4)
    b.gauge("g").set(0.75)
    b.histogram("h").observe_many([3.0, 4.0])
    b.histogram("only_b").observe(9.0)

    merged = a.merge(b)
    assert merged is a  # in place, chainable
    assert a.counter("c").value == 7          # counters sum
    assert a.gauge("g").value == 0.75         # gauges take the newer value
    assert a.histogram("h").values == [1.0, 2.0, 3.0, 4.0]  # samples pool
    assert a.counter("only_a").value == 1
    assert a.histogram("only_b").values == [9.0]
    # Merging never mutates the source registry.
    assert b.counter("c").value == 4 and b.histogram("h").count == 2

    clash = MetricsRegistry()
    clash.gauge("c").set(1.0)
    with pytest.raises(TypeError):
        a.merge(clash)


def test_metrics_from_run():
    tracer = Tracer()
    _, _, sim = run_traced("nachos-sw", [{"s1": 3, "s2": 3}], tracer=tracer)
    reg = metrics_from_run(sim, tracer=tracer)
    assert reg.counter("sim.cycles").value == sim.cycles
    assert reg.counter("sim.backend.order_waits").value == 1
    assert reg.histogram("sim.order_wait_latency").count == 1
    assert reg.gauge("sim.backend.order_wait_fraction").value == 1.0


# ---------------------------------------------------------------------------
# Sweep profile
# ---------------------------------------------------------------------------
def test_sweep_profile_rollups():
    profile = SweepProfile(enabled=True)
    profile.record_task("bzip2", "nachos", 2.0, worker=11, hits=1)
    profile.record_task("bzip2", "opt-lsq", 1.0, worker=12)
    profile.record_task("lbm", "nachos", 0.5, worker=11, misses=1)
    profile.record_sweep(tasks=3, jobs=2, wall_seconds=2.0)
    assert profile.per_worker() == {11: 2.5, 12: 1.0}
    regions = profile.per_region()
    assert list(regions) == ["bzip2", "lbm"]
    assert regions["bzip2"] == (2, 3.0)
    assert profile.utilization() == pytest.approx(3.5 / 4.0)
    profile.reset()
    assert not profile.tasks and not profile.sweeps


# ---------------------------------------------------------------------------
# Traced-run entry point (the `nachos-repro trace` engine)
# ---------------------------------------------------------------------------
def test_resolve_workload():
    assert resolve_workload("gather").name.startswith("micro.gather")
    assert resolve_workload("micro.gather").name.startswith("micro.gather")
    assert "path0" in resolve_workload("bzip2").name
    with pytest.raises(KeyError):
        resolve_workload("no-such-region")


def test_traced_run_matches_stats_and_is_correct():
    run = traced_run(resolve_workload("scatter"), "nachos", invocations=4)
    assert run.correct
    assert run.tracer.events
    assert backend_counts(run.tracer.events) == run.sim.backend_stats.as_dict(
        rates=False
    )
    assert run.sim.invocations == 4
