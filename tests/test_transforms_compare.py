"""Tests for DCE/strip transforms, result diffing, and variance study."""

import pytest

from repro.analysis.compare import compare_results
from repro.ir import AffineExpr, MemObject, Opcode, RegionBuilder
from repro.ir.transforms import eliminate_dead_code, strip_names
from tests.conftest import build_simple_region


class TestDeadCodeElimination:
    def test_keeps_live_graph_intact(self):
        g = build_simple_region()
        result = eliminate_dead_code(g)
        # input x is dead (store value comes from the add of the loads);
        # everything else feeds the store.
        assert result.removed == 1
        assert len(result.graph) == len(g) - 1

    def test_removes_dangling_compute(self):
        b = RegionBuilder()
        x = b.input("x")
        dead = b.add(x, x)
        dead2 = b.mul(dead, dead)
        live = b.sub(x, x)  # last op = region result
        g = b.build()
        result = eliminate_dead_code(g)
        assert result.removed == 2
        opcodes = [op.opcode for op in result.graph.ops]
        assert Opcode.MUL not in opcodes

    def test_removes_dead_loads(self):
        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        b.load(a, AffineExpr.constant(0))          # dead
        b.store(a, AffineExpr.constant(8), value=x)  # live (side effect)
        g = b.build()
        result = eliminate_dead_code(g)
        assert result.removed == 1
        assert len(result.graph.loads) == 0
        assert len(result.graph.stores) == 1

    def test_stores_always_live(self):
        g = build_simple_region()
        result = eliminate_dead_code(g)
        assert len(result.graph.stores) == len(g.stores)

    def test_mdes_remapped(self):
        from repro.compiler import compile_region

        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        dead = b.fdiv(x, x)
        st = b.store(a, AffineExpr.constant(0), value=x)
        ld = b.load(a, AffineExpr.constant(4))
        use = b.add(ld, x)
        g = b.build()
        compile_region(g)
        assert g.mdes
        result = eliminate_dead_code(g)
        assert len(result.graph.mdes) == len(g.mdes)
        result.graph.validate()

    def test_semantics_preserved_for_live_values(self):
        """DCE must not change the final memory image."""
        from repro.sim import golden_execute

        g = build_simple_region()
        compact = eliminate_dead_code(g).graph
        envs = [{"i": k} for k in range(3)]
        assert (
            golden_execute(g, envs).memory_image
            == golden_execute(compact, envs).memory_image
        )

    def test_strip_names(self):
        g = build_simple_region()
        stripped = strip_names(g)
        assert all(op.name == "" for op in stripped.ops)
        assert len(stripped) == len(g)


class TestCompareResults:
    def test_identical_payloads_no_drift(self):
        payload = {"experiment": "x", "result": {"rows": [{"a": 1.0}]}}
        assert compare_results(payload, dict(payload)) == []

    def test_numeric_tolerance(self):
        old = {"v": 100.0}
        new = {"v": 103.0}
        assert compare_results(old, new, rel_tol=0.05) == []
        assert len(compare_results(old, new, rel_tol=0.01)) == 1

    def test_structural_changes_flagged(self):
        old = {"rows": [1, 2], "name": "a"}
        new = {"rows": [1, 2, 3], "name": "b"}
        drifts = {d.path for d in compare_results(old, new)}
        assert "$.rows.len" in drifts
        assert "$.name" in drifts

    def test_missing_keys_flagged(self):
        drifts = compare_results({"a": 1}, {"b": 1})
        assert len(drifts) == 2

    def test_bool_not_treated_numerically(self):
        # True vs 1.04 must not pass the numeric tolerance.
        drifts = compare_results({"ok": True}, {"ok": False})
        assert len(drifts) == 1

    def test_real_export_round_trip_stable(self):
        from repro.experiments import fig14
        from repro.experiments.export import result_to_dict

        a = result_to_dict("fig14", fig14.run())
        b = result_to_dict("fig14", fig14.run())
        assert compare_results(a, b) == []


class TestVarianceStudy:
    def test_small_variance_run(self):
        from repro.experiments import variance

        result = variance.run(
            invocations=6, benches=("soplex", "equake"), seeds=(1, 2)
        )
        assert result.all_correct
        assert len(result.rows) == 2
        assert all(len(r.sw_samples) == 2 for r in result.rows)
        assert "Seed-variance" in variance.render(result)
