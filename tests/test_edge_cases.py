"""Edge-case tests across modules: operand sharing, caching, helpers."""

import pytest

from repro.compiler import AliasLabel, compile_region
from repro.ir import (
    AffineExpr,
    IVar,
    MemObject,
    Opcode,
    RegionBuilder,
)
from repro.sim import golden_execute
from repro.sim.backends.base import ranges_exact, ranges_overlap
from repro.workloads import BenchmarkSpec, Mechanism, build_workload
from tests.conftest import build_simple_region, make_engine


class TestRangeHelpers:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ((0, 8), (0, 8), True),
            ((0, 8), (8, 8), False),
            ((0, 8), (7, 8), True),
            ((4, 4), (0, 8), True),
            ((0, 4), (4, 4), False),
            ((100, 1), (100, 1), True),
        ],
    )
    def test_overlap(self, a, b, expected):
        assert ranges_overlap(a, b) is expected
        assert ranges_overlap(b, a) is expected  # symmetric

    def test_exact(self):
        assert ranges_exact((0, 8), (0, 8))
        assert not ranges_exact((0, 8), (0, 4))
        assert not ranges_exact((0, 8), (8, 8))


class TestEngineOperandSharing:
    def test_store_addr_and_value_share_producer(self):
        """One producer feeding both a store's address chain and its
        value operand must deliver to both positions."""
        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        gep = b.gep(x)
        st = b.store(a, AffineExpr.constant(0), value=gep, inputs=[gep])
        g = b.build()
        engine = make_engine(g)
        result = engine.run([{}])
        assert engine.state_of(st.op_id).completed
        golden = golden_execute(g, [{}])
        assert golden.matches(result.load_values, result.memory_image)

    def test_same_producer_twice_in_compute(self):
        b = RegionBuilder()
        x = b.input("x")
        s = b.add(x, x)
        g = b.build()
        engine = make_engine(g)
        engine.run([{}])
        assert engine.state_of(s.op_id).completed

    def test_constant_address_load_fires_at_t0(self):
        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        ld = b.load(a, AffineExpr.constant(0))
        g = b.build()
        engine = make_engine(g)
        result = engine.run([{}])
        assert (0, ld.op_id) in result.load_values

    def test_missing_env_variable_raises(self):
        g = build_simple_region()
        engine = make_engine(g)
        with pytest.raises(KeyError):
            engine.run([{}])  # 'i' unbound

    def test_run_result_helpers(self):
        g1 = build_simple_region()
        r1 = make_engine(g1).run([{"i": 0}])
        g2 = build_simple_region()
        r2 = make_engine(g2).run([{"i": 0}, {"i": 1}])
        assert r2.speedup_over(r1) < 1.0  # r2 ran longer
        assert r1.slowdown_pct_vs(r2) < 0
        assert r2.mean_invocation_cycles > 0


class TestBuilderCoverage:
    def test_all_compute_helpers(self):
        b = RegionBuilder()
        x, y = b.input("x"), b.input("y")
        ops = [
            b.add(x, y), b.sub(x, y), b.mul(x, y), b.shift(x, y),
            b.cmp(x, y), b.fadd(x, y), b.fsub(x, y), b.fmul(x, y),
            b.fdiv(x, y),
        ]
        p = b.select(ops[4], x, y)
        u = b.unop(Opcode.XOR, p)
        g = b.build()
        assert len(g) == 2 + len(ops) + 2

    def test_const_naming(self):
        b = RegionBuilder()
        c = b.const(42)
        assert c.name == "c42"


class TestMechanismIsolation:
    """Each mechanism, alone, produces its designed label signature."""

    def _spec(self, mechanism, **kw):
        defaults = dict(
            name=f"iso-{mechanism.value}", suite="test",
            n_ops=40, n_mem=8, mlp=8, store_frac=0.5,
            mechanism_mix={mechanism: 1.0},
        )
        defaults.update(kw)
        return BenchmarkSpec(**defaults)

    def test_distinct_all_no(self):
        w = build_workload(self._spec(Mechanism.DISTINCT))
        result = compile_region(w.graph)
        assert result.final_labels.count(AliasLabel.MAY) == 0
        assert result.final_labels.count(AliasLabel.MUST) == 0

    def test_strided_all_no(self):
        w = build_workload(self._spec(Mechanism.STRIDED))
        result = compile_region(w.graph)
        assert result.final_labels.count(AliasLabel.MAY) == 0

    def test_param_resolvable_stage2_resolves(self):
        w = build_workload(self._spec(Mechanism.PARAM_RESOLVABLE))
        result = compile_region(w.graph)
        assert result.stage1.count(AliasLabel.MAY) > 0
        assert result.final_labels.count(AliasLabel.MAY) == 0

    def test_param_opaque_stays_may(self):
        w = build_workload(self._spec(Mechanism.PARAM_OPAQUE))
        result = compile_region(w.graph)
        assert result.final_labels.count(AliasLabel.MAY) > 0
        # ... but runtime addresses never conflict (distinct objects)
        env = w.invocations(1)[0]
        mem = w.graph.memory_ops
        for i, a in enumerate(mem):
            for c in mem[i + 1 :]:
                assert a.addr.evaluate(env) != c.addr.evaluate(env)

    def test_multidim_stage4_resolves(self):
        w = build_workload(self._spec(Mechanism.MULTIDIM))
        result = compile_region(w.graph)
        assert result.stage1.count(AliasLabel.MAY) > 0
        assert result.final_labels.count(AliasLabel.MAY) == 0

    def test_indirect_stays_may_forever(self):
        w = build_workload(self._spec(Mechanism.INDIRECT, indirect_range=16))
        result = compile_region(w.graph)
        assert result.final_labels.count(AliasLabel.MAY) > 0


class TestRegionCaching:
    def test_workload_cache_reuses_instances(self):
        from repro.experiments.regions import clear_caches, workload_for
        from repro.workloads import get_spec

        clear_caches()
        a = workload_for(get_spec("gzip"))
        b = workload_for(get_spec("gzip"))
        assert a is b
        clear_caches()
        c = workload_for(get_spec("gzip"))
        assert c is not a

    def test_pipeline_cache_keyed_by_config(self):
        from repro.compiler import PipelineConfig
        from repro.experiments.regions import compiled_region
        from repro.workloads import get_spec

        full = compiled_region(get_spec("parser"))
        base = compiled_region(
            get_spec("parser"), config=PipelineConfig.baseline_compiler()
        )
        assert full is compiled_region(get_spec("parser"))
        assert full is not base

    def test_compile_only_leaves_shared_graph_clean(self):
        from repro.experiments.regions import compiled_region, workload_for
        from repro.workloads import get_spec

        w = workload_for(get_spec("soplex"))
        w.graph.clear_mdes()
        compiled_region(get_spec("soplex"))
        assert w.graph.mdes == []  # apply_mdes=False in the cache path


class TestSpecValidation:
    def test_zero_mem_spec_needs_no_mlp(self):
        spec = BenchmarkSpec(
            name="nomem", suite="t", n_ops=10, n_mem=0, mlp=1
        )
        w = build_workload(spec)
        assert len(w.graph.memory_ops) == 0

    def test_mechanism_counts_empty(self):
        spec = BenchmarkSpec(name="x", suite="t", n_ops=10, n_mem=4, mlp=2)
        assert spec.mechanism_counts(0) == {Mechanism.DISTINCT: 0}

    def test_mem_fraction(self):
        spec = BenchmarkSpec(name="x", suite="t", n_ops=10, n_mem=4, mlp=2)
        assert spec.mem_fraction == pytest.approx(0.4)
