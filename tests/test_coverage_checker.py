"""The MDE sync-coverage checker: clean on honest compilations, and a
static tripwire for the enforcement bugs the dynamic layer only catches
by executing — re-introducing PR 3's unsound stage-3 pruning and
hand-dropping an MDE must both surface as *located* uncovered pairs.
Also pins the three-way agreement between the shared publish-ordering
predicate's consumers (stage-3 pruning, the static verifier's
reachability, the coverage checker)."""

from __future__ import annotations

import pytest

from repro.compiler import (
    AliasPipeline,
    check_sync_coverage,
    compile_region,
    edge_guarantees_order,
    guaranteed_reachability,
    is_forward_candidate,
    relation_guarantees_order,
    required_pairs,
)
from repro.compiler.labels import AliasLabel, PairKind
from repro.ir import AffineExpr, MemObject, RegionBuilder, Sym
from repro.ir.graph import MDEKind
from repro.verify.fuzz import build_graph, generate_spec


def _arr():
    return MemObject("a", 8192, base_addr=0x1000)


def may_region():
    a = _arr()
    b = RegionBuilder("may")
    x = b.input("x")
    b.store(a, AffineExpr.of(syms={Sym("s1"): 8}), value=x, width=8)
    b.load(a, AffineExpr.of(syms={Sym("s2"): 4}), width=4)
    return b.build()


def forward_chain_region():
    """PR 3's witness: a FORWARD edge mistaken for publish-ordering."""
    a = _arr()
    b = RegionBuilder("fwd-chain-straddle")
    x = b.input("x")
    b.load(a, AffineExpr.constant(64))
    b.store(a, AffineExpr.constant(60), value=x)
    ld = b.load(a, AffineExpr.constant(60))
    v = b.add(ld, b.const(1))
    b.store(a, AffineExpr.constant(64), value=v, width=2)
    return b.build()


class TestCleanOnHonestCompilations:
    def test_directed_regions(self):
        for build in (may_region, forward_chain_region):
            graph = build()
            compile_region(graph)
            report = check_sync_coverage(graph)
            assert report.ok, report.describe()
            assert report.covered == report.required

    def test_fuzzed_regions(self):
        # A sweep of adversarial fuzz regions: whatever enforcement the
        # pipeline installs must cover the oracle's required set.
        for k in range(40):
            graph = build_graph(generate_spec(99, k))
            compile_region(graph)
            report = check_sync_coverage(graph)
            assert report.ok, f"region {k}: {report.describe()}"

    def test_required_set_is_oracle_defined(self):
        graph = may_region()
        compile_region(graph)
        req = required_pairs(graph)
        # Both symbolic ops share the array: the ST-LD pair is required.
        assert [(older, younger, kind) for older, younger, kind, _v in req] == [
            (graph.memory_ops[0].op_id, graph.memory_ops[1].op_id, PairKind.ST_LD)
        ]
        assert req[0][3].label is not AliasLabel.NO


class TestMutationUnsoundStage3Pruning:
    def test_caught_as_located_gap(self):
        """Re-apply PR 3's bug (exact ST->LD forwarding relations treated
        as publish-ordering during pruning) — the coverage checker must
        flag it statically, before anything executes."""
        import repro.compiler.aliasing.stage3 as stage3
        import repro.compiler.pipeline as pipeline_mod

        orig = stage3.prune_stage3

        def unsound(graph, matrix, keep_st_ld_forwarding=True, exact_pairs=None):
            return orig(graph, matrix, keep_st_ld_forwarding, exact_pairs=None)

        pipeline_mod.prune_stage3 = unsound
        try:
            graph = forward_chain_region()
            AliasPipeline().run(graph)
            report = check_sync_coverage(graph)
        finally:
            pipeline_mod.prune_stage3 = orig

        assert not report.ok
        mem = [op.op_id for op in graph.memory_ops]
        straddling_store, trailing_store = mem[1], mem[3]
        assert (straddling_store, trailing_store) in [
            (g.older, g.younger) for g in report.gaps
        ]
        gap = next(g for g in report.gaps if g.older == straddling_store)
        # The finding is located: it names both ops and their addresses.
        msg = str(gap)
        assert f"st#{straddling_store}" in msg
        assert f"st#{trailing_store}" in msg
        assert "must happen before" in msg

    def test_sound_pruning_is_clean(self):
        graph = forward_chain_region()
        AliasPipeline().run(graph)
        assert check_sync_coverage(graph).ok


class TestMutationDroppedMDE:
    def test_hand_dropped_mde_caught(self):
        """Simulate an MDE-insertion bug by masking one installed MAY
        edge: its pair loses its only enforcement and must surface."""
        graph = may_region()
        result = compile_region(graph)
        edge = next(e for e in result.mdes if e.kind is MDEKind.MAY)
        report = check_sync_coverage(graph, dropped_mdes={(edge.src, edge.dst)})
        assert not report.ok
        assert [(g.older, g.younger) for g in report.gaps] == [(edge.src, edge.dst)]
        assert "uncovered" in str(report.gaps[0])
        # The mask is non-destructive: the graph itself still checks clean.
        assert check_sync_coverage(graph).ok

    def test_dropping_a_redundant_edge_is_clean(self):
        """An ORDER edge whose pair is also covered transitively may be
        dropped without a gap — coverage is about pairs, not edges."""
        a = _arr()
        b = RegionBuilder("chain")
        x = b.input("x")
        b.store(a, AffineExpr.constant(0), value=x, width=8)
        b.store(a, AffineExpr.constant(4), value=x, width=8)
        b.store(a, AffineExpr.constant(0), value=x, width=8)
        graph = b.build()
        compile_region(graph)
        mem = [op.op_id for op in graph.memory_ops]
        # (st0, st2) is ordered through st1 by the retained ORDER chain,
        # so masking a direct (st0, st2) edge (if any) changes nothing.
        report = check_sync_coverage(graph, dropped_mdes={(mem[0], mem[2])})
        assert report.ok, report.describe()


class TestOrderingPredicateAgreement:
    """One publish-semantics rule, three consumers, zero drift."""

    def test_structural_sharing(self):
        # The rule lives in repro.compiler.ordering and every consumer
        # imports it — not a local re-implementation that can drift.
        import repro.compiler.aliasing.stage3 as stage3
        import repro.compiler.coverage as coverage
        import repro.compiler.ordering as ordering
        import repro.compiler.verify as verify

        assert stage3.relation_guarantees_order is ordering.relation_guarantees_order
        assert verify.edge_guarantees_order is ordering.edge_guarantees_order
        assert coverage.guaranteed_reachability is verify.guaranteed_reachability

    def test_forward_never_orders_anywhere(self):
        # Relation level: an exact ST->LD MUST is a forwarding candidate,
        # not an ordering guarantee.  Edge level: FORWARD MDEs never
        # extend reachability chains.
        exact = {(0, 1)}
        assert is_forward_candidate(PairKind.ST_LD, 0, 1, exact)
        assert not relation_guarantees_order(
            AliasLabel.MUST, PairKind.ST_LD, 0, 1, exact
        )
        assert relation_guarantees_order(AliasLabel.MUST, PairKind.ST_LD, 0, 2, exact)
        assert relation_guarantees_order(AliasLabel.MUST, PairKind.ST_ST, 0, 1, exact)
        for kind in (AliasLabel.MAY, AliasLabel.NO):
            assert not relation_guarantees_order(kind, PairKind.ST_ST, 0, 1, exact)
        assert edge_guarantees_order(MDEKind.ORDER)
        assert not edge_guarantees_order(MDEKind.FORWARD)
        assert not edge_guarantees_order(MDEKind.MAY)

    def test_three_consumers_agree_on_regions(self):
        # On compiled regions: every pair stage 3 prunes (covered
        # transitively) is also covered for the checker, and the
        # verifier's reachability is the checker's.
        for k in range(15):
            graph = build_graph(generate_spec(31, k))
            result = compile_region(graph)
            reach = guaranteed_reachability(graph)
            own = {(e.src, e.dst) for e in graph.mdes}
            retained = {(r.older, r.younger) for r in result.plan.retained}
            for (older, younger), label in result.final_labels:
                if label is AliasLabel.NO or (older, younger) in retained:
                    continue  # pruned by stage 3: must be covered anyway
                assert younger in reach[older] or (older, younger) in own, (
                    k, older, younger, label,
                )
