"""Chart adapters for the simulation figures, tested on fabricated data."""

import pytest

from repro.experiments.charts import chart_for
from repro.experiments.fig11 import PerfResult, PerfRow
from repro.experiments.fig15 import Fig15Result, Fig15Row
from repro.experiments.fig17 import Fig17Result, Fig17Row
from repro.experiments.fig18 import Fig18Result, Fig18Row


def _perf_result():
    rows = [
        PerfRow("a", +25.0, 1000, 1250, True),
        PerfRow("b", -10.0, 1000, 900, True),
    ]
    return PerfResult(system="nachos-sw", rows=rows)


class TestSimulationFigureCharts:
    def test_fig11_chart(self):
        chart = chart_for("fig11", _perf_result())
        svg = chart.to_svg()
        assert "Figure 11" in svg
        assert svg.count("<rect") >= 3

    def test_fig12_chart_uses_same_adapter(self):
        chart = chart_for("fig12", _perf_result())
        assert "Figure 12" in chart.to_svg()

    def test_fig15_chart_two_series(self):
        result = Fig15Result(
            rows=[
                Fig15Row("a", -2.0, +30.0, 1000, 50, 1, True),
                Fig15Row("b", +1.0, +1.0, 1000, 0, 0, True),
            ]
        )
        chart = chart_for("fig15", result)
        assert len(chart.series) == 2
        assert "NACHOS-SW" in chart.to_svg()

    def test_fig17_chart_stacked(self):
        result = Fig17Result(
            rows=[Fig17Row("a", 70.0, 5.0, 25.0, 20.0, +10.0)]
        )
        chart = chart_for("fig17", result)
        assert chart.stacked
        assert len(chart.series) == 3

    def test_fig18_chart_four_categories(self):
        result = Fig18Result(
            rows=[Fig18Row("a", 60.0, 10.0, 5.0, 25.0, 12.0, 20.0)]
        )
        chart = chart_for("fig18", result)
        assert len(chart.series) == 4
        assert "LSQ-CAM" in chart.to_svg()

    def test_perf_result_helpers(self):
        result = _perf_result()
        assert result.slowdown_group == ["a"]
        assert result.speedup_group == ["b"]
        assert result.within_pct == 0
        assert result.all_correct


class TestMultiFunctionPrograms:
    def test_extraction_spans_functions(self):
        from repro.programs import Function, HotPath, Program, extract_regions
        from tests.conftest import build_simple_region

        def factory():
            return build_simple_region()

        program = Program(
            name="two-fn",
            functions=[
                Function("f", paths=[HotPath("p", 0.6, factory)]),
                Function("g", paths=[HotPath("q", 0.3, factory)]),
            ],
        )
        regions = extract_regions(program, top_k=1)
        assert len(regions) == 2
        assert {r.function for r in regions} == {"f", "g"}
        assert regions[0].weight >= regions[1].weight
        assert len(program.all_paths) == 2
