"""Unit tests for region-graph serialization."""

import json

import pytest

from repro.compiler import compile_region
from repro.ir.serialize import dump_graph, graph_from_dict, graph_to_dict, load_graph
from repro.workloads import build_workload, get_spec
from tests.conftest import build_may_region, build_simple_region


def roundtrip(graph):
    return graph_from_dict(json.loads(json.dumps(graph_to_dict(graph))))


class TestRoundTrip:
    def test_structure_preserved(self):
        g = build_simple_region()
        g2 = roundtrip(g)
        assert len(g2) == len(g)
        assert [op.opcode for op in g2.ops] == [op.opcode for op in g.ops]
        assert [op.inputs for op in g2.ops] == [op.inputs for op in g.ops]

    def test_addresses_preserved(self):
        g = build_simple_region()
        g2 = roundtrip(g)
        env = {"i": 3}
        for a, b in zip(g.memory_ops, g2.memory_ops):
            assert a.addr.evaluate(env) == b.addr.evaluate(env)
            assert a.addr.width == b.addr.width

    def test_mdes_preserved(self):
        g = build_may_region()
        compile_region(g)
        g2 = roundtrip(g)
        assert [(e.src, e.dst, e.kind) for e in g2.mdes] == [
            (e.src, e.dst, e.kind) for e in g.mdes
        ]

    def test_provenance_survives(self):
        g = build_may_region()
        g2 = roundtrip(g)
        for a, b in zip(g.memory_ops, g2.memory_ops):
            assert (a.addr.interprocedural_base is None) == (
                b.addr.interprocedural_base is None
            )

    def test_object_identity_shared(self):
        """Two ops on the same array must share one rebuilt object."""
        g = build_simple_region()
        g2 = roundtrip(g)
        ld1, ld2, st = g2.memory_ops
        assert ld1.addr.runtime_base.uid == st.addr.runtime_base.uid
        assert ld1.addr.runtime_base.uid != ld2.addr.runtime_base.uid

    def test_pipeline_labels_identical(self):
        g = build_may_region()
        result1 = compile_region(g)
        g2 = roundtrip(g)
        g2.clear_mdes()
        result2 = compile_region(g2)
        c1 = {k.value: v for k, v in result1.final_labels.counts().items()}
        c2 = {k.value: v for k, v in result2.final_labels.counts().items()}
        assert c1 == c2
        assert len(result1.mdes) == len(result2.mdes)

    def test_suite_workload_roundtrip(self):
        w = build_workload(get_spec("parser"))
        g2 = roundtrip(w.graph)
        env = w.invocations(1)[0]
        for a, b in zip(w.graph.memory_ops, g2.memory_ops):
            assert a.addr.evaluate(env) == b.addr.evaluate(env)

    def test_file_round_trip(self, tmp_path):
        g = build_simple_region()
        path = tmp_path / "region.json"
        dump_graph(g, str(path))
        g2 = load_graph(str(path))
        assert len(g2) == len(g)
        assert g2.name == g.name

    def test_simulation_agrees_after_reload(self):
        from repro.sim import golden_execute

        g = build_simple_region()
        g2 = roundtrip(g)
        envs = [{"i": k} for k in range(4)]
        r1 = golden_execute(g, envs)
        r2 = golden_execute(g2, envs)
        assert r1.load_values == r2.load_values
        assert r1.memory_image == r2.memory_image
