"""Unit tests for the program model, extraction, promotion, and scope study."""

import pytest

from repro.ir import (
    AddressExpr,
    AffineExpr,
    IVar,
    MemObject,
    MemorySpace,
    Opcode,
    PointerParam,
    RegionBuilder,
)
from repro.programs import (
    Function,
    HotPath,
    Program,
    extract_regions,
    promote_scratchpad,
    widen_scope_study,
)
from repro.workloads import get_spec
from repro.workloads.suite import build_program


def region_with_locals():
    heap = MemObject("h", 4096, MemorySpace.HEAP, base_addr=0x1000)
    stack = MemObject("s", 256, MemorySpace.STACK, base_addr=0x9000)
    iv = IVar("i", 8)
    b = RegionBuilder("locals")
    x = b.input("x")
    ld_heap = b.load(heap, AffineExpr.of(ivs={iv: 8}))
    ld_stack = b.load(stack, AffineExpr.constant(0))
    acc = b.add(ld_heap, ld_stack)
    st_stack = b.store(stack, AffineExpr.constant(8), value=acc)
    st_heap = b.store(heap, AffineExpr.of(ivs={iv: 8}), value=acc)
    return b.build()


class TestPromotion:
    def test_local_ops_become_spad(self):
        result = promote_scratchpad(region_with_locals())
        assert result.n_promoted == 2
        assert result.n_kept == 2
        opcodes = [op.opcode for op in result.graph.ops]
        assert opcodes.count(Opcode.SPAD_LOAD) == 1
        assert opcodes.count(Opcode.SPAD_STORE) == 1

    def test_dataflow_shape_preserved(self):
        original = region_with_locals()
        promoted = promote_scratchpad(original).graph
        assert len(promoted) == len(original)
        for a, b in zip(original.ops, promoted.ops):
            assert a.inputs == b.inputs

    def test_promoted_fraction(self):
        result = promote_scratchpad(region_with_locals())
        assert result.promoted_fraction == pytest.approx(0.5)

    def test_heap_only_region_untouched(self, simple_region):
        result = promote_scratchpad(simple_region)
        assert result.n_promoted == 0
        assert [op.opcode for op in result.graph.ops] == [
            op.opcode for op in simple_region.ops
        ]


class TestExtraction:
    def test_extracts_top_k_by_weight(self):
        program = build_program(get_spec("parser"), top_k=3)
        regions = extract_regions(program, top_k=3)
        assert len(regions) == 3
        weights = [r.weight for r in regions]
        assert weights == sorted(weights, reverse=True)

    def test_region_names_qualified(self):
        program = build_program(get_spec("gzip"), top_k=1)
        region = extract_regions(program, top_k=1)[0]
        assert region.name.startswith("gzip/")

    def test_promotion_applied_during_extraction(self):
        program = build_program(get_spec("crafty"), top_k=1)
        region = extract_regions(program, top_k=1)[0]
        assert region.n_promoted > 0

    def test_promotion_can_be_disabled(self):
        program = build_program(get_spec("crafty"), top_k=1)
        region = extract_regions(program, top_k=1, promote_locals=False)[0]
        assert region.n_promoted == 0

    def test_function_lookup(self):
        program = build_program(get_spec("gzip"))
        fn = program.function("gzip.kernel")
        assert fn.paths
        with pytest.raises(KeyError):
            program.function("nope")

    def test_hottest_ordering(self):
        fn = Function(
            "f",
            paths=[
                HotPath("a", 0.1, lambda: RegionBuilder().build(validate=False)),
                HotPath("b", 0.9, lambda: RegionBuilder().build(validate=False)),
            ],
        )
        assert [p.name for p in fn.hottest(2)] == ["b", "a"]


class TestScopeStudy:
    def test_opaque_parent_accesses_add_mays(self):
        w_graph = region_with_locals()
        target = MemObject("ext", 4096, base_addr=0x20000)
        opaque = PointerParam("op", runtime_object=target, provenance=None)
        parent = [AddressExpr(opaque, AffineExpr.constant(0), 8)]
        study = widen_scope_study(w_graph, parent)
        assert study.added_may > 0

    def test_known_parent_objects_add_nothing(self):
        w_graph = region_with_locals()
        known = MemObject("g", 4096, MemorySpace.GLOBAL, base_addr=0x30000)
        parent = [AddressExpr(known, AffineExpr.constant(0), 8)]
        study = widen_scope_study(w_graph, parent)
        assert study.added_may == 0

    def test_blowup_benchmarks_increase(self):
        for name in ["bzip2", "soplex", "povray"]:
            from repro.workloads import build_workload

            w = build_workload(get_spec(name))
            program = build_program(get_spec(name), top_k=1)
            study = widen_scope_study(
                w.graph, program.functions[0].parent_accesses
            )
            assert study.may_increase_factor > 2.0, name

    def test_factor_with_zero_region_mays(self):
        from repro.programs.scope import ScopeStudyResult

        r = ScopeStudyResult(region_may=0, added_may=5, added_pairs=10)
        assert r.may_increase_factor == 5.0
        r2 = ScopeStudyResult(region_may=0, added_may=0, added_pairs=10)
        assert r2.may_increase_factor == 1.0
