"""Row-level invariants every figure's result must satisfy."""

import pytest

from repro.experiments import (
    appendix_model,
    fig06,
    fig07,
    fig09,
    fig10,
    fig14,
    fig16,
    fig17,
    fig18,
    scope_study,
    table2,
)

INV = 8


@pytest.fixture(scope="module")
def f17():
    return fig17.run(invocations=INV)


@pytest.fixture(scope="module")
def f18():
    return fig18.run(invocations=INV)


class TestPercentagesWellFormed:
    def test_fig06_fractions_bounded(self):
        for r in fig06.run(top_k=1).rows:
            assert 0.0 <= r.pct_may <= 100.0
            assert 0.0 <= r.pct_must <= 100.0
            assert r.pct_may + r.pct_must <= 100.0 + 1e-9

    def test_fig07_conversion_bounded(self):
        for r in fig07.run(top_k=1).rows:
            assert 0.0 <= r.converted_pct <= 100.0

    def test_fig09_retained_split_sums(self):
        for r in fig09.run(top_k=1).rows:
            assert r.retained_may_pct + r.retained_must_pct == pytest.approx(
                r.retained_pct
            )

    def test_fig10_percentages(self):
        for r in fig10.run().rows:
            assert 0.0 <= r.pct_mem <= 100.0
            assert 0.0 <= r.pct_may_ops <= 100.0

    def test_fig14_buckets_sum_to_100(self):
        for r in fig14.run().rows:
            assert sum(r.pct_by_bucket.values()) == pytest.approx(100.0)

    def test_fig17_breakdown_sums_to_100(self, f17):
        for r in f17.rows:
            assert r.pct_compute + r.pct_mde + r.pct_l1 == pytest.approx(
                100.0, abs=0.5
            )

    def test_fig18_breakdown_sums_to_100(self, f18):
        for r in f18.rows:
            total = r.pct_compute + r.pct_bloom + r.pct_cam + r.pct_l1
            assert total == pytest.approx(100.0, abs=0.5)

    def test_fig18_bloom_rate_bounded(self, f18):
        for r in f18.rows:
            assert 0.0 <= r.bloom_hit_pct <= 100.0


class TestCrossExperimentConsistency:
    def test_fig16_nachos_never_exceeds_baseline(self):
        for r in fig16.run().rows:
            assert r.nachos_mdes <= r.baseline_mdes, r.name
            assert r.nachos_may + r.nachos_must == r.nachos_mdes

    def test_appendix_ratio_consistent_with_fig16(self):
        apx = {r.name: r for r in appendix_model.run().rows}
        f16 = {r.name: r for r in fig16.run().rows}
        for name, row in apx.items():
            assert row.pairs_may == f16[name].nachos_may, name

    def test_table2_matches_fig10_mem_fraction(self):
        t2 = {r.name: r for r in table2.run().rows}
        f10 = {r.name: r for r in fig10.run().rows}
        for name in t2:
            expected = 100.0 * t2[name].n_mem / t2[name].n_ops if t2[name].n_ops else 0
            assert f10[name].pct_mem == pytest.approx(expected)

    def test_scope_factor_consistent(self):
        for r in scope_study.run().rows:
            if r.region_may:
                assert r.factor == pytest.approx(
                    (r.region_may + r.added_may) / r.region_may
                )
            assert r.added_may >= 0

    def test_zero_mem_benchmarks_inert_everywhere(self, f17, f18):
        for result, attr in ((f17, "pct_mde"),):
            for r in result.rows:
                if r.name in ("blackscholes", "ferret"):
                    assert getattr(r, attr) == 0.0
        for r in f18.rows:
            if r.name in ("blackscholes", "ferret"):
                assert r.pct_bloom == 0.0 and r.pct_cam == 0.0

    def test_energy_never_negative(self, f17, f18):
        for r in f17.rows:
            assert r.pct_mde >= 0.0
        for r in f18.rows:
            assert r.pct_bloom >= 0.0 and r.pct_cam >= 0.0
