"""Memory-ordering litmus suite.

Small regions encoding each ordering family the paper's Figure 2 lists —
ST-ST, ST-LD (forwarding), LD-ST (anti-dependence) — plus the awkward
variants (partial overlaps, mixed widths, chains, late operands), each
run under *every* backend and checked against program order.  The spirit
of the pipecheck litmus tests the paper cites, applied to our backends.
"""

from __future__ import annotations

import pytest

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.ir import AffineExpr, MemObject, PointerParam, RegionBuilder, Sym
from repro.memory import MemoryHierarchy
from repro.sim import (
    DataflowEngine,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    SerialMemBackend,
    SpecLSQBackend,
    golden_execute,
)

BACKENDS = {
    "opt-lsq": OptLSQBackend,
    "spec-lsq": SpecLSQBackend,
    "serial-mem": SerialMemBackend,
    "nachos-sw": NachosSWBackend,
    "nachos": NachosBackend,
}
NEEDS_MDES = {"nachos-sw", "nachos"}


def check(build_fn, backend_name, envs):
    graph = build_fn()
    if backend_name in NEEDS_MDES:
        compile_region(graph)
    else:
        graph.clear_mdes()
    engine = DataflowEngine(
        graph, place_region(graph), MemoryHierarchy(), BACKENDS[backend_name]()
    )
    result = engine.run(envs)
    golden = golden_execute(graph, envs)
    assert golden.matches(result.load_values, result.memory_image), backend_name


def _arr(name="a", base=0x1000):
    return MemObject(name, 8192, base_addr=base)


def _slow_value(b, x, n=6):
    prev = x
    for _ in range(n):
        prev = b.fdiv(prev, x)
    return prev


# ---------------------------------------------------------------------------
# Litmus patterns (each returns a graph factory)
# ---------------------------------------------------------------------------


def st_ld_exact():
    a = _arr()
    b = RegionBuilder("st-ld-exact")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=x)
    b.load(a, AffineExpr.constant(0))
    return b.build()


def st_ld_slow_store_value():
    a = _arr()
    b = RegionBuilder("st-ld-slow-value")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=_slow_value(b, x))
    b.load(a, AffineExpr.constant(0))
    return b.build()


def st_ld_partial():
    a = _arr()
    b = RegionBuilder("st-ld-partial")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=x, width=8)
    b.load(a, AffineExpr.constant(4), width=8)
    return b.build()


def st_ld_narrow_within_wide():
    a = _arr()
    b = RegionBuilder("st-ld-narrow")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=x, width=8)
    b.load(a, AffineExpr.constant(2), width=4)
    return b.build()


def ld_st_anti():
    a = _arr()
    b = RegionBuilder("ld-st")
    x = b.input("x")
    slow = _slow_value(b, x)
    gep = b.gep(slow)
    b.load(a, AffineExpr.constant(0), inputs=[gep])
    b.store(a, AffineExpr.constant(0), value=x)
    return b.build()


def st_st_same():
    a = _arr()
    b = RegionBuilder("st-st")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=_slow_value(b, x))
    b.store(a, AffineExpr.constant(0), value=x)
    return b.build()


def st_st_partial_overlap():
    a = _arr()
    b = RegionBuilder("st-st-partial")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=_slow_value(b, x), width=8)
    b.store(a, AffineExpr.constant(4), value=x, width=8)
    return b.build()


def forwarding_chain():
    """st -> ld -> (compute) -> st -> ld on the same address."""
    a = _arr()
    b = RegionBuilder("fwd-chain")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=x)
    ld1 = b.load(a, AffineExpr.constant(0))
    s = b.add(ld1, x)
    b.store(a, AffineExpr.constant(0), value=s)
    b.load(a, AffineExpr.constant(0))
    return b.build()


def opaque_maybe_conflict():
    hidden = MemObject("h", 4096, base_addr=0x9000)
    a = _arr()
    p = PointerParam("p", runtime_object=a, provenance=None)  # actually IS a!
    b = RegionBuilder("opaque-hit")
    x = b.input("x")
    b.store(p, AffineExpr.constant(0), value=x)
    b.load(a, AffineExpr.constant(0))
    return b.build()


def sym_same_slot():
    a = _arr()
    b = RegionBuilder("sym-conflict")
    x = b.input("x")
    b.store(a, AffineExpr.of(syms={Sym("s1"): 8}), value=x)
    b.load(a, AffineExpr.of(syms={Sym("s2"): 8}))
    return b.build()


def three_store_race():
    a = _arr()
    b = RegionBuilder("3-store")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=_slow_value(b, x, 8))
    b.store(a, AffineExpr.constant(0), value=_slow_value(b, x, 3))
    b.store(a, AffineExpr.constant(0), value=x)
    b.load(a, AffineExpr.constant(0))
    return b.build()


def forward_chain_straddle():
    """ST->LD forwarding chain feeding a store on a *different*, warmer
    line: the forwarded value arrives long before the source store's
    cold straddling write publishes, so treating the FORWARD edge as
    publish-ordering (the old stage-3 pruning) lets the younger store
    publish first and drops the ordering edge the chain still needs."""
    a = _arr()
    b = RegionBuilder("fwd-chain-straddle")
    x = b.input("x")
    b.load(a, AffineExpr.constant(64))               # warms line 1
    b.store(a, AffineExpr.constant(60), value=x)     # straddles, line 0 cold
    ld = b.load(a, AffineExpr.constant(60))          # forwarded from above
    v = b.add(ld, b.const(1))
    b.store(a, AffineExpr.constant(64), value=v, width=2)  # line 1, fast
    return b.build()


LITMUS = {
    "st_ld_exact": (st_ld_exact, [{}]),
    "st_ld_slow_store_value": (st_ld_slow_store_value, [{}]),
    "st_ld_partial": (st_ld_partial, [{}]),
    "st_ld_narrow_within_wide": (st_ld_narrow_within_wide, [{}]),
    "ld_st_anti": (ld_st_anti, [{}]),
    "st_st_same": (st_st_same, [{}]),
    "st_st_partial_overlap": (st_st_partial_overlap, [{}]),
    "forwarding_chain": (forwarding_chain, [{}]),
    "opaque_maybe_conflict": (opaque_maybe_conflict, [{}]),
    "sym_same_slot_hit": (sym_same_slot, [{"s1": 3, "s2": 3}]),
    "sym_same_slot_miss": (sym_same_slot, [{"s1": 3, "s2": 7}]),
    "three_store_race": (three_store_race, [{}]),
    "forward_chain_straddle": (forward_chain_straddle, [{}]),
}


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("litmus", sorted(LITMUS))
def test_litmus(backend, litmus):
    build_fn, envs = LITMUS[litmus]
    check(build_fn, backend, envs)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_litmus_repeated_invocations(backend):
    """Every pattern stays correct across repeated invocations (cache
    warm, LSQ/bloom state reset, predictors trained)."""
    for name, (build_fn, envs) in LITMUS.items():
        check(build_fn, backend, envs * 4)


def test_same_cycle_drain_order():
    """Pins the engine's same-cycle semantics that backend tie-breaks
    (e.g. spec-lsq's ``_store_observed_by`` with ``<=``) rely on: events
    scheduled for the same cycle drain in FIFO scheduling order, and a
    store publishes to value memory at its completion instant — so a
    publish drained before a read at the same cycle *is* observed, and
    one drained after is not."""
    a = _arr()
    b = RegionBuilder("same-cycle")
    x = b.input("x")
    b.store(a, AffineExpr.constant(0), value=x)
    g = b.build()
    g.clear_mdes()
    engine = DataflowEngine(
        g, place_region(g), MemoryHierarchy(), SerialMemBackend()
    )

    order = []
    seen = {}
    engine.schedule(5, lambda: order.append("a"))
    engine.schedule(5, lambda: order.append("b"))
    # publish-then-read at cycle 7: the read observes the store.
    engine.schedule(7, lambda: engine.memory.store(0x1000, 8, 99))
    engine.schedule(7, lambda: seen.__setitem__("after", engine.memory.load(0x1000, 8)))
    # read-then-publish at cycle 9: the read observes the *old* value.
    engine.schedule(9, lambda: seen.__setitem__("before", engine.memory.load(0x1000, 8)))
    engine.schedule(9, lambda: engine.memory.store(0x1000, 8, 123))
    engine._drain_events()

    from repro.sim.values import forwarded_value

    assert order == ["a", "b"]
    assert seen["after"] == forwarded_value(99, 8)
    assert seen["before"] == forwarded_value(99, 8)  # not yet 123's image
    assert engine.memory.load(0x1000, 8) == forwarded_value(123, 8)
