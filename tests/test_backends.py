"""Unit tests for the three disambiguation backends."""

import pytest

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.energy.config import EnergyEvent
from repro.ir import (
    AffineExpr,
    IVar,
    MDEKind,
    MemObject,
    MemoryDependencyEdge,
    PointerParam,
    RegionBuilder,
    Sym,
)
from repro.memory import MemoryHierarchy
from repro.sim import (
    DataflowEngine,
    LSQConfig,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    golden_execute,
)


def run(graph, backend, envs, lsq_config=None):
    if isinstance(backend, str):
        backend = {
            "lsq": lambda: OptLSQBackend(lsq_config),
            "sw": NachosSWBackend,
            "hw": NachosBackend,
        }[backend]()
    engine = DataflowEngine(graph, place_region(graph), MemoryHierarchy(), backend)
    return engine.run(envs), engine


def rmw_region():
    """st a[8i]=x ; ld a[8i] — exact ST->LD forwarding pair."""
    a = MemObject("a", 65536, base_addr=0x1000)
    iv = IVar("i", 64)
    b = RegionBuilder()
    x = b.input("x")
    st = b.store(a, AffineExpr.of(ivs={iv: 8}), value=x)
    ld = b.load(a, AffineExpr.of(ivs={iv: 8}))
    return b.build(), st, ld


def indirect_region(n_stores=4):
    """Sym-indexed stores + one sym-indexed load: all-MAY pairs."""
    tab = MemObject("tab", 4096, base_addr=0x2000)
    b = RegionBuilder()
    x = b.input("x")
    stores = []
    for k in range(n_stores):
        s = Sym(f"s{k}")
        stores.append(b.store(tab, AffineExpr.of(syms={s: 8}), value=x))
    sl = Sym("sl")
    ld = b.load(tab, AffineExpr.of(syms={sl: 8}))
    return b.build(), stores, ld


class TestOptLSQ:
    def test_forwarding_on_exact_match(self):
        g, st, ld = rmw_region()
        g.clear_mdes()
        result, eng = run(g, "lsq", [{"i": 0}])
        assert result.backend_stats.lsq_forwards == 1
        # forwarded load does not touch the cache
        assert eng.energy.counts[EnergyEvent.L1_READ] == 0
        golden = golden_execute(g, [{"i": 0}])
        assert golden.matches(result.load_values, result.memory_image)

    def test_partial_overlap_waits_and_reads_cache(self):
        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.constant(0), value=x, width=8)
        ld = b.load(a, AffineExpr.constant(4), width=8)
        g = b.build()
        result, eng = run(g, "lsq", [{}])
        assert result.backend_stats.lsq_forwards == 0
        assert eng.energy.counts[EnergyEvent.L1_READ] == 1
        golden = golden_execute(g, [{}])
        assert golden.matches(result.load_values, result.memory_image)

    def test_bloom_probes_once_per_memory_op(self):
        g, *_ = rmw_region()
        g.clear_mdes()
        result, _ = run(g, "lsq", [{"i": k} for k in range(5)])
        assert result.backend_stats.bloom_probes == 2 * 5

    def test_bloom_hit_pays_cam(self):
        g, st, ld = rmw_region()
        result, eng = run(g, "lsq", [{"i": 0}])
        assert result.backend_stats.bloom_hits >= 1
        assert result.backend_stats.cam_checks == result.backend_stats.bloom_hits
        assert eng.energy.counts[EnergyEvent.LSQ_CAM_LOAD] >= 1

    def test_no_stores_no_bloom_hits(self):
        a = MemObject("a", 4096, base_addr=0x1000)
        c = MemObject("c", 4096, base_addr=0x9000)
        iv = IVar("i", 16)
        b = RegionBuilder()
        b.load(a, AffineExpr.of(ivs={iv: 8}))
        b.load(c, AffineExpr.of(ivs={iv: 8}))
        g = b.build()
        result, _ = run(g, "lsq", [{"i": k} for k in range(4)])
        assert result.backend_stats.bloom_hits == 0

    def test_in_order_issue_pipeline_penalty(self):
        """An independent load still pays the LSQ path latency."""
        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        ld = b.load(a, AffineExpr.constant(0))
        g = b.build()
        lsq_result, _ = run(g, "lsq", [{}, {}])
        sw_result, _ = run(g, "sw", [{}, {}])
        # Warm invocation: LSQ pays +pipeline_penalty on the same hit.
        assert (
            lsq_result.per_invocation_cycles[1]
            >= sw_result.per_invocation_cycles[1] + 2
        )

    def test_st_st_ordering_correct(self):
        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        y = b.input("y")
        s1 = b.store(a, AffineExpr.constant(0), value=x)
        s2 = b.store(a, AffineExpr.constant(0), value=y)
        g = b.build()
        envs = [{}]
        result, _ = run(g, "lsq", envs)
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_ld_st_antidependence_correct(self):
        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        ld = b.load(a, AffineExpr.constant(0))
        st = b.store(a, AffineExpr.constant(0), value=x)
        g = b.build()
        envs = [{}, {}]
        result, _ = run(g, "lsq", envs)
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_bank_capacity_stalls_but_stays_correct(self):
        cfg = LSQConfig(banks=1, entries_per_bank=2)
        g, stores, ld = indirect_region(n_stores=6)
        g.clear_mdes()
        envs = [{f"s{k}": k for k in range(6)} | {"sl": 2} for _ in range(3)]
        result, _ = run(g, "lsq", envs, lsq_config=cfg)
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)


class TestNachosSW:
    def test_order_edge_serializes(self):
        g, stores, ld = indirect_region(n_stores=2)
        compile_region(g)  # installs MAY MDEs
        envs = [{"s0": 0, "s1": 1, "sl": 0}]
        result, _ = run(g, "sw", envs)
        assert result.backend_stats.order_waits >= 2
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_forward_edge_used(self):
        g, st, ld = rmw_region()
        res = compile_region(g)
        assert any(e.kind is MDEKind.FORWARD for e in g.mdes)
        result, eng = run(g, "sw", [{"i": 3}])
        assert eng.energy.counts[EnergyEvent.MDE_FORWARD] == 1
        assert eng.energy.counts[EnergyEvent.L1_READ] == 0  # forwarded
        golden = golden_execute(g, [{"i": 3}])
        assert golden.matches(result.load_values, result.memory_image)

    def test_no_lsq_events(self):
        g, *_ = rmw_region()
        compile_region(g)
        result, eng = run(g, "sw", [{"i": 0}])
        assert result.backend_stats.bloom_probes == 0
        assert eng.energy.counts[EnergyEvent.LSQ_BLOOM] == 0

    def test_may_treated_as_order_energy(self):
        g, stores, ld = indirect_region(n_stores=2)
        compile_region(g)
        _, eng = run(g, "sw", [{"s0": 0, "s1": 1, "sl": 0}])
        # 1-bit ordering energy, not comparator energy
        assert eng.energy.counts[EnergyEvent.MDE_MUST] > 0
        assert eng.energy.counts[EnergyEvent.MDE_MAY_CHECK] == 0


class TestNachos:
    def test_checks_resolve_nonconflicting(self):
        g, stores, ld = indirect_region(n_stores=3)
        compile_region(g)
        envs = [{"s0": 0, "s1": 1, "s2": 2, "sl": 10}]  # no conflicts
        result, eng = run(g, "hw", envs)
        assert result.backend_stats.comparator_checks > 0
        assert result.backend_stats.comparator_conflicts == 0
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_conflict_detected_and_ordered(self):
        g, stores, ld = indirect_region(n_stores=2)
        compile_region(g)
        envs = [{"s0": 10, "s1": 1, "sl": 10}]  # store0 conflicts load
        result, _ = run(g, "hw", envs)
        assert result.backend_stats.comparator_conflicts >= 1
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_faster_than_sw_on_nonconflicting_mays(self):
        envs = [{"s0": 0, "s1": 1, "s2": 2, "s3": 3, "sl": 20}] * 4
        g1, *_ = indirect_region(4)
        compile_region(g1)
        sw_result, _ = run(g1, "sw", envs)
        g2, *_ = indirect_region(4)
        compile_region(g2)
        hw_result, _ = run(g2, "hw", envs)
        assert hw_result.cycles < sw_result.cycles

    def test_comparator_energy_charged_per_check(self):
        g, stores, ld = indirect_region(n_stores=3)
        compile_region(g)
        result, eng = run(g, "hw", [{"s0": 0, "s1": 1, "s2": 2, "sl": 9}])
        assert (
            eng.energy.counts[EnergyEvent.MDE_MAY_CHECK]
            == result.backend_stats.comparator_checks
        )

    def test_runtime_forwarding_on_exact_conflict(self):
        tab = MemObject("tab", 4096, base_addr=0x2000)
        s0, sl = Sym("s0"), Sym("sl")
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(tab, AffineExpr.of(syms={s0: 8}), value=x)
        ld = b.load(tab, AffineExpr.of(syms={sl: 8}))
        g = b.build()
        compile_region(g)
        envs = [{"s0": 5, "sl": 5}]
        result, eng = run(g, "hw", envs)
        assert result.backend_stats.runtime_forwards == 1
        assert eng.energy.counts[EnergyEvent.L1_READ] == 0
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_fan_in_contention_serializes_checks(self):
        """Many MAY parents on one op arbitrate one check per cycle."""
        g, stores, ld = indirect_region(n_stores=8)
        compile_region(g)
        env = {f"s{k}": k for k in range(8)} | {"sl": 30}
        result, _ = run(g, "hw", [env])
        fan_checks = result.backend_stats.comparator_checks
        assert fan_checks >= 8

    def test_parent_completion_resolves_without_check(self):
        """If the parent completes before its address reaches the
        comparator queue, no check energy is spent."""
        # Store with constant (immediately ready) addr vs a load whose
        # address arrives much later (behind a dependent chain).
        tab = MemObject("tab", 4096, base_addr=0x2000)
        other = MemObject("oth", 4096, base_addr=0x8000)
        sl = Sym("sl")
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(tab, AffineExpr.constant(0), value=x)
        # long chain delaying the load's address operand
        prev = x
        for _ in range(40):
            prev = b.fdiv(prev, x)
        gep = b.gep(prev)
        ld = b.load(tab, AffineExpr.of(syms={sl: 8}), inputs=[gep])
        g = b.build()
        compile_region(g)
        envs = [{"sl": 40}]
        result, _ = run(g, "hw", envs)
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)


class TestCrossBackendAgreement:
    @pytest.mark.parametrize("backend", ["lsq", "sw", "hw"])
    def test_all_match_oracle_on_conflict_mix(self, backend):
        g, stores, ld = indirect_region(n_stores=4)
        if backend == "lsq":
            g.clear_mdes()
        else:
            compile_region(g)
        envs = [
            {"s0": 1, "s1": 2, "s2": 1, "s3": 9, "sl": 1},
            {"s0": 0, "s1": 0, "s2": 0, "s3": 0, "sl": 0},
            {"s0": 3, "s1": 4, "s2": 5, "s3": 6, "sl": 7},
        ]
        result, _ = run(g, backend, envs)
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)
