"""Tests for DOT export."""

import pytest

from repro.compiler import compile_region
from repro.ir.dot import dump_dot, graph_to_dot
from tests.conftest import build_may_region, build_simple_region


class TestDotExport:
    def test_valid_structure(self):
        g = build_simple_region()
        dot = graph_to_dot(g)
        assert dot.startswith('digraph "simple" {')
        assert dot.rstrip().endswith("}")
        # one node per op, one edge per input
        assert dot.count("[label=") >= len(g)
        n_edges = sum(len(op.inputs) for op in g.ops)
        assert dot.count(" -> ") == n_edges

    def test_memory_ops_styled(self):
        g = build_simple_region()
        dot = graph_to_dot(g)
        assert dot.count('label="LD') == 2
        assert dot.count('label="ST') == 1

    def test_mde_styles(self):
        g = build_may_region()
        compile_region(g)
        dot = graph_to_dot(g)
        if any(e.kind.value == "may" for e in g.mdes):
            assert "style=dotted" in dot

    def test_memory_only_skeleton(self):
        g = build_simple_region()
        compile_region(g)
        dot = graph_to_dot(g, include_compute=False)
        # only memory nodes, only MDE edges
        assert dot.count("[label=") == len(g.memory_ops)
        assert dot.count(" -> ") == len(g.mdes)

    def test_dump_to_file(self, tmp_path):
        g = build_simple_region()
        path = tmp_path / "r.dot"
        dump_dot(g, str(path))
        assert path.read_text().startswith("digraph")

    def test_rankdir(self):
        g = build_simple_region()
        assert "rankdir=LR" in graph_to_dot(g, rankdir="LR")
