"""Unit tests for value semantics and the program-order oracle."""

import pytest

from repro.ir import AffineExpr, IVar, MemObject, RegionBuilder
from repro.sim.oracle import golden_execute
from repro.sim.values import ValueMemory, forwarded_value, mix


class TestMix:
    def test_deterministic(self):
        assert mix(1, 2, 3) == mix(1, 2, 3)

    def test_order_sensitive(self):
        assert mix(1, 2) != mix(2, 1)

    def test_arity_sensitive(self):
        assert mix(1) != mix(1, 0)

    def test_64_bit(self):
        assert 0 <= mix(12345) < (1 << 64)


class TestValueMemory:
    def test_store_load_roundtrip(self):
        m = ValueMemory()
        m.store(100, 8, value=42)
        assert m.load(100, 8) == m.load(100, 8)

    def test_different_values_differ(self):
        m1, m2 = ValueMemory(), ValueMemory()
        m1.store(100, 8, 1)
        m2.store(100, 8, 2)
        assert m1.load(100, 8) != m2.load(100, 8)

    def test_partial_overlap_is_order_sensitive(self):
        m1, m2 = ValueMemory(), ValueMemory()
        m1.store(100, 8, 1)
        m1.store(104, 8, 2)
        m2.store(104, 8, 2)
        m2.store(100, 8, 1)
        assert m1.load(100, 8) != m2.load(100, 8)

    def test_uninitialized_reads_are_stable(self):
        m = ValueMemory()
        assert m.load(0, 8) == ValueMemory().load(0, 8)

    def test_snapshot_canonical(self):
        m1, m2 = ValueMemory(), ValueMemory()
        m1.store(0, 8, 7)
        m1.store(64, 8, 9)
        m2.store(64, 8, 9)
        m2.store(0, 8, 7)
        assert m1.snapshot() == m2.snapshot()

    def test_forwarded_value_matches_store_then_load(self):
        m = ValueMemory()
        m.store(256, 8, value=77)
        assert forwarded_value(77, 8) == m.load(256, 8)

    def test_len_counts_bytes(self):
        m = ValueMemory()
        m.store(0, 8, 1)
        assert len(m) == 8


class TestGoldenOracle:
    def test_load_sees_older_store(self):
        a = MemObject("a", 4096)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.constant(0), value=x)
        ld = b.load(a, AffineExpr.constant(0))
        g = b.build()
        result = golden_execute(g, [{}])
        # The load's value equals storing x's value then loading it.
        assert result.load_values[(0, ld.op_id)] == forwarded_value(
            mix(0x1F, x.op_id, 0), 8
        )

    def test_invocations_accumulate_memory(self):
        a = MemObject("a", 4096)
        iv = IVar("i", 4)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.of(ivs={iv: 8}), value=x)
        g = b.build()
        result = golden_execute(g, [{"i": k} for k in range(4)])
        assert len(result.memory_image) == 4 * 8  # four 8-byte stores

    def test_input_values_vary_per_invocation(self):
        a = MemObject("a", 4096)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.constant(0), value=x)
        ld = b.load(a, AffineExpr.constant(0))
        g = b.build()
        result = golden_execute(g, [{}, {}])
        assert result.load_values[(0, ld.op_id)] != result.load_values[(1, ld.op_id)]

    def test_matches_api(self):
        g_result = golden_execute(
            RegionBuilder().build(validate=False), []
        )
        assert g_result.matches({}, ())
        assert not g_result.matches({(0, 0): 1}, ())
