"""Tests for the kernel DSL parser."""

import pytest

from repro.compiler import AliasLabel, compile_region
from repro.ir.dsl import DSLError, parse_region
from repro.ir.opcodes import Opcode

SIMPLE = """
# a tiny saxpy-like kernel
arr a 4096
arr b 4096
ivar i 64
in x
t1 = ld a[8*i]
t2 = fmul t1 x
st b[8*i] = t2
"""


class TestParsing:
    def test_simple_kernel(self):
        g = parse_region(SIMPLE)
        assert len(g) == 4
        assert len(g.loads) == 1
        assert len(g.stores) == 1
        opcodes = [op.opcode for op in g.ops]
        assert Opcode.FMUL in opcodes

    def test_comments_and_blank_lines_ignored(self):
        g = parse_region("\n# nothing\n\narr a 64\nin x\nst a[0] = x\n")
        assert len(g) == 2

    def test_affine_addresses(self):
        g = parse_region(
            "arr a 65536\nivar i 16\nivar j 16\nsym s\nin x\n"
            "t = ld a[8*i + 64*j + s + 16]\nu = add t x\n"
        )
        ld = g.loads[0]
        assert ld.addr.offset.evaluate({"i": 1, "j": 2, "s": 3}) == 8 + 128 + 3 + 16

    def test_widths(self):
        g = parse_region(
            "arr a 64\nin x\nt = ld a[0] w4\nst a[8] = x w2\nu = add t x\n"
        )
        assert g.loads[0].addr.width == 4
        assert g.stores[0].addr.width == 2

    def test_stack_space(self):
        g = parse_region("arr s 64 stack\nin x\nst s[0] = x\n")
        assert g.stores[0].addr.runtime_base.is_local

    def test_opaque_pointer_semantics(self):
        text = (
            "arr a 4096\nptr p -> a ?\nptr q -> a\nin x\n"
            "st p[0] = x\nt = ld a[0]\nu = ld q[8]\nv = add t u\n"
        )
        g = parse_region(text)
        result = compile_region(g)
        st, ld_a, ld_q = g.memory_ops
        # Opaque pointer: stage 2 cannot resolve -> MAY survives.
        assert result.final_labels.get(st.op_id, ld_a.op_id) is AliasLabel.MAY

    def test_traceable_pointer_resolved_by_stage2(self):
        text = (
            "arr a 4096\narr b 4096\nptr q -> b\nin x\n"
            "st q[0] = x\nt = ld a[0]\nu = add t x\n"
        )
        g = parse_region(text)
        result = compile_region(g)
        st, ld = g.memory_ops
        assert result.stage1.get(st.op_id, ld.op_id) is AliasLabel.MAY
        assert result.final_labels.get(st.op_id, ld.op_id) is AliasLabel.NO


class TestErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("garbage here", "cannot parse"),
            ("arr a", "usage: arr"),
            ("arr a 64 mars", "unknown space"),
            ("ptr p -> nowhere", "unknown target"),
            ("in x\nin x\nt = add x x", "redefined" ),
            ("arr a 64\nt = ld a[8*z]", "unknown variable"),
            ("t = ld a[0]", "unknown array"),
            ("in x\nt = frob x x", "unknown operation"),
            ("arr a 64\nst a[0] = ghost", "unknown value"),
            ("arr a 64\nin x\nst a[oops = x", "usage: st"),
            ("arr a 64\nin x\nt = ld a(0)", "usage: NAME = ld"),
        ],
    )
    def test_error_messages(self, text, fragment):
        with pytest.raises(DSLError) as err:
            parse_region(text)
        assert fragment in str(err.value)

    def test_error_carries_line_number(self):
        with pytest.raises(DSLError) as err:
            parse_region("arr a 64\n\nbad line\n")
        assert err.value.lineno == 3

    def test_value_redefinition_rejected(self):
        with pytest.raises(DSLError):
            parse_region("in x\nx = add x x")


class TestEndToEnd:
    def test_parsed_kernel_simulates(self):
        from repro.sim import golden_execute
        from tests.conftest import make_engine

        g = parse_region(SIMPLE)
        compile_region(g)
        engine = make_engine(g, "nachos")
        envs = [{"i": k} for k in range(4)]
        result = engine.run(envs)
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_dsl_equivalent_to_builder(self):
        from repro.ir import AffineExpr, IVar, MemObject, RegionBuilder
        from repro.sim import golden_execute

        dsl = parse_region(SIMPLE)
        # Hand-built twin (object identities differ; shape must match).
        assert [op.opcode for op in dsl.ops] == [
            Opcode.INPUT, Opcode.LOAD, Opcode.FMUL, Opcode.STORE
        ]
