"""Properties of the serve-tier consistent-hash ring.

The ring is the routing contract of the sharded cache tier
(``docs/serve.md``): every daemon must map every task fingerprint to
the same owner, across processes and interpreter hash seeds, and
membership churn must move only the keys it has to.  All randomness
below is seeded — the assertions are exact, not flaky bounds.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve.hashring import DEFAULT_VNODES, HashRing, key_point

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def _fingerprints(n: int, seed: int = 7):
    """n pseudo task fingerprints (hex, like ``task_fingerprint``'s)."""
    rng = random.Random(seed)
    return [f"{rng.getrandbits(256):064x}" for _ in range(n)]


def _distribution(ring: HashRing, keys):
    counts = {node: 0 for node in ring.nodes}
    for key in keys:
        counts[ring.owner(key)] += 1
    return counts


def test_balance_bound_over_10k_fingerprints():
    """With 64 vnodes per node, no shard's share of 10k random keys
    strays past 2x/0.4x of the fair share — the bound that keeps one
    daemon from becoming the fleet's hot spot."""
    keys = _fingerprints(10_000)
    for n_nodes in (2, 3, 5):
        ring = HashRing([f"shard{i}" for i in range(n_nodes)])
        counts = _distribution(ring, keys)
        fair = len(keys) / n_nodes
        for node, count in counts.items():
            assert 0.4 * fair < count < 2.0 * fair, (
                f"{node} owns {count}/{len(keys)} keys with {n_nodes} "
                f"nodes (fair share {fair:.0f})"
            )
        assert sum(counts.values()) == len(keys)


def test_owner_is_deterministic_across_processes():
    """key->owner must not depend on interpreter state: a subprocess
    with a different PYTHONHASHSEED maps an identical sample of keys to
    identical owners (the fleet property — daemons are processes)."""
    nodes = ["shard0", "shard1", "shard2"]
    keys = _fingerprints(64, seed=21)
    local = {key: HashRing(nodes).owner(key) for key in keys}

    script = (
        "import json, sys\n"
        "from repro.serve.hashring import HashRing\n"
        "nodes, keys = json.load(sys.stdin)\n"
        "ring = HashRing(nodes)\n"
        "print(json.dumps({k: ring.owner(k) for k in keys}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    env["PYTHONHASHSEED"] = "424242"  # not the suite's seed
    proc = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps([nodes, keys]),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert json.loads(proc.stdout) == local


def test_add_node_remaps_only_to_the_new_node():
    """Growing the ring steals keys *for* the new node only: every key
    either keeps its owner or moves to the addition, and the stolen
    fraction is near 1/(n+1), not a full reshuffle."""
    keys = _fingerprints(10_000, seed=9)
    ring = HashRing(["shard0", "shard1", "shard2", "shard3"])
    before = {key: ring.owner(key) for key in keys}
    assert ring.add("shard4") is True
    assert ring.add("shard4") is False  # idempotent
    moved = 0
    for key in keys:
        after = ring.owner(key)
        if after != before[key]:
            assert after == "shard4", (
                f"{key[:12]} moved {before[key]} -> {after}, "
                "not to the new node"
            )
            moved += 1
    # Fair share for the 5th node is 20%; consistent hashing with 64
    # vnodes lands well inside [8%, 35%].
    assert 0.08 < moved / len(keys) < 0.35


def test_remove_node_remaps_only_its_own_keys():
    keys = _fingerprints(10_000, seed=13)
    ring = HashRing(["shard0", "shard1", "shard2"])
    before = {key: ring.owner(key) for key in keys}
    assert ring.remove("shard1") is True
    assert ring.remove("shard1") is False
    assert "shard1" not in ring
    for key in keys:
        if before[key] != "shard1":
            assert ring.owner(key) == before[key], (
                "a surviving node's key moved on an unrelated removal"
            )
        else:
            assert ring.owner(key) in ("shard0", "shard2")


def test_add_then_remove_is_identity():
    keys = _fingerprints(2_000, seed=17)
    ring = HashRing(["a", "b", "c"])
    before = {key: ring.owner(key) for key in keys}
    ring.add("d")
    ring.remove("d")
    assert {key: ring.owner(key) for key in keys} == before


def test_owners_walk_is_distinct_and_ordered():
    ring = HashRing(["a", "b", "c"], vnodes=DEFAULT_VNODES)
    for key in _fingerprints(50, seed=3):
        owners = ring.owners(key, 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        assert owners[0] == ring.owner(key)
    assert ring.owners("anything", 10) == ring.owners("anything", 3)


def test_empty_and_single_node_edges():
    empty = HashRing([])
    assert empty.owner("k") is None
    assert empty.owners("k", 2) == ()
    assert len(empty) == 0
    solo = HashRing(["only"])
    assert all(solo.owner(k) == "only" for k in _fingerprints(20))


def test_key_point_is_stable():
    """The hash anchor itself is pinned: a silent change to the point
    function would re-home every stored payload in a live fleet."""
    assert key_point("") == key_point("")
    assert key_point("a") != key_point("b")
    # Golden value: sha256-derived, independent of PYTHONHASHSEED.
    assert key_point("nachos") == 0x53F1C918C1903CD6
