"""End-to-end tests for ``nachos-serve`` against live in-thread daemons.

Every test boots a real daemon (ephemeral TCP port or a unix socket),
drives it through :class:`repro.serve.client.ServeClient`, and shuts it
down — the HTTP parse, the request dedup, the batcher, and the pool
dispatch all run for real.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import pytest

from repro.serve import (
    NachosServeDaemon,
    ProtocolError,
    ServeClient,
    ServeError,
    parse_request,
)


@pytest.fixture
def daemon():
    """One live daemon on an ephemeral port; stopped at teardown."""
    d = NachosServeDaemon(port=0, quiet=True, batch_window=0.005)
    thread = d.serve_in_thread()
    try:
        yield d
    finally:
        d.request_shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()


@pytest.fixture
def client(daemon):
    return ServeClient(port=daemon.port)


def test_submit_roundtrip_matches_direct_run(client):
    """The daemon's numbers are ``run_system``'s numbers — same engine,
    same fingerprints, nothing lost over the wire."""
    from repro.experiments.common import run_system
    from repro.obs.runner import resolve_workload

    response = client.submit(
        "gather", systems=["nachos"], invocations=6, wait=True
    )
    assert response["status"] == "done"
    direct = run_system(resolve_workload("gather"), "nachos", invocations=6)
    served = response["results"]["nachos"]
    assert served["cycles"] == direct.sim.cycles
    assert served["energy"] == pytest.approx(direct.sim.total_energy)
    assert served["correct"] is True
    assert served["n_mdes"] == direct.n_mdes


def test_poll_and_result_lifecycle(client):
    submitted = client.submit("scatter", systems=["opt-lsq"], invocations=4)
    request_id = submitted["request_id"]
    payload = client.wait(request_id, timeout=120)
    assert payload["status"] == "done"
    assert client.poll(request_id)["status"] == "done"
    again = client.result(request_id)
    assert again["results"] == payload["results"]


def test_concurrent_duplicates_compute_once(daemon, client):
    """N identical submits racing a slow window: one computation, all
    answered, dedup observable in the daemon's own metrics."""
    n = 6
    responses = [None] * n
    errors = []

    def submit(i):
        try:
            responses[i] = client.submit(
                "stream_triad", systems=["nachos", "opt-lsq"],
                invocations=5, wait=True,
            )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert all(r["status"] == "done" for r in responses)
    first = responses[0]
    assert all(r["request_id"] == first["request_id"] for r in responses)
    assert all(r["results"] == first["results"] for r in responses)
    metrics = client.metrics()
    assert metrics["serve.requests"]["value"] == n
    # All but the winner attached to an existing record or in-flight
    # task; either dedup level proves single computation.
    deduped = metrics.get("serve.requests_deduped", {}).get("value", 0)
    task_deduped = metrics.get("serve.tasks_deduped", {}).get("value", 0)
    assert deduped + task_deduped >= n - 1
    assert metrics["serve.tasks_submitted"]["value"] - task_deduped == 2


def test_request_id_independent_of_system_order():
    a = parse_request({"region": "gather", "systems": ["nachos", "opt-lsq"]})
    b = parse_request({"region": "gather", "systems": ["opt-lsq", "nachos"]})
    assert a.request_id == b.request_id
    c = parse_request({"region": "gather", "systems": ["nachos"]})
    assert c.request_id != a.request_id


def test_protocol_rejections():
    with pytest.raises(ProtocolError, match="unknown request field"):
        parse_request({"region": "gather", "color": "green"})
    with pytest.raises(ProtocolError, match="required"):
        parse_request({})
    with pytest.raises(ProtocolError, match="unknown system"):
        parse_request({"region": "gather", "systems": ["quantum"]})
    with pytest.raises(ProtocolError, match="invocations"):
        parse_request({"region": "gather", "invocations": 0})
    with pytest.raises(ProtocolError, match="engine"):
        parse_request({"region": "gather", "engine": "warp"})
    with pytest.raises(ProtocolError, match="unknown region"):
        parse_request({"region": "does-not-exist"})


def test_http_error_paths(client):
    with pytest.raises(ServeError) as excinfo:
        client.submit("no-such-region")
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client.poll("deadbeef")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        client._request("GET", "/nowhere")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError) as excinfo:
        client._request("GET", "/submit")
    assert excinfo.value.status == 405
    health = client.healthz()
    assert health["ok"] is True


def test_unix_socket_roundtrip():
    sock_dir = tempfile.mkdtemp(prefix="nachos-sock-")  # short AF_UNIX path
    sock = str(Path(sock_dir) / "serve.sock")
    d = NachosServeDaemon(socket_path=sock, quiet=True, batch_window=0.0)
    thread = d.serve_in_thread()
    try:
        client = ServeClient(socket_path=sock)
        response = client.submit(
            "gather", systems=["opt-lsq"], invocations=4, wait=True
        )
        assert response["status"] == "done"
        assert response["results"]["opt-lsq"]["cycles"] > 0
    finally:
        d.request_shutdown()
        thread.join(timeout=30)
    assert not Path(sock).exists(), "socket file removed on shutdown"


def test_chaos_daemon_results_match_fault_free(monkeypatch):
    """A daemon whose tasks crash and corrupt under ``NACHOS_CHAOS``
    must recover through the inherited retry machinery and answer
    byte-identical to a fault-free daemon."""
    request = dict(
        region="scatter", systems=["nachos", "opt-lsq"], invocations=5,
        wait=True,
    )

    clean = NachosServeDaemon(port=0, quiet=True)
    thread = clean.serve_in_thread()
    try:
        baseline = ServeClient(port=clean.port).submit(**request)
    finally:
        clean.request_shutdown()
        thread.join(timeout=30)
    assert baseline["status"] == "done"

    monkeypatch.setenv("NACHOS_CHAOS", "crash=0.4,corrupt=0.25,seed=3")
    chaotic = NachosServeDaemon(port=0, quiet=True, max_retries=6)
    thread = chaotic.serve_in_thread()
    try:
        survived = ServeClient(port=chaotic.port).submit(**request)
    finally:
        chaotic.request_shutdown()
        thread.join(timeout=30)
    assert survived["status"] == "done"
    assert survived["results"] == baseline["results"]


def test_metrics_snapshot_shape(client):
    client.submit("gather", systems=["nachos"], invocations=4, wait=True)
    metrics = client.metrics()
    for key in (
        "serve.requests", "serve.requests_done", "serve.tasks_submitted",
        "serve.batches", "serve.uptime_seconds", "cache.hit_rate",
        "serve.request_latency_seconds",
    ):
        assert key in metrics, f"missing {key}"
    assert metrics["serve.request_latency_seconds"]["count"] >= 1
    assert metrics["serve.retained_requests"]["value"] >= 1


def test_failed_request_reports_failure(monkeypatch, daemon, client):
    """A terminally failing task yields status=failed with the
    machine-readable TaskFailure, not a hung or dropped request."""
    monkeypatch.setenv("NACHOS_CHAOS", "crash=1.0,seed=1")
    response = client.submit(
        "gather", systems=["nachos"], invocations=4, wait=True,
    )
    assert response["status"] == "failed"
    assert response["failed"]["nachos"]["kind"] == "crash"
    monkeypatch.delenv("NACHOS_CHAOS")
    # A re-submit after the fault clears must re-run, not replay the
    # failed record.
    retry = client.submit(
        "gather", systems=["nachos"], invocations=4, wait=True,
    )
    assert retry["status"] == "done"
