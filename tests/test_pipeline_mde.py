"""Unit tests for the pipeline driver and MDE insertion."""

import pytest

from repro.compiler import (
    AliasLabel,
    AliasPipeline,
    PipelineConfig,
    compile_region,
)
from repro.compiler.mde import count_by_kind
from repro.ir import (
    AffineExpr,
    IVar,
    MDEKind,
    MemObject,
    PointerParam,
    RegionBuilder,
)
from tests.conftest import build_may_region, build_simple_region


class TestPipelineConfigs:
    def test_full_runs_all_stages(self, may_region):
        result = AliasPipeline(PipelineConfig.full()).run(may_region)
        assert result.stage2 is not None
        assert result.stage4 is not None

    def test_baseline_compiler_skips_2_and_4(self, may_region):
        result = AliasPipeline(PipelineConfig.baseline_compiler()).run(may_region)
        assert result.stage2 is None
        assert result.stage4 is None

    def test_stage1_only(self, may_region):
        cfg = PipelineConfig.software_only_stage1()
        result = AliasPipeline(cfg).run(may_region)
        assert result.stage2 is None and result.stage4 is None
        # No stage-3 pruning: everything enforceable retained.
        enforceable = result.stage1.count(AliasLabel.MAY) + result.stage1.count(
            AliasLabel.MUST
        )
        assert len(result.plan.retained) == enforceable

    def test_mdes_installed_on_graph(self):
        g = build_may_region()
        result = compile_region(g)
        assert g.mdes == result.mdes

    def test_apply_mdes_false_leaves_graph_untouched(self):
        g = build_may_region()
        g.clear_mdes()
        AliasPipeline().run(g, apply_mdes=False)
        assert g.mdes == []


class TestPipelineResult:
    def test_label_refinement_monotone(self):
        g = build_may_region()
        result = compile_region(g)
        # stages 2/4 may only turn MAY into something else
        for pair, label in result.stage1:
            if label is not AliasLabel.MAY:
                assert result.final_labels.get(*pair) is label

    def test_may_fan_in_counts_may_edges(self):
        g = build_may_region()
        result = compile_region(g)
        fan = result.may_fan_in()
        assert sum(fan.values()) == len(result.may_mdes)

    def test_needs_no_disambiguation_flag(self):
        g = build_simple_region()
        result = compile_region(g)
        assert result.needs_no_disambiguation
        g2 = build_may_region()
        result2 = compile_region(g2)
        assert not result2.needs_no_disambiguation

    def test_total_pairs_matches_universe(self):
        g = build_may_region()
        result = compile_region(g)
        assert result.total_pairs == result.stage1.total


class TestMDEInsertion:
    def _rmw_region(self):
        """st a[8i] = x ; ld a[8i] (exact ST->LD, forwardable)."""
        a = MemObject("a", 4096)
        iv = IVar("i", 16)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.of(ivs={iv: 8}), value=x)
        ld = b.load(a, AffineExpr.of(ivs={iv: 8}))
        return b.build(), st, ld

    def test_exact_st_ld_becomes_forward(self):
        g, st, ld = self._rmw_region()
        result = compile_region(g)
        kinds = count_by_kind(result.mdes)
        assert kinds[MDEKind.FORWARD] == 1
        assert result.mdes[0].src == st.op_id
        assert result.mdes[0].dst == ld.op_id

    def test_partial_overlap_becomes_order(self):
        a = MemObject("a", 4096)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.constant(0), value=x, width=8)
        ld = b.load(a, AffineExpr.constant(4), width=8)
        g = b.build()
        result = compile_region(g)
        kinds = count_by_kind(result.mdes)
        assert kinds[MDEKind.ORDER] == 1
        assert kinds[MDEKind.FORWARD] == 0

    def test_forward_blocked_by_intervening_may_store(self):
        """A MAY store between the exact store and the load kills the
        forward: at runtime it might overwrite the location."""
        a = MemObject("a", 4096)
        t = MemObject("t", 4096, base_addr=0x9000)
        p = PointerParam("p", runtime_object=t)  # opaque: MAY vs a
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.constant(0), value=x)
        mid = b.store(p, AffineExpr.constant(0), value=x)
        ld = b.load(a, AffineExpr.constant(0))
        g = b.build()
        result = compile_region(g)
        kinds = count_by_kind(result.mdes)
        assert kinds[MDEKind.FORWARD] == 0
        # The exact pair is still enforced, just as ORDER.
        assert any(
            e.src == st.op_id and e.dst == ld.op_id and e.kind is MDEKind.ORDER
            for e in result.mdes
        )

    def test_youngest_exact_store_wins_forwarding(self):
        a = MemObject("a", 4096)
        b = RegionBuilder()
        x = b.input("x")
        st1 = b.store(a, AffineExpr.constant(0), value=x)
        st2 = b.store(a, AffineExpr.constant(0), value=x)
        ld = b.load(a, AffineExpr.constant(0))
        g = b.build()
        result = compile_region(g)
        forwards = [e for e in result.mdes if e.kind is MDEKind.FORWARD]
        assert len(forwards) == 1
        assert forwards[0].src == st2.op_id

    def test_at_most_one_forward_per_load(self):
        g = build_may_region()
        result = compile_region(g)
        targets = [e.dst for e in result.mdes if e.kind is MDEKind.FORWARD]
        assert len(targets) == len(set(targets))

    def test_may_pairs_become_may_edges(self):
        g = build_may_region()
        result = compile_region(g)
        n_may = len(result.plan.retained_may)
        kinds = count_by_kind(result.mdes)
        assert kinds[MDEKind.MAY] == n_may
