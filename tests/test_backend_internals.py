"""White-box tests for backend internals (check scheduling, wait-lists)."""

import pytest

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.ir import AffineExpr, MemObject, RegionBuilder, Sym
from repro.memory import MemoryHierarchy
from repro.sim import DataflowEngine, NachosBackend, golden_execute


def two_may_region():
    tab = MemObject("t", 4096, base_addr=0x1000)
    b = RegionBuilder()
    x = b.input("x")
    st = b.store(tab, AffineExpr.of(syms={Sym("s0"): 8}), value=x)
    ld = b.load(tab, AffineExpr.of(syms={Sym("sl"): 8}))
    g = b.build()
    compile_region(g)
    return g, st, ld


def run(g, env_list, backend=None):
    backend = backend or NachosBackend()
    engine = DataflowEngine(g, place_region(g), MemoryHierarchy(), backend)
    return engine.run(env_list), backend, engine


class TestComparatorInternals:
    def test_check_deduplicated_per_pair(self):
        g, st, ld = two_may_region()
        result, backend, _ = run(g, [{"s0": 0, "sl": 5}])
        # Exactly one check per MAY edge per invocation.
        assert result.backend_stats.comparator_checks == len(g.mdes)

    def test_no_check_after_completion_resolution(self):
        """A parent completing before the younger op's address is even
        computed resolves the edge without comparator energy."""
        tab = MemObject("t", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(tab, AffineExpr.constant(0), value=x)
        slow = x
        for _ in range(60):
            slow = b.fdiv(slow, x)
        gep = b.gep(slow)
        ld = b.load(tab, AffineExpr.of(syms={Sym("sl"): 8}), inputs=[gep])
        g = b.build()
        compile_region(g)
        result, backend, _ = run(g, [{"sl": 4}])
        assert result.backend_stats.comparator_checks == 0
        assert result.backend_stats.order_waits == 0  # MAY, not ORDER

    def test_state_reset_between_invocations(self):
        g, st, ld = two_may_region()
        envs = [{"s0": 0, "sl": 5}, {"s0": 5, "sl": 5}, {"s0": 1, "sl": 9}]
        result, backend, _ = run(g, envs)
        # One check per invocation; the middle one conflicts.
        assert result.backend_stats.comparator_checks == 3
        assert result.backend_stats.comparator_conflicts == 1
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_order_signal_latency_respected(self):
        from repro.sim.config import EngineConfig

        def cycles_with(latency):
            tab = MemObject("t", 4096, base_addr=0x1000)
            b = RegionBuilder()
            x = b.input("x")
            st = b.store(tab, AffineExpr.constant(0), value=x)
            ld = b.load(tab, AffineExpr.constant(4))  # partial MUST->ORDER
            use = b.add(ld, x)
            g = b.build()
            compile_region(g)
            from repro.sim import NachosSWBackend

            engine = DataflowEngine(
                g, place_region(g), MemoryHierarchy(), NachosSWBackend(),
                config=EngineConfig(order_signal_latency=latency),
            )
            return engine.run([{}]).cycles

        assert cycles_with(8) > cycles_with(1)

    def test_forward_latency_respected(self):
        from repro.sim.config import EngineConfig
        from repro.sim import NachosSWBackend, TimelineRecorder

        def load_completion(latency):
            a = MemObject("a", 4096, base_addr=0x1000)
            b = RegionBuilder()
            x = b.input("x")
            st = b.store(a, AffineExpr.constant(0), value=x)
            ld = b.load(a, AffineExpr.constant(0))
            use = b.add(ld, x)
            g = b.build()
            compile_region(g)
            recorder = TimelineRecorder()
            engine = DataflowEngine(
                g, place_region(g), MemoryHierarchy(), NachosSWBackend(),
                config=EngineConfig(forward_latency=latency),
                recorder=recorder,
            )
            engine.run([{}])
            return recorder.invocations[0].completion_of(ld.op_id)

        # The forwarded load (not the total: the store's cold miss
        # dominates the invocation end) completes later with a slower
        # forward path.
        assert load_completion(10) == load_completion(1) + 9


class TestLSQInternals:
    def test_bank_partitioning_by_line(self):
        from repro.sim.backends.lsq import LSQConfig, OptLSQBackend

        backend = OptLSQBackend(LSQConfig(banks=4))
        assert backend._bank_of(0) == 0
        assert backend._bank_of(64) == 1
        assert backend._bank_of(64 * 5) == 1
        assert backend._bank_of(63) == 0  # same line, same bank

    def test_bloom_counting_semantics(self):
        from repro.sim.backends.lsq import _Bloom

        bloom = _Bloom(bits=64, hashes=2)
        assert not bloom.probe(10)
        bloom.insert(10)
        bloom.insert(10)
        assert bloom.probe(10)
        bloom.remove(10)
        assert bloom.probe(10)  # second copy still present
        bloom.remove(10)
        assert not bloom.probe(10)

    def test_issue_slot_in_order_monotonic(self):
        from repro.sim.backends.lsq import LSQConfig, OptLSQBackend

        backend = OptLSQBackend(LSQConfig(banks=2, issue_width=2))
        backend._slot_time = 0
        backend._bank_slot = {}
        t1 = backend._alloc_slot(5, bank=0)
        t2 = backend._alloc_slot(3, bank=1)  # ready earlier, issues later
        assert t2 >= t1

    def test_per_bank_port_limit(self):
        from repro.sim.backends.lsq import LSQConfig, OptLSQBackend

        backend = OptLSQBackend(LSQConfig(banks=1, issue_width=2))
        backend._slot_time = 0
        backend._bank_slot = {}
        times = [backend._alloc_slot(0, bank=0) for _ in range(4)]
        # Two per cycle: 0, 0, 1, 1.
        assert times == [0, 0, 1, 1]

    def test_bloom_remove_before_insert_is_harmless(self):
        """Removing an address that was never inserted (or whose counter
        already drained) must not raise and must not corrupt counts for
        later inserts sharing the same buckets."""
        from repro.sim.backends.lsq import _Bloom

        bloom = _Bloom(bits=64, hashes=2)
        bloom.remove(10)  # regression: used to KeyError on missing bucket
        assert not bloom.probe(10)
        bloom.insert(10)
        assert bloom.probe(10)
        bloom.remove(10)
        bloom.remove(10)  # second drain of the same address
        assert not bloom.probe(10)
        bloom.insert(10)
        assert bloom.probe(10)  # counters did not go negative

    def test_maybe_execute_store_honors_now(self):
        """A store released by a conflicting access's completion must not
        issue before that completion (regression: ``now`` was dropped from
        the issue-time max, so stores whose ``_resume_time`` had not been
        refreshed issued at their stale ready time)."""
        from repro.sim.backends.lsq import LSQConfig, OptLSQBackend

        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.constant(0), value=x)
        g = b.build()
        g.clear_mdes()

        issued = []

        class FakeEngine:
            def do_store(self, op, t):
                issued.append((op.op_id, t))

            def schedule(self, t, fn):
                pass

        backend = OptLSQBackend(LSQConfig())
        backend.engine = FakeEngine()
        backend.graph = g
        oid = st.op_id
        backend._store_waits[oid] = set()
        backend._issue_time[oid] = 0
        backend._value_ready[oid] = 0
        backend._maybe_execute_store(oid, now=42)
        assert issued == [(oid, 42 + backend.config.pipeline_penalty)]


class TestSpecLSQInternals:
    def test_store_observed_at_exact_speculation_cycle(self):
        """The engine publishes a store draining at cycle T before a read
        scheduled at T runs, so completion == t_spec is *observed*, not a
        violation (regression: strict `<` forced a spurious replay)."""
        from repro.sim.backends.spec_lsq import SpecLSQBackend

        backend = SpecLSQBackend()
        backend._completed = {7: 10}
        assert backend._store_observed_by(7, 10)
        assert backend._store_observed_by(7, 11)
        assert not backend._store_observed_by(7, 9)
        assert not backend._store_observed_by(8, 10)  # never completed
