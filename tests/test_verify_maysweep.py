"""Tests for the enforcement verifier and the MAY-sweep experiment."""

import pytest

from repro.compiler import (
    AliasLabel,
    compile_region,
    verify_enforcement,
)
from repro.ir import MDEKind, MemoryDependencyEdge
from repro.workloads import build_workload, get_spec
from tests.conftest import build_may_region, build_simple_region


class TestVerifyEnforcement:
    def test_pipeline_output_always_verifies(self):
        for build in (build_simple_region, build_may_region):
            g = build()
            result = compile_region(g)
            assert verify_enforcement(g, result.final_labels) == []

    def test_suite_regions_verify(self):
        for name in ("histogram", "bzip2", "povray", "equake"):
            w = build_workload(get_spec(name))
            w.graph.clear_mdes()
            result = compile_region(w.graph)
            assert verify_enforcement(w.graph, result.final_labels) == [], name

    def test_detects_removed_may_edge(self):
        g = build_may_region()
        result = compile_region(g)
        may_edges = [e for e in g.mdes if e.kind is MDEKind.MAY]
        assert may_edges, "fixture must produce MAY edges"
        # Sabotage: drop one MAY edge.
        g.replace_mdes([e for e in g.mdes if e is not may_edges[0]])
        violations = verify_enforcement(g, result.final_labels)
        assert any(
            v.older == may_edges[0].src and v.younger == may_edges[0].dst
            for v in violations
        )

    def test_detects_removed_order_edge(self):
        from repro.ir import AffineExpr, MemObject, RegionBuilder

        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.constant(0), value=x)
        ld = b.load(a, AffineExpr.constant(4), width=8)  # partial MUST
        g = b.build()
        result = compile_region(g)
        assert verify_enforcement(g, result.final_labels) == []
        g.clear_mdes()
        violations = verify_enforcement(g, result.final_labels)
        assert len(violations) == 1
        assert violations[0].label is AliasLabel.MUST

    def test_may_chain_does_not_satisfy_transitive_pair(self):
        """A MAY chain a->b->c must NOT verify a MAY(a, c) pair."""
        from repro.ir import AffineExpr, MemObject, PointerParam, RegionBuilder

        objs = [MemObject(f"t{k}", 4096, base_addr=0x1000 * (k + 1)) for k in range(3)]
        b = RegionBuilder()
        x = b.input("x")
        sids = []
        for k in range(3):
            p = PointerParam(f"p{k}", runtime_object=objs[k])
            sids.append(b.store(p, AffineExpr.constant(0), value=x).op_id)
        g = b.build()
        result = compile_region(g, )
        # Sabotage: keep only the chain edges, drop the (0,2) edge.
        chain = [
            e for e in g.mdes
            if (e.src, e.dst) in {(sids[0], sids[1]), (sids[1], sids[2])}
        ]
        g.replace_mdes(chain)
        violations = verify_enforcement(g, result.final_labels)
        assert any(
            (v.older, v.younger) == (sids[0], sids[2]) for v in violations
        )

    def test_forward_edge_counts_as_ordering(self):
        from repro.ir import AffineExpr, MemObject, RegionBuilder

        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        b.store(a, AffineExpr.constant(0), value=x)
        b.load(a, AffineExpr.constant(0))
        g = b.build()
        result = compile_region(g)
        assert any(e.kind is MDEKind.FORWARD for e in g.mdes)
        assert verify_enforcement(g, result.final_labels) == []


class TestMaySweep:
    def test_sweep_shape(self):
        from repro.experiments import may_sweep

        result = may_sweep.run(invocations=8, fractions=(0.0, 0.5, 1.0))
        assert result.all_correct
        assert len(result.points) == 3
        # %MAY pairs grows with the opaque fraction.
        mays = [p.pct_may_pairs for p in result.points]
        assert mays[0] == 0.0
        assert mays == sorted(mays)
        # Software-only slowdown explodes; NACHOS stays flat.
        assert result.points[-1].sw_slowdown_pct > 50.0
        assert abs(result.points[-1].nachos_slowdown_pct) < 10.0
        assert result.points[0].may_mdes == 0
        assert "MAY sweep" in may_sweep.render(result)
