"""Tests for workload characterization and the compilation report."""

import pytest

from repro.compiler import compile_region
from repro.compiler.report import explain, stage_census
from repro.workloads import build_workload, get_spec
from repro.workloads.characterize import measured_mlp, profile_workload
from tests.conftest import build_may_region, build_simple_region


class TestMeasuredMLP:
    def test_empty_region(self):
        from repro.ir import RegionBuilder

        g = RegionBuilder().build(validate=False)
        assert measured_mlp(g) == 0

    def test_independent_loads_all_parallel(self):
        from repro.ir import AffineExpr, MemObject, RegionBuilder

        b = RegionBuilder()
        for k in range(6):
            obj = MemObject(f"o{k}", 4096, base_addr=0x1000 * (k + 1))
            b.load(obj, AffineExpr.constant(0))
        g = b.build()
        assert measured_mlp(g) == 6

    def test_chained_loads_serialize(self):
        from repro.ir import AffineExpr, MemObject, RegionBuilder

        obj = MemObject("o", 4096, base_addr=0x1000)
        b = RegionBuilder()
        ld = b.load(obj, AffineExpr.constant(0))
        for k in range(3):
            gep = b.gep(ld)
            ld = b.load(obj, AffineExpr.constant(8 * (k + 1)), inputs=[gep])
        g = b.build()
        assert measured_mlp(g) == 1

    def test_order_mdes_reduce_mlp(self):
        from repro.ir import (
            AffineExpr,
            MDEKind,
            MemObject,
            MemoryDependencyEdge,
            RegionBuilder,
        )

        obj = MemObject("o", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        s1 = b.store(obj, AffineExpr.constant(0), value=x)
        s2 = b.store(obj, AffineExpr.constant(0), value=x)
        g = b.build()
        assert measured_mlp(g) == 2
        g.add_mde(MemoryDependencyEdge(s1.op_id, s2.op_id, MDEKind.ORDER))
        assert measured_mlp(g) == 1

    def test_suite_mlp_tracks_spec(self):
        for name in ("gzip", "equake", "histogram"):
            spec = get_spec(name)
            w = build_workload(spec)
            mlp = measured_mlp(w.graph)
            assert mlp <= max(spec.mlp, 2) * 2, name
            assert mlp >= 1, name


class TestProfileWorkload:
    def test_footprint_scales_with_stride(self):
        p8 = profile_workload(build_workload(get_spec("464.h264ref")), 16)
        p64 = profile_workload(build_workload(get_spec("soplex")), 16)
        # Streaming (stride 64) touches a line per op per invocation.
        assert p64.footprint_lines > p64.n_mem
        assert p8.footprint_bytes > 0

    def test_conflicts_only_where_expected(self):
        clean = profile_workload(build_workload(get_spec("gzip")), 16)
        assert clean.conflict_pairs == 0
        dirty = profile_workload(build_workload(get_spec("histogram")), 16)
        assert dirty.conflict_pairs > 0
        assert 0.0 < dirty.conflict_density < 1.0

    def test_reuse_histogram_populated(self):
        p = profile_workload(build_workload(get_spec("parser")), 16)
        assert sum(p.reuse_histogram.values()) > 0

    def test_zero_mem_workload(self):
        p = profile_workload(build_workload(get_spec("blackscholes")), 4)
        assert p.n_mem == 0
        assert p.footprint_bytes == 0
        assert p.conflict_density == 0.0


class TestCompilationReport:
    def test_census_rows(self):
        g = build_may_region()
        result = compile_region(g)
        rows = stage_census(result)
        assert len(rows) == 4  # stages 1, 2, 4, 5 under the full config
        for row in rows:
            assert sum(row[1:]) == result.total_pairs

    def test_explain_mentions_mdes(self):
        g = build_may_region()
        result = compile_region(g)
        out = explain(result)
        assert "MAY" in out
        assert "Memory dependency edges" in out

    def test_explain_clean_region(self):
        g = build_simple_region()
        result = compile_region(g)
        out = explain(result)
        assert "No MDEs required" in out

    def test_explain_reports_fan_in(self):
        w = build_workload(get_spec("bzip2"))
        result = compile_region(w.graph)
        out = explain(result)
        assert "fan-in hotspots" in out
