"""Unit tests for the symbolic overlap engine (compare_offsets)."""

import pytest

from repro.compiler.aliasing.symbolic import compare_offsets
from repro.compiler.labels import AliasLabel
from repro.ir.address import AddressExpr, AffineExpr, IVar, MemObject, Sym

OBJ = MemObject("base", 1 << 20)


def addr(offset, width=8):
    return AddressExpr(OBJ, offset, width=width)


def rel(a, b, single_iv_only=True, limit=1 << 16):
    return compare_offsets(a, b, single_iv_only=single_iv_only, enumeration_limit=limit)


class TestConstantOffsets:
    def test_identical_is_must_exact(self):
        r = rel(addr(AffineExpr.constant(16)), addr(AffineExpr.constant(16)))
        assert r.label is AliasLabel.MUST
        assert r.exact

    def test_disjoint_is_no(self):
        r = rel(addr(AffineExpr.constant(0)), addr(AffineExpr.constant(8)))
        assert r.label is AliasLabel.NO

    def test_partial_overlap_is_must_not_exact(self):
        r = rel(addr(AffineExpr.constant(0)), addr(AffineExpr.constant(4)))
        assert r.label is AliasLabel.MUST
        assert not r.exact

    def test_width_matters_for_exactness(self):
        r = rel(addr(AffineExpr.constant(0), width=8), addr(AffineExpr.constant(0), width=4))
        assert r.label is AliasLabel.MUST
        assert not r.exact

    def test_adjacent_ranges_do_not_overlap(self):
        # [0, 8) and [8, 12) share no byte.
        r = rel(addr(AffineExpr.constant(0), 8), addr(AffineExpr.constant(8), 4))
        assert r.label is AliasLabel.NO


class TestSingleIV:
    def test_same_stride_distinct_lanes_is_no(self):
        i = IVar("i", 128)
        a = addr(AffineExpr.of(const=0, ivs={i: 64}))
        b = addr(AffineExpr.of(const=8, ivs={i: 64}))
        assert rel(a, b).label is AliasLabel.NO

    def test_same_expression_is_must_exact(self):
        i = IVar("i", 128)
        a = addr(AffineExpr.of(ivs={i: 8}))
        b = addr(AffineExpr.of(ivs={i: 8}))
        r = rel(a, b)
        assert r.label is AliasLabel.MUST and r.exact

    def test_different_strides_may_collide(self):
        # 8i vs 16i: equal at i=0 -> overlap possible but not always.
        i = IVar("i", 16)
        a = addr(AffineExpr.of(ivs={i: 8}))
        b = addr(AffineExpr.of(ivs={i: 16}))
        assert rel(a, b).label is AliasLabel.MAY

    def test_different_strides_never_colliding(self):
        # diff = 8i + 1000, i in [0,16): always >= 1000.
        i = IVar("i", 16)
        a = addr(AffineExpr.of(const=1000, ivs={i: 16}))
        b = addr(AffineExpr.of(ivs={i: 8}))
        assert rel(a, b).label is AliasLabel.NO

    def test_gcd_refutation(self):
        # diff = 16i + 4 with width-1 accesses: 16i+4 can never be 0;
        # window is [0, 0] and the lattice 4 + 16Z misses it.
        i = IVar("i", 1 << 20)  # too big to enumerate
        a = addr(AffineExpr.of(const=4, ivs={i: 16}), width=1)
        b = addr(AffineExpr.of(ivs={}), width=1)
        assert rel(a, b, limit=4).label is AliasLabel.NO


class TestMultiIV:
    def test_single_iv_mode_punts(self):
        i, j = IVar("i", 8), IVar("j", 8)
        a = addr(AffineExpr.of(ivs={i: 8}))
        b = addr(AffineExpr.of(ivs={j: 8}))
        assert rel(a, b, single_iv_only=True).label is AliasLabel.MAY

    def test_polyhedral_mode_resolves_disjoint_blocks(self):
        i, j = IVar("i", 8), IVar("j", 8)
        a = addr(AffineExpr.of(const=1024, ivs={i: 8}))
        b = addr(AffineExpr.of(ivs={j: 8}))  # max 56+8 < 1024
        assert rel(a, b, single_iv_only=False).label is AliasLabel.NO

    def test_polyhedral_mode_detects_possible_overlap(self):
        i, j = IVar("i", 8), IVar("j", 8)
        a = addr(AffineExpr.of(ivs={i: 8}))
        b = addr(AffineExpr.of(ivs={j: 8}))
        assert rel(a, b, single_iv_only=False).label is AliasLabel.MAY

    def test_enumeration_limit_falls_back_to_may(self):
        i, j = IVar("i", 1024), IVar("j", 1024)
        a = addr(AffineExpr.of(ivs={i: 8}))
        b = addr(AffineExpr.of(ivs={j: 8}))
        r = rel(a, b, single_iv_only=False, limit=16)
        assert r.label is AliasLabel.MAY  # conservative, not wrong

    def test_always_overlap_is_must(self):
        # diff = 8i - 8i = 0 via two IVs with identical terms.
        i = IVar("i", 8)
        j = IVar("j", 4)
        a = addr(AffineExpr.of(ivs={i: 8, j: 16}))
        b = addr(AffineExpr.of(ivs={i: 8, j: 16}))
        r = rel(a, b, single_iv_only=False)
        assert r.label is AliasLabel.MUST
        assert r.exact  # constant zero difference


class TestSyms:
    def test_sym_difference_is_may(self):
        s = Sym("s")
        a = addr(AffineExpr.of(syms={s: 8}))
        b = addr(AffineExpr.constant(0))
        assert rel(a, b).label is AliasLabel.MAY

    def test_same_sym_cancels_to_must(self):
        s = Sym("s")
        a = addr(AffineExpr.of(syms={s: 8}))
        b = addr(AffineExpr.of(syms={s: 8}))
        r = rel(a, b)
        assert r.label is AliasLabel.MUST and r.exact
