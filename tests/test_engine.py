"""Unit tests for the dataflow execution engine."""

import pytest

from repro.cgra.placement import place_region
from repro.energy.config import EnergyEvent
from repro.ir import AffineExpr, IVar, MemObject, Opcode, RegionBuilder
from repro.memory import MemoryHierarchy
from repro.sim import DataflowEngine, NachosSWBackend, golden_execute
from tests.conftest import build_simple_region, make_engine


class TestBasicExecution:
    def test_empty_invocations(self, simple_region):
        eng = make_engine(simple_region)
        result = eng.run([])
        assert result.cycles == 0
        assert result.invocations == 0

    def test_single_invocation_completes_all_ops(self, simple_region):
        eng = make_engine(simple_region)
        result = eng.run([{"i": 0}])
        assert result.invocations == 1
        assert result.cycles > 0
        for op in simple_region.ops:
            assert eng.state_of(op.op_id).completed

    def test_cycles_accumulate_across_invocations(self, simple_region):
        one = make_engine(build_simple_region()).run([{"i": 0}])
        two = make_engine(build_simple_region()).run([{"i": 0}, {"i": 1}])
        assert two.cycles > one.cycles
        assert len(two.per_invocation_cycles) == 2

    def test_matches_oracle(self, simple_region):
        envs = [{"i": k % 16} for k in range(8)]
        result = make_engine(simple_region).run(envs)
        golden = golden_execute(simple_region, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_compute_latency_respected(self):
        b = RegionBuilder()
        x = b.input("x")
        y = b.input("y")
        f = b.fdiv(x, y)  # 12-cycle op
        g = b.build()
        result = make_engine(g).run([{}])
        assert result.per_invocation_cycles[0] >= 12

    def test_fp_charges_fp_energy(self):
        b = RegionBuilder()
        x = b.input("x")
        f = b.fadd(x, x)
        g = b.build()
        eng = make_engine(g)
        eng.run([{}])
        assert eng.energy.counts[EnergyEvent.ALU_FP] == 1
        assert eng.energy.counts[EnergyEvent.ALU_INT] == 0

    def test_zero_input_compute_fires(self):
        """Promoted scratchpad ops (no inputs) must execute."""
        from repro.ir.ops import Operation
        from repro.ir.graph import DFGraph

        g = DFGraph("z")
        g.add_op(Operation(0, Opcode.SPAD_LOAD))
        result_engine = make_engine(g)
        result_engine.run([{}])
        assert result_engine.state_of(0).completed
        assert result_engine.energy.counts[EnergyEvent.ALU_INT] == 1


class TestMemoryTiming:
    def test_load_miss_slower_than_hit(self):
        a = MemObject("a", 1 << 20, base_addr=0x10000)
        iv = IVar("i", 256)
        b = RegionBuilder()
        ld = b.load(a, AffineExpr.of(ivs={iv: 64}))
        g = b.build()
        eng = make_engine(g)
        result = eng.run([{"i": 0}, {"i": 0}])  # second touches same line
        assert result.per_invocation_cycles[0] > result.per_invocation_cycles[1]

    def test_load_energy_charged(self):
        g = build_simple_region()
        eng = make_engine(g)
        eng.run([{"i": 0}])
        assert eng.energy.counts[EnergyEvent.L1_READ] == 2
        assert eng.energy.counts[EnergyEvent.L1_WRITE] == 1

    def test_store_value_written_at_completion(self):
        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(a, AffineExpr.constant(0), value=x)
        g = b.build()
        eng = make_engine(g)
        result = eng.run([{}])
        assert len(result.memory_image) == 8

    def test_network_hops_charged_for_data_edges(self, simple_region):
        eng = make_engine(simple_region)
        eng.run([{"i": 0}])
        assert eng.energy.counts[EnergyEvent.NET_LINK] > 0

    def test_invocation_gap_respected(self):
        from repro.sim.config import EngineConfig

        g = build_simple_region()
        backend = NachosSWBackend()
        eng = DataflowEngine(
            g,
            place_region(g),
            MemoryHierarchy(),
            backend,
            config=EngineConfig(invocation_gap=10),
        )
        result = eng.run([{"i": 0}, {"i": 1}])
        assert result.cycles >= sum(result.per_invocation_cycles) + 10


class TestLoadValueCapture:
    def test_load_values_keyed_by_invocation(self, simple_region):
        eng = make_engine(simple_region)
        result = eng.run([{"i": 0}, {"i": 1}])
        loads = [op.op_id for op in simple_region.loads]
        for inv in range(2):
            for oid in loads:
                assert (inv, oid) in result.load_values
