"""Failure injection: the correctness oracle must catch broken backends.

The whole test strategy rests on ``golden_execute`` detecting ordering
violations.  These tests *inject* bugs — backends that skip ordering,
compilers that drop MDEs — and assert the oracle flags the divergence.
A silent pass here would mean the oracle is toothless.
"""

import pytest

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.ir import AffineExpr, MemObject, RegionBuilder, Sym
from repro.memory import MemoryHierarchy
from repro.sim import DataflowEngine, NachosSWBackend, golden_execute
from repro.sim.engine import DisambiguationBackend


class RecklessBackend(DisambiguationBackend):
    """Issues every memory op the moment its operands are ready —
    no ordering whatsoever."""

    name = "reckless"

    def begin_invocation(self, inv, t0, addr_of) -> None:
        self._value_ready = {}
        self._addr_ready = {}

    def on_addr_ready(self, op, t):
        if op.is_load:
            self.engine.do_load(op, t)
        else:
            self._addr_ready[op.op_id] = t
            if op.op_id in self._value_ready:
                self.engine.do_store(op, max(t, self._value_ready[op.op_id]))

    def on_value_ready(self, op, t):
        self._value_ready[op.op_id] = t
        if op.op_id in self._addr_ready:
            self.engine.do_store(op, max(t, self._addr_ready[op.op_id]))

    def on_memory_complete(self, op, t):
        pass


def conflicting_region():
    """st a[0] = f(x) ; ld a[0] — the load must see the store."""
    a = MemObject("a", 4096, base_addr=0x1000)
    b = RegionBuilder("conflict")
    x = b.input("x")
    # Delay the store's value so a reckless load races ahead.
    slow = b.fdiv(x, x)
    st = b.store(a, AffineExpr.constant(0), value=slow)
    ld = b.load(a, AffineExpr.constant(0))
    use = b.add(ld, x)
    return b.build()


class TestOracleCatchesBrokenBackends:
    def test_reckless_backend_detected(self):
        g = conflicting_region()
        g.clear_mdes()
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), RecklessBackend()
        )
        envs = [{}]
        result = engine.run(envs)
        golden = golden_execute(g, envs)
        assert not golden.matches(result.load_values, result.memory_image)

    def test_correct_backend_passes_same_region(self):
        g = conflicting_region()
        compile_region(g)
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), NachosSWBackend()
        )
        envs = [{}]
        result = engine.run(envs)
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_dropped_mdes_detected(self):
        """NACHOS-SW with its MDEs stripped behaves like the reckless
        backend on a conflicting region — and the oracle sees it."""
        g = conflicting_region()
        compile_region(g)
        g.clear_mdes()  # sabotage: the compiler's orders vanish
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), NachosSWBackend()
        )
        envs = [{}]
        result = engine.run(envs)
        golden = golden_execute(g, envs)
        assert not golden.matches(result.load_values, result.memory_image)

    def test_oracle_detects_st_st_misorder(self):
        """Two same-address stores applied in the wrong order leave the
        wrong final value."""
        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        slow = b.fdiv(x, x)           # first store's value is slow
        s1 = b.store(a, AffineExpr.constant(0), value=slow)
        s2 = b.store(a, AffineExpr.constant(0), value=x)
        g = b.build()
        g.clear_mdes()
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), RecklessBackend()
        )
        result = engine.run([{}])
        golden = golden_execute(g, [{}])
        assert not golden.matches(result.load_values, result.memory_image)

    def test_oracle_detects_anti_dependence_violation(self):
        """A younger store clobbering an older (slow) load's location."""
        a = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x = b.input("x")
        slow = b.fdiv(x, x)
        gep = b.gep(slow)
        ld = b.load(a, AffineExpr.constant(0), inputs=[gep])  # slow addr
        st = b.store(a, AffineExpr.constant(0), value=x)      # fast store
        g = b.build()
        g.clear_mdes()
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), RecklessBackend()
        )
        result = engine.run([{}])
        golden = golden_execute(g, [{}])
        assert not golden.matches(result.load_values, result.memory_image)

    def test_reckless_is_fine_without_conflicts(self):
        """No conflicts => even the reckless backend is correct; the
        oracle only fires on real ordering violations."""
        a = MemObject("a", 4096, base_addr=0x1000)
        c = MemObject("c", 4096, base_addr=0x9000)
        b = RegionBuilder()
        x = b.input("x")
        b.store(a, AffineExpr.constant(0), value=x)
        b.load(c, AffineExpr.constant(0))
        g = b.build()
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), RecklessBackend()
        )
        result = engine.run([{}])
        golden = golden_execute(g, [{}])
        assert golden.matches(result.load_values, result.memory_image)
