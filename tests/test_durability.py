"""Durability-layer regression tests: tmp-file leaks, manifest fsync,
env-checkpoint telemetry.

The crash harness here is real: a forked child is SIGKILLed *inside*
``pickle.dump`` while holding an in-flight ``*.tmp`` file, repeatedly,
and the sweep must reclaim every orphan while sparing live writers.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runtime.cache import (
    ResultCache,
    TMP_MAX_AGE_SECONDS,
    _tmp_prefix,
    sweep_stale_tmp,
)
from repro.runtime.checkpoint import SweepCheckpoint


class _BlocksInsidePickle:
    """Pickling this object signals a flag file, then hangs.

    ``ResultCache.put`` has already created its ``*.tmp`` by the time
    ``pickle.dump`` runs ``__reduce__``, so a SIGKILL delivered after
    the flag appears lands exactly in the crash window the sweep exists
    for: tmp on disk, writer about to die, no cleanup path runs.
    """

    def __init__(self, flag_path: str) -> None:
        self.flag_path = flag_path

    def __reduce__(self):
        Path(self.flag_path).touch()
        time.sleep(60)
        return (dict, ())  # never reached


def _kill_victim_cache(root: str, flag: str) -> None:
    cache = ResultCache(root=Path(root), enabled=True)
    cache.put("aa" + "0" * 62, _BlocksInsidePickle(flag))


def _kill_victim_checkpoint(root: str, flag: str) -> None:
    cp = SweepCheckpoint(Path(root))
    cp.put("bb" + "1" * 62, _BlocksInsidePickle(flag))


def _run_and_kill(target, root: Path, tmp_path: Path, tag: str) -> None:
    ctx = multiprocessing.get_context("fork")
    flag = tmp_path / f"flag-{tag}"
    proc = ctx.Process(target=target, args=(str(root), str(flag)))
    proc.start()
    deadline = time.monotonic() + 30
    while not flag.exists():
        assert time.monotonic() < deadline, "victim never reached pickle"
        assert proc.is_alive(), "victim died before reaching pickle"
        time.sleep(0.005)
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=30)


@pytest.mark.parametrize(
    "target,store",
    [
        (_kill_victim_cache, "cache"),
        (_kill_victim_checkpoint, "checkpoint"),
    ],
)
def test_sigkill_mid_put_never_accumulates_tmp(tmp_path, target, store):
    """Repeated kills mid-put leave orphans; the sweep reclaims ALL of
    them (writer pid is dead), and repeated faulted runs never let the
    population grow."""
    root = tmp_path / store
    for round_no in range(3):
        _run_and_kill(target, root, tmp_path, f"{store}-{round_no}")
    orphans = list(root.rglob("*.tmp"))
    assert len(orphans) == 3, "each killed put should leave its tmp"
    removed = sweep_stale_tmp(root)
    assert removed == 3
    assert list(root.rglob("*.tmp")) == []
    # A fourth faulted run after the sweep: still exactly one orphan,
    # and the instance-level sweep entry points reclaim it too.
    _run_and_kill(target, root, tmp_path, f"{store}-again")
    if store == "cache":
        assert ResultCache(root=root, enabled=True).sweep_stale() == 1
    else:
        assert SweepCheckpoint(root).sweep_stale() == 1
    assert list(root.rglob("*.tmp")) == []


def test_stats_sweeps_and_reports_stale_tmp(tmp_path):
    cache = ResultCache(root=tmp_path, enabled=True)
    cache.put("cc" + "2" * 62, {"x": 1})
    _run_and_kill(_kill_victim_cache, tmp_path, tmp_path, "stats")
    stats = cache.stats()
    assert stats["stale_tmp_removed"] == 1
    assert stats["tmp_in_flight"] == 0
    assert stats["entries"] == 1
    assert list(tmp_path.rglob("*.tmp")) == []


def test_sweep_spares_live_writers(tmp_path):
    """A tmp whose encoded pid is alive (ours) must survive the sweep;
    one with a dead writer pid must not."""
    objects = tmp_path / "objects" / "aa"
    objects.mkdir(parents=True)
    live = objects / f"{_tmp_prefix()}live.tmp"
    live.write_bytes(b"in flight")
    # A real, definitely-dead writer pid: a child that already exited
    # (reaped, so the pid is free until the kernel recycles it).
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    dead = objects / f".put-{proc.pid}-x.tmp"
    dead.write_bytes(b"orphan")
    assert sweep_stale_tmp(tmp_path) == 1
    assert live.exists()
    assert not dead.exists()


def test_old_unparsable_tmp_swept_by_age(tmp_path):
    """Legacy tmp names (no pid) fall back to the age policy."""
    objects = tmp_path / "objects" / "ab"
    objects.mkdir(parents=True)
    legacy = objects / "tmpq1w2e3.tmp"
    legacy.write_bytes(b"old")
    ancient = time.time() - (TMP_MAX_AGE_SECONDS + 60)
    os.utime(legacy, (ancient, ancient))
    fresh = objects / "tmpr4t5y6.tmp"
    fresh.write_bytes(b"new")
    assert sweep_stale_tmp(tmp_path) == 1
    assert not legacy.exists()
    assert fresh.exists()


def test_clear_removes_crash_debris(tmp_path):
    cache = ResultCache(root=tmp_path, enabled=True)
    cache.put("dd" + "3" * 62, [1, 2, 3])
    _run_and_kill(_kill_victim_cache, tmp_path, tmp_path, "clear")
    assert cache.clear() == 2  # one entry + one orphan tmp
    assert list(tmp_path.rglob("*.tmp")) == []
    assert list(tmp_path.rglob("*.pkl")) == []


# ----------------------------------------------------------------------
# Unpicklable values: demote to not-cached, never leak, never raise
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "value",
    [
        lambda: None,                       # functions defined locally
        (i for i in range(3)),              # generators
        {"nested": {"fh": open(os.devnull)}},  # file handles (TypeError)
    ],
    ids=["lambda", "generator", "file-handle"],
)
def test_cache_put_unpicklable_is_silent_and_leakless(tmp_path, value):
    cache = ResultCache(root=tmp_path, enabled=True)
    key = "ee" + "4" * 62
    cache.put(key, value)  # must not raise
    assert cache.get(key) is ResultCache.MISS
    assert list(tmp_path.rglob("*.tmp")) == []


def test_checkpoint_put_unpicklable_is_silent_and_leakless(tmp_path):
    cp = SweepCheckpoint(tmp_path)
    cp.put("ff" + "5" * 62, lambda: None)
    assert cp.get("ff" + "5" * 62) is SweepCheckpoint.MISS
    assert cp.stores == 0, "a failed put must not count as a store"
    assert list(tmp_path.rglob("*.tmp")) == []


# ----------------------------------------------------------------------
# Manifest durability
# ----------------------------------------------------------------------
def test_write_manifest_fsyncs_before_rename(tmp_path, monkeypatch):
    """The data blocks must be on disk before the rename publishes the
    file — record the call order to prove it."""
    calls = []
    real_fsync, real_replace = os.fsync, os.replace
    monkeypatch.setattr(
        os, "fsync", lambda fd: (calls.append("fsync"), real_fsync(fd))[1]
    )
    monkeypatch.setattr(
        os,
        "replace",
        lambda a, b: (calls.append("replace"), real_replace(a, b))[1],
    )
    cp = SweepCheckpoint(tmp_path)
    cp.write_manifest({"regions": 3})
    assert "fsync" in calls and "replace" in calls
    assert calls.index("fsync") < calls.index("replace")
    assert cp.read_manifest()["regions"] == 3


def test_write_manifest_bad_meta_keeps_old_manifest(tmp_path):
    cp = SweepCheckpoint(tmp_path)
    cp.write_manifest({"run": "good"})
    cp.write_manifest({"bad": object()})  # not JSON-serializable
    manifest = cp.read_manifest()
    assert manifest is not None and manifest["run"] == "good"
    assert list(tmp_path.glob("*.tmp")) == []


def test_write_manifest_io_error_keeps_old_and_no_tmp(tmp_path, monkeypatch):
    cp = SweepCheckpoint(tmp_path)
    cp.write_manifest({"run": "good"})

    def boom(fd):
        raise OSError("disk full")

    monkeypatch.setattr(os, "fsync", boom)
    cp.write_manifest({"run": "torn"})
    assert cp.read_manifest()["run"] == "good"
    assert list(tmp_path.glob("*.tmp")) == []


# ----------------------------------------------------------------------
# Env-built checkpoint caching: telemetry must accumulate
# ----------------------------------------------------------------------
@pytest.fixture
def _unconfigured_checkpoint(monkeypatch):
    """Run with no CLI-configured checkpoint so env resolution applies."""
    import repro.runtime.checkpoint as cp_mod

    monkeypatch.setattr(cp_mod, "_configured", False)
    monkeypatch.setattr(cp_mod, "_active", None)
    monkeypatch.setattr(cp_mod, "_env_instance", None)
    yield cp_mod


def test_env_checkpoint_instance_is_cached(
    tmp_path, monkeypatch, _unconfigured_checkpoint
):
    """Repeated ``get_checkpoint()`` under ``NACHOS_CHECKPOINT_DIR``
    must return ONE instance whose hits/stores accumulate — the old
    build-a-fresh-instance-per-call behavior zeroed the telemetry every
    read."""
    cp_mod = _unconfigured_checkpoint
    monkeypatch.setenv("NACHOS_CHECKPOINT_DIR", str(tmp_path / "ckpt"))
    first = cp_mod.get_checkpoint()
    assert first is not None
    first.put("aa" + "6" * 62, {"cycles": 7})
    assert first.stores == 1
    again = cp_mod.get_checkpoint()
    assert again is first, "env-built checkpoint must be memoized"
    assert again.get("aa" + "6" * 62) == {"cycles": 7}
    assert again.hits == 1
    third = cp_mod.get_checkpoint()
    assert third.hits == 1 and third.stores == 1, "counters must persist"


def test_env_checkpoint_invalidated_on_env_change(
    tmp_path, monkeypatch, _unconfigured_checkpoint
):
    cp_mod = _unconfigured_checkpoint
    monkeypatch.setenv("NACHOS_CHECKPOINT_DIR", str(tmp_path / "a"))
    first = cp_mod.get_checkpoint()
    monkeypatch.setenv("NACHOS_CHECKPOINT_DIR", str(tmp_path / "b"))
    second = cp_mod.get_checkpoint()
    assert second is not first
    assert second.root == tmp_path / "b"
    monkeypatch.delenv("NACHOS_CHECKPOINT_DIR")
    assert cp_mod.get_checkpoint() is None


def test_configure_checkpoint_resets_env_memo(
    tmp_path, monkeypatch, _unconfigured_checkpoint
):
    cp_mod = _unconfigured_checkpoint
    monkeypatch.setenv("NACHOS_CHECKPOINT_DIR", str(tmp_path / "env"))
    env_built = cp_mod.get_checkpoint()
    assert env_built is not None
    configured = cp_mod.configure_checkpoint(tmp_path / "cli")
    assert cp_mod.get_checkpoint() is configured
    cp_mod.configure_checkpoint(None)
    assert cp_mod.get_checkpoint() is None
