"""Tests for the microbenchmark suite."""

import pytest

from repro.compiler import AliasLabel, compile_region
from repro.experiments.common import compare_systems, run_system
from repro.workloads.micro import MICROS, build_micro, micro_names


class TestMicroConstruction:
    def test_all_micros_build_and_validate(self):
        for name in micro_names():
            w = build_micro(name)
            w.graph.validate()
            assert w.name.startswith("micro.")

    def test_unknown_micro(self):
        with pytest.raises(KeyError):
            build_micro("nope")

    def test_envs_bind_everything(self):
        for name in micro_names():
            w = build_micro(name)
            env = w.invocations(1)[0]
            for op in w.graph.memory_ops:
                op.addr.evaluate(env)


class TestMicroLabelSignatures:
    def test_stream_triad_fully_resolved(self):
        result = compile_region(build_micro("stream_triad").graph)
        assert result.final_labels.count(AliasLabel.MAY) == 0
        assert result.needs_no_disambiguation

    def test_stencil_resolved_by_scev(self):
        result = compile_region(build_micro("stencil3").graph)
        assert result.final_labels.count(AliasLabel.MAY) == 0

    def test_reduction_has_no_pairs(self):
        result = compile_region(build_micro("reduction").graph)
        assert result.total_pairs == 0  # loads only

    def test_gather_is_ambiguity_free(self):
        # Indirect *loads* pair with nothing: LD-LD needs no ordering and
        # the stores hit a provably distinct output array.
        result = compile_region(build_micro("gather").graph)
        assert result.needs_no_disambiguation

    def test_scatter_and_rmw_stay_may(self):
        for name in ("scatter", "rmw"):
            result = compile_region(build_micro(name).graph)
            assert result.final_labels.count(AliasLabel.MAY) > 0, name

    def test_rmw_same_slot_pairs_are_must(self):
        result = compile_region(build_micro("rmw").graph)
        # Each ld/st pair shares one Sym -> exact MUST.  They are LD->ST
        # (read-modify-write), so they order — never forward — and the
        # store's data dependence on the load lets stage 3 prune them.
        assert result.stage1.count(AliasLabel.MUST) >= 4
        assert result.plan.removed_must >= 4

    def test_transpose_resolved_by_stage4(self):
        result = compile_region(build_micro("transpose").graph)
        assert result.stage1.count(AliasLabel.MAY) > 0
        assert result.final_labels.count(AliasLabel.MAY) == 0

    def test_pointer_chase_is_serial(self):
        from repro.workloads import measured_mlp

        w = build_micro("pointer_chase")
        assert measured_mlp(w.graph) == 1


class TestMicroExecution:
    @pytest.mark.parametrize("name", sorted(MICROS))
    def test_all_systems_correct(self, name):
        w = build_micro(name)
        cmp = compare_systems(w, invocations=6)
        assert cmp.all_correct, name

    def test_scatter_conflicts_drive_checks(self):
        w = build_micro("scatter")  # indirect_range=64: real collisions
        run = run_system(w, "nachos", invocations=12)
        assert run.correct
        assert run.sim.backend_stats.comparator_checks > 0

    def test_rmw_cross_pair_conflicts_handled(self):
        """With a 32-slot table, distinct RMW pairs collide across and
        within invocations; NACHOS must detect and order those."""
        w = build_micro("rmw")
        run = run_system(w, "nachos", invocations=20)
        assert run.correct
        stats = run.sim.backend_stats
        assert stats.comparator_checks > 0
        assert stats.comparator_conflicts + stats.runtime_forwards > 0
