"""Shared fixtures: small hand-built regions and simulation plumbing."""

from __future__ import annotations

import pytest

from repro.cgra.placement import place_region
from repro.ir import (
    AffineExpr,
    IVar,
    MemObject,
    MemorySpace,
    PointerParam,
    RegionBuilder,
)
from repro.memory import MemoryHierarchy
from repro.sim import DataflowEngine, NachosBackend, NachosSWBackend, OptLSQBackend


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ timeline corpus files from the "
        "current reference-engine output instead of comparing",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Keep test runs out of the user's on-disk result cache."""
    from repro.runtime.cache import configure_cache

    configure_cache(root=tmp_path_factory.mktemp("nachos-cache"), enabled=True)
    yield


@pytest.fixture
def iv():
    return IVar("i", 64)


@pytest.fixture
def obj_a():
    return MemObject("a", 8192, base_addr=0x1000)


@pytest.fixture
def obj_b():
    return MemObject("b", 8192, base_addr=0x8000)


def build_simple_region(obj_a=None, obj_b=None, iv=None):
    """ld a[8i]; ld b[8i]; sum; st a[8i] (one MUST LD->ST, rest NO)."""
    obj_a = obj_a or MemObject("a", 8192, base_addr=0x1000)
    obj_b = obj_b or MemObject("b", 8192, base_addr=0x8000)
    iv = iv or IVar("i", 64)
    b = RegionBuilder("simple")
    x = b.input("x")
    ld1 = b.load(obj_a, AffineExpr.of(ivs={iv: 8}))
    ld2 = b.load(obj_b, AffineExpr.of(ivs={iv: 8}))
    s = b.add(ld1, ld2)
    st = b.store(obj_a, AffineExpr.of(ivs={iv: 8}), value=s)
    return b.build()


def build_may_region():
    """Two opaque-pointer accesses that MAY alias a named array's ops."""
    target1 = MemObject("t1", 4096, base_addr=0x20000)
    target2 = MemObject("t2", 4096, base_addr=0x30000)
    known = MemObject("k", 4096, base_addr=0x40000)
    p = PointerParam("p", runtime_object=target1, provenance=None)
    q = PointerParam("q", runtime_object=target2, provenance=None)
    iv = IVar("i", 32)
    b = RegionBuilder("maylike")
    x = b.input("x")
    st1 = b.store(p, AffineExpr.of(ivs={iv: 8}), value=x)
    ld1 = b.load(q, AffineExpr.of(ivs={iv: 8}))
    ld2 = b.load(known, AffineExpr.of(ivs={iv: 8}))
    acc = b.add(ld1, ld2)
    st2 = b.store(known, AffineExpr.of(const=8, ivs={iv: 8}), value=acc)
    return b.build()


@pytest.fixture
def simple_region(obj_a, obj_b, iv):
    return build_simple_region(obj_a, obj_b, iv)


@pytest.fixture
def may_region():
    return build_may_region()


BACKENDS = {
    "opt-lsq": OptLSQBackend,
    "nachos-sw": NachosSWBackend,
    "nachos": NachosBackend,
}


def make_engine(graph, backend_name="nachos-sw"):
    backend = BACKENDS[backend_name]()
    return DataflowEngine(graph, place_region(graph), MemoryHierarchy(), backend)


@pytest.fixture
def engine_factory():
    return make_engine
