"""The content-addressed result cache: store, fingerprints, warm runs."""

from __future__ import annotations

import pickle

import pytest

from repro.compiler.pipeline import PipelineConfig
from repro.runtime.cache import ResultCache, configure_cache, get_cache
from repro.runtime.fingerprint import (
    combine,
    config_fingerprint,
    envs_fingerprint,
    graph_fingerprint,
)
from repro.experiments.common import clear_memos, run_system
from repro.workloads.micro import build_micro

from .conftest import build_may_region, build_simple_region


@pytest.fixture
def fresh_cache(tmp_path):
    """An isolated, empty cache installed as the process default."""
    prev = get_cache()
    cache = configure_cache(root=tmp_path / "cache", enabled=True)
    clear_memos()
    yield cache
    clear_memos()
    configure_cache(root=prev.root, enabled=prev.enabled)


# ----------------------------------------------------------------------
# Object store
# ----------------------------------------------------------------------
def test_roundtrip_and_miss(tmp_path):
    cache = ResultCache(root=tmp_path, enabled=True)
    key = combine("unit", "roundtrip")
    assert cache.get(key) is ResultCache.MISS
    cache.put(key, {"cycles": 123, "values": [1, 2, 3]})
    assert cache.get(key) == {"cycles": 123, "values": [1, 2, 3]}
    assert cache.hits == 1 and cache.misses == 1


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(root=tmp_path, enabled=True)
    key = combine("unit", "corrupt")
    cache.put(key, "fine")
    path = cache._object_path(key)
    path.write_bytes(b"not a pickle")
    assert cache.get(key) is ResultCache.MISS


def test_truncated_entry_is_a_miss_and_reputtable(tmp_path):
    # A crash mid-write on a filesystem without atomic rename leaves a
    # prefix of the pickle; reads must demote to a miss and a re-put
    # must restore the entry.
    cache = ResultCache(root=tmp_path, enabled=True)
    key = combine("unit", "truncated")
    cache.put(key, {"cycles": 99})
    path = cache._object_path(key)
    path.write_bytes(path.read_bytes()[:5])
    assert cache.get(key) is ResultCache.MISS
    cache.put(key, {"cycles": 99})
    assert cache.get(key) == {"cycles": 99}


def test_put_leaves_no_tmp_droppings(tmp_path):
    cache = ResultCache(root=tmp_path, enabled=True)
    for i in range(5):
        cache.put(combine("unit", "tmp", str(i)), i)
    leftovers = list(tmp_path.rglob("*.tmp"))
    assert leftovers == []


def test_disabled_cache_never_touches_disk(tmp_path):
    cache = ResultCache(root=tmp_path, enabled=False)
    key = combine("unit", "disabled")
    cache.put(key, "value")
    assert cache.get(key) is ResultCache.MISS
    assert not (tmp_path / "objects").exists()
    assert cache.hits == 0 and cache.misses == 0


def test_stats_and_clear(tmp_path):
    cache = ResultCache(root=tmp_path, enabled=True)
    for i in range(3):
        cache.put(combine("unit", "stats", str(i)), list(range(i)))
    stats = cache.stats()
    assert stats["entries"] == 3
    assert stats["bytes"] > 0
    assert cache.clear() == 3
    assert cache.stats()["entries"] == 0


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_graph_fingerprint_stable_across_rebuilds():
    # Fresh builds draw fresh uids from the global counter; the
    # canonicalized fingerprint must not see them.
    assert graph_fingerprint(build_simple_region()) == graph_fingerprint(
        build_simple_region()
    )
    assert graph_fingerprint(build_may_region()) == graph_fingerprint(
        build_may_region()
    )


def test_graph_fingerprint_distinguishes_content():
    assert graph_fingerprint(build_simple_region()) != graph_fingerprint(
        build_may_region()
    )


def test_workload_fingerprint_stable_across_rebuilds():
    from repro.experiments.common import workload_fingerprint

    assert workload_fingerprint(build_micro("gather")) == workload_fingerprint(
        build_micro("gather")
    )
    assert workload_fingerprint(build_micro("gather")) != workload_fingerprint(
        build_micro("scatter")
    )


def test_config_fingerprint():
    assert config_fingerprint(None) == "none"
    assert config_fingerprint(PipelineConfig.full()) == config_fingerprint(
        PipelineConfig.full()
    )
    assert config_fingerprint(PipelineConfig.full()) != config_fingerprint(
        PipelineConfig.baseline_compiler()
    )


def test_envs_fingerprint_order_insensitive_keys():
    a = [{"i": 1, "j": 2}, {"i": 3, "j": 4}]
    b = [{"j": 2, "i": 1}, {"j": 4, "i": 3}]
    assert envs_fingerprint(a) == envs_fingerprint(b)
    assert envs_fingerprint(a) != envs_fingerprint([{"i": 9, "j": 2}])


def test_combine_is_order_sensitive():
    assert combine("a", "b") == combine("a", "b")
    assert combine("a", "b") != combine("b", "a")


# ----------------------------------------------------------------------
# Warm runs through run_system
# ----------------------------------------------------------------------
def test_warm_run_is_byte_identical_and_served_from_cache(fresh_cache):
    workload = build_micro("stream_triad")
    cold = run_system(workload, "nachos", invocations=4)
    assert fresh_cache.hits == 0 and fresh_cache.misses > 0

    # Drop the in-process memos so the second run must go to disk.
    clear_memos()
    fresh_cache.misses = 0
    warm = run_system(build_micro("stream_triad"), "nachos", invocations=4)
    assert fresh_cache.hits > 0
    assert fresh_cache.misses == 0
    assert pickle.dumps(warm.sim) == pickle.dumps(cold.sim)
    assert warm.correct == cold.correct
    assert warm.n_mdes == cold.n_mdes


def test_check_false_shares_cache_entries_with_check_true(fresh_cache):
    workload = build_micro("scatter")
    run_system(workload, "opt-lsq", invocations=4, check=False)
    clear_memos()
    fresh_cache.misses = 0
    checked = run_system(workload, "opt-lsq", invocations=4, check=True)
    assert fresh_cache.misses == 0  # same entry, correctness was stored
    assert checked.correct


def test_session_hit_counters_feed_stats(fresh_cache):
    workload = build_micro("reduction")
    run_system(workload, "opt-lsq", invocations=3)
    clear_memos()
    run_system(workload, "opt-lsq", invocations=3)
    stats = fresh_cache.stats()
    assert stats["session_hits"] >= 1
    assert stats["hits"] >= 1
