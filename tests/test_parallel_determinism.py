"""Parallel sweeps must be observationally identical to serial ones.

The sweep layer promises deterministic, order-preserving results at any
``--jobs`` value.  These tests run the same task grid serially and
across a 4-worker process pool — with the result cache *disabled*, so
the pool genuinely recomputes — and require bit-identical outcomes.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.common import SYSTEMS, clear_memos
from repro.runtime.cache import configure_cache, get_cache
from repro.runtime.executor import SimTask, run_tasks
from repro.runtime.sweep import sweep_comparisons, sweep_runs
from repro.workloads.micro import build_micro

MICROS = ("stream_triad", "gather", "rmw")
INVOCATIONS = 4


@pytest.fixture
def no_cache():
    """Disable the on-disk cache so parallel workers really compute."""
    prev = get_cache()
    configure_cache(enabled=False)
    clear_memos()
    yield
    clear_memos()
    configure_cache(root=prev.root, enabled=prev.enabled)


def _signature(run):
    sim = run.sim
    return (
        run.system,
        run.correct,
        run.n_mdes,
        sim.cycles,
        tuple(sim.per_invocation_cycles),
        sim.total_energy,
        tuple(sorted(sim.load_values.items())),
        sim.memory_image,
        sim.l1_hits,
        sim.l1_misses,
    )


def test_parallel_sweep_matches_serial(no_cache):
    workloads = [build_micro(name) for name in MICROS]

    serial = sweep_comparisons(workloads, invocations=INVOCATIONS, jobs=1)
    clear_memos()
    parallel = sweep_comparisons(
        [build_micro(name) for name in MICROS],
        invocations=INVOCATIONS,
        jobs=4,
    )

    assert len(serial) == len(parallel) == len(MICROS)
    for s_cmp, p_cmp in zip(serial, parallel):
        assert list(s_cmp.runs) == list(SYSTEMS) == list(p_cmp.runs)
        for system in SYSTEMS:
            s_run, p_run = s_cmp.runs[system], p_cmp.runs[system]
            assert _signature(s_run) == _signature(p_run)
            assert pickle.dumps(s_run.sim) == pickle.dumps(p_run.sim)
            assert s_run.sim.backend_stats == p_run.sim.backend_stats


def test_sweep_runs_preserves_task_order(no_cache):
    tasks = [
        SimTask(build_micro(name), system, INVOCATIONS, check=False)
        for name in MICROS
        for system in ("opt-lsq", "serial-mem")
    ]
    runs = sweep_runs(tasks, jobs=4)
    assert [r.system for r in runs] == [t.system for t in tasks]
    assert [r.sim.region for r in runs] == [t.workload.name for t in tasks]


def test_run_tasks_serial_and_pool_agree_on_extension_systems(no_cache):
    tasks = [
        SimTask(build_micro("scatter"), system, INVOCATIONS)
        for system in ("serial-mem", "oracle-sw")
    ]
    serial = run_tasks(tasks, jobs=1)
    clear_memos()
    pooled = run_tasks(tasks, jobs=2)
    for s, p in zip(serial, pooled):
        assert _signature(s) == _signature(p)


def test_supervised_pool_with_timeout_matches_serial(no_cache):
    # Supervision (per-task deadline armed, retries available) must not
    # perturb results when nothing actually faults.
    from repro.runtime.retry import RetryPolicy

    policy = RetryPolicy(timeout=60.0, max_retries=2)
    tasks = [
        SimTask(build_micro(name), system, INVOCATIONS)
        for name in MICROS
        for system in ("opt-lsq", "nachos")
    ]
    serial = run_tasks(tasks, jobs=1, policy=policy)
    clear_memos()
    pooled = run_tasks(tasks, jobs=3, policy=policy)
    for s, p in zip(serial, pooled):
        assert _signature(s) == _signature(p)
        assert pickle.dumps(s.sim) == pickle.dumps(p.sim)


def test_parallel_populates_shared_cache_for_serial_rerun(tmp_path):
    prev = get_cache()
    cache = configure_cache(root=tmp_path / "cache", enabled=True)
    clear_memos()
    try:
        workloads = [build_micro(name) for name in MICROS]
        parallel = sweep_comparisons(workloads, invocations=INVOCATIONS, jobs=4)
        # Workers shared the same on-disk root: a serial re-run in this
        # process is served entirely from cache and agrees exactly.
        clear_memos()
        cache.misses = 0
        serial = sweep_comparisons(workloads, invocations=INVOCATIONS, jobs=1)
        assert cache.misses == 0
        assert cache.hits > 0
        for p_cmp, s_cmp in zip(parallel, serial):
            for system in SYSTEMS:
                assert _signature(p_cmp.runs[system]) == _signature(
                    s_cmp.runs[system]
                )
    finally:
        clear_memos()
        configure_cache(root=prev.root, enabled=prev.enabled)
