"""Edge cases of :class:`repro.serve.client.ServeClient`.

The client is the only thing between a caller and a daemon mid-restart,
a half-dead socket, or a proxy mangling bodies — each of those must
surface as a typed :class:`ServeError` (or a bounded retry), never a
hang or a bare ``json`` traceback.  The malformed-wire tests run
against a one-shot raw-socket server so the exact bytes on the wire
are the test's, not ``http.server``'s.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.runtime.retry import RetryPolicy
from repro.serve import NachosServeDaemon, ServeClient, ServeError


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _one_shot_server(raw: bytes) -> int:
    """Serve exactly *raw* to the first connection, then close."""
    sock = socket.socket()
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    port = sock.getsockname()[1]

    def serve():
        conn, _ = sock.accept()
        try:
            conn.recv(65536)
            conn.sendall(raw)
        finally:
            conn.close()
            sock.close()

    threading.Thread(target=serve, daemon=True).start()
    return port


def _response(body: bytes, headers: str = "") -> bytes:
    return (
        "HTTP/1.1 200 OK\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{headers}"
        "Connection: close\r\n\r\n"
    ).encode("ascii") + body


# -- connection-refused retry -------------------------------------------
def test_connection_refused_retries_until_daemon_appears():
    """A client with retries rides out a daemon restart window: connects
    are refused, then the daemon binds, then the request succeeds."""
    port = _free_port()
    client = ServeClient(
        port=port, retries=10,
        retry_policy=RetryPolicy(backoff_base=0.05, backoff_max=0.25),
    )

    daemon_box = {}

    def boot_later():
        time.sleep(0.4)
        daemon = NachosServeDaemon(port=port, quiet=True)
        daemon_box["thread"] = daemon.serve_in_thread()
        daemon_box["daemon"] = daemon

    booter = threading.Thread(target=boot_later)
    booter.start()
    try:
        assert client.healthz()["ok"] is True
    finally:
        booter.join()
        daemon_box["daemon"].request_shutdown()
        daemon_box["thread"].join(timeout=30)


def test_connection_refused_without_retries_raises_immediately():
    client = ServeClient(port=_free_port(), retries=0)
    with pytest.raises(ConnectionRefusedError):
        client.healthz()


def test_retry_budget_exhaustion_surfaces_the_refusal():
    client = ServeClient(
        port=_free_port(), retries=2,
        retry_policy=RetryPolicy(backoff_base=0.01, backoff_max=0.02),
    )
    with pytest.raises(ConnectionRefusedError):
        client.healthz()


# -- polling across a daemon restart ------------------------------------
def test_poll_unknown_request_id_after_restart_is_a_clean_404():
    """Request records are in-memory; after a restart an old id must
    answer 404 (resubmit-by-content is the durable path, and it is —
    the cache makes the resubmit instant)."""
    first = NachosServeDaemon(port=0, quiet=True)
    thread = first.serve_in_thread()
    try:
        client = ServeClient(port=first.port)
        done = client.submit(
            "gather", systems=["nachos"], invocations=3, wait=True,
            wait_timeout=60,
        )
        request_id = done["request_id"]
    finally:
        first.request_shutdown()
        thread.join(timeout=30)

    second = NachosServeDaemon(port=0, quiet=True)
    thread = second.serve_in_thread()
    try:
        client = ServeClient(port=second.port)
        with pytest.raises(ServeError) as excinfo:
            client.poll(request_id)
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client.result(request_id)
        assert excinfo.value.status == 404
        # Same *content* resubmitted gets the same id back, served warm.
        again = client.submit(
            "gather", systems=["nachos"], invocations=3, wait=True,
            wait_timeout=60,
        )
        assert again["request_id"] == request_id
        assert again["results"] == done["results"]
    finally:
        second.request_shutdown()
        thread.join(timeout=30)


# -- malformed response bodies ------------------------------------------
def test_oversized_declared_body_is_rejected_before_download():
    port = _one_shot_server(
        b"HTTP/1.1 200 OK\r\nContent-Length: 999999999999\r\n"
        b"Connection: close\r\n\r\n"
    )
    client = ServeClient(port=port, timeout=5)
    with pytest.raises(ServeError, match="too large"):
        client.healthz()


def test_truncated_chunked_body_is_a_typed_error():
    # Chunked framing that declares 0x100 bytes then hangs up mid-chunk.
    port = _one_shot_server(
        b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n"
        b"Connection: close\r\n\r\n100\r\n{\"partial\": tru"
    )
    client = ServeClient(port=port, timeout=5)
    with pytest.raises(ServeError, match="truncated response body"):
        client.healthz()


def test_non_json_body_surfaces_with_preview():
    port = _one_shot_server(_response(b"<html>proxy error page</html>"))
    client = ServeClient(port=port, timeout=5)
    with pytest.raises(ServeError, match="not valid JSON") as excinfo:
        client.healthz()
    assert "proxy error" in excinfo.value.payload["preview"]


def test_non_object_json_body_is_rejected():
    port = _one_shot_server(_response(b"[1, 2, 3]"))
    client = ServeClient(port=port, timeout=5)
    with pytest.raises(ServeError, match="not a JSON object"):
        client.healthz()


def test_undecodable_bytes_are_rejected_not_crashed():
    port = _one_shot_server(_response(b"\xff\xfe\x00garbage\x80"))
    client = ServeClient(port=port, timeout=5)
    with pytest.raises(ServeError, match="not valid JSON"):
        client.healthz()
