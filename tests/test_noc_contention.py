"""Tests for XY routing and optional link-contention modeling."""

import pytest

from repro.cgra import CGRAConfig, Placement
from repro.cgra.placement import place_region
from repro.memory import MemoryHierarchy
from repro.sim import DataflowEngine, NachosSWBackend, golden_execute
from repro.sim.config import EngineConfig
from tests.conftest import build_simple_region


class TestXYRoute:
    def _placement(self):
        p = Placement(CGRAConfig(rows=8, cols=8))
        p.cells = {0: (0, 0), 1: (2, 3), 2: (0, 1)}
        return p

    def test_route_length_equals_hops(self):
        p = self._placement()
        assert len(p.xy_route(0, 1)) == p.hops(0, 1) == 5

    def test_route_is_contiguous(self):
        p = self._placement()
        route = p.xy_route(0, 1)
        for (a, b), (c, d) in zip(route, route[1:]):
            assert b == c
        assert route[0][0] == (0, 0)
        assert route[-1][1] == (2, 3)

    def test_route_x_first(self):
        p = self._placement()
        route = p.xy_route(0, 1)
        # First hops move along the row (column changes).
        assert route[0][1] == (0, 1)

    def test_self_route_empty(self):
        p = self._placement()
        assert p.xy_route(0, 0) == []

    def test_adjacent_single_link(self):
        p = self._placement()
        assert p.xy_route(0, 2) == [((0, 0), (0, 1))]


class TestLinkContention:
    def _run(self, contention: bool):
        g = build_simple_region()
        engine = DataflowEngine(
            g,
            place_region(g),
            MemoryHierarchy(),
            NachosSWBackend(),
            config=EngineConfig(model_link_contention=contention),
        )
        envs = [{"i": k % 64} for k in range(6)]
        return engine.run(envs), g, envs

    def test_contention_never_speeds_up(self):
        free, _, _ = self._run(False)
        congested, _, _ = self._run(True)
        assert congested.cycles >= free.cycles

    def test_contention_preserves_correctness(self):
        result, g, envs = self._run(True)
        golden = golden_execute(g, envs)
        assert golden.matches(result.load_values, result.memory_image)

    def test_fan_out_hotspot_serializes(self):
        """Many consumers of one producer share that producer's outgoing
        links; contention must stagger their deliveries."""
        from repro.ir import RegionBuilder

        b = RegionBuilder()
        x = b.input("x")
        y = b.input("y")
        consumers = [b.add(x, y) for _ in range(12)]
        g = b.build()

        def run(contention):
            engine = DataflowEngine(
                g, place_region(g), MemoryHierarchy(), NachosSWBackend(),
                config=EngineConfig(model_link_contention=contention),
            )
            engine.run([{}])
            return max(
                engine.state_of(c.op_id).complete_time for c in consumers
            )

        assert run(True) > run(False)

    def test_suite_workload_correct_under_contention(self):
        from repro.compiler import compile_region
        from repro.workloads import build_workload, get_spec

        w = build_workload(get_spec("parser"))
        compile_region(w.graph)
        engine = DataflowEngine(
            w.graph, place_region(w.graph), MemoryHierarchy(),
            NachosSWBackend(), config=EngineConfig(model_link_contention=True),
        )
        envs = w.invocations(6)
        result = engine.run(envs)
        golden = golden_execute(w.graph, envs)
        assert golden.matches(result.load_values, result.memory_image)
