"""Tests for the serial-memory backend, granularity study, and summary."""

import pytest

from repro.cgra.placement import place_region
from repro.memory import MemoryHierarchy
from repro.sim import DataflowEngine, SerialMemBackend, golden_execute
from repro.workloads import build_workload, get_spec
from tests.conftest import build_may_region, build_simple_region


def run_serial(graph, envs):
    graph.clear_mdes()
    engine = DataflowEngine(
        graph, place_region(graph), MemoryHierarchy(), SerialMemBackend()
    )
    return engine.run(envs)


class TestSerialMemBackend:
    def test_correct_on_simple_region(self):
        g = build_simple_region()
        envs = [{"i": k} for k in range(5)]
        result = run_serial(g, envs)
        assert golden_execute(g, envs).matches(
            result.load_values, result.memory_image
        )

    def test_correct_on_ambiguous_region(self):
        g = build_may_region()
        envs = [{"i": k % 32} for k in range(5)]
        result = run_serial(g, envs)
        assert golden_execute(g, envs).matches(
            result.load_values, result.memory_image
        )

    def test_correct_on_conflicting_workload(self):
        w = build_workload(get_spec("histogram"))
        envs = w.invocations(6)
        result = run_serial(w.graph, envs)
        assert golden_execute(w.graph, envs).matches(
            result.load_values, result.memory_image
        )

    def test_strictly_in_order_completions(self):
        from repro.sim import TimelineRecorder

        g = build_simple_region()
        g.clear_mdes()
        recorder = TimelineRecorder()
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), SerialMemBackend(),
            recorder=recorder,
        )
        engine.run([{"i": 0}])
        tl = recorder.invocations[0]
        mem_completions = [
            tl.completion_of(op.op_id) for op in g.memory_ops
        ]
        assert mem_completions == sorted(mem_completions)
        assert len(set(mem_completions)) == len(mem_completions)

    def test_slower_than_parallel_backends(self):
        from repro.experiments.common import run_system
        from repro.experiments.regions import workload_for

        w = workload_for(get_spec("equake"))
        nachos = run_system(w, "nachos", invocations=6, check=False)
        serial = run_serial(w.graph, w.invocations(6))
        assert serial.cycles > nachos.sim.cycles

    def test_no_disambiguation_energy(self):
        g = build_simple_region()
        g.clear_mdes()
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), SerialMemBackend()
        )
        engine.run([{"i": 0}])
        assert engine.energy.breakdown().disambiguation == 0.0


class TestGranularityExperiment:
    def test_runs_and_renders(self):
        from repro.experiments import granularity

        result = granularity.run(invocations=4)
        assert len(result.rows) == 27
        out = granularity.render(result)
        assert "Table I quantified" in out

    def test_memory_parallel_regions_collapse(self):
        from repro.experiments import granularity

        result = granularity.run(invocations=4)
        by_name = {r.name: r for r in result.rows}
        assert by_name["equake"].serial_slowdown_pct > 100.0
        assert by_name["blackscholes"].serial_slowdown_pct == 0.0


class TestSummary:
    def test_summary_claims_hold(self):
        from repro.experiments import summary

        result = summary.run(invocations=8)
        assert len(result.checks) == 14
        failed = [c.claim_id for c in result.checks if not c.passed]
        assert result.all_passed, f"failed claims: {failed}"

    def test_render_marks_failures(self):
        from repro.experiments.summary import ClaimCheck, SummaryResult, render

        result = SummaryResult(
            checks=[
                ClaimCheck("a", "p", "m", True),
                ClaimCheck("b", "p", "m", False),
            ]
        )
        out = render(result)
        assert "1/2" in out
        assert "FAIL" in out and "PASS" in out
        assert not result.all_passed
