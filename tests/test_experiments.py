"""Integration tests: every experiment runs and reports paper-like shapes.

Simulation-based experiments run with a reduced invocation count so the
whole file stays fast; the assertions check the *shape* claims from the
paper, not absolute numbers.
"""

import pytest

from repro.experiments import (
    appendix_model,
    compare_systems,
    fig06,
    fig07,
    fig09,
    fig10,
    fig11,
    fig12,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    scope_study,
    table2,
)
from repro.experiments.regions import workload_for
from repro.workloads import get_spec

INV = 12  # few invocations: shape checks only


# ---------------------------------------------------------------------------
# Compile-only experiments (full 135-region corpus is cheap)
# ---------------------------------------------------------------------------


class TestTable2:
    def test_27_rows(self):
        result = table2.run()
        assert len(result.rows) == 27
        assert "Table II" in table2.render(result)

    def test_mem_heavy_benchmarks_flagged(self):
        result = table2.run()
        by_name = {r.name: r for r in result.rows}
        assert by_name["equake"].n_mem > 100
        assert by_name["blackscholes"].n_mem == 0

    def test_local_promotion_reported(self):
        result = table2.run()
        by_name = {r.name: r for r in result.rows}
        assert by_name["crafty"].pct_local > 10
        assert by_name["histogram"].pct_local == 0


class TestStageFigures:
    def test_fig06_stage1_resolves_several_workloads(self):
        result = fig06.run(top_k=2)
        assert len(result.rows) == 27
        assert result.workloads_fully_resolved >= 5
        assert "Figure 6" in fig06.render(result)

    def test_fig06_may_dominates_where_unresolved(self):
        result = fig06.run(top_k=1)
        unresolved = [r for r in result.rows if r.pct_may > 0]
        dominant_may = [r for r in unresolved if r.pct_may > r.pct_must]
        assert len(dominant_may) > len(unresolved) / 2

    def test_fig07_stage2_refines_provenance_benchmarks(self):
        result = fig07.run(top_k=2)
        refined = set(result.refined_workloads)
        # gcc's two memory ops form a MUST pair, so it has no MAYs left
        # to refine; the other provenance benchmarks must all improve.
        for name in ["parser", "fluidanimate", "464.h264ref", "sar-backprojection"]:
            assert name in refined
        assert "Figure 7" in fig07.render(result)

    def test_fig09_stage3_removes_relations(self):
        result = fig09.run(top_k=2)
        assert result.mean_removed_pct > 20
        assert "Figure 9" in fig09.render(result)

    def test_fig10_sorted_by_may(self):
        result = fig10.run()
        mays = [r.pct_may_ops for r in result.rows]
        assert mays == sorted(mays)
        assert "Figure 10" in fig10.render(result)

    def test_fig14_fan_in_groups(self):
        result = fig14.run()
        assert len(result.no_may_workloads) >= 9
        assert "bzip2" in result.high_fan_in_workloads
        assert "sar-pfa-interp1" in result.high_fan_in_workloads
        assert "Figure 14" in fig14.render(result)

    def test_fig16_nachos_needs_fewer_mdes(self):
        result = fig16.run()
        by_name = {r.name: r for r in result.rows}
        # Stage-4 benchmarks collapse to (almost) nothing vs baseline.
        assert by_name["lbm"].nachos_mdes == 0
        assert by_name["lbm"].baseline_mdes > 0
        assert by_name["equake"].fraction < 0.2
        assert len(result.zero_mde_workloads) >= 10
        assert "Figure 16" in fig16.render(result)


class TestScopeStudy:
    def test_blowup_benchmarks(self):
        result = scope_study.run()
        assert set(result.over_10x) & {"bzip2", "soplex", "povray"}
        assert len(result.increased) >= 8
        assert "Section IV-A" in scope_study.render(result)


class TestAppendixModel:
    def test_high_ratio_benchmarks(self):
        result = appendix_model.run()
        over = set(result.over_ratio_1)
        assert {"bzip2", "fft-2d", "histogram"} <= over
        assert len(over) <= 9
        assert "Appendix" in appendix_model.render(result)

    def test_most_workloads_profitable(self):
        result = appendix_model.run()
        profitable = sum(1 for r in result.rows if r.profitable)
        assert profitable >= 20


# ---------------------------------------------------------------------------
# Simulation experiments (reduced invocations)
# ---------------------------------------------------------------------------


class TestPerfFigures:
    def test_fig11_sw_slowdown_group(self):
        result = fig11.run(invocations=INV)
        assert result.all_correct
        slow = set(result.slowdown_group)
        assert {"soplex", "povray", "fft-2d"} <= slow
        assert "Figure 11" in fig11.render(result)

    def test_fig12_worse_than_full_pipeline(self):
        base = fig12.run(invocations=INV)
        full = fig11.run(invocations=INV)
        assert base.all_correct
        by_name_full = {r.name: r.slowdown_pct for r in full.rows}
        for name in ["equake", "lbm", "fluidanimate"]:
            row = next(r for r in base.rows if r.name == name)
            assert row.slowdown_pct > by_name_full[name] + 3.0, name
        assert "Figure 12" in fig12.render(base)

    def test_fig15_nachos_tracks_lsq(self):
        result = fig15.run(invocations=INV)
        assert result.all_correct
        # NACHOS recovers the software-only slowdowns.
        improved = set(result.improved_over_sw)
        assert {"soplex", "povray", "fft-2d"} <= improved
        worst = max(r.nachos_pct for r in result.rows)
        assert worst < 15.0
        assert "Figure 15" in fig15.render(result)


class TestEnergyFigures:
    def test_fig17_mde_energy_small_and_often_zero(self):
        result = fig17.run(invocations=INV)
        assert len(result.zero_overhead_workloads) >= 10
        assert result.mean_mde_pct < 10.0
        assert result.mean_saving_pct > 0.0
        assert "Figure 17" in fig17.render(result)

    def test_fig18_lsq_share_and_bloom_classes(self):
        result = fig18.run(invocations=INV)
        assert result.mean_lsq_pct > 3.0
        table = result.bloom_table()
        assert len(table["0"]) >= 5
        assert "blackscholes" in table["0"]
        assert "Figure 18" in fig18.render(result)


class TestCompareSystems:
    def test_runs_all_three(self):
        w = workload_for(get_spec("parser"))
        cmp = compare_systems(w, invocations=6)
        assert set(cmp.runs) == {"opt-lsq", "nachos-sw", "nachos"}
        assert cmp.all_correct

    def test_compute_only_benchmark_identical(self):
        w = workload_for(get_spec("blackscholes"))
        cmp = compare_systems(w, invocations=6)
        assert cmp.cycles("opt-lsq") == cmp.cycles("nachos") == cmp.cycles("nachos-sw")
