"""Unit tests for the speculative (out-of-order issue) LSQ baseline."""

import pytest

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.ir import (
    AffineExpr,
    IVar,
    MemObject,
    PointerParam,
    RegionBuilder,
    Sym,
)
from repro.memory import MemoryHierarchy
from repro.sim import (
    DataflowEngine,
    OptLSQBackend,
    SpecLSQBackend,
    SpecLSQConfig,
    golden_execute,
)
from repro.sim.backends.spec_lsq import StoreSetPredictor


def run(graph, backend, envs):
    engine = DataflowEngine(graph, place_region(graph), MemoryHierarchy(), backend)
    return engine.run(envs), engine


def slow_store_region(conflict: bool):
    """A store whose address resolves *late* plus an early, fast load.

    The store's address hangs behind a long FP chain; the load's address
    is ready immediately.  An in-order LSQ stalls the load; SPEC-LSQ
    speculates past it.  ``conflict`` controls whether the late store
    actually hits the load's address.
    """
    arr = MemObject("arr", 8192, base_addr=0x1000)
    s = Sym("slow")
    b = RegionBuilder("specload")
    x = b.input("x")
    prev = x
    for _ in range(12):
        prev = b.fdiv(prev, x)  # ~144 cycles of address delay
    gep = b.gep(prev)
    st = b.store(arr, AffineExpr.of(syms={s: 8}), value=x, inputs=[gep])
    ld = b.load(arr, AffineExpr.constant(0))
    tail = b.add(ld, x)
    g = b.build()
    env = {"slow": 0 if conflict else 64}
    return g, env, st, ld


class TestStoreSetPredictor:
    def test_untrained_predicts_independence(self):
        p = StoreSetPredictor()
        assert not p.predicts_dependence(1, 2)

    def test_training_is_sticky(self):
        p = StoreSetPredictor()
        p.train(1, 2)
        assert p.predicts_dependence(1, 2)
        assert not p.predicts_dependence(1, 3)
        assert len(p) == 1

    def test_training_idempotent(self):
        p = StoreSetPredictor()
        p.train(1, 2)
        p.train(1, 2)
        assert p.trainings == 1


class TestSpeculation:
    def test_speculates_past_slow_independent_store(self):
        g, env, st, ld = slow_store_region(conflict=False)
        result, _ = run(g, SpecLSQBackend(), [env])
        assert result.backend_stats.speculations == 1
        assert result.backend_stats.violations == 0
        golden = golden_execute(g, [env])
        assert golden.matches(result.load_values, result.memory_image)

    def test_speculation_beats_in_order_issue(self):
        g1, env, *_ = slow_store_region(conflict=False)
        spec_result, _ = run(g1, SpecLSQBackend(), [env])
        g2, env2, *_ = slow_store_region(conflict=False)
        g2.clear_mdes()
        opt_result, _ = run(g2, OptLSQBackend(), [env2])
        # The load's consumers no longer wait ~144 cycles for the store
        # address; total cycles shrink. (Both regions end with the slow
        # store, so compare the load's completion indirectly via energy
        # ordering-free check: cycles must not be worse.)
        assert spec_result.cycles <= opt_result.cycles

    def test_violation_detected_replayed_and_correct(self):
        g, env, st, ld = slow_store_region(conflict=True)
        backend = SpecLSQBackend()
        result, _ = run(g, backend, [env])
        assert result.backend_stats.speculations == 1
        assert result.backend_stats.violations == 1
        assert result.backend_stats.replays == 1
        golden = golden_execute(g, [env])
        assert golden.matches(result.load_values, result.memory_image)

    def test_predictor_prevents_repeat_violation(self):
        g, env, st, ld = slow_store_region(conflict=True)
        backend = SpecLSQBackend()
        result, _ = run(g, backend, [env, env, env])
        # Violates once, learns, then waits instead of speculating.
        assert result.backend_stats.violations == 1
        assert result.backend_stats.speculations == 1
        golden = golden_execute(g, [env, env, env])
        assert golden.matches(result.load_values, result.memory_image)

    def test_misprediction_rate(self):
        g, env, *_ = slow_store_region(conflict=True)
        result, _ = run(g, SpecLSQBackend(), [env])
        assert result.backend_stats.misprediction_rate == 1.0

    def test_replay_penalty_configurable(self):
        g1, env, *_ = slow_store_region(conflict=True)
        cheap, _ = run(g1, SpecLSQBackend(SpecLSQConfig(replay_penalty=1)), [env])
        g2, env2, *_ = slow_store_region(conflict=True)
        dear, _ = run(g2, SpecLSQBackend(SpecLSQConfig(replay_penalty=64)), [env2])
        assert dear.cycles > cheap.cycles


class TestSpecLSQOrdering:
    def test_exact_forwarding_still_works(self):
        arr = MemObject("a", 4096, base_addr=0x1000)
        iv = IVar("i", 16)
        b = RegionBuilder()
        x = b.input("x")
        st = b.store(arr, AffineExpr.of(ivs={iv: 8}), value=x)
        ld = b.load(arr, AffineExpr.of(ivs={iv: 8}))
        g = b.build()
        result, _ = run(g, SpecLSQBackend(), [{"i": 2}])
        assert result.backend_stats.lsq_forwards == 1
        golden = golden_execute(g, [{"i": 2}])
        assert golden.matches(result.load_values, result.memory_image)

    def test_store_never_speculates(self):
        """An older load with a late address gates a younger store."""
        arr = MemObject("a", 4096, base_addr=0x1000)
        s = Sym("late")
        b = RegionBuilder()
        x = b.input("x")
        prev = x
        for _ in range(8):
            prev = b.fdiv(prev, x)
        gep = b.gep(prev)
        ld = b.load(arr, AffineExpr.of(syms={s: 8}), inputs=[gep])
        st = b.store(arr, AffineExpr.constant(0), value=x)
        g = b.build()
        for slot in (0, 8):  # conflicting and non-conflicting
            envs = [{"late": slot}]
            result, _ = run(g, SpecLSQBackend(), envs)
            golden = golden_execute(g, envs)
            assert golden.matches(result.load_values, result.memory_image)

    def test_st_st_same_address_ordered(self):
        arr = MemObject("a", 4096, base_addr=0x1000)
        b = RegionBuilder()
        x, y = b.input("x"), b.input("y")
        b.store(arr, AffineExpr.constant(0), value=x)
        b.store(arr, AffineExpr.constant(0), value=y)
        g = b.build()
        result, _ = run(g, SpecLSQBackend(), [{}])
        golden = golden_execute(g, [{}])
        assert golden.matches(result.load_values, result.memory_image)

    def test_suite_sample_correct(self):
        from repro.workloads import build_workload, get_spec

        for name in ("histogram", "bzip2", "soplex"):
            w = build_workload(get_spec(name))
            w.graph.clear_mdes()
            envs = w.invocations(8)
            result, _ = run(w.graph, SpecLSQBackend(), envs)
            golden = golden_execute(w.graph, envs)
            assert golden.matches(result.load_values, result.memory_image), name


class TestComparatorPool:
    def test_more_comparators_reduce_contention(self):
        from repro.ir import Sym
        from repro.sim import NachosBackend

        def fan_in_region():
            tab = MemObject("tab", 65536, base_addr=0x2000)
            b = RegionBuilder()
            x = b.input("x")
            for k in range(12):
                b.store(tab, AffineExpr.of(syms={Sym(f"s{k}"): 8}), value=x)
            ld = b.load(tab, AffineExpr.of(syms={Sym("sl"): 8}))
            g = b.build()
            compile_region(g)
            return g

        env = {f"s{k}": k for k in range(12)} | {"sl": 100}
        g1 = fan_in_region()
        one, _ = run(g1, NachosBackend(comparators_per_fu=1), [env])
        g4 = fan_in_region()
        four, _ = run(g4, NachosBackend(comparators_per_fu=4), [env])
        assert four.cycles <= one.cycles
        assert four.backend_stats.comparator_checks == one.backend_stats.comparator_checks

    def test_invalid_comparator_count(self):
        from repro.sim import NachosBackend

        with pytest.raises(ValueError):
            NachosBackend(comparators_per_fu=0)
