"""Unit tests for the tooling layer: timelines, SVG charts, exports, CLI."""

import json
import os

import pytest

from repro.analysis.svgplot import BarChart
from repro.analysis.tables import ascii_table, bar, markdown_table, pct
from repro.cgra.placement import place_region
from repro.memory import MemoryHierarchy
from repro.sim import (
    DataflowEngine,
    NachosSWBackend,
    TimelineRecorder,
    render_timeline,
)
from tests.conftest import build_simple_region


class TestTables:
    def test_ascii_table_alignment(self):
        out = ascii_table(["a", "bee"], [[1, 2.5], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)
        assert "2.5" in out

    def test_markdown_table(self):
        out = markdown_table(["x"], [[1]])
        assert out.splitlines()[1] == "|---|"

    def test_bar_clipping(self):
        assert bar(200, 100, width=10) == "#" * 10
        assert bar(-5, 100) == ""
        assert bar(50, 0) == ""

    def test_pct(self):
        assert pct(0.125) == "12.5%"


class TestTimeline:
    def _run_with_recorder(self):
        g = build_simple_region()
        recorder = TimelineRecorder()
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), NachosSWBackend(),
            recorder=recorder,
        )
        engine.run([{"i": 0}, {"i": 1}])
        return g, recorder

    def test_captures_every_invocation(self):
        g, recorder = self._run_with_recorder()
        assert len(recorder) == 2
        assert recorder.invocations[0].index == 0

    def test_captures_every_op(self):
        g, recorder = self._run_with_recorder()
        assert len(recorder.invocations[0].timings) == len(g)

    def test_completion_lookup(self):
        g, recorder = self._run_with_recorder()
        tl = recorder.invocations[0]
        st = g.stores[0]
        assert tl.completion_of(st.op_id) <= tl.end
        with pytest.raises(KeyError):
            tl.completion_of(9999)

    def test_render_text_gantt(self):
        g, recorder = self._run_with_recorder()
        out = render_timeline(recorder.invocations[0])
        assert "invocation 0" in out
        assert out.count("#") == len(g)

    def test_render_memory_only(self):
        g, recorder = self._run_with_recorder()
        out = render_timeline(recorder.invocations[0], memory_only=True)
        assert out.count("#") == len(g.memory_ops)


class TestBarChart:
    def test_simple_chart_renders(self):
        chart = BarChart("t", ["a", "b"])
        chart.add_series("s", [1.0, 2.0])
        svg = chart.to_svg()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") >= 3  # 2 bars + legend swatch

    def test_series_length_checked(self):
        chart = BarChart("t", ["a", "b"])
        with pytest.raises(ValueError):
            chart.add_series("s", [1.0])

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            BarChart("t", ["a"]).to_svg()

    def test_negative_values_supported(self):
        chart = BarChart("t", ["a", "b"])
        chart.add_series("s", [-5.0, 5.0])
        svg = chart.to_svg()
        assert "<rect" in svg

    def test_stacked_bars(self):
        chart = BarChart("t", ["a"], stacked=True)
        chart.add_series("x", [30.0])
        chart.add_series("y", [70.0])
        svg = chart.to_svg()
        assert svg.count('fill="#4878a8"') >= 1
        assert svg.count('fill="#e1812c"') >= 1

    def test_title_escaped(self):
        chart = BarChart("a<b", ["c"])
        chart.add_series("s", [1.0])
        assert "a&lt;b" in chart.to_svg()

    def test_save(self, tmp_path):
        chart = BarChart("t", ["a"])
        chart.add_series("s", [1.0])
        path = tmp_path / "x.svg"
        chart.save(str(path))
        assert path.read_text().startswith("<svg")


class TestChartsAdapters:
    def test_every_figure_has_a_chart(self):
        from repro.experiments import fig10, fig14, fig16, scope_study, appendix_model
        from repro.experiments.charts import chart_for

        for name, module in (
            ("fig10", fig10),
            ("fig14", fig14),
            ("fig16", fig16),
            ("scope", scope_study),
            ("appendix", appendix_model),
        ):
            result = module.run()
            chart = chart_for(name, result)
            assert chart is not None, name
            svg = chart.to_svg()
            assert svg.startswith("<svg"), name

    def test_table2_has_no_chart(self):
        from repro.experiments import table2
        from repro.experiments.charts import chart_for

        assert chart_for("table2", table2.run()) is None


class TestExport:
    def test_round_trip_json(self):
        from repro.experiments import fig14
        from repro.experiments.export import result_to_json

        result = fig14.run()
        payload = json.loads(result_to_json("fig14", result))
        assert payload["experiment"] == "fig14"
        assert len(payload["result"]["rows"]) == 27

    def test_rejects_non_dataclass(self):
        from repro.experiments.export import result_to_dict

        with pytest.raises(TypeError):
            result_to_dict("x", {"not": "a dataclass"})

    def test_save_json(self, tmp_path):
        from repro.experiments import scope_study
        from repro.experiments.export import save_json

        path = tmp_path / "scope.json"
        save_json("scope", scope_study.run(), str(path))
        assert json.loads(path.read_text())["experiment"] == "scope"


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "table2" in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.cli import main

        assert main(["nope"]) == 2

    def test_runs_one_experiment(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig14"]) == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out

    def test_svg_and_json_output(self, tmp_path, capsys):
        from repro.experiments.cli import main

        rc = main([
            "fig14",
            "--svg-dir", str(tmp_path / "svg"),
            "--json-dir", str(tmp_path / "json"),
        ])
        assert rc == 0
        assert (tmp_path / "svg" / "fig14.svg").exists()
        assert (tmp_path / "json" / "fig14.json").exists()
