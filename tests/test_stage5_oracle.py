"""The stage-5 separation-logic oracle against brute-force ground truth.

The oracle's whole value is that it is *independently* trustworthy — the
fuzzer uses it to judge stages 1--4, so nothing in the pipeline can vouch
for it.  These tests vouch for it the only honest way: enumeration.
Every randomized pair uses bounded symbols and small induction domains,
so the exact overlap truth (can the footprints ever intersect? do they
always?) is computable by sweeping every valuation, and the oracle's
verdict must match it exactly.  Directed cases then pin the individual
decision paths: widths and partial overlap, cache-line straddling,
negative strides, congruence over unbounded symbols, symbol
cancellation, TBAA, heaplet separation, and the interval MUST path.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.compiler.aliasing.stage5 import (
    OracleVerdict,
    Stage5Stats,
    ValueSet,
    oracle_verdict,
    refine_stage5,
    separation_verdict,
    value_set,
)
from repro.compiler.aliasing.stage1 import analyze_stage1
from repro.compiler.labels import AliasLabel
from repro.ir import RegionBuilder
from repro.ir.address import AddressExpr, AffineExpr, IVar, MemObject, PointerParam, Sym


# ----------------------------------------------------------------------
# Ground truth by enumeration
# ----------------------------------------------------------------------
def _variables(*exprs: AffineExpr):
    """(name, domain) for every IV and bounded symbol mentioned."""
    seen = {}
    for expr in exprs:
        for iv, _c in expr.iv_terms:
            seen[iv.name] = range(iv.trip_count)
        for s, _c in expr.sym_terms:
            assert s.bounded, "ground truth needs bounded symbols"
            seen[s.name] = s.domain
    return sorted(seen.items())


def _truth(a: AddressExpr, b: AddressExpr):
    """Exact (can_overlap, always_overlaps) over the full joint domain."""
    names_domains = _variables(a.offset, b.offset)
    can, always = False, True
    for values in itertools.product(*(d for _n, d in names_domains)):
        env = dict(zip((n for n, _d in names_domains), values))
        oa, ob = a.offset.evaluate(env), b.offset.evaluate(env)
        if -a.width < oa - ob < b.width:
            can = True
        else:
            always = False
    return can, always


def _random_pair(rng: random.Random, obj, syms, ivs):
    def side():
        const = rng.choice((0, 1, 2, 4, 7, 8, 12, 56, 60, 63, 64))
        terms = {}
        ivs_used = {}
        for _ in range(rng.randint(0, 2)):
            coeff = rng.choice((-16, -8, -3, -1, 1, 2, 3, 4, 8, 16))
            if rng.random() < 0.5:
                terms[rng.choice(syms)] = coeff
            else:
                ivs_used[rng.choice(ivs)] = coeff
        width = rng.choice((1, 2, 4, 8))
        return AddressExpr(
            obj,
            AffineExpr.of(const=const, syms=terms, ivs=ivs_used),
            width,
        )

    return side(), side()


class TestRandomizedAgainstEnumeration:
    """>= 500 random affine pairs: the verdict must match brute force."""

    SEED = 1234
    PAIRS = 600

    @pytest.fixture(scope="class")
    def corpus(self):
        rng = random.Random(self.SEED)
        obj = MemObject("arr", 4096, base_addr=0x1000)
        syms = [Sym(f"s{k}", lo=0, hi=rng.randint(2, 6)) for k in range(4)]
        ivs = [IVar(f"i{k}", rng.randint(2, 5)) for k in range(3)]
        return [_random_pair(rng, obj, syms, ivs) for _ in range(self.PAIRS)]

    def test_corpus_size_and_diversity(self, corpus):
        assert len(corpus) >= 500
        labels = {separation_verdict(a, b).label for a, b in corpus}
        assert labels == set(AliasLabel), "corpus must exercise NO/MAY/MUST"

    def test_verdicts_match_ground_truth(self, corpus):
        for a, b in corpus:
            can, always = _truth(a, b)
            v = separation_verdict(a, b)
            # Bounded + small => the oracle decides exactly, not soundly.
            if not can:
                assert v.label is AliasLabel.NO, (a, b, v)
            elif always:
                assert v.label is AliasLabel.MUST, (a, b, v)
            else:
                assert v.label is AliasLabel.MAY, (a, b, v)

    def test_exact_booleans_match_ground_truth(self, corpus):
        for a, b in corpus:
            v = separation_verdict(a, b)
            can, always = _truth(a, b)
            if v.can_overlap is not None:
                assert v.can_overlap == can, (a, b, v)
            if v.always_overlaps is not None:
                assert v.always_overlaps == always, (a, b, v)

    def test_soundness_with_tiny_enumeration_budget(self, corpus):
        # Starve the enumerator: verdicts fall back to lattice/interval
        # over-approximations, which must never contradict ground truth.
        for a, b in corpus:
            can, always = _truth(a, b)
            v = separation_verdict(a, b, enumeration_limit=1)
            if v.label is AliasLabel.NO:
                assert not can, (a, b, v)
            elif v.label is AliasLabel.MUST:
                assert always, (a, b, v)

    def test_symmetry(self, corpus):
        # Disjointness is symmetric; the verdict label must be too.
        for a, b in corpus[:200]:
            assert (
                separation_verdict(a, b).label is separation_verdict(b, a).label
            )


class TestWidthAndStraddleEdges:
    OBJ = MemObject("edge", 4096, base_addr=0)

    def _addr(self, const, width, syms=None):
        return AddressExpr(
            self.OBJ, AffineExpr.of(const=const, syms=syms or {}), width
        )

    def test_touching_ranges_do_not_overlap(self):
        # [0, 8) vs [8, 12): adjacency is disjointness.
        v = separation_verdict(self._addr(0, 8), self._addr(8, 4))
        assert v.label is AliasLabel.NO

    def test_one_byte_partial_overlap(self):
        # [0, 8) vs [7, 8): the last byte is shared.
        v = separation_verdict(self._addr(0, 8), self._addr(7, 1))
        assert v.label is AliasLabel.MUST
        assert not v.exact  # overlapping but not the same slot

    def test_narrow_within_wide_is_must_not_exact(self):
        v = separation_verdict(self._addr(0, 8), self._addr(2, 2))
        assert v.label is AliasLabel.MUST and not v.exact

    def test_same_slot_is_exact(self):
        v = separation_verdict(self._addr(16, 4), self._addr(16, 4))
        assert v.label is AliasLabel.MUST and v.exact

    def test_line_straddling_access(self):
        # [60, 68) straddles the 64-byte line; [64, 68) sits past it.
        v = separation_verdict(self._addr(60, 8), self._addr(64, 4))
        assert v.label is AliasLabel.MUST

    def test_symbolic_line_straddle(self):
        # 8s + 60 for s in [0, 8]: hits [60, 68) at s=0 only -> MAY.
        s = Sym("s", lo=0, hi=8)
        v = separation_verdict(
            self._addr(60, 8, {s: 8}), self._addr(64, 4)
        )
        assert v.label is AliasLabel.MAY
        assert v.can_overlap is True and v.always_overlaps is False

    def test_negative_stride(self):
        # 64 - 8s for s in [0, 7]: lands on {8..64}, never in the
        # window of an 8-byte access at 0 -> NO; widen the domain to
        # s in [0, 8] and it reaches 0 -> MAY.
        short = Sym("sn7", lo=0, hi=7)
        wide = Sym("sn8", lo=0, hi=8)
        no = separation_verdict(self._addr(64, 8, {short: -8}), self._addr(0, 8))
        may = separation_verdict(self._addr(64, 8, {wide: -8}), self._addr(0, 8))
        assert no.label is AliasLabel.NO
        assert may.label is AliasLabel.MAY and may.can_overlap is True


class TestUnboundedSymbolPaths:
    OBJ = MemObject("rec", 8192, base_addr=0)

    def test_congruence_disjoint_fields(self):
        # rec[16*s1 + 0] vs rec[16*s2 + 8], both 8 bytes wide: the
        # difference is 8 (mod 16) for every integer valuation, and
        # {..., -8, 8, ...} misses the window (-7, 7).  Stages 1-4
        # refuse this pair; the lattice decides it with no bounds.
        s1, s2 = Sym("u1"), Sym("u2")
        a = AddressExpr(self.OBJ, AffineExpr.of(syms={s1: 16}), 8)
        b = AddressExpr(self.OBJ, AffineExpr.of(const=8, syms={s2: 16}), 8)
        v = separation_verdict(a, b)
        assert v.label is AliasLabel.NO and v.decided_by == "lattice"

    def test_congruence_not_enough_for_narrow_fields(self):
        # Same records, 1-byte fields at 0 and 1: difference 1 (mod 2)
        # with gcd 2 stride... window (0, 0) excludes odd values -> NO;
        # but fields at 0 and 2 (gcd 2, even phase) can collide -> MAY.
        s1, s2 = Sym("v1"), Sym("v2")
        a = AddressExpr(self.OBJ, AffineExpr.of(syms={s1: 2}), 1)
        odd = AddressExpr(self.OBJ, AffineExpr.of(const=1, syms={s2: 2}), 1)
        even = AddressExpr(self.OBJ, AffineExpr.of(const=2, syms={s2: 2}), 1)
        assert separation_verdict(a, odd).label is AliasLabel.NO
        assert separation_verdict(a, even).label is AliasLabel.MAY

    def test_symbol_cancellation(self):
        # a[s + 4] vs a[s]: stage 1-4 bail (symbolic offsets); the
        # difference is the constant 4.
        s = Sym("w")
        base = AffineExpr.of(syms={s: 1})
        a = AddressExpr(self.OBJ, base + AffineExpr.constant(4), 4)
        b = AddressExpr(self.OBJ, base, 4)
        v = separation_verdict(a, b)
        assert v.label is AliasLabel.NO and v.decided_by == "constant"

    def test_identical_symbolic_slot_is_exact_must(self):
        s = Sym("z")
        a = AddressExpr(self.OBJ, AffineExpr.of(syms={s: 8}), 4)
        b = AddressExpr(self.OBJ, AffineExpr.of(syms={s: 8}), 4)
        v = separation_verdict(a, b)
        assert v.label is AliasLabel.MUST and v.exact

    def test_incommensurate_unbounded_syms_stay_may(self):
        s, t = Sym("p"), Sym("q")
        a = AddressExpr(self.OBJ, AffineExpr.of(syms={s: 3}), 1)
        b = AddressExpr(self.OBJ, AffineExpr.of(syms={t: 5}), 1)
        assert separation_verdict(a, b).label is AliasLabel.MAY


class TestHeapletsAndAxioms:
    def test_distinct_objects_are_separate(self):
        a = AddressExpr(MemObject("x", 64, base_addr=0), AffineExpr.constant(0), 8)
        b = AddressExpr(MemObject("y", 64, base_addr=0), AffineExpr.constant(0), 8)
        v = separation_verdict(a, b)
        assert v.label is AliasLabel.NO and v.decided_by == "heaplet"
        assert v.can_overlap is False

    def test_provenance_joins_the_object_heaplet(self):
        obj = MemObject("buf", 64, base_addr=0)
        p = PointerParam(name="p", runtime_object=obj, provenance=obj)
        a = AddressExpr(p, AffineExpr.constant(0), 8)
        b = AddressExpr(obj, AffineExpr.constant(0), 8)
        assert separation_verdict(a, b).label is AliasLabel.MUST

    def test_opaque_params_are_unknown(self):
        obj = MemObject("buf", 64, base_addr=0)
        p = PointerParam(name="p", runtime_object=obj, provenance=None)
        q = PointerParam(name="q", runtime_object=obj, provenance=None)
        a = AddressExpr(p, AffineExpr.constant(0), 8)
        b = AddressExpr(q, AffineExpr.constant(64), 8)
        v = separation_verdict(a, b)
        assert v.label is AliasLabel.MAY and v.decided_by == "opaque"

    def test_same_opaque_param_reasons_over_offsets(self):
        obj = MemObject("buf", 64, base_addr=0)
        p = PointerParam(name="p", runtime_object=obj, provenance=None)
        a = AddressExpr(p, AffineExpr.constant(0), 8)
        b = AddressExpr(p, AffineExpr.constant(8), 8)
        assert separation_verdict(a, b).label is AliasLabel.NO

    def test_tbaa_axiom_and_its_ablation(self):
        obj = MemObject("buf", 64, base_addr=0)
        a = AddressExpr(obj, AffineExpr.constant(0), 8, type_tag="int")
        b = AddressExpr(obj, AffineExpr.constant(0), 8, type_tag="float")
        assert separation_verdict(a, b).decided_by == "tbaa"
        # Without the axiom the same slot is a MUST.
        assert (
            separation_verdict(a, b, use_tbaa=False).label is AliasLabel.MUST
        )

    def test_interval_must_without_enumeration(self):
        obj = MemObject("buf", 64, base_addr=0)
        s = Sym("m", lo=0, hi=1)
        a = AddressExpr(obj, AffineExpr.of(syms={s: 1}), 8)
        b = AddressExpr(obj, AffineExpr.constant(0), 8)
        v = separation_verdict(a, b, enumeration_limit=1)
        assert v.label is AliasLabel.MUST and v.decided_by == "interval"


class TestValueSet:
    def test_unbounded_interval_keeps_lattice(self):
        vs = value_set(AffineExpr.of(const=8, syms={Sym("u"): 16}))
        assert (vs.phase, vs.modulus, vs.lo, vs.hi) == (8, 16, None, None)

    def test_intersects_is_integer_exact(self):
        # Lattice -7 + 5Z against [0, 2]: nearest points are -2 and 3.
        assert not ValueSet(phase=-7, modulus=5, lo=None, hi=None).intersects(0, 2)
        assert ValueSet(phase=-7, modulus=5, lo=None, hi=None).intersects(0, 3)

    def test_bounds_clip_the_window(self):
        vs = ValueSet(phase=0, modulus=8, lo=0, hi=24)
        assert vs.intersects(16, 100)
        assert not vs.intersects(25, 100)


class TestOracleOnGraphs:
    def test_requires_memory_ops(self):
        b = RegionBuilder("r")
        x = b.input("x")
        obj = MemObject("o", 64, base_addr=0)
        b.store(obj, AffineExpr.constant(0), value=x, width=8)
        g = b.build()
        store_id = g.memory_ops[0].op_id
        with pytest.raises(ValueError):
            oracle_verdict(g, x.op_id, store_id)

    def test_refine_only_touches_symbolic_pairs(self):
        # A constant-offset MAY pair (two opaque params) must survive
        # stage 5 untouched, keeping stage-1..4 behavior bit-identical
        # for symbol-free regions.
        obj = MemObject("o", 4096, base_addr=0)
        p = PointerParam(name="p", runtime_object=obj, provenance=None)
        q = PointerParam(name="q", runtime_object=obj, provenance=None)
        s1 = Sym("s1", lo=0, hi=3)
        s2 = Sym("s2", lo=0, hi=3)
        b = RegionBuilder("r")
        x = b.input("x")
        b.store(p, AffineExpr.constant(0), value=x, width=8)
        b.store(q, AffineExpr.constant(64), value=x, width=8)
        b.store(obj, AffineExpr.of(const=512, syms={s1: 8}), value=x, width=8)
        b.store(obj, AffineExpr.of(const=1024, syms={s2: 8}), value=x, width=8)
        g = b.build()
        stage1 = analyze_stage1(g)
        stats = Stage5Stats()
        refined = refine_stage5(g, stage1, stats=stats)
        mem = [op.op_id for op in g.memory_ops]
        # The param pair stays MAY and is not even counted as symbolic.
        assert refined.get(mem[0], mem[1]) is AliasLabel.MAY
        # The two symbolic stores are 512 bytes apart: resolved NO.
        assert refined.get(mem[2], mem[3]) is AliasLabel.NO
        assert stats.symbolic_pairs >= 1
        assert stats.resolved_no >= 1
        assert stats.resolved == stats.resolved_no + stats.resolved_must
