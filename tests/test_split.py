"""Tests for region splitting."""

import pytest

from repro.compiler import compile_region
from repro.ir import AffineExpr, IVar, MemObject, Opcode, RegionBuilder
from repro.programs.split import split_region
from repro.workloads import build_workload, get_spec
from tests.conftest import build_simple_region, make_engine


def big_region(n_chain: int = 40):
    a = MemObject("a", 1 << 16, base_addr=0x10000)
    iv = IVar("i", 64)
    b = RegionBuilder("big")
    x = b.input("x")
    prev = x
    for k in range(n_chain):
        if k % 5 == 0:
            ld = b.load(a, AffineExpr.of(const=k * 512, ivs={iv: 8}))
            prev = b.add(prev, ld)
        else:
            prev = b.add(prev, x)
    st = b.store(a, AffineExpr.of(const=60000, ivs={iv: 8}), value=prev)
    return b.build()


class TestSplitStructure:
    def test_small_region_unsplit(self):
        g = build_simple_region()
        chunks = split_region(g, max_ops=100)
        assert len(chunks) == 1
        assert chunks[0].graph is g

    def test_chunk_sizes_bounded(self):
        g = big_region()
        chunks = split_region(g, max_ops=12)
        assert len(chunks) > 1
        for chunk in chunks:
            assert len(chunk.graph) <= 12

    def test_every_original_op_appears_once(self):
        g = big_region()
        chunks = split_region(g, max_ops=12)
        total_real_ops = sum(
            sum(1 for op in c.graph.ops if op.op_id not in c.imports.values())
            for c in chunks
        )
        assert total_real_ops == len(g)

    def test_imports_cover_crossing_values(self):
        g = big_region()
        chunks = split_region(g, max_ops=12)
        # Every chunk after the first imports the running accumulator.
        for chunk in chunks[1:]:
            assert chunk.imports

    def test_chunks_validate_and_are_program_ordered(self):
        g = big_region()
        for chunk in split_region(g, max_ops=15):
            chunk.graph.validate()

    def test_intra_chunk_mdes_preserved(self):
        g = build_simple_region()
        compile_region(g)
        # Force everything into one chunk: MDEs survive verbatim.
        chunks = split_region(g, max_ops=len(g))
        assert len(chunks[0].graph.mdes) == len(g.mdes)

    def test_invalid_max_ops(self):
        with pytest.raises(ValueError):
            split_region(build_simple_region(), max_ops=1)


class TestSplitExecution:
    def test_each_chunk_simulates_correctly(self):
        from repro.sim import golden_execute

        g = big_region()
        for chunk in split_region(g, max_ops=16):
            compile_region(chunk.graph)
            engine = make_engine(chunk.graph, "nachos")
            envs = [{"i": k} for k in range(3)]
            result = engine.run(envs)
            golden = golden_execute(chunk.graph, envs)
            assert golden.matches(result.load_values, result.memory_image)

    def test_oversized_suite_region_fits_small_grid(self):
        from repro.cgra import CGRAConfig
        from repro.cgra.placement import place_region

        w = build_workload(get_spec("equake"))  # 559 ops
        small = CGRAConfig(rows=16, cols=16)    # capacity 256
        with pytest.raises(ValueError):
            place_region(w.graph, small)
        chunks = split_region(w.graph, max_ops=small.capacity)
        assert len(chunks) >= 3
        for chunk in chunks:
            placement = place_region(chunk.graph, small)
            assert placement.used_cells == len(chunk.graph)
