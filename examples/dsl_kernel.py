#!/usr/bin/env python
"""Author a kernel in the text DSL and push it through the whole stack.

The DSL (``repro.ir.dsl``) is the quickest way to sketch a region: the
kernel below mixes a provable stride, a traceable pointer (stage-2
territory), an opaque pointer (forever-MAY), and a data-dependent index
(runtime conflicts) — one of each precision class in ten lines.

Run:  python examples/dsl_kernel.py
"""

from repro import compile_region
from repro.compiler.report import explain
from repro.experiments.common import compare_systems
from repro.ir import parse_region
from repro.workloads.generator import Workload
from repro.workloads.spec import BenchmarkSpec, Mechanism

KERNEL = """
# one memory op per precision class
arr  data 65536
arr  aux 65536
ptr  traced -> aux          # stage 2 can resolve this
ptr  lost -> data ?         # provenance lost: forever MAY
ivar i 512
sym  bucket                 # data-dependent index
in   x

t1 = ld data[8*i]           # stage 1: provable stride
t2 = ld traced[8*i]         # stage 2: provenance -> aux
t3 = add t1 t2
st   lost[16] = t3          # MAY against everything in 'data'
t4 = ld data[8*bucket]      # runtime-checked against the store
t5 = add t4 x
st   data[8*i + 65528] = t5
"""


def main():
    graph = parse_region(KERNEL, name="dsl-demo")
    result = compile_region(graph)
    print(explain(result))

    # Wrap it as a workload (binding generator for i and bucket) and
    # race the three systems.
    spec = BenchmarkSpec(
        name="dsl-demo", suite="example", n_ops=len(graph),
        n_mem=len(graph.memory_ops), mlp=4, indirect_range=128,
        mechanism_mix={Mechanism.DISTINCT: 1.0},
    )
    workload = Workload(
        spec=spec, path_index=0, seed=7, graph=graph, raw_graph=graph,
        n_promoted=0,
        ivars=tuple({iv.name: iv for op in graph.memory_ops
                     for iv, _ in op.addr.offset.iv_terms}.values()),
        syms=tuple({s.name: s for op in graph.memory_ops
                    for s, _ in op.addr.offset.sym_terms}.values()),
    )
    cmp = compare_systems(workload, invocations=40)
    print()
    print(f"{'system':>10}  {'cycles':>7}  {'vs opt-lsq':>10}  correct")
    for system in ("opt-lsq", "nachos-sw", "nachos"):
        run = cmp.runs[system]
        print(f"{system:>10}  {run.sim.cycles:>7}  "
              f"{cmp.slowdown_pct(system):>+9.1f}%  {run.correct}")


if __name__ == "__main__":
    main()
