#!/usr/bin/env python
"""Quickstart: compile and simulate one hand-written acceleration region.

Builds a small dataflow region with three flavors of memory ambiguity —
provably-disjoint arrays, an exact store-to-load dependence, and an
opaque pointer the compiler cannot resolve — then:

1. runs the NACHOS-SW alias pipeline and prints the labels and MDEs,
2. simulates the region under all three systems (OPT-LSQ / NACHOS-SW /
   NACHOS) and prints cycles, energy, and the correctness check.

Run:  python examples/quickstart.py
"""

from repro import (
    AffineExpr,
    AliasLabel,
    IVar,
    MemObject,
    PointerParam,
    RegionBuilder,
    compile_region,
)
from repro.cgra.placement import place_region
from repro.memory import MemoryHierarchy
from repro.sim import (
    DataflowEngine,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    golden_execute,
)


def build_region():
    """A toy kernel:  *p = x ;  b[i] = a[i] + b[i] ;  a[i] = b[i'] * 2.

    The store through ``p`` (an escaped pointer the compiler cannot
    trace) is the paper's motivating hazard: it *might* touch ``a`` or
    ``b``, so a software-only scheme must stall every younger load
    behind it, while NACHOS just compares the addresses at runtime.
    """
    a = MemObject("a", 64 * 1024, base_addr=0x10000)
    b_arr = MemObject("b", 64 * 1024, base_addr=0x30000)
    hidden = MemObject("hidden", 4096, base_addr=0x50000)
    # A pointer whose allocation site the compiler cannot see.
    p = PointerParam("p", runtime_object=hidden, provenance=None)
    i = IVar("i", 512)

    b = RegionBuilder("quickstart")
    x = b.input("x")
    two = b.const(2)
    st_p = b.store(p, AffineExpr.constant(0), value=x, name="st *p")
    ld_a = b.load(a, AffineExpr.of(ivs={i: 8}), name="ld a[i]")
    ld_b0 = b.load(b_arr, AffineExpr.of(ivs={i: 8}), name="ld b[i]")
    s = b.add(ld_a, ld_b0, name="a[i]+b[i]")
    st_b = b.store(b_arr, AffineExpr.of(ivs={i: 8}), value=s, name="st b[i]")
    ld_b = b.load(b_arr, AffineExpr.of(ivs={i: 8}), name="ld b[i]'")
    prod = b.mul(ld_b, two, name="b[i]'*2")
    st_a = b.store(a, AffineExpr.of(ivs={i: 8}), value=prod, name="st a[i]")
    return b.build()


def main():
    graph = build_region()
    print(f"Region '{graph.name}': {len(graph)} ops, "
          f"{len(graph.memory_ops)} memory ops\n")

    # ------------------------------------------------------------------
    # Compile: four-stage alias analysis + MDE insertion.
    # ------------------------------------------------------------------
    result = compile_region(graph)
    print("Pairwise alias labels:")
    ops = {op.op_id: op for op in graph.memory_ops}
    for (older, younger), label in result.final_labels:
        print(f"  ({ops[older].name!r:12} -> {ops[younger].name!r:12})  {label.value.upper()}")
    print("\nMemory dependency edges (MDEs) the fabric must enforce:")
    for edge in result.mdes:
        print(f"  {ops[edge.src].name!r} --{edge.kind.value.upper()}--> {ops[edge.dst].name!r}")

    # ------------------------------------------------------------------
    # Simulate the three systems.
    # ------------------------------------------------------------------
    envs = [{"i": k % 512} for k in range(50)]
    print(f"\nSimulating {len(envs)} invocations:")
    print(f"{'system':>10}  {'cycles':>8}  {'energy (pJ)':>12}  {'correct':>7}")
    for name, backend_cls, use_mdes in (
        ("opt-lsq", OptLSQBackend, False),
        ("nachos-sw", NachosSWBackend, True),
        ("nachos", NachosBackend, True),
    ):
        g = build_region()
        if use_mdes:
            compile_region(g)
        engine = DataflowEngine(
            g, place_region(g), MemoryHierarchy(), backend_cls()
        )
        sim = engine.run(envs)
        golden = golden_execute(g, envs)
        ok = golden.matches(sim.load_values, sim.memory_image)
        print(f"{name:>10}  {sim.cycles:>8}  {sim.total_energy/1e3:>12.1f}  {'yes' if ok else 'NO':>7}")

    print("\nThe opaque store forces MAY edges onto every younger access:"
          "\nNACHOS-SW serializes them (slower than the LSQ); NACHOS checks"
          "\nthe addresses at runtime (==?) and recovers the parallelism —"
          "\nat a fraction of the LSQ's energy.")


if __name__ == "__main__":
    main()
