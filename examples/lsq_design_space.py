#!/usr/bin/env python
"""LSQ design-space exploration (paper Section VIII-C, Challenge 2).

"Determining size and ports is challenging since acceleration regions
across our workloads tend to have varied memory behavior" — this example
makes that concrete.  It sweeps the OPT-LSQ geometry (banks x entries)
over two very different regions:

* ``bzip2``  — MLP 128, 110 memory ops: needs a *large* LSQ,
* ``parser`` — MLP 4, 12 memory ops: a large LSQ is pure waste,

and reports cycles for each point, plus the NACHOS result — which has no
structure to size at all — as the reference line.

Run:  python examples/lsq_design_space.py
"""

from repro import get_spec
from repro.experiments.common import run_system
from repro.sim import LSQConfig
from repro.workloads import build_workload

INVOCATIONS = 25
GEOMETRIES = [
    ("1x8", LSQConfig(banks=1, entries_per_bank=8)),
    ("2x16", LSQConfig(banks=2, entries_per_bank=16)),
    ("4x48", LSQConfig(banks=4, entries_per_bank=48)),  # paper default
    ("8x48", LSQConfig(banks=8, entries_per_bank=48)),
]


def main():
    for name in ("bzip2", "parser"):
        spec = get_spec(name)
        workload = build_workload(spec)
        print(f"\n{name}: {spec.n_mem} memory ops, MLP {spec.mlp}")
        print(f"  {'LSQ geometry':>14} {'cycles':>9} {'entries provisioned':>20}")
        for label, cfg in GEOMETRIES:
            run = run_system(
                workload, "opt-lsq", invocations=INVOCATIONS, lsq_config=cfg,
                check=False,
            )
            provisioned = cfg.banks * cfg.entries_per_bank
            print(f"  {label:>14} {run.sim.cycles:>9} {provisioned:>20}")
        nachos = run_system(workload, "nachos", invocations=INVOCATIONS, check=False)
        print(f"  {'NACHOS':>14} {nachos.sim.cycles:>9} {'none (pairwise ==?)':>20}")

    print(
        "\nUndersized LSQs stall the wide region (head-of-line blocking on\n"
        "full banks) yet are already oversized for the narrow one; NACHOS\n"
        "scales both ways because the compiler provisions exactly the\n"
        "checks each region needs."
    )


if __name__ == "__main__":
    main()
