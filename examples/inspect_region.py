#!/usr/bin/env python
"""Inspect one region end to end: compile report, profile, save, reload.

A tour of the introspection tooling:

1. build a benchmark region and print the compiler's explanation — the
   per-stage label census, every MDE and why it exists, the fan-in
   hotspots,
2. profile the dynamic side — measured MLP, footprint, real conflict
   density, reuse distances,
3. serialize the compiled region to JSON and reload it, verifying the
   pipeline reproduces the identical labeling.

Run:  python examples/inspect_region.py [benchmark]   (default: povray)
"""

import json
import sys
import tempfile

from repro import compile_region, get_spec
from repro.compiler.report import explain
from repro.ir import dump_graph, load_graph
from repro.workloads import build_workload, profile_workload


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "povray"
    workload = build_workload(get_spec(name))

    # ------------------------------------------------------------------
    print("=" * 72)
    print(f"1. COMPILATION REPORT — {name}")
    print("=" * 72)
    result = compile_region(workload.graph)
    report = explain(result)
    # Regions can have hundreds of MDEs; show the head.
    lines = report.splitlines()
    print("\n".join(lines[:40]))
    if len(lines) > 40:
        print(f"... ({len(lines) - 40} more lines)")

    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print(f"2. DYNAMIC PROFILE — {name} (32 invocations)")
    print("=" * 72)
    profile = profile_workload(workload, invocations=32)
    print(f"measured MLP:        {profile.measured_mlp}")
    print(f"footprint:           {profile.footprint_bytes} bytes "
          f"({profile.footprint_lines} cache lines)")
    print(f"runtime conflicts:   {profile.conflict_pairs} of "
          f"{profile.relevant_pairs} relevant (pair, invocation) checks "
          f"({profile.conflict_density:.2%})")
    print(f"reuse distances:     {profile.reuse_histogram}")

    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print("3. SERIALIZE / RELOAD ROUND TRIP")
    print("=" * 72)
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        path = fh.name
    dump_graph(workload.graph, path)
    size = len(open(path).read())
    reloaded = load_graph(path)
    reloaded.clear_mdes()
    result2 = compile_region(reloaded)
    same = result.final_labels.counts() == result2.final_labels.counts()
    print(f"wrote {size} bytes of JSON -> reloaded {len(reloaded)} ops")
    print(f"pipeline labels identical after reload: {same}")
    assert same


if __name__ == "__main__":
    main()
