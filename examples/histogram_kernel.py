#!/usr/bin/env python
"""Data-dependent indices: a histogram update kernel.

``hist[bucket[i]] += w[i]`` is the canonical pattern no static alias
analysis can resolve — the store address depends on *loaded data*.  The
paper's histogram benchmark lives in this regime: every pair of updates
MAY alias, and whether they actually conflict depends on the input's
bucket distribution.

This example builds an 8-way unrolled histogram update, then sweeps the
*conflict rate* (how often two updates in one invocation hit the same
bucket) by shrinking the bucket range, and shows how the three systems
respond:

* OPT-LSQ: flat — it always pays the CAM, conflicts or not.
* NACHOS-SW: flat and slowest — it always serializes.
* NACHOS: pay-as-you-go — fast when conflicts are rare, converging to
  NACHOS-SW-like behaviour as every check starts failing.

Run:  python examples/histogram_kernel.py
"""

import random

from repro import AffineExpr, MemObject, RegionBuilder, Sym, compile_region
from repro.cgra.placement import place_region
from repro.memory import MemoryHierarchy
from repro.sim import (
    DataflowEngine,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    golden_execute,
)

UNROLL = 8
N_INVOCATIONS = 60


def build_kernel():
    """8-way unrolled ``hist[bucket[i+k]] += w[i+k]``."""
    hist = MemObject("hist", 64 * 1024, base_addr=0x100000)
    weights = MemObject("w", 64 * 1024, base_addr=0x200000)
    b = RegionBuilder("histogram")
    syms = [Sym(f"bkt{k}") for k in range(UNROLL)]
    i = b.input("i")
    for k, sym in enumerate(syms):
        # The bucket index arrives from memory: an opaque Sym.
        gep = b.gep(i, name=f"agen{k}")
        w_ld = b.load(weights, AffineExpr.constant(k * 8), inputs=[gep])
        h_ld = b.load(hist, AffineExpr.of(syms={sym: 8}), inputs=[gep])
        acc = b.add(h_ld, w_ld, name=f"acc{k}")
        b.store(hist, AffineExpr.of(syms={sym: 8}), value=acc, inputs=[gep])
    return b.build(), syms


def trace(syms, n_buckets, seed=7):
    rng = random.Random(seed)
    return [
        {s.name: rng.randrange(n_buckets) for s in syms}
        for _ in range(N_INVOCATIONS)
    ]


def simulate(system, envs):
    graph, _ = build_kernel()
    if system == "opt-lsq":
        backend = OptLSQBackend()
        graph.clear_mdes()
    else:
        compile_region(graph)
        backend = NachosSWBackend() if system == "nachos-sw" else NachosBackend()
    engine = DataflowEngine(graph, place_region(graph), MemoryHierarchy(), backend)
    sim = engine.run(envs)
    assert golden_execute(graph, envs).matches(sim.load_values, sim.memory_image)
    return sim


def main():
    graph, syms = build_kernel()
    result = compile_region(graph)
    print(
        f"Kernel: {len(graph)} ops, {len(graph.memory_ops)} memory ops, "
        f"{len(result.may_mdes)} MAY MDEs (all pairs ambiguous)\n"
    )
    print(f"{'buckets':>8} {'conflicts':>10} | {'opt-lsq':>8} {'nachos-sw':>10} "
          f"{'nachos':>8} | {'==? checks':>10} {'rt-fwds':>8}")
    for n_buckets in (4096, 256, 32, 8, 2):
        envs = trace(syms, n_buckets)
        sims = {s: simulate(s, envs) for s in ("opt-lsq", "nachos-sw", "nachos")}
        stats = sims["nachos"].backend_stats
        print(
            f"{n_buckets:>8} {stats.comparator_conflicts:>10} | "
            f"{sims['opt-lsq'].cycles:>8} {sims['nachos-sw'].cycles:>10} "
            f"{sims['nachos'].cycles:>8} | {stats.comparator_checks:>10} "
            f"{stats.runtime_forwards:>8}"
        )
    print(
        "\nFewer buckets => more real conflicts => NACHOS degrades gracefully"
        "\ntoward serialization (and forwards exact store->load conflicts),"
        "\nwhile the compiler-only scheme pays the worst case everywhere."
    )


if __name__ == "__main__":
    main()
