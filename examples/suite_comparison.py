#!/usr/bin/env python
"""Run a slice of the paper's 27-benchmark study end to end.

Picks one benchmark from each behavioural group of the paper:

* ``gzip``      — stage-1 perfect: compiler proves everything, no MDEs,
* ``equake``    — stage-4 (polyhedral) rescue of a memory-bound region,
* ``soplex``    — opaque pointers: NACHOS-SW serializes, NACHOS recovers,
* ``bzip2``     — high comparator fan-in (NACHOS's worst case),
* ``histogram`` — data-dependent indices with real conflicts,

and prints the Figure-11/15/17-style summary for each: performance of
both NACHOS systems against the optimized LSQ, the disambiguation energy
each system spends, and the dynamic check counts.

Run:  python examples/suite_comparison.py
"""

from repro import compare_systems, get_spec
from repro.workloads import build_workload

PICKS = ["gzip", "equake", "soplex", "bzip2", "histogram"]
INVOCATIONS = 30


def main():
    print(
        f"{'benchmark':>10} | {'SW %':>7} {'NACHOS %':>8} | "
        f"{'LSQ dis-nJ':>10} {'NACHOS dis-nJ':>13} {'saving':>7} | "
        f"{'==?':>6} {'conflicts':>9}"
    )
    print("-" * 90)
    for name in PICKS:
        workload = build_workload(get_spec(name))
        cmp = compare_systems(workload, invocations=INVOCATIONS)
        assert cmp.all_correct, f"{name}: backend diverged from program order!"

        lsq = cmp.runs["opt-lsq"].sim
        nachos = cmp.runs["nachos"].sim
        lsq_dis = lsq.energy_breakdown.disambiguation / 1e6
        nachos_dis = nachos.energy_breakdown.disambiguation / 1e6
        saving = 100.0 * (1 - nachos.total_energy / lsq.total_energy)
        stats = nachos.backend_stats
        print(
            f"{name:>10} | {cmp.slowdown_pct('nachos-sw'):>+6.1f}% "
            f"{cmp.slowdown_pct('nachos'):>+7.1f}% | "
            f"{lsq_dis:>10.2f} {nachos_dis:>13.2f} {saving:>+6.1f}% | "
            f"{stats.comparator_checks:>6} {stats.comparator_conflicts:>9}"
        )
    print(
        "\n(percentages are vs OPT-LSQ, positive = slower; 'dis-nJ' is the\n"
        " energy spent on memory disambiguation: LSQ bloom+CAM vs MDEs)"
    )


if __name__ == "__main__":
    main()
