#!/usr/bin/env python
"""Watch a MAY chain serialize: per-op timelines under each system.

Builds a small region where one opaque store casts MAY shadows over four
independent loads, records per-operation completion times with the
:class:`~repro.sim.TimelineRecorder`, and renders a text gantt of one
invocation for each system.  The serialization under NACHOS-SW — every
load completing strictly after the opaque store — is directly visible,
as is NACHOS letting the loads finish early once the ``==?`` checks
clear them.

Run:  python examples/timeline_debug.py
"""

from repro import (
    AffineExpr,
    IVar,
    MemObject,
    PointerParam,
    RegionBuilder,
    compile_region,
)
from repro.cgra.placement import place_region
from repro.memory import MemoryHierarchy
from repro.sim import (
    DataflowEngine,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    TimelineRecorder,
    render_timeline,
)


def build_region():
    arrays = [
        MemObject(f"arr{k}", 8192, base_addr=0x10000 + k * 0x10000)
        for k in range(4)
    ]
    hidden = MemObject("hidden", 4096, base_addr=0x90000)
    p = PointerParam("p", runtime_object=hidden, provenance=None)
    i = IVar("i", 64)

    b = RegionBuilder("timeline-demo")
    x = b.input("x")
    # The ambiguous store: its address chain is slow (FP divide), so the
    # MAY resolution arrives late.
    slow = b.fdiv(x, x, name="slow-agen")
    gep = b.gep(slow)
    b.store(p, AffineExpr.constant(0), value=x, inputs=[gep], name="st *p")
    acc = None
    for k, arr in enumerate(arrays):
        ld = b.load(arr, AffineExpr.of(ivs={i: 8}), name=f"ld arr{k}[i]")
        acc = ld if acc is None else b.add(acc, ld, name=f"sum{k}")
    b.store(arrays[0], AffineExpr.of(const=8, ivs={i: 8}), value=acc, name="st out")
    return b.build()


def main():
    for system, backend_cls, compiled in (
        ("OPT-LSQ", OptLSQBackend, False),
        ("NACHOS-SW", NachosSWBackend, True),
        ("NACHOS", NachosBackend, True),
    ):
        graph = build_region()
        if compiled:
            compile_region(graph)
        else:
            graph.clear_mdes()
        recorder = TimelineRecorder()
        engine = DataflowEngine(
            graph, place_region(graph), MemoryHierarchy(), backend_cls(),
            recorder=recorder,
        )
        # Warm invocation 0, display invocation 1 (steady state).
        engine.run([{"i": 0}, {"i": 1}])
        print(f"=== {system} ===")
        print(render_timeline(recorder.invocations[1], memory_only=True))
        print()


if __name__ == "__main__":
    main()
