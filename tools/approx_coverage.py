"""Approximate line coverage for repro.sim + repro.compiler, no deps.

CI pins the real number with pytest-cov (``--cov-fail-under`` in
.github/workflows/ci.yml); this script exists so the baseline can be
re-measured in environments where pytest-cov is not installed.  It runs
the test suite under a ``sys.settrace`` line tracer restricted to the
two measured packages and compares executed lines against each module's
executable lines (from compiled code objects, recursively — the same
universe ``coverage.py`` uses, minus its excludes), so it reads a few
points *low* relative to pytest-cov, which excludes pragmas and
unreachable clauses.  Pin the CI threshold below this script's number.

Usage::

    PYTHONPATH=src python tools/approx_coverage.py [pytest args...]
"""

from __future__ import annotations

import os
import sys
from collections import defaultdict

MEASURED = ("src/repro/sim", "src/repro/compiler")


def executable_lines(path: str) -> set:
    """All line numbers owned by code objects compiled from *path*."""
    with open(path) as fh:
        code = compile(fh.read(), path, "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(ln for _, _, ln in obj.co_lines() if ln is not None)
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    return lines


def main(argv) -> int:
    import pytest

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    prefixes = tuple(os.path.join(root, m) + os.sep for m in MEASURED)
    hit = defaultdict(set)

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefixes):
            return None
        lines = hit[filename]

        def local(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local

        if event == "call":
            lines.add(frame.f_lineno)
        return local

    sys.settrace(tracer)
    try:
        rc = pytest.main(["-q", "-p", "no:cacheprovider"] + list(argv))
    finally:
        sys.settrace(None)
    if rc != 0:
        print(f"pytest failed (exit {rc}); coverage numbers not meaningful")
        return rc

    grand_hit = grand_total = 0
    print(f"\n{'file':<58} {'lines':>6} {'hit':>6} {'cov':>6}")
    for measured in MEASURED:
        pkg_hit = pkg_total = 0
        base = os.path.join(root, measured)
        for dirpath, _dirs, files in os.walk(base):
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                total = executable_lines(path)
                covered = hit.get(path, set()) & total
                pkg_total += len(total)
                pkg_hit += len(covered)
                rel = os.path.relpath(path, root)
                pct = 100.0 * len(covered) / len(total) if total else 100.0
                print(f"{rel:<58} {len(total):>6} {len(covered):>6} {pct:>5.1f}%")
        grand_hit += pkg_hit
        grand_total += pkg_total
        pct = 100.0 * pkg_hit / pkg_total if pkg_total else 100.0
        print(f"{measured:<58} {pkg_total:>6} {pkg_hit:>6} {pct:>5.1f}%  <- package")
    pct = 100.0 * grand_hit / grand_total if grand_total else 100.0
    print(f"{'TOTAL':<58} {grand_total:>6} {grand_hit:>6} {pct:>5.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
