"""Approximate line coverage for repro.sim + repro.compiler, no deps.

CI pins the real number with pytest-cov (``--cov-fail-under`` in
.github/workflows/ci.yml); this script exists so the baseline can be
re-measured in environments where pytest-cov is not installed.  It runs
the test suite under a ``sys.settrace`` line tracer restricted to the
two measured packages and compares executed lines against each module's
executable lines (from compiled code objects, recursively — the same
universe ``coverage.py`` uses, minus its excludes), so it reads a few
points *low* relative to pytest-cov, which excludes pragmas and
unreachable clauses.  Pin the CI threshold below this script's number.

Usage::

    PYTHONPATH=src python tools/approx_coverage.py [pytest args...]
    PYTHONPATH=src python tools/approx_coverage.py --json coverage.json

``--json PATH`` additionally writes the per-file / per-package / total
numbers as machine-readable JSON, so the coverage floor feeds the
perf-observatory run ledger (``nachos-repro perf record --coverage
coverage.json``) instead of being grep'd out of CI logs.
"""

from __future__ import annotations

import json
import os
import sys
from collections import defaultdict

MEASURED = ("src/repro/sim", "src/repro/compiler")

#: Schema of the ``--json`` summary document.
JSON_SCHEMA = 1


def split_args(argv):
    """Split ``--json PATH`` out of *argv*; the rest goes to pytest."""
    json_path = None
    rest = []
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--json":
            if not args:
                raise SystemExit("--json requires a PATH argument")
            json_path = args.pop(0)
        elif arg.startswith("--json="):
            json_path = arg.split("=", 1)[1]
        else:
            rest.append(arg)
    return json_path, rest


def summarize(hit, root) -> dict:
    """Fold traced lines into the per-file/per-package/total summary."""
    summary = {
        "schema": JSON_SCHEMA,
        "tool": "approx_coverage",
        "measured": list(MEASURED),
        "files": {},
        "packages": {},
        "total": {},
    }
    grand_hit = grand_total = 0
    for measured in MEASURED:
        pkg_hit = pkg_total = 0
        base = os.path.join(root, measured)
        for dirpath, _dirs, files in os.walk(base):
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                total = executable_lines(path)
                covered = hit.get(path, set()) & total
                pkg_total += len(total)
                pkg_hit += len(covered)
                rel = os.path.relpath(path, root)
                pct = 100.0 * len(covered) / len(total) if total else 100.0
                summary["files"][rel] = {
                    "lines": len(total),
                    "hit": len(covered),
                    "pct": round(pct, 2),
                }
        grand_hit += pkg_hit
        grand_total += pkg_total
        pct = 100.0 * pkg_hit / pkg_total if pkg_total else 100.0
        summary["packages"][measured] = {
            "lines": pkg_total,
            "hit": pkg_hit,
            "pct": round(pct, 2),
        }
    pct = 100.0 * grand_hit / grand_total if grand_total else 100.0
    summary["total"] = {
        "lines": grand_total,
        "hit": grand_hit,
        "pct": round(pct, 2),
    }
    return summary


def render(summary) -> str:
    """The classic text table, from a :func:`summarize` document."""
    lines = [f"\n{'file':<58} {'lines':>6} {'hit':>6} {'cov':>6}"]
    for measured in summary["measured"]:
        for rel, entry in summary["files"].items():
            if not rel.startswith(measured + os.sep):
                continue
            lines.append(
                f"{rel:<58} {entry['lines']:>6} {entry['hit']:>6} "
                f"{entry['pct']:>5.1f}%"
            )
        pkg = summary["packages"][measured]
        lines.append(
            f"{measured:<58} {pkg['lines']:>6} {pkg['hit']:>6} "
            f"{pkg['pct']:>5.1f}%  <- package"
        )
    total = summary["total"]
    lines.append(
        f"{'TOTAL':<58} {total['lines']:>6} {total['hit']:>6} "
        f"{total['pct']:>5.1f}%"
    )
    return "\n".join(lines)


def executable_lines(path: str) -> set:
    """All line numbers owned by code objects compiled from *path*."""
    with open(path) as fh:
        code = compile(fh.read(), path, "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(ln for _, _, ln in obj.co_lines() if ln is not None)
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    return lines


def main(argv) -> int:
    import pytest

    json_path, pytest_args = split_args(argv)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    prefixes = tuple(os.path.join(root, m) + os.sep for m in MEASURED)
    hit = defaultdict(set)

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefixes):
            return None
        lines = hit[filename]

        def local(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local

        if event == "call":
            lines.add(frame.f_lineno)
        return local

    sys.settrace(tracer)
    try:
        rc = pytest.main(["-q", "-p", "no:cacheprovider"] + pytest_args)
    finally:
        sys.settrace(None)
    if rc != 0:
        print(f"pytest failed (exit {rc}); coverage numbers not meaningful")
        return rc

    summary = summarize(hit, root)
    print(render(summary))
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[wrote {json_path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
