"""Bench: regenerate Figure 10 (%MEM vs %MAY scatter)."""

from conftest import run_once

from repro.experiments import fig10


def test_fig10(benchmark):
    result = run_once(benchmark, fig10.run)
    print()
    print(fig10.render(result))

    assert len(result.rows) == 27
    by_name = {r.name: r for r in result.rows}
    # Memory-dominated benchmarks (paper: equake ~38%).
    assert by_name["equake"].pct_mem > 25.0
    assert by_name["blackscholes"].pct_mem == 0.0
    # The NACHOS-SW slowdown group pairs high %MEM with high %MAY.
    for name in ("soplex", "fft-2d"):
        assert by_name[name].pct_may_ops > 40.0
    # Stage-4-resolved benchmarks end with no MAY ops at all.
    for name in ("equake", "lbm", "namd"):
        assert by_name[name].pct_may_ops == 0.0
