#!/usr/bin/env python
"""Load-generate against live ``nachos-serve`` daemons.

Boots one daemon (or, with ``--shards N``, a consistent-hash ring of N
daemon subprocesses) on ephemeral ports with isolated cache
directories, drives a warmup pass plus a measured multi-threaded load
phase through :class:`repro.serve.client.ServeClient`, scrapes each
daemon's ``/metrics``, and writes latency/throughput numbers to
``BENCH_serve.json``.

Modes::

    python benchmarks/bench_serve.py                 # full load shape
    python benchmarks/bench_serve.py --quick         # CI smoke load
    python benchmarks/bench_serve.py --quick \
        --chaos 'crash=0.15,corrupt=0.1,seed=11'     # fault campaign
    python benchmarks/bench_serve.py --quick --shards 3   # sharded fleet
    python benchmarks/bench_serve.py --quick --ledger perf/history.ndjson

The measured phase follows a warmup that populates the result cache and
the daemon's retained-request records, so its latencies are the *serving*
story (dedup + read-through cache), not simulation wall time — that is
the whole point of a long-running service.  ``qps``, ``p50/p90/p99``
latency, the cache hit rate, and the request dedup rate feed
``perf_budgets.toml`` via ``nachos-repro perf record --serve`` (or
``--ledger`` here directly).

``--chaos SPEC`` runs the same fixed request set against a fault-free
daemon and against a daemon whose environment carries ``NACHOS_CHAOS``
(so pool workers crash, hang, and corrupt results); the per-system
result payloads must be identical — the service inherits the supervised
executor's recovery guarantees, live.  The chaos ``abort@`` point is
the one exclusion: it SIGKILLs the supervisor, i.e. the daemon.

``--shards N`` is the fleet story (``docs/serve.md``): N daemons share
one logical store via ring routing (``--peers`` / ``POST /peers``),
mixed traffic lands on every shard, and the report adds the cross-shard
hit rate and peer-hop latency.  The phase sequence is itself a chaos
suite: a fault-free single-daemon baseline, a fleet warmup + measured
phase that must match it, a SIGKILL of one shard **mid-load** (every
request must still complete, byte-identical, via the surviving shards),
and a rejoin of the killed shard on its old store directory (it must
serve its prefix from disk).  ``--chaos`` composes: the fleet daemons
also run under ``NACHOS_CHAOS`` while the baseline stays clean.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient, ServeError  # noqa: E402

BENCH_SCHEMA = 1

#: (region, systems, invocations) mixes.  Quick is the CI smoke shape:
#: three micro regions, two systems, tiny invocation counts.  Full adds
#: a third system and a suite region for a heavier steady-state.
QUICK_MIX = [
    ("gather", ["nachos", "opt-lsq"], 6),
    ("scatter", ["nachos", "opt-lsq"], 6),
    ("stream_triad", ["nachos", "opt-lsq"], 6),
]
FULL_MIX = QUICK_MIX + [
    ("gather", ["nachos", "opt-lsq", "nachos-sw"], 12),
    ("bzip2", ["nachos", "opt-lsq"], 12),
]


def _percentile(values, q: float) -> float:
    """Nearest-rank percentile (matches ``obs.metrics.Histogram``)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return float(ordered[min(rank, len(ordered)) - 1])


class DaemonHarness:
    """Boot/stop one daemon subprocess with an isolated cache.

    Pass ``work_dir`` to point a second daemon at an earlier daemon's
    cache (the restart-warm and shard-rejoin phases); the creator of
    the tmpdir cleans up.
    """

    def __init__(
        self, jobs: int, extra_env: dict, label: str, work_dir=None
    ) -> None:
        self.jobs = jobs
        self.extra_env = extra_env
        self.label = label
        self._owns_dir = work_dir is None
        self.work_dir = Path(
            work_dir if work_dir is not None
            else tempfile.mkdtemp(prefix=f"nachos-serve-{label}-")
        )
        self.ready_file = self.work_dir / f"ready-{label}.json"
        self.proc = None
        self.client = None

    def __enter__(self) -> "DaemonHarness":
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env["NACHOS_CACHE_DIR"] = str(self.work_dir / "cache")
        env.pop("NACHOS_CHAOS", None)  # only ever explicit, never inherited
        env.update(self.extra_env)
        # Port 0: the kernel picks a free ephemeral port and the daemon
        # announces it through the (atomically written) ready file, so
        # parallel CI jobs and multi-daemon fleets can never collide on
        # a fixed port.
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--port", "0",
                "--jobs", str(self.jobs),
                "--ready-file", str(self.ready_file),
                "--quiet",
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        ready = self._await_ready()
        self.client = ServeClient(host=ready["host"], port=ready["port"])
        return self

    def _await_ready(self) -> dict:
        deadline = time.monotonic() + 60
        while True:
            if self.proc.poll() is not None:
                out, err = self.proc.communicate()
                raise SystemExit(
                    f"daemon ({self.label}) died on boot:\n{out}\n{err}"
                )
            if time.monotonic() > deadline:
                self.proc.kill()
                raise SystemExit(f"daemon ({self.label}) never became ready")
            if self.ready_file.exists():
                try:
                    ready = json.loads(self.ready_file.read_text())
                except ValueError:
                    # The daemon publishes the ready file atomically, so
                    # this only races a non-atomic filesystem; re-poll.
                    time.sleep(0.02)
                    continue
                if isinstance(ready, dict) and ready.get("port"):
                    return ready
            time.sleep(0.02)

    def kill(self) -> None:
        """SIGKILL the daemon — the shard-loss injection."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def __exit__(self, *exc) -> None:
        try:
            if self.client is not None:
                self.client.shutdown()
                self.proc.wait(timeout=30)
        except Exception:
            self.proc.kill()
        finally:
            self.proc.wait(timeout=10)
            if self._owns_dir:
                shutil.rmtree(self.work_dir, ignore_errors=True)


def _submit_failover(clients, start: int, region, systems, invocations,
                     wait_timeout: float = 300.0):
    """Submit to ``clients[start]``, failing over around the fleet.

    Requests are content-addressed and idempotent, so resubmitting to
    the next shard after a dead/dying one is always safe — this is the
    load-balancer role a real deployment would put in front of the ring.
    """
    last_exc = None
    for step in range(len(clients)):
        client = clients[(start + step) % len(clients)]
        try:
            return client.submit(
                region, systems=systems, invocations=invocations,
                wait=True, wait_timeout=wait_timeout,
            )
        except (OSError, http.client.HTTPException, ServeError) as exc:
            if isinstance(exc, ServeError) and exc.status == 400:
                raise  # a malformed request fails everywhere; surface it
            last_exc = exc
    raise last_exc


def _drive(clients, mix, requests: int, concurrency: int,
           kill_after: float = 0.0, kill_fn=None):
    """The measured phase: ``concurrency`` threads, round-robin mix,
    each thread pinned to a home shard with fleet failover.  With
    ``kill_fn``, fires it ``kill_after`` seconds into the load — the
    mid-load shard-loss injection."""
    latencies = []
    errors = []
    lock = threading.Lock()

    def worker(offset: int) -> None:
        for i in range(offset, requests, concurrency):
            region, systems, invocations = mix[i % len(mix)]
            t0 = time.perf_counter()
            try:
                response = _submit_failover(
                    clients, offset % len(clients), region, systems,
                    invocations, wait_timeout=120.0,
                )
                ok = response.get("status") == "done"
            except Exception as exc:
                ok = False
                with lock:
                    errors.append(str(exc))
            elapsed = time.perf_counter() - t0
            with lock:
                latencies.append(elapsed)
                if not ok and not errors:
                    errors.append(f"request {i} not done")

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(concurrency)
    ]
    for t in threads:
        t.start()
    if kill_fn is not None:
        time.sleep(kill_after)
        kill_fn()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    return latencies, wall, errors


def _collect_results(clients, mix) -> dict:
    """One wait=True pass over the mix (round-robin across *clients*
    with failover), keyed for identity comparison between phases."""
    out = {}
    for i, (region, systems, invocations) in enumerate(mix):
        response = _submit_failover(clients, i, region, systems, invocations)
        if response.get("status") != "done":
            raise SystemExit(
                f"request {region}/{systems} finished as "
                f"{response.get('status')}: {response.get('failed')}"
            )
        out[f"{region}:{','.join(systems)}:{invocations}"] = response["results"]
    return out


def _daemon_counters(metrics: dict) -> dict:
    """Flatten the /metrics payload to scalar counters for the report."""
    flat = {}
    for name, entry in sorted(metrics.items()):
        if name.startswith("_"):
            continue
        if entry.get("type") in ("counter", "gauge"):
            flat[name] = entry["value"]
        elif entry.get("type") == "histogram" and entry.get("count"):
            for key in ("count", "mean", "p50", "p99"):
                if key in entry:
                    flat[f"{name}.{key}"] = entry[key]
    return flat


def _counter(metrics: dict, name: str) -> float:
    return metrics.get(name, {}).get("value", 0) or 0


def _chaos_extra_env(spec: str) -> dict:
    """Fault-campaign env for a daemon: the chaos spec plus retry knobs
    generous enough that the supervised pool always recovers."""
    return {
        "NACHOS_CHAOS": spec,
        "NACHOS_TIMEOUT": os.environ.get("NACHOS_TIMEOUT", "10"),
        "NACHOS_MAX_RETRIES": os.environ.get("NACHOS_MAX_RETRIES", "4"),
        "NACHOS_BACKOFF_BASE": os.environ.get("NACHOS_BACKOFF_BASE", "0.05"),
    }


# ----------------------------------------------------------------------
# Sharded fleet mode (--shards N)
# ----------------------------------------------------------------------
def _run_sharded(args, mix, requests: int, concurrency: int) -> dict:
    """Boot a ring of N daemons, drive mixed traffic, kill + rejoin a
    shard, and report cross-shard hit rate and peer-hop latency."""
    shards = args.shards
    fleet_env = _chaos_extra_env(args.chaos) if args.chaos else {}

    # Phase 0 — the correctness anchor: a fault-free single daemon.
    print("[baseline: fault-free single daemon]")
    with DaemonHarness(args.jobs, {}, "baseline") as harness:
        baseline = _collect_results([harness.client], mix)

    shard_dirs = [
        Path(tempfile.mkdtemp(prefix=f"nachos-shard{i}-"))
        for i in range(shards)
    ]
    opened = []
    try:
        harnesses = []
        for i in range(shards):
            harness = DaemonHarness(
                args.jobs, dict(fleet_env), f"shard{i}", shard_dirs[i]
            ).__enter__()
            opened.append(harness)
            harnesses.append(harness)

        def wire_ring():
            membership = {
                f"shard{i}": f"{h.client.host}:{h.client.port}"
                for i, h in enumerate(harnesses)
            }
            for i, h in enumerate(harnesses):
                if h.proc.poll() is None:
                    h.client.set_peers(membership, self_name=f"shard{i}")

        wire_ring()
        clients = [h.client for h in harnesses]
        print(f"[fleet up: {shards} shards, jobs={args.jobs} each"
              + (f", NACHOS_CHAOS={args.chaos}" if args.chaos else "") + "]")

        print(f"[fleet warmup: {len(mix)} distinct requests]")
        t0 = time.perf_counter()
        fleet_warm = _collect_results(clients, mix)
        warmup_s = time.perf_counter() - t0
        warm_identical = fleet_warm == baseline
        print(f"[fleet warmup: {warmup_s:.2f}s, identical={warm_identical}]")

        print(f"[measured: {requests} requests x {concurrency} threads "
              f"across {shards} shards]")
        latencies, wall, errors = _drive(clients, mix, requests, concurrency)
        metrics_all = [c.metrics() for c in clients]

        # Cross-shard effectiveness, aggregated over the fleet.
        peer_hits = sum(_counter(m, "serve.peer_hit") for m in metrics_all)
        peer_misses = sum(_counter(m, "serve.peer_miss") for m in metrics_all)
        peer_errors = sum(_counter(m, "serve.peer_error") for m in metrics_all)
        peer_down = sum(_counter(m, "serve.peer_down") for m in metrics_all)
        lookups = peer_hits + peer_misses + peer_errors + peer_down
        cross_shard_hit_rate = peer_hits / lookups if lookups else 0.0
        fetch_summaries = [
            m.get("serve.peer_fetch_seconds", {})
            for m in metrics_all
            if m.get("serve.peer_fetch_seconds", {}).get("count")
        ]
        fetch_count = sum(s["count"] for s in fetch_summaries)
        fetch_mean = (
            sum(s["mean"] * s["count"] for s in fetch_summaries) / fetch_count
            if fetch_count
            else 0.0
        )
        # Max across shards: conservative tail without pooling samples.
        fetch_p50 = max((s.get("p50", 0.0) for s in fetch_summaries), default=0.0)
        fetch_p99 = max((s.get("p99", 0.0) for s in fetch_summaries), default=0.0)
        print(f"[cross-shard: {int(peer_hits)} peer hits / {int(lookups)} "
              f"lookups = {cross_shard_hit_rate:.2f}, "
              f"hop p99 {fetch_p99 * 1000:.1f}ms]")

        # Phase 3 — kill one shard MID-LOAD.  Every request must still
        # complete (failover + local-compute degradation), and the
        # payloads must stay byte-identical to the fault-free baseline.
        victim = 1 % shards
        print(f"[chaos: SIGKILL shard{victim} mid-load]")
        t0 = time.perf_counter()
        kill_latencies, kill_wall, kill_errors = _drive(
            clients, mix, requests, concurrency,
            kill_after=min(0.25, kill_wall_guess(latencies)),
            kill_fn=harnesses[victim].kill,
        )
        survivors = [
            h.client for h in harnesses if h.proc.poll() is None
        ]
        killed_results = _collect_results(survivors, mix)
        killed_identical = killed_results == baseline
        killed_s = time.perf_counter() - t0
        print(f"[killed-shard phase: {killed_s:.2f}s, "
              f"{len(kill_errors)} errors, identical={killed_identical}]")

        # Phase 4 — rejoin: reboot the killed shard on its old store
        # directory; the ring gets its new address and the shard must
        # answer its own prefix from disk (store hits, no recompute).
        print(f"[rejoin: reboot shard{victim} on its old store]")
        t0 = time.perf_counter()
        rejoined = DaemonHarness(
            args.jobs, dict(fleet_env), f"shard{victim}-rejoin",
            shard_dirs[victim],
        ).__enter__()
        opened.append(rejoined)
        harnesses[victim] = rejoined
        wire_ring()
        rejoin_results = _collect_results([rejoined.client], mix)
        rejoin_identical = rejoin_results == baseline
        rejoin_metrics = rejoined.client.metrics()
        rejoin_store_hits = _counter(rejoin_metrics, "serve.store_hits")
        rejoin_s = time.perf_counter() - t0
        print(f"[rejoin: {rejoin_s:.2f}s, store hits "
              f"{int(rejoin_store_hits)}, identical={rejoin_identical}]")
    finally:
        for harness in opened:
            harness.__exit__()
        for path in shard_dirs:
            shutil.rmtree(path, ignore_errors=True)

    served = len(latencies)
    report = {
        "schema": BENCH_SCHEMA,
        "mode": "shards",
        "mix_mode": "quick" if args.quick else "full",
        "shards": shards,
        "jobs": args.jobs,
        "requests": served,
        "concurrency": concurrency,
        "distinct_requests": len(mix),
        "warmup_seconds": round(warmup_s, 3),
        "wall_seconds": round(wall, 3),
        "qps": round(served / wall, 2) if wall > 0 else 0.0,
        "mean_latency_seconds": round(sum(latencies) / served, 4) if served else 0.0,
        "p50_latency_seconds": round(_percentile(latencies, 50), 4),
        "p90_latency_seconds": round(_percentile(latencies, 90), 4),
        "p99_latency_seconds": round(_percentile(latencies, 99), 4),
        "cross_shard_hits": int(peer_hits),
        "cross_shard_lookups": int(lookups),
        "cross_shard_hit_rate": round(cross_shard_hit_rate, 4),
        "peer_fetch_count": int(fetch_count),
        "peer_fetch_mean_seconds": round(fetch_mean, 5),
        "peer_fetch_p50_seconds": round(fetch_p50, 5),
        "peer_fetch_p99_seconds": round(fetch_p99, 5),
        "store_hits": int(
            sum(_counter(m, "serve.store_hits") for m in metrics_all)
        ),
        "results_identical_fleet_vs_single": warm_identical,
        "killed_shard_wall_seconds": round(killed_s, 3),
        "killed_shard_errors": len(kill_errors),
        "results_identical_killed_vs_single": killed_identical,
        "rejoin_seconds": round(rejoin_s, 3),
        "rejoin_store_hits": int(rejoin_store_hits),
        "results_identical_rejoin_vs_single": rejoin_identical,
        "errors": len(errors),
        "daemon": _daemon_counters(metrics_all[0]),
    }
    if args.chaos:
        report["chaos_spec"] = args.chaos
    return report


def kill_wall_guess(latencies) -> float:
    """A delay that lands the SIGKILL inside the kill-phase load."""
    if not latencies:
        return 0.1
    return max(0.05, min(0.5, sum(latencies) / len(latencies)))


def _check_sharded(report) -> int:
    failed = []
    if report["errors"] or report["killed_shard_errors"]:
        failed.append(
            f"{report['errors']} measured + {report['killed_shard_errors']} "
            "killed-phase request error(s)"
        )
    if not report["results_identical_fleet_vs_single"]:
        failed.append("fleet results differ from the single-daemon baseline")
    if not report["results_identical_killed_vs_single"]:
        failed.append(
            "killed-peer results differ from the fault-free single-daemon run"
        )
    if not report["results_identical_rejoin_vs_single"]:
        failed.append("rejoined-shard results differ from the baseline")
    if report["cross_shard_hits"] <= 0:
        failed.append(
            "cross-shard hit rate is zero — the ring never served a peer"
        )
    if report["rejoin_store_hits"] <= 0:
        failed.append(
            "rejoined shard served nothing from its on-disk store"
        )
    for message in failed:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke load")
    parser.add_argument(
        "--jobs", type=int, default=2, help="daemon worker-pool width"
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="measured-phase request count (default 24 quick / 96 full)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=None,
        help="client threads (default 4 quick / 8 full)",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="boot an N-daemon consistent-hash ring instead of one "
        "daemon; adds the cross-shard hit rate, a mid-load shard "
        "SIGKILL, and a rejoin-from-disk phase to the run",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_serve.json"))
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="also run the request set against a NACHOS_CHAOS daemon on a "
        "fresh cache; per-system results must match the fault-free run "
        "(abort@ unsupported: it kills the supervisor = the daemon). "
        "With --shards, the fleet daemons run under the spec directly.",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append this report to the perf-observatory run ledger",
    )
    args = parser.parse_args(argv)

    if args.chaos and "abort" in args.chaos:
        print("FAIL: chaos abort@ would SIGKILL the daemon itself",
              file=sys.stderr)
        return 2
    if args.shards == 1:
        print("FAIL: --shards wants N >= 2 (one daemon is the default mode)",
              file=sys.stderr)
        return 2

    mix = QUICK_MIX if args.quick else FULL_MIX
    requests = args.requests or (24 if args.quick else 96)
    concurrency = args.concurrency or (4 if args.quick else 8)

    if args.shards:
        report = _run_sharded(args, mix, requests, concurrency)
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))
        if args.ledger:
            from repro.obs import PerfLedger, record_from_serve

            ledger = PerfLedger(args.ledger)
            fp = ledger.append(record_from_serve(report))
            print(f"[ledger {ledger.path}: appended serve record {fp}]")
        return _check_sharded(report)

    work_dir = Path(tempfile.mkdtemp(prefix="nachos-serve-bench-"))
    try:
        with DaemonHarness(args.jobs, {}, "bench", work_dir) as harness:
            client = harness.client
            print(f"[daemon up: {client.host}:{client.port}, jobs={args.jobs}]")

            print(f"[warmup: {len(mix)} distinct requests]")
            t0 = time.perf_counter()
            baseline = _collect_results([client], mix)
            warmup_s = time.perf_counter() - t0
            print(f"[warmup: {warmup_s:.2f}s]")

            print(f"[measured: {requests} requests x {concurrency} threads]")
            latencies, wall, errors = _drive([client], mix, requests, concurrency)
            metrics = client.metrics()

        # Restart-warm: a fresh daemon on the same cache directory must
        # answer the whole mix from the on-disk result cache — the
        # durability layer is what makes the service restartable.
        print("[restart-warm: new daemon, same cache]")
        t0 = time.perf_counter()
        with DaemonHarness(args.jobs, {}, "restart", work_dir) as harness:
            restart_results = _collect_results([harness.client], mix)
            restart_metrics = harness.client.metrics()
        restart_s = time.perf_counter() - t0
        restart_identical = restart_results == baseline
        print(f"[restart-warm: {restart_s:.2f}s, identical={restart_identical}]")
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)

    served = len(latencies)
    req_total = metrics.get("serve.requests", {}).get("value", 0)
    req_dedup = metrics.get("serve.requests_deduped", {}).get("value", 0)
    report = {
        "schema": BENCH_SCHEMA,
        "mode": "quick" if args.quick else "full",
        "jobs": args.jobs,
        "requests": served,
        "concurrency": concurrency,
        "distinct_requests": len(mix),
        "warmup_seconds": round(warmup_s, 3),
        "wall_seconds": round(wall, 3),
        "qps": round(served / wall, 2) if wall > 0 else 0.0,
        "mean_latency_seconds": round(sum(latencies) / served, 4) if served else 0.0,
        "p50_latency_seconds": round(_percentile(latencies, 50), 4),
        "p90_latency_seconds": round(_percentile(latencies, 90), 4),
        "p99_latency_seconds": round(_percentile(latencies, 99), 4),
        # The hit rate that matters for a service is the restart-warm
        # one: a rebooted daemon re-serving the mix straight from disk.
        "cache_hit_rate": restart_metrics.get("cache.hit_rate", {}).get(
            "value", 0.0
        ),
        "dedup_rate": round(req_dedup / req_total, 4) if req_total else 0.0,
        "restart_warm_seconds": round(restart_s, 3),
        "results_identical_restart_vs_first_boot": restart_identical,
        "errors": len(errors),
        "daemon": _daemon_counters(metrics),
    }

    if args.chaos:
        # Fresh caches on both sides so every task actually executes
        # (and actually gets crashed/corrupted) instead of being served
        # from the bench run's warm cache.
        print(f"[chaos run: NACHOS_CHAOS={args.chaos}]")
        t0 = time.perf_counter()
        with DaemonHarness(
            args.jobs, _chaos_extra_env(args.chaos), "chaos"
        ) as harness:
            chaos_results = _collect_results([harness.client], mix)
            chaos_metrics = harness.client.metrics()
        chaos_s = time.perf_counter() - t0
        identical = chaos_results == baseline
        report["chaos_spec"] = args.chaos
        report["chaos_wall_seconds"] = round(chaos_s, 3)
        report["chaos_retries"] = chaos_metrics.get(
            "serve.pool_retries", {}
        ).get("value", 0)
        report["results_identical_chaos_vs_fault_free"] = identical
        print(
            f"[chaos: {chaos_s:.2f}s, retries="
            f"{report['chaos_retries']}, identical={identical}]"
        )

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if args.ledger:
        from repro.obs import PerfLedger, record_from_serve

        ledger = PerfLedger(args.ledger)
        fp = ledger.append(record_from_serve(report))
        print(f"[ledger {ledger.path}: appended serve record {fp}]")

    if errors:
        print(f"FAIL: {len(errors)} request error(s); first: {errors[0]}",
              file=sys.stderr)
        return 1
    if not restart_identical:
        print(
            "FAIL: restart-warm results differ from the first boot — the "
            "on-disk result cache served something wrong",
            file=sys.stderr,
        )
        return 1
    if args.chaos and not report["results_identical_chaos_vs_fault_free"]:
        print(
            "FAIL: chaos-run results differ from the fault-free run — the "
            "daemon lost the supervised executor's recovery guarantee",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
