#!/usr/bin/env python
"""Load-generate against a live ``nachos-serve`` daemon.

Boots the daemon as a subprocess on an ephemeral port with an isolated
cache directory, drives a warmup pass plus a measured multi-threaded
load phase through :class:`repro.serve.client.ServeClient`, scrapes the
daemon's ``/metrics``, and writes latency/throughput numbers to
``BENCH_serve.json``.

Modes::

    python benchmarks/bench_serve.py                 # full load shape
    python benchmarks/bench_serve.py --quick         # CI smoke load
    python benchmarks/bench_serve.py --quick \
        --chaos 'crash=0.15,corrupt=0.1,seed=11'     # fault campaign
    python benchmarks/bench_serve.py --quick --ledger perf/history.ndjson

The measured phase follows a warmup that populates the result cache and
the daemon's retained-request records, so its latencies are the *serving*
story (dedup + read-through cache), not simulation wall time — that is
the whole point of a long-running service.  ``qps``, ``p50/p90/p99``
latency, the cache hit rate, and the request dedup rate feed
``perf_budgets.toml`` via ``nachos-repro perf record --serve`` (or
``--ledger`` here directly).

``--chaos SPEC`` runs the same fixed request set against a fault-free
daemon and against a daemon whose environment carries ``NACHOS_CHAOS``
(so pool workers crash, hang, and corrupt results); the per-system
result payloads must be identical — the service inherits the supervised
executor's recovery guarantees, live.  The chaos ``abort@`` point is
the one exclusion: it SIGKILLs the supervisor, i.e. the daemon.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402

BENCH_SCHEMA = 1

#: (region, systems, invocations) mixes.  Quick is the CI smoke shape:
#: three micro regions, two systems, tiny invocation counts.  Full adds
#: a third system and a suite region for a heavier steady-state.
QUICK_MIX = [
    ("gather", ["nachos", "opt-lsq"], 6),
    ("scatter", ["nachos", "opt-lsq"], 6),
    ("stream_triad", ["nachos", "opt-lsq"], 6),
]
FULL_MIX = QUICK_MIX + [
    ("gather", ["nachos", "opt-lsq", "nachos-sw"], 12),
    ("bzip2", ["nachos", "opt-lsq"], 12),
]


def _percentile(values, q: float) -> float:
    """Nearest-rank percentile (matches ``obs.metrics.Histogram``)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return float(ordered[min(rank, len(ordered)) - 1])


class DaemonHarness:
    """Boot/stop one daemon subprocess with an isolated cache.

    Pass ``work_dir`` to point a second daemon at an earlier daemon's
    cache (the restart-warm phase); the creator of the tmpdir cleans up.
    """

    def __init__(
        self, jobs: int, extra_env: dict, label: str, work_dir=None
    ) -> None:
        self.jobs = jobs
        self.extra_env = extra_env
        self.label = label
        self._owns_dir = work_dir is None
        self.work_dir = Path(
            work_dir if work_dir is not None
            else tempfile.mkdtemp(prefix=f"nachos-serve-{label}-")
        )
        self.ready_file = self.work_dir / f"ready-{label}.json"
        self.proc = None
        self.client = None

    def __enter__(self) -> "DaemonHarness":
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env["NACHOS_CACHE_DIR"] = str(self.work_dir / "cache")
        env.pop("NACHOS_CHAOS", None)  # only ever explicit, never inherited
        env.update(self.extra_env)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--port", "0",
                "--jobs", str(self.jobs),
                "--ready-file", str(self.ready_file),
                "--quiet",
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        deadline = time.monotonic() + 60
        while not self.ready_file.exists():
            if self.proc.poll() is not None:
                out, err = self.proc.communicate()
                raise SystemExit(
                    f"daemon ({self.label}) died on boot:\n{out}\n{err}"
                )
            if time.monotonic() > deadline:
                self.proc.kill()
                raise SystemExit(f"daemon ({self.label}) never became ready")
            time.sleep(0.02)
        ready = json.loads(self.ready_file.read_text())
        self.client = ServeClient(host=ready["host"], port=ready["port"])
        return self

    def __exit__(self, *exc) -> None:
        try:
            if self.client is not None:
                self.client.shutdown()
                self.proc.wait(timeout=30)
        except Exception:
            self.proc.kill()
        finally:
            self.proc.wait(timeout=10)
            if self._owns_dir:
                shutil.rmtree(self.work_dir, ignore_errors=True)


def _drive(client: ServeClient, mix, requests: int, concurrency: int):
    """The measured phase: ``concurrency`` threads, round-robin mix."""
    latencies = []
    errors = []
    lock = threading.Lock()

    def worker(offset: int) -> None:
        for i in range(offset, requests, concurrency):
            region, systems, invocations = mix[i % len(mix)]
            t0 = time.perf_counter()
            try:
                response = client.submit(
                    region, systems=systems, invocations=invocations,
                    wait=True, wait_timeout=120.0,
                )
                ok = response.get("status") == "done"
            except Exception as exc:
                ok = False
                with lock:
                    errors.append(str(exc))
            elapsed = time.perf_counter() - t0
            with lock:
                latencies.append(elapsed)
                if not ok and not errors:
                    errors.append(f"request {i} not done")

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    return latencies, wall, errors


def _collect_results(client: ServeClient, mix) -> dict:
    """One wait=True pass over the mix, keyed for chaos comparison."""
    out = {}
    for region, systems, invocations in mix:
        response = client.submit(
            region, systems=systems, invocations=invocations,
            wait=True, wait_timeout=300.0,
        )
        if response.get("status") != "done":
            raise SystemExit(
                f"request {region}/{systems} finished as "
                f"{response.get('status')}: {response.get('failed')}"
            )
        out[f"{region}:{','.join(systems)}:{invocations}"] = response["results"]
    return out


def _daemon_counters(metrics: dict) -> dict:
    """Flatten the /metrics payload to scalar counters for the report."""
    flat = {}
    for name, entry in sorted(metrics.items()):
        if name.startswith("_"):
            continue
        if entry.get("type") in ("counter", "gauge"):
            flat[name] = entry["value"]
        elif entry.get("type") == "histogram" and entry.get("count"):
            for key in ("count", "mean", "p50", "p99"):
                if key in entry:
                    flat[f"{name}.{key}"] = entry[key]
    return flat


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke load")
    parser.add_argument(
        "--jobs", type=int, default=2, help="daemon worker-pool width"
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="measured-phase request count (default 24 quick / 96 full)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=None,
        help="client threads (default 4 quick / 8 full)",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_serve.json"))
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="also run the request set against a NACHOS_CHAOS daemon on a "
        "fresh cache; per-system results must match the fault-free run "
        "(abort@ unsupported: it kills the supervisor = the daemon)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append this report to the perf-observatory run ledger",
    )
    args = parser.parse_args(argv)

    if args.chaos and "abort" in args.chaos:
        print("FAIL: chaos abort@ would SIGKILL the daemon itself",
              file=sys.stderr)
        return 2

    mix = QUICK_MIX if args.quick else FULL_MIX
    requests = args.requests or (24 if args.quick else 96)
    concurrency = args.concurrency or (4 if args.quick else 8)

    work_dir = Path(tempfile.mkdtemp(prefix="nachos-serve-bench-"))
    try:
        with DaemonHarness(args.jobs, {}, "bench", work_dir) as harness:
            client = harness.client
            print(f"[daemon up: {client.host}:{client.port}, jobs={args.jobs}]")

            print(f"[warmup: {len(mix)} distinct requests]")
            t0 = time.perf_counter()
            baseline = _collect_results(client, mix)
            warmup_s = time.perf_counter() - t0
            print(f"[warmup: {warmup_s:.2f}s]")

            print(f"[measured: {requests} requests x {concurrency} threads]")
            latencies, wall, errors = _drive(client, mix, requests, concurrency)
            metrics = client.metrics()

        # Restart-warm: a fresh daemon on the same cache directory must
        # answer the whole mix from the on-disk result cache — the
        # durability layer is what makes the service restartable.
        print("[restart-warm: new daemon, same cache]")
        t0 = time.perf_counter()
        with DaemonHarness(args.jobs, {}, "restart", work_dir) as harness:
            restart_results = _collect_results(harness.client, mix)
            restart_metrics = harness.client.metrics()
        restart_s = time.perf_counter() - t0
        restart_identical = restart_results == baseline
        print(f"[restart-warm: {restart_s:.2f}s, identical={restart_identical}]")
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)

    served = len(latencies)
    req_total = metrics.get("serve.requests", {}).get("value", 0)
    req_dedup = metrics.get("serve.requests_deduped", {}).get("value", 0)
    report = {
        "schema": BENCH_SCHEMA,
        "mode": "quick" if args.quick else "full",
        "jobs": args.jobs,
        "requests": served,
        "concurrency": concurrency,
        "distinct_requests": len(mix),
        "warmup_seconds": round(warmup_s, 3),
        "wall_seconds": round(wall, 3),
        "qps": round(served / wall, 2) if wall > 0 else 0.0,
        "mean_latency_seconds": round(sum(latencies) / served, 4) if served else 0.0,
        "p50_latency_seconds": round(_percentile(latencies, 50), 4),
        "p90_latency_seconds": round(_percentile(latencies, 90), 4),
        "p99_latency_seconds": round(_percentile(latencies, 99), 4),
        # The hit rate that matters for a service is the restart-warm
        # one: a rebooted daemon re-serving the mix straight from disk.
        "cache_hit_rate": restart_metrics.get("cache.hit_rate", {}).get(
            "value", 0.0
        ),
        "dedup_rate": round(req_dedup / req_total, 4) if req_total else 0.0,
        "restart_warm_seconds": round(restart_s, 3),
        "results_identical_restart_vs_first_boot": restart_identical,
        "errors": len(errors),
        "daemon": _daemon_counters(metrics),
    }

    if args.chaos:
        # Fresh caches on both sides so every task actually executes
        # (and actually gets crashed/corrupted) instead of being served
        # from the bench run's warm cache.
        chaos_env = {
            "NACHOS_CHAOS": args.chaos,
            "NACHOS_TIMEOUT": os.environ.get("NACHOS_TIMEOUT", "10"),
            "NACHOS_MAX_RETRIES": os.environ.get("NACHOS_MAX_RETRIES", "4"),
            "NACHOS_BACKOFF_BASE": os.environ.get("NACHOS_BACKOFF_BASE", "0.05"),
        }
        print(f"[chaos run: NACHOS_CHAOS={args.chaos}]")
        t0 = time.perf_counter()
        with DaemonHarness(args.jobs, chaos_env, "chaos") as harness:
            chaos_results = _collect_results(harness.client, mix)
            chaos_metrics = harness.client.metrics()
        chaos_s = time.perf_counter() - t0
        identical = chaos_results == baseline
        report["chaos_spec"] = args.chaos
        report["chaos_wall_seconds"] = round(chaos_s, 3)
        report["chaos_retries"] = chaos_metrics.get(
            "serve.pool_retries", {}
        ).get("value", 0)
        report["results_identical_chaos_vs_fault_free"] = identical
        print(
            f"[chaos: {chaos_s:.2f}s, retries="
            f"{report['chaos_retries']}, identical={identical}]"
        )

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if args.ledger:
        from repro.obs import PerfLedger, record_from_serve

        ledger = PerfLedger(args.ledger)
        fp = ledger.append(record_from_serve(report))
        print(f"[ledger {ledger.path}: appended serve record {fp}]")

    if errors:
        print(f"FAIL: {len(errors)} request error(s); first: {errors[0]}",
              file=sys.stderr)
        return 1
    if not restart_identical:
        print(
            "FAIL: restart-warm results differ from the first boot — the "
            "on-disk result cache served something wrong",
            file=sys.stderr,
        )
        return 1
    if args.chaos and not report["results_identical_chaos_vs_fault_free"]:
        print(
            "FAIL: chaos-run results differ from the fault-free run — the "
            "daemon lost the supervised executor's recovery guarantee",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
