"""Bench: regenerate the Section IV-A scope-widening study."""

from conftest import run_once

from repro.experiments import scope_study


def test_scope_study(benchmark):
    result = run_once(benchmark, scope_study.run)
    print()
    print(scope_study.render(result))

    # Paper: 12 of 27 benchmarks gain MAY relations when the scope
    # widens; 5 gain more than 10x; bzip2/povray/soplex blow up worst
    # (380x / 100x / 85x).
    assert len(result.increased) >= 8
    assert len(result.over_10x) >= 2
    by_name = {r.name: r for r in result.rows}
    worst3 = sorted(result.rows, key=lambda r: r.factor, reverse=True)[:3]
    assert {r.name for r in worst3} & {"bzip2", "povray", "soplex"}
    # Benchmarks whose callers only touch named globals gain nothing.
    assert by_name["gzip"].added_may == 0
