"""Bench: the idiom x system matrix over the microbenchmarks."""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments import micro_study


def test_micro_study(benchmark):
    result = run_once(benchmark, micro_study.run, invocations=BENCH_INVOCATIONS)
    print()
    print(micro_study.render(result))

    assert result.all_correct
    by_name = {r.name: r for r in result.rows}

    # Compiler-resolvable idioms: NACHOS(-SW) matches or beats the LSQ
    # with zero MAY MDEs.
    for name in ("stream_triad", "stencil3", "transpose", "gather"):
        r = by_name[name]
        assert r.may_mdes == 0, name
        assert r.cycles["nachos"] <= r.cycles["opt-lsq"], name

    # Data-dependent scatter: software-only serializes, the comparator
    # recovers it.
    scatter = by_name["scatter"]
    assert scatter.may_mdes > 0
    assert scatter.cycles["nachos-sw"] > scatter.cycles["nachos"]
    assert scatter.cycles["nachos"] <= scatter.cycles["opt-lsq"] * 1.1

    # Pointer chasing is serial everywhere — no scheme conjures MLP out
    # of a dependence chain.
    chase = by_name["pointer_chase"]
    spread = max(chase.cycles.values()) / min(chase.cycles.values())
    assert spread < 1.25

    # Strict in-order memory loses wherever parallelism exists.
    assert by_name["gather"].cycles["serial-mem"] > by_name["gather"].cycles["nachos"]
