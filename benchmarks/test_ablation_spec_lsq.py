"""Ablation: what if the accelerator used a *speculative* OOO LSQ?

The paper dismisses store-set-style speculative LSQs for accelerators as
"complex prediction structures".  This bench quantifies the choice: the
in-order OPT-LSQ, the speculative SPEC-LSQ, and NACHOS on the MAY-heavy
benchmarks.  Expected shape: speculation removes the in-order-issue
penalty (SPEC-LSQ <= OPT-LSQ), but NACHOS stays competitive with both
while spending MDE-level energy instead of per-access CAM energy.
"""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments.common import run_system
from repro.experiments.regions import workload_for
from repro.workloads import get_spec

PICKS = ("soplex", "bzip2", "histogram", "464.h264ref", "equake")


def _sweep():
    rows = []
    for name in PICKS:
        workload = workload_for(get_spec(name))
        runs = {
            system: run_system(workload, system, invocations=BENCH_INVOCATIONS)
            for system in ("opt-lsq", "spec-lsq", "nachos")
        }
        rows.append((name, runs))
    return rows


def test_speculative_lsq_ablation(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(f"{'benchmark':>12} {'opt-lsq':>9} {'spec-lsq':>9} {'nachos':>9} "
          f"{'spec?':>6} {'viol':>5}")
    for name, runs in rows:
        stats = runs["spec-lsq"].sim.backend_stats
        print(
            f"{name:>12} {runs['opt-lsq'].sim.cycles:>9} "
            f"{runs['spec-lsq'].sim.cycles:>9} {runs['nachos'].sim.cycles:>9} "
            f"{stats.speculations:>6} {stats.violations:>5}"
        )

    for name, runs in rows:
        assert all(r.correct for r in runs.values()), name
        # OOO issue never loses to in-order issue.
        assert runs["spec-lsq"].sim.cycles <= runs["opt-lsq"].sim.cycles * 1.02, name
        # NACHOS stays in the same performance class as both LSQs.
        assert (
            runs["nachos"].sim.cycles
            <= min(runs["opt-lsq"].sim.cycles, runs["spec-lsq"].sim.cycles) * 1.15
        ), name
        # ... while spending far less disambiguation energy than either.
        nachos_dis = runs["nachos"].sim.energy_breakdown.disambiguation
        lsq_dis = runs["opt-lsq"].sim.energy_breakdown.disambiguation
        if workload_has_memory(name):
            assert nachos_dis < lsq_dis, name


def workload_has_memory(name: str) -> bool:
    return get_spec(name).n_mem > 0
