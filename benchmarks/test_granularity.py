"""Bench: Table I quantified — in-order memory vs LSQ vs NACHOS."""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments import granularity


def test_granularity(benchmark):
    result = run_once(benchmark, granularity.run, invocations=BENCH_INVOCATIONS)
    print()
    print(granularity.render(result))

    by_name = {r.name: r for r in result.rows}
    # The CFU class (strict in-order memory) collapses on memory-parallel
    # regions — the granularity benefit Table I credits NACHOS with.
    assert result.mean_serial_slowdown > 50.0
    for name in ("equake", "bzip2", "lbm"):
        assert by_name[name].serial_slowdown_pct > 150.0, name
    # Compute-only regions see no effect at all.
    for name in ("blackscholes", "ferret"):
        assert by_name[name].serial_slowdown_pct == 0.0, name
    # Serialization is never *faster* than disambiguation.
    for r in result.rows:
        assert r.serial_cycles >= min(r.lsq_cycles, r.nachos_cycles), r.name
