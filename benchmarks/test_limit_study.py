"""Bench: the perfect-compiler limit study."""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments import limit_study


def test_limit_study(benchmark):
    result = run_once(benchmark, limit_study.run, invocations=BENCH_INVOCATIONS)
    print()
    print(limit_study.render(result))

    assert result.all_correct
    by_name = {r.name: r for r in result.rows}

    # Where our compiler already proves everything, the oracle adds
    # nothing (the stage machinery is not the bottleneck).
    for name in ("gzip", "equake", "lbm", "fluidanimate"):
        assert by_name[name].compiler_gap_pct == 0.0, name

    # Opaque-pointer benchmarks: a perfect compiler would close most of
    # the NACHOS-SW gap (the ambiguity is static, just unprovable for
    # LLVM-class analyses)...
    for name in ("soplex", "bzip2", "fft-2d"):
        assert by_name[name].compiler_gap_pct > 15.0, name
        # ...and NACHOS lands within a few % of that ceiling.
        assert abs(by_name[name].hardware_gap_pct) < 10.0, name

    # Data-dependent conflicts: even the oracle static schedule loses to
    # runtime checking — hardware assistance is fundamental here.
    assert "histogram" in result.hardware_needed
