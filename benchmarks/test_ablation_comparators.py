"""Ablation: comparators per functional unit (NACHOS fan-in contention).

Section VII attributes bzip2's and sar-pfa-interp1's residual NACHOS
slowdown to the single ``==?`` comparator arbitrating many MAY parents.
This bench sweeps the comparator pool on the high-fan-in benchmarks: the
contention should shrink monotonically, and the benefit should saturate
(the checks stop being the bottleneck).
"""

from conftest import BENCH_INVOCATIONS, run_once

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.memory import MemoryHierarchy
from repro.sim import DataflowEngine, NachosBackend
from repro.workloads import build_workload, get_spec

PICKS = ("bzip2", "sar-pfa-interp1", "fft-2d")
POOLS = (1, 2, 4, 8)


def _sweep():
    out = {}
    for name in PICKS:
        spec = get_spec(name)
        cycles = {}
        for n in POOLS:
            workload = build_workload(spec)
            compile_region(workload.graph)
            hierarchy = MemoryHierarchy()
            envs = workload.invocations(BENCH_INVOCATIONS)
            for env in envs:
                for op in workload.graph.memory_ops:
                    hierarchy.l2.access(op.addr.evaluate(env), op.is_store)
            engine = DataflowEngine(
                workload.graph,
                place_region(workload.graph),
                hierarchy,
                NachosBackend(comparators_per_fu=n),
            )
            cycles[n] = engine.run(envs).cycles
        out[name] = cycles
    return out


def test_comparator_pool_ablation(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    header = "  ".join(f"{n}x" for n in POOLS)
    print(f"{'benchmark':>16}  cycles at {header} comparators")
    for name, cycles in results.items():
        print(f"{name:>16}  " + "  ".join(str(cycles[n]) for n in POOLS))

    for name, cycles in results.items():
        # More comparators never hurt ...
        assert cycles[8] <= cycles[1], name
        # ... and the benefit saturates (8x buys little over 4x).
        assert cycles[8] >= cycles[4] * 0.95, name
    # The paper's fan-in benchmarks actually benefit from a second
    # comparator (the contention is real).
    assert any(cycles[4] < cycles[1] for cycles in results.values())
