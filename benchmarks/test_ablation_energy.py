"""Ablation: sensitivity of the energy headline to calibration choices.

Two energy costs in our model are not given by the paper (the LSQ
front-end and the L1 access).  This bench sweeps both across an order of
magnitude and checks that the *headline* — NACHOS saves energy vs
OPT-LSQ, with savings concentrated in memory-heavy workloads — holds at
every point.  The reproduction's conclusion should not hinge on the two
numbers we had to choose.
"""

from conftest import BENCH_INVOCATIONS, run_once

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.energy.accounting import EnergyLedger
from repro.energy.config import EnergyConfig, EnergyEvent
from repro.memory import MemoryHierarchy
from repro.sim import DataflowEngine, NachosBackend, OptLSQBackend
from repro.workloads import build_workload, get_spec

PICKS = ("equake", "soplex", "histogram")
LSQ_FRONT = (800.0, 2500.0, 8000.0)
L1_READ = (2000.0, 5000.0, 20000.0)


def _energy_config(lsq_front: float, l1_read: float) -> EnergyConfig:
    cfg = EnergyConfig.paper_default()
    costs = dict(cfg.costs)
    costs[EnergyEvent.LSQ_BLOOM] = lsq_front
    costs[EnergyEvent.L1_READ] = l1_read
    costs[EnergyEvent.L1_WRITE] = l1_read * 1.2
    return EnergyConfig(costs=costs)


def _total_energy(name: str, system: str, energy_config: EnergyConfig) -> float:
    workload = build_workload(get_spec(name))
    graph = workload.graph
    if system == "nachos":
        compile_region(graph)
        backend = NachosBackend()
    else:
        graph.clear_mdes()
        backend = OptLSQBackend()
    hierarchy = MemoryHierarchy()
    envs = workload.invocations(BENCH_INVOCATIONS)
    for env in envs:
        for op in graph.memory_ops:
            hierarchy.l2.access(op.addr.evaluate(env), op.is_store)
    engine = DataflowEngine(
        graph, place_region(graph), hierarchy, backend,
        energy=EnergyLedger(energy_config),
    )
    return engine.run(envs).total_energy


def _sweep():
    out = {}
    for lsq_front in LSQ_FRONT:
        for l1 in L1_READ:
            cfg = _energy_config(lsq_front, l1)
            ratios = {
                name: _total_energy(name, "nachos", cfg)
                / _total_energy(name, "opt-lsq", cfg)
                for name in PICKS
            }
            out[(lsq_front, l1)] = ratios
    return out


def test_energy_calibration_sensitivity(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    print(f"{'LSQ front fJ':>13} {'L1 fJ':>7}  " + "  ".join(f"{n:>10}" for n in PICKS))
    for (lsq_front, l1), ratios in results.items():
        row = "  ".join(f"{ratios[n]:>9.3f}x" for n in PICKS)
        print(f"{lsq_front:>13.0f} {l1:>7.0f}  {row}")

    # The headline holds at every calibration point: NACHOS never costs
    # more energy than the optimized LSQ on memory-bearing workloads...
    for point, ratios in results.items():
        for name, ratio in ratios.items():
            assert ratio < 1.0, (point, name)
    # ...and the saving grows as the LSQ front-end gets more expensive.
    for l1 in L1_READ:
        cheap = results[(LSQ_FRONT[0], l1)]
        dear = results[(LSQ_FRONT[-1], l1)]
        for name in PICKS:
            assert dear[name] < cheap[name], (name, l1)
