"""Ablation: bloom-filter geometry in the OPT-LSQ baseline.

The bloom filter is "strictly a best-effort energy optimization"
(Section VIII-C): it only saves the CAM search on a miss.  Shrinking it
raises false-positive hits and CAM energy; growing it saturates.  Swept
on a store-heavy benchmark (real hits) and a load-only one (all hits are
false positives).
"""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments.common import run_system
from repro.experiments.regions import workload_for
from repro.sim import LSQConfig
from repro.workloads import get_spec

BITS = (16, 64, 256, 1024, 4096)


def _sweep():
    out = {}
    for name in ("histogram", "sphinx3"):
        workload = workload_for(get_spec(name))
        rows = {}
        for bits in BITS:
            cfg = LSQConfig(bloom_bits=bits)
            run = run_system(
                workload, "opt-lsq", invocations=BENCH_INVOCATIONS,
                lsq_config=cfg, check=False,
            )
            stats = run.sim.backend_stats
            rows[bits] = (
                stats.bloom_hit_rate,
                run.sim.energy_breakdown.by_category.get("LSQ-CAM", 0.0),
            )
        out[name] = rows
    return out


def test_bloom_geometry_ablation(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    for name, rows in results.items():
        print(f"{name}:")
        for bits, (hit_rate, cam_energy) in rows.items():
            print(f"  {bits:>5} bits  hit-rate {hit_rate:6.1%}  CAM {cam_energy/1e6:8.2f} MfJ")

    for name, rows in results.items():
        hit_rates = [rows[b][0] for b in BITS]
        # Bigger filters never increase the hit rate.
        assert all(a >= b - 1e-9 for a, b in zip(hit_rates, hit_rates[1:])), name
        # A tiny filter saturates into constant CAM checking.
        assert rows[16][0] > rows[4096][0], name

    # Mostly-load benchmark: a large filter leaves only the real
    # dependence pairs hitting.
    assert results["sphinx3"][4096][0] <= 0.08
    # Store-heavy data-dependent benchmark: real conflicts keep hitting
    # even in a large filter — far more than the mostly-load one.
    assert results["histogram"][4096][0] > 0.10
    assert results["histogram"][4096][0] > 2 * results["sphinx3"][4096][0]
