"""Bench: the 135-region all-paths robustness study (extension)."""

from conftest import run_once

from repro.experiments import allpaths


def test_allpaths(benchmark):
    result = run_once(benchmark, allpaths.run, invocations=10, top_k=5)
    print()
    print(allpaths.render(result))

    assert result.all_correct
    # The hottest-path conclusions hold corpus-wide: the MAY-serialized
    # group slows under NACHOS-SW on *weighted* aggregate too...
    slow = set(result.slowdown_group)
    assert {"soplex", "povray", "fft-2d", "bzip2", "histogram"} <= slow
    # ...and NACHOS tracks the LSQ on every benchmark's weighted mix.
    assert max(r.nachos_weighted_pct for r in result.rows) < 10.0
    # Proven-safe benchmarks never join the slowdown group on any path.
    by_name = {r.name: r for r in result.rows}
    for name in ("gzip", "equake", "namd", "fluidanimate"):
        assert all(p < 4.0 for p in by_name[name].per_path_sw), name
