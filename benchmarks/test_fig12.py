"""Bench: regenerate Figure 12 (baseline compiler, stages 1+3 only)."""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments import fig12


def test_fig12(benchmark):
    result = run_once(benchmark, fig12.run, invocations=BENCH_INVOCATIONS)
    print()
    print(fig12.render(result))

    assert result.all_correct
    by_name = {r.name: r for r in result.rows}
    # Paper: 10 applications slow down more than 10% without stages 2+4.
    over10 = [r.name for r in result.rows if r.slowdown_pct > 10.0]
    assert len(over10) >= 10
    # Paper: the five polyhedral benchmarks degrade specifically; lbm is
    # the worst (400% in the paper; the direction and ranking matter).
    for name in ("equake", "lbm", "dwt53"):
        assert name in over10, name
    assert by_name["lbm"].slowdown_pct > by_name["equake"].slowdown_pct
