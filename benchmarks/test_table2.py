"""Bench: regenerate Table II (acceleration region characteristics)."""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark):
    result = run_once(benchmark, table2.run)
    print()
    print(table2.render(result))

    assert len(result.rows) == 27
    by_name = {r.name: r for r in result.rows}
    # Shape anchors from the paper's table.
    assert by_name["equake"].n_mem > 100          # memory dominated
    assert by_name["blackscholes"].n_mem == 0     # compute only
    assert by_name["ferret"].n_mem == 0
    assert by_name["bzip2"].mlp == 128            # widest MLP
    # 12 of 28 applications promote >20% of their memory ops (C5).
    promoted = sum(1 for r in result.rows if r.pct_local > 15)
    assert promoted >= 8
