"""Bench: regenerate the appendix's decentralized-checking limit model."""

from conftest import run_once

from repro.experiments import appendix_model


def test_appendix_model(benchmark):
    result = run_once(benchmark, appendix_model.run)
    print()
    print(appendix_model.render(result))

    # Paper: breakeven at 6 MAY aliases per memory op with the
    # conservative 3000 fJ vs 500 fJ costs.
    assert result.model.breakeven_ratio == 6.0
    # Paper: only ~7 benchmarks exceed ratio 1, all from the MAY-heavy
    # group; everything else is deeply profitable.
    over = set(result.over_ratio_1)
    assert 3 <= len(over) <= 9
    assert over <= {
        "art", "bzip2", "soplex", "povray", "fft-2d",
        "freqmine", "sar-pfa-interp1", "histogram",
    }
    profitable = sum(1 for r in result.rows if r.profitable)
    assert profitable >= 20
