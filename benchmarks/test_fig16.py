"""Bench: regenerate Figure 16 (MDEs: NACHOS vs baseline compiler)."""

from conftest import run_once

from repro.experiments import fig16


def test_fig16(benchmark):
    result = run_once(benchmark, fig16.run)
    print()
    print(fig16.render(result))

    by_name = {r.name: r for r in result.rows}
    # Paper: many workloads need no MDEs at all (15 with no MAY energy).
    assert len(result.zero_mde_workloads) >= 10
    # Stage-4 benchmarks collapse relative to the baseline compiler.
    for name in ("equake", "lbm", "namd", "dwt53"):
        assert by_name[name].fraction < 0.25, name
    # The MAY-heavy trio needs the most MDEs (paper: >250 each).
    heavy = sorted(result.rows, key=lambda r: r.nachos_mdes, reverse=True)[:3]
    assert {r.name for r in heavy} & {"bzip2", "fft-2d", "povray", "histogram"}
