"""Bench: the machine-checked claims summary — the reproduction's bottom line."""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments import summary


def test_summary(benchmark):
    result = run_once(benchmark, summary.run, invocations=BENCH_INVOCATIONS)
    print()
    print(summary.render(result))

    failed = [c.claim_id for c in result.checks if not c.passed]
    assert result.all_passed, f"failed claims: {failed}"
    assert len(result.checks) == 14
