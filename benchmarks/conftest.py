"""Benchmark harness configuration.

Each benchmark regenerates one table/figure of the paper exactly once
(``pedantic`` with a single round — these are end-to-end experiment
reproductions, not micro-benchmarks) and asserts the paper's shape claims
on the result.  Run with::

    pytest benchmarks/ --benchmark-only

Pass ``-s`` to also see the rendered tables.
"""

from __future__ import annotations

import pytest

#: Region invocations for the simulation-based figures: enough for steady
#: state, small enough that the full harness finishes in a few minutes.
BENCH_INVOCATIONS = 24


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Benchmarks measure this session's compute, not the user's cache."""
    from repro.runtime.cache import configure_cache

    configure_cache(root=tmp_path_factory.mktemp("nachos-cache"), enabled=True)
    yield


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
