#!/usr/bin/env python
"""Measure the sweep runner: cold vs warm cache, serial vs parallel.

Runs the experiment sweep in subprocesses against an isolated cache
directory (so timings never mix with the user's ``~/.cache``), verifies
that the warm run's rendered output is byte-identical to the cold run,
and writes the wall-clock numbers to ``BENCH_sweep.json``.

Modes::

    python benchmarks/bench_sweep.py                # full: nachos-repro all
    python benchmarks/bench_sweep.py --quick        # CI smoke: 2 regions x 3 systems
    python benchmarks/bench_sweep.py --jobs 4       # fan the sweep across workers
    python benchmarks/bench_sweep.py --quick --check-warm-vs BENCH_sweep_quick.json
    python benchmarks/bench_sweep.py --quick --jobs 4 \
        --chaos 'crash=0.12,hang=0.08,corrupt=0.08,seed=7,hang_s=60'

The ``--quick`` smoke sweep is what CI runs on every push: two micro
regions through all three paper systems, parallel, cache on, then a
warm re-run that must be 100% cache-served and identical.

``--check-warm-vs`` guards the hot path against observability overhead:
the warm run must stay within 10% (plus a small absolute slack for
machine noise) of a committed reference report's ``warm_seconds`` — a
regression here means the disabled-tracer path stopped being free.

``--chaos SPEC`` adds a third run on a fresh cache with the given
fault-injection profile active (``NACHOS_CHAOS``); workers crash, hang
past the timeout, and return corrupt results, yet the supervised
executor must recover and produce output byte-identical to the
fault-free cold run.

``--ledger PATH`` appends the report to the perf-observatory run
ledger (``repro.obs.perf``) — cold/warm wall+CPU, cache hit rate,
per-figure wall breakdown, and the engine-compare section when present
— so ``nachos-repro perf check`` can enforce the committed
``perf_budgets.toml`` over the history and ``perf report`` can render
the trend dashboard.  All wall times here and in the child CLI come
from ``time.perf_counter()`` (one monotonic clock source end to end);
CPU times are ``os.times()`` children deltas.

``--engine-compare`` adds one cold run per fast mode on a fresh cache
(``NACHOS_ENGINE=fast`` — template replay — and ``NACHOS_ENGINE=
fast-vector`` — batch invocation replay) and pins the main cold/warm
runs to the reference engine.  Every mode's output must be
byte-identical — the engines are bit-exact by contract — and the
report gains an ``engine_compare`` section with per-mode wall and CPU
times plus ``fast_speedup_vs_reference`` /
``fast_vector_speedup_vs_reference``.  ``--min-vector-speedup FLOOR``
turns the latter into a CI gate: the run fails if the fast-vector
engine's cold-sweep speedup over the reference engine drops below the
committed floor.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Wall clock of ``nachos-repro all`` at the pre-cache seed commit,
#: measured on the same class of container this harness targets.  The
#: acceptance bar is warm-cache >= 3x faster than this serial baseline.
SEED_SERIAL_SECONDS = 200.9

_TIMING_LINE = re.compile(r"^\[(?:[a-z0-9_-]+: [0-9.]+s|cache: .*)\]$")

#: Per-experiment stage timing as printed by the CLI: ``[fig11: 3.2s]``.
_FIGURE_LINE = re.compile(r"^\[([a-z0-9_-]+): ([0-9.]+)s\]$")


def _child_env(cache_dir: Path, jobs: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["NACHOS_CACHE_DIR"] = str(cache_dir)
    env["NACHOS_JOBS"] = str(jobs)
    return env


def _strip_timing(output: str) -> str:
    """Drop per-experiment timing and cache-counter lines before diffing."""
    return "\n".join(
        line for line in output.splitlines() if not _TIMING_LINE.match(line)
    )


def _parse_figure_walls(output: str) -> dict:
    """Per-figure wall seconds from the child CLI's stage-timing lines.

    The CLI times every experiment stage with ``time.perf_counter()``
    and prints ``[<name>: <seconds>s]``; folding those into the report
    gives the ledger a per-figure breakdown without a second profiling
    run.  Returns ``{}`` for quick mode (no figure stages).
    """
    walls = {}
    for line in output.splitlines():
        match = _FIGURE_LINE.match(line)
        if match and match.group(1) != "cache":
            walls[match.group(1)] = float(match.group(2))
    return walls


def _timed_run(cmd, env) -> tuple:
    """Run ``cmd``, returning (wall seconds, child CPU seconds, stdout).

    CPU time is the reaped children's user+system delta from
    ``os.times()`` — with ``--jobs N`` it exceeds wall time, which is
    exactly why both are reported: wall is what a user waits for, CPU
    is what an engine actually costs.
    """
    t0 = os.times()
    start = time.perf_counter()
    proc = subprocess.run(
        cmd, env=env, cwd=REPO_ROOT, capture_output=True, text=True
    )
    elapsed = time.perf_counter() - start
    t1 = os.times()
    cpu = (t1.children_user - t0.children_user) + (
        t1.children_system - t0.children_system
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"child failed ({proc.returncode}): {' '.join(cmd)}")
    return elapsed, cpu, proc.stdout


def _cache_stats(cache_dir: Path) -> dict:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.runtime.cache import ResultCache

    stats = ResultCache(root=cache_dir).stats()
    return {
        "entries": stats["entries"],
        "bytes": stats["bytes"],
        "hits": stats["hits"],
        "misses": stats["misses"],
    }


def _smoke_sweep() -> None:
    """Child body for --quick: 2 regions x 3 systems through the sweep."""
    from repro.runtime.cache import get_cache
    from repro.runtime.executor import get_jobs
    from repro.runtime.sweep import sweep_comparisons
    from repro.workloads.micro import build_micro

    workloads = [build_micro("stream_triad"), build_micro("scatter")]
    comparisons = sweep_comparisons(workloads, invocations=8, jobs=get_jobs())
    for cmp in comparisons:
        for system, run in cmp.runs.items():
            print(
                f"{cmp.workload.name:>16} {system:<9} "
                f"cycles={run.sim.cycles} energy={run.sim.total_energy:.1f} "
                f"ok={run.correct}"
            )
    cache = get_cache()
    print(f"[cache: {cache.hits} hits, {cache.misses} misses]")


#: Absolute slack (seconds) added on top of the relative tolerance when
#: comparing warm times, so sub-second smoke sweeps don't flap on
#: scheduler noise while real hot-path regressions (which scale with the
#: sweep) still trip the relative bound.
WARM_ABS_SLACK_SECONDS = 0.75


def _check_warm(ref_path: str, report: dict, tolerance: float) -> int:
    """Compare this run's warm time against a committed reference."""
    ref = json.loads(Path(ref_path).read_text())
    if ref.get("mode") != report["mode"]:
        print(
            f"FAIL: reference {ref_path} is mode={ref.get('mode')!r}, "
            f"this run is mode={report['mode']!r}",
            file=sys.stderr,
        )
        return 1
    budget = ref["warm_seconds"] * (1.0 + tolerance) + WARM_ABS_SLACK_SECONDS
    verdict = "ok" if report["warm_seconds"] <= budget else "FAIL"
    print(
        f"[warm check: {report['warm_seconds']:.2f}s vs reference "
        f"{ref['warm_seconds']:.2f}s (budget {budget:.2f}s) -> {verdict}]"
    )
    if verdict == "FAIL":
        print(
            "FAIL: warm sweep regressed beyond the tolerance — the "
            "disabled-observability hot path got slower",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sweep")
    parser.add_argument("--jobs", type=int, default=1, help="sweep parallelism")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_sweep.json"))
    parser.add_argument(
        "--keep-cache", action="store_true", help="keep the bench cache dir"
    )
    parser.add_argument(
        "--check-warm-vs",
        default=None,
        metavar="REF_JSON",
        help="fail if warm_seconds regresses >10%% vs this reference report",
    )
    parser.add_argument(
        "--warm-tolerance",
        type=float,
        default=0.10,
        help="relative warm-time regression tolerance for --check-warm-vs",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="also run once under this NACHOS_CHAOS fault profile on a "
        "fresh cache; output must match the fault-free cold run",
    )
    parser.add_argument(
        "--engine-compare",
        action="store_true",
        help="also run cold under NACHOS_ENGINE=fast and fast-vector on "
        "fresh caches; outputs must match the reference cold run "
        "byte-for-byte",
    )
    parser.add_argument(
        "--min-vector-speedup",
        type=float,
        default=None,
        metavar="FLOOR",
        help="with --engine-compare: fail if the fast-vector cold-sweep "
        "speedup over the reference engine drops below FLOOR",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append this report to the perf-observatory run ledger "
        "(NDJSON; see docs/perf.md)",
    )
    parser.add_argument("--child-quick", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child_quick:
        _smoke_sweep()
        return 0

    cache_dir = Path(tempfile.mkdtemp(prefix="nachos-bench-cache-"))
    try:
        if args.quick:
            cmd = [sys.executable, str(Path(__file__).resolve()), "--child-quick"]
        else:
            cmd = [sys.executable, "-m", "repro.experiments.cli", "all"]
        env = _child_env(cache_dir, args.jobs)
        if args.engine_compare:
            # The comparison needs a known baseline: pin the main
            # cold/warm runs to the reference engine even if the caller's
            # environment says otherwise.
            env["NACHOS_ENGINE"] = "reference"

        print(f"[cold run: jobs={args.jobs}, cache={cache_dir}]")
        cold_s, cold_cpu, cold_out = _timed_run(cmd, env)
        print(f"[cold: {cold_s:.1f}s wall, {cold_cpu:.1f}s cpu]")

        print("[warm run: same cache]")
        warm_s, _warm_cpu, warm_out = _timed_run(cmd, env)
        print(f"[warm: {warm_s:.1f}s]")

        identical = _strip_timing(cold_out) == _strip_timing(warm_out)

        chaos_identical = None
        chaos_s = None
        if args.chaos:
            # Fresh cache so every task really executes (and really gets
            # crashed/hung/corrupted) rather than being cache-served.
            chaos_cache = Path(tempfile.mkdtemp(prefix="nachos-bench-chaos-"))
            try:
                chaos_env = _child_env(chaos_cache, args.jobs)
                chaos_env["NACHOS_CHAOS"] = args.chaos
                chaos_env.setdefault("NACHOS_TIMEOUT", "10")
                chaos_env.setdefault("NACHOS_MAX_RETRIES", "3")
                chaos_env.setdefault("NACHOS_BACKOFF_BASE", "0.05")
                print(f"[chaos run: NACHOS_CHAOS={args.chaos}]")
                chaos_s, _chaos_cpu, chaos_out = _timed_run(cmd, chaos_env)
                print(f"[chaos: {chaos_s:.1f}s]")
                chaos_identical = _strip_timing(chaos_out) == _strip_timing(cold_out)
            finally:
                shutil.rmtree(chaos_cache, ignore_errors=True)

        engine_runs = {}
        if args.engine_compare:
            for mode in ("fast", "fast-vector"):
                # Fresh cache per mode: sim keys differ by design, but a
                # shared cache would still serve compile/placement
                # entries, making the cold times incomparable.
                mode_cache = Path(tempfile.mkdtemp(prefix="nachos-bench-eng-"))
                try:
                    mode_env = _child_env(mode_cache, args.jobs)
                    mode_env["NACHOS_ENGINE"] = mode
                    print(
                        f"[engine-compare run: NACHOS_ENGINE={mode}, "
                        f"fresh cache]"
                    )
                    mode_s, mode_cpu, mode_out = _timed_run(cmd, mode_env)
                    print(
                        f"[{mode} cold: {mode_s:.1f}s wall, "
                        f"{mode_cpu:.1f}s cpu]"
                    )
                    engine_runs[mode] = (
                        mode_s,
                        mode_cpu,
                        _strip_timing(mode_out) == _strip_timing(cold_out),
                    )
                finally:
                    shutil.rmtree(mode_cache, ignore_errors=True)

        stats = _cache_stats(cache_dir)
        report = {
            "mode": "quick" if args.quick else "full",
            "jobs": args.jobs,
            "seed_serial_seconds": None if args.quick else SEED_SERIAL_SECONDS,
            "cold_seconds": round(cold_s, 2),
            "warm_seconds": round(warm_s, 2),
            "warm_speedup_vs_cold": round(cold_s / warm_s, 2),
            "warm_speedup_vs_seed": (
                None if args.quick else round(SEED_SERIAL_SECONDS / warm_s, 2)
            ),
            "cold_speedup_vs_seed": (
                None if args.quick else round(SEED_SERIAL_SECONDS / cold_s, 2)
            ),
            "outputs_identical_cold_vs_warm": identical,
            "cache": stats,
        }
        figure_walls = _parse_figure_walls(cold_out)
        if figure_walls:
            report["per_figure_wall_seconds"] = figure_walls
        if args.chaos:
            report["chaos_spec"] = args.chaos
            report["chaos_seconds"] = round(chaos_s, 2)
            report["outputs_identical_chaos_vs_cold"] = chaos_identical
        if args.engine_compare:
            fast_s, fast_cpu, fast_ok = engine_runs["fast"]
            vec_s, vec_cpu, vec_ok = engine_runs["fast-vector"]
            report["engine_compare"] = {
                "reference_cold_seconds": round(cold_s, 2),
                "reference_cpu_seconds": round(cold_cpu, 2),
                "fast_cold_seconds": round(fast_s, 2),
                "fast_cpu_seconds": round(fast_cpu, 2),
                "fast_speedup_vs_reference": round(cold_s / fast_s, 3),
                "fast_vector_cold_seconds": round(vec_s, 2),
                "fast_vector_cpu_seconds": round(vec_cpu, 2),
                "fast_vector_speedup_vs_reference": round(cold_s / vec_s, 3),
                "outputs_identical": fast_ok and vec_ok,
            }
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))
        if args.ledger:
            # _cache_stats already put src/ on sys.path for this import.
            from repro.obs import PerfLedger, record_from_bench

            ledger = PerfLedger(args.ledger)
            fp = ledger.append(record_from_bench(report))
            print(f"[ledger {ledger.path}: appended bench record {fp}]")
        if not identical:
            print("FAIL: warm output differs from cold output", file=sys.stderr)
            return 1
        if args.chaos and not chaos_identical:
            print(
                "FAIL: chaos-run output differs from the fault-free cold run",
                file=sys.stderr,
            )
            return 1
        for mode, (mode_s, _mode_cpu, mode_ok) in engine_runs.items():
            if not mode_ok:
                print(
                    f"FAIL: {mode}-engine output differs from the "
                    f"reference cold run — the engines are bit-exact "
                    f"by contract",
                    file=sys.stderr,
                )
                return 1
            if mode_s >= cold_s:
                print(
                    f"[WARNING: {mode} engine not faster this run "
                    f"({mode_s:.1f}s vs {cold_s:.1f}s reference)]",
                    file=sys.stderr,
                )
        if args.engine_compare and args.min_vector_speedup is not None:
            speedup = report["engine_compare"][
                "fast_vector_speedup_vs_reference"
            ]
            verdict = "ok" if speedup >= args.min_vector_speedup else "FAIL"
            print(
                f"[vector-speedup gate: {speedup:.2f}x vs floor "
                f"{args.min_vector_speedup:.2f}x -> {verdict}]"
            )
            if verdict == "FAIL":
                print(
                    "FAIL: fast-vector cold-sweep speedup regressed "
                    "below the committed floor",
                    file=sys.stderr,
                )
                return 1
        if not args.quick and SEED_SERIAL_SECONDS / warm_s < 3.0:
            print("FAIL: warm sweep is not >= 3x the seed baseline", file=sys.stderr)
            return 1
        if args.check_warm_vs:
            return _check_warm(args.check_warm_vs, report, args.warm_tolerance)
        return 0
    finally:
        if args.keep_cache:
            print(f"[cache kept at {cache_dir}]")
        else:
            shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
