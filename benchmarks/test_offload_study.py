"""Bench: the end-to-end offload study (hybrid executable bottom line)."""

from conftest import run_once

from repro.experiments import offload_study


def test_offload_study(benchmark):
    result = run_once(benchmark, offload_study.run, invocations=10, top_k=3)
    print()
    print(offload_study.render(result))

    # Every benchmark offloads at least one path on the EDP metric —
    # the CGRA's per-op energy sits an order of magnitude below the
    # OOO's per-instruction overhead.
    assert result.all_offload_something
    by_name = {r.name: r for r in result.rows}
    # Memory-parallel regions also gain wall-clock (the OOO can't
    # sustain their MLP through a 32-entry LSQ window).
    assert by_name["bzip2"].program_speedup > 1.0
    # Program energy drops materially once the hot paths move over.
    assert result.mean_program_energy_ratio < 0.8
    for r in result.rows:
        assert 0.0 < r.program_energy_ratio <= 1.001, r.name
