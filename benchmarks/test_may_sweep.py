"""Bench: the causal %MAY sweep (Figure 10's correlation, made causal)."""

from conftest import run_once

from repro.experiments import may_sweep


def test_may_sweep(benchmark):
    result = run_once(benchmark, may_sweep.run, invocations=16)
    print()
    print(may_sweep.render(result))

    assert result.all_correct
    points = result.points
    # %MAY is monotone in the opaque fraction by construction.
    mays = [p.pct_may_pairs for p in points]
    assert mays == sorted(mays)
    # NACHOS-SW: no MAYs => parity with (or better than) the LSQ;
    # all-MAY => dramatic serialization.
    assert points[0].sw_slowdown_pct < 5.0
    assert points[-1].sw_slowdown_pct > 50.0
    # NACHOS stays within a whisker of the LSQ at *every* point — the
    # pay-as-you-go claim in one line.
    assert all(abs(p.nachos_slowdown_pct) < 10.0 for p in points)
    # And its check cost scales with the uncertainty, not the worst case.
    assert points[0].may_mdes == 0
    assert points[-1].may_mdes > 50
