"""Bench: regenerate Figure 15 (NACHOS vs OPT-LSQ performance)."""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments import fig15


def test_fig15(benchmark):
    result = run_once(benchmark, fig15.run, invocations=BENCH_INVOCATIONS)
    print()
    print(fig15.render(result))

    assert result.all_correct
    # Paper: NACHOS tracks the LSQ (19/27 within 2.5%) — no blowups.
    assert result.within_2_5 >= 8
    assert max(r.nachos_pct for r in result.rows) < 15.0
    # Paper: NACHOS recovers the software-only slowdowns by checking
    # MAY aliases at runtime.
    improved = set(result.improved_over_sw)
    for name in ("soplex", "povray", "fft-2d", "bzip2"):
        assert name in improved, name
    # The comparator actually ran where MAY edges exist.
    by_name = {r.name: r for r in result.rows}
    assert by_name["bzip2"].comparator_checks > 100
    assert by_name["gzip"].comparator_checks == 0
