"""Bench: regenerate Figure 17 (NACHOS energy breakdown & savings)."""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments import fig17


def test_fig17(benchmark):
    result = run_once(benchmark, fig17.run, invocations=BENCH_INVOCATIONS)
    print()
    print(fig17.render(result))

    # Paper: MDEs impose no overhead in 15/27 workloads and a small
    # average share (~6% there; lower here, see EXPERIMENTS.md).
    assert len(result.zero_overhead_workloads) >= 10
    assert result.mean_mde_pct < 8.0
    # Paper: NACHOS saves net energy vs the LSQ in (almost) every
    # workload; compute-only benchmarks save nothing.
    by_name = {r.name: r for r in result.rows}
    assert result.mean_saving_pct > 3.0
    assert by_name["blackscholes"].saving_vs_lsq_pct == 0.0
    memory_heavy = [r for r in result.rows if r.pct_mem_ops > 20]
    assert all(r.saving_vs_lsq_pct > 0 for r in memory_heavy)
    # The MAY-heavy workloads pay the most MDE energy (paper: povray,
    # bzip2, fft-2d highest).
    top_mde = max(result.rows, key=lambda r: r.pct_mde)
    assert top_mde.name in {"bzip2", "povray", "fft-2d", "histogram"}
