"""Bench: regenerate Figure 6 (stage-1 MAY/MUST, top-5 paths)."""

from conftest import run_once

from repro.experiments import fig06


def test_fig06(benchmark):
    result = run_once(benchmark, fig06.run, top_k=5)
    print()
    print(fig06.render(result))

    assert len(result.rows) == 27
    # Paper: 7 of 27 workloads need no further analysis after stage 1.
    assert result.workloads_fully_resolved >= 6
    # Paper: in most unresolved workloads MAY dominates MUST.
    unresolved = [r for r in result.rows if r.pct_may > 0]
    assert sum(1 for r in unresolved if r.pct_may > r.pct_must) > len(unresolved) // 2
    # The stage-4 benchmarks are full of stage-1 MAYs.
    by_name = {r.name: r for r in result.rows}
    for name in ("equake", "lbm"):
        assert by_name[name].pct_may > 10.0
