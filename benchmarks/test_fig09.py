"""Bench: regenerate Figure 9 (stage-3 redundancy elimination)."""

from conftest import run_once

from repro.experiments import fig09


def test_fig09(benchmark):
    result = run_once(benchmark, fig09.run, top_k=5)
    print()
    print(fig09.render(result))

    # Stage 3 + the stage-2 label refinement remove a sizable share of
    # the stage-1 relations (paper: 40--84% per workload, ~68% mean; our
    # regions keep more store-to-store ambiguity, see EXPERIMENTS.md).
    assert result.mean_removed_pct > 25.0
    # Workloads with relations always retain fewer than stage 1 found,
    # and MAY dominates what remains (it is what NACHOS must check).
    with_relations = [r for r in result.rows if r.retained_pct > 0]
    assert with_relations
    may_dominant = [r for r in with_relations if r.retained_may_pct >= r.retained_must_pct]
    assert len(may_dominant) > len(with_relations) // 2
