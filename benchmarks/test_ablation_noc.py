"""Ablation: dynamic link contention on the operand network.

The paper's CGRA uses a *static* (compiler-scheduled, conflict-free)
mesh; our default matches.  This bench turns dynamic single-operand-per-
link-per-cycle contention on and measures what a dynamically-arbitrated
network would cost — and checks the system comparison (the point of the
study) is insensitive to the choice.
"""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments.common import run_system
from repro.experiments.regions import workload_for
from repro.sim.config import EngineConfig
from repro.workloads import get_spec

PICKS = ("equake", "soplex", "histogram")


def _sweep():
    out = {}
    for name in PICKS:
        workload = workload_for(get_spec(name))
        per_mode = {}
        for contention in (False, True):
            cfg = EngineConfig(model_link_contention=contention)
            runs = {
                system: run_system(
                    workload, system, invocations=BENCH_INVOCATIONS,
                    engine_config=cfg, check=False,
                ).sim.cycles
                for system in ("opt-lsq", "nachos-sw", "nachos")
            }
            per_mode[contention] = runs
        out[name] = per_mode
    return out


def test_noc_contention_ablation(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    print(f"{'benchmark':>12} {'mode':>10} {'opt-lsq':>9} {'nachos-sw':>10} {'nachos':>9}")
    for name, modes in results.items():
        for contention, runs in modes.items():
            mode = "dynamic" if contention else "static"
            print(f"{name:>12} {mode:>10} {runs['opt-lsq']:>9} "
                  f"{runs['nachos-sw']:>10} {runs['nachos']:>9}")

    for name, modes in results.items():
        for system in ("opt-lsq", "nachos-sw", "nachos"):
            # Contention only ever adds cycles.
            assert modes[True][system] >= modes[False][system], (name, system)
        # The comparison's *sign* is network-model invariant: whoever is
        # slower stays slower.
        for contention in (False, True):
            runs = modes[contention]
            sw_slower = runs["nachos-sw"] >= runs["nachos"]
            assert sw_slower, (name, contention)
