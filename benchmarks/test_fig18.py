"""Bench: regenerate Figure 18 (OPT-LSQ energy + bloom behaviour)."""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments import fig18


def test_fig18(benchmark):
    result = run_once(benchmark, fig18.run, invocations=BENCH_INVOCATIONS)
    print()
    print(fig18.render(result))

    # The LSQ is a first-order energy consumer on memory-heavy regions
    # (paper: 27% mean of accelerator+L1; lower here, see EXPERIMENTS.md).
    assert result.mean_lsq_pct > 5.0
    memory_heavy = [r for r in result.rows if r.pct_mem_ops > 20]
    assert all(r.lsq_pct > 8.0 for r in memory_heavy)
    # Paper: nine benchmarks have perfect (zero-hit) bloom behaviour.
    table = result.bloom_table()
    assert len(table["0"]) >= 6
    for name in ("gzip", "blackscholes", "ferret"):
        assert name in table["0"]
    # Store-heavy workloads populate the 20%+ class.
    assert len(table["20+"]) >= 3
