"""Bench: regenerate Figure 14 (MAY-alias fan-in distribution)."""

from conftest import run_once

from repro.experiments import fig14


def test_fig14(benchmark):
    result = run_once(benchmark, fig14.run)
    print()
    print(fig14.render(result))

    # Paper: 9 workloads have only independent memory operations.
    assert len(result.no_may_workloads) >= 9
    # Paper: bzip2 / sar-pfa host the high fan-ins driving NACHOS's
    # comparator contention; bzip2's peak is ~50 parents.
    assert "bzip2" in result.high_fan_in_workloads
    assert "sar-pfa-interp1" in result.high_fan_in_workloads
    by_name = {r.name: r for r in result.rows}
    assert by_name["bzip2"].max_fan_in >= 20
