"""Bench: regenerate Figure 11 (NACHOS-SW vs OPT-LSQ performance)."""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments import fig11


def test_fig11(benchmark):
    result = run_once(benchmark, fig11.run, invocations=BENCH_INVOCATIONS)
    print()
    print(fig11.render(result))

    assert result.all_correct
    by_name = {r.name: r for r in result.rows}
    # Paper: a MAY-serialized group slows down 18--100%.
    for name in ("soplex", "povray", "fft-2d"):
        assert by_name[name].slowdown_pct > 10.0, name
    # Paper: several workloads speed up (LSQ load-to-use on hits).
    assert len(result.speedup_group) >= 2
    # Paper: most workloads stay close to the LSQ.
    close = sum(1 for r in result.rows if abs(r.slowdown_pct) <= 10.0)
    assert close >= 15
