"""Bench: seed-variance of the headline performance numbers."""

from conftest import run_once

from repro.experiments import variance


def test_variance(benchmark):
    result = run_once(benchmark, variance.run, invocations=12)
    print()
    print(variance.render(result))

    assert result.all_correct
    by_name = {r.name: r for r in result.rows}
    # The MAY-serialized conclusions survive every seed.
    for name in ("soplex", "histogram", "bzip2"):
        assert all(x > 10.0 for x in by_name[name].sw_samples), name
    # The proven-safe benchmark never slows under any seed.
    assert all(x < 4.0 for x in by_name["equake"].sw_samples)
    # NACHOS stays in the LSQ's class across all seeds and benches.
    for r in result.rows:
        assert all(abs(x) < 12.0 for x in r.nachos_samples), r.name
