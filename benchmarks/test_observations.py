"""Bench: Section IV's workload observations, measured."""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments import observations


def test_observations(benchmark):
    result = run_once(benchmark, observations.run, invocations=BENCH_INVOCATIONS)
    print()
    print(observations.render(result))

    # Observation 1: a notable fraction of apps promote >15% of their
    # memory ops to the scratchpad (paper: 12 of 28 promote >20%).
    assert len(result.heavy_promoters) >= 10
    # Observation 2: heap/global accesses rarely conflict — the mean
    # dynamic conflict density is tiny, which is why "a large % of LSQ
    # checks are for independent operations".
    assert result.mean_conflict_density < 0.15
    # Observation 3: the suite spans the range that breaks fixed-size
    # LSQs (paper: MLP 2-128, memory ops 0-38% of the region).
    lo, hi = result.mlp_range
    assert lo <= 4 and hi >= 32
    mlo, mhi = result.mem_pct_range
    assert mlo == 0.0 and mhi > 30.0
