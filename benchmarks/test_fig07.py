"""Bench: regenerate Figure 7 (stage-2 inter-procedural refinement)."""

from conftest import run_once

from repro.experiments import fig07


def test_fig07(benchmark):
    result = run_once(benchmark, fig07.run, top_k=5)
    print()
    print(fig07.render(result))

    # Paper: ~10 workloads refined by stage 2.
    assert len(result.refined_workloads) >= 5
    by_name = {r.name: r for r in result.rows}
    # The provenance-heavy workloads convert a large share of MAYs
    # (paper: 20--80% in the five workloads where stage 2 shines).
    strong = [
        r for r in result.rows
        if r.converted_pct >= 20.0
    ]
    assert len(strong) >= 4
    assert by_name["fluidanimate"].converted_pct > 50.0
