"""Ablation: cache size vs the cost of MAY serialization.

NACHOS-SW's slowdown comes from serializing memory operations that then
*miss*: a serialized chain of L2 hits costs ~25 cycles per link, a chain
of L1 hits only ~3.  Sweeping the L1 size on a MAY-heavy streaming
benchmark should therefore modulate the NACHOS-SW gap while leaving
NACHOS (which overlaps the misses) comparatively flat.
"""

from conftest import BENCH_INVOCATIONS, run_once

from repro.experiments.common import run_system
from repro.experiments.regions import workload_for
from repro.memory.config import CacheConfig, HierarchyConfig
from repro.workloads import get_spec

L1_SIZES = (4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024)


def _sweep():
    workload = workload_for(get_spec("soplex"))
    out = {}
    for size in L1_SIZES:
        cfg = HierarchyConfig(l1=CacheConfig("L1", size, 4, latency=3))
        runs = {
            system: run_system(
                workload, system, invocations=BENCH_INVOCATIONS,
                hierarchy_config=cfg, check=False,
            ).sim.cycles
            for system in ("opt-lsq", "nachos-sw", "nachos")
        }
        out[size] = runs
    return out


def test_cache_size_ablation(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    print(f"{'L1 size':>9} {'opt-lsq':>9} {'nachos-sw':>10} {'nachos':>9} {'SW gap %':>9}")
    for size, runs in results.items():
        gap = 100.0 * (runs["nachos-sw"] - runs["opt-lsq"]) / runs["opt-lsq"]
        print(f"{size//1024:>7}KB {runs['opt-lsq']:>9} {runs['nachos-sw']:>10} "
              f"{runs['nachos']:>9} {gap:>+8.1f}")

    # Serialization hurts at every size...
    for size, runs in results.items():
        assert runs["nachos-sw"] >= runs["opt-lsq"], size
        # ...but NACHOS stays within a whisker of the LSQ.
        assert runs["nachos"] <= runs["opt-lsq"] * 1.1, size
    # Bigger caches shrink everyone's cycles.
    sizes = sorted(results)
    assert results[sizes[-1]]["opt-lsq"] <= results[sizes[0]]["opt-lsq"]
