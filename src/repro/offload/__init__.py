"""The host side of the offload system (paper Figure 3, left half).

The accelerator framework is a *hybrid*: NEEDLE-extracted paths run on
the CGRA, everything else stays on the 4-way OOO host, and memory fences
order the two.  This package models that system view:

* :class:`~repro.offload.host.HostCoreModel` — a first-order cost model
  of the paper's host (2 GHz, 4-way OOO, 96-entry ROB, 32-entry LSQ)
  executing a region's work in software,
* :func:`~repro.offload.planner.plan_offload` — the offload decision per
  path (accelerator + fence cost vs host cost) and the Amdahl-style
  end-to-end program speedup.
"""

from repro.offload.host import HostCoreModel
from repro.offload.planner import (
    OffloadPlan,
    PathDecision,
    plan_offload,
)

__all__ = ["HostCoreModel", "OffloadPlan", "PathDecision", "plan_offload"]
