"""Offload planning: which paths go to the CGRA, and what it buys.

For each extracted hot path, compare the measured accelerator cost
(cycles and energy per invocation under a chosen disambiguation system,
plus the memory-fence overhead that orders the offload against the
host) with the host model's estimate.  Accelerators are adopted for
efficiency, so the decision metric is **energy-delay product**: a path
offloads when the accelerator's EDP beats the host's.  The end-to-end
program effect follows Amdahl over the profile weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.offload.host import HostCoreModel


@dataclass
class PathDecision:
    """The offload verdict for one path."""

    path: str
    weight: float                # fraction of program time on this path
    host_cycles: float           # per invocation, on the OOO
    accel_cycles: float          # per invocation, on the CGRA (+ fences)
    host_energy: float           # fJ per invocation
    accel_energy: float
    offload: bool

    @property
    def speedup(self) -> float:
        """>1 means the accelerator is also faster."""
        if self.accel_cycles <= 0:
            return float("inf")
        return self.host_cycles / self.accel_cycles

    @property
    def energy_ratio(self) -> float:
        """accel / host energy; <1 means the accelerator is cheaper."""
        if self.host_energy <= 0:
            return float("inf")
        return self.accel_energy / self.host_energy

    @property
    def edp_gain(self) -> float:
        """host EDP / accel EDP; >1 favors offloading."""
        accel_edp = self.accel_cycles * self.accel_energy
        if accel_edp <= 0:
            return float("inf")
        return (self.host_cycles * self.host_energy) / accel_edp


@dataclass
class OffloadPlan:
    """All decisions plus the end-to-end program effect."""

    decisions: List[PathDecision] = field(default_factory=list)

    @property
    def offloaded(self) -> List[PathDecision]:
        return [d for d in self.decisions if d.offload]

    @property
    def covered_weight(self) -> float:
        return sum(d.weight for d in self.offloaded)

    def program_speedup(self) -> float:
        """Amdahl over path weights; unoffloaded time is unchanged."""
        new_time = 0.0
        for d in self.decisions:
            if d.offload:
                new_time += d.weight / d.speedup
            else:
                new_time += d.weight
        residue = max(0.0, 1.0 - sum(d.weight for d in self.decisions))
        new_time += residue
        if new_time <= 0:
            return float("inf")
        return 1.0 / new_time

    def program_energy_ratio(self) -> float:
        """Program energy after offloading / before (lower is better).

        Weighted by time share; the residue's energy is unchanged.
        """
        total = 0.0
        for d in self.decisions:
            total += d.weight * (d.energy_ratio if d.offload else 1.0)
        residue = max(0.0, 1.0 - sum(d.weight for d in self.decisions))
        return total + residue


def plan_offload(
    paths: Sequence,
    accel_cycles: Dict[str, float],
    accel_energy: Dict[str, float],
    host: Optional[HostCoreModel] = None,
    fence_cycles: float = 30.0,
    miss_rate: Optional[float] = None,
) -> OffloadPlan:
    """Decide offload per path on energy-delay product.

    ``paths`` are objects with ``name``, ``weight``, and ``graph``
    attributes (e.g. :class:`repro.programs.extract.AccelRegion` or
    :class:`repro.workloads.generator.Workload`); ``accel_cycles`` /
    ``accel_energy`` map each path's name to its measured per-invocation
    cost on the accelerator.
    """
    host = host or HostCoreModel.paper_default()
    plan = OffloadPlan()
    for path in paths:
        name = path.name
        decision = PathDecision(
            path=name,
            weight=path.weight,
            host_cycles=host.invocation_cycles(path.graph, miss_rate=miss_rate),
            accel_cycles=accel_cycles[name] + fence_cycles,
            host_energy=host.invocation_energy(path.graph),
            accel_energy=accel_energy[name],
            offload=False,
        )
        decision.offload = decision.edp_gain > 1.0
        plan.decisions.append(decision)
    return plan
