"""A first-order cost model of the host OOO core (paper Figure 3).

The paper's host is a 2 GHz 4-way out-of-order core with a 96-entry ROB
and a 32-entry LSQ, sharing the L2 with the accelerator.  Simulating it
in detail (macsim) is out of scope — the evaluation's effects all live
inside the accelerated region — but the *offload decision* needs a host
cost to compare against, so we model the classic first-order equation::

    cycles = ops / issue_width            (compute throughput)
           + fp_ops * fp_penalty          (long-latency units)
           + mem_ops * l1_time            (pipelined L1 hits)
           + misses * miss_penalty * (1 - mlp_overlap)

with the overlap factor capturing the OOO window's ability to hide
misses under other work (a 96-entry ROB hides much, not all).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import DFGraph
from repro.ir.opcodes import Opcode, is_fp


@dataclass(frozen=True)
class HostCoreModel:
    """First-order OOO-core cost model."""

    #: Effective sustained IPC on these kernels (a 4-wide OOO rarely
    #: sustains its width on memory-bound loop bodies; ~1.3 is typical).
    issue_width: float = 1.3
    fp_penalty: float = 2.0       # extra cycles per FP op (avg)
    l1_time: float = 1.0          # pipelined hit cost per memory op
    miss_penalty: float = 25.0    # LLC-resident data (L2 hit) per miss
    mlp_overlap: float = 0.6      # fraction of miss cycles the ROB hides
    miss_rate: float = 0.125      # default: one miss per 8 touches
    #: Energy per retired instruction on the OOO (fetch/rename/ROB/
    #: bypass overheads; McPAT-scale ~20 pJ) — the gap accelerators live
    #: in, against the CGRA's ~0.5-6 pJ per operation.
    energy_per_op_fj: float = 20000.0

    def invocation_cycles(self, graph: DFGraph, miss_rate: float | None = None) -> float:
        """Estimated host cycles for one invocation of *graph*'s work."""
        mr = self.miss_rate if miss_rate is None else miss_rate
        n_ops = 0
        n_fp = 0
        n_mem = 0
        for op in graph.ops:
            if op.opcode in (Opcode.INPUT, Opcode.CONST):
                continue
            n_ops += 1
            if is_fp(op.opcode):
                n_fp += 1
            if op.is_memory:
                n_mem += 1
        cycles = n_ops / self.issue_width
        cycles += n_fp * self.fp_penalty
        cycles += n_mem * self.l1_time
        cycles += n_mem * mr * self.miss_penalty * (1.0 - self.mlp_overlap)
        return cycles

    def invocation_energy(self, graph: DFGraph) -> float:
        """Estimated host energy (fJ) for one invocation of the work."""
        n_ops = sum(
            1
            for op in graph.ops
            if op.opcode not in (Opcode.INPUT, Opcode.CONST)
        )
        return n_ops * self.energy_per_op_fj

    @classmethod
    def paper_default(cls) -> "HostCoreModel":
        return cls()
