"""Measured workload characterization (beyond the static Table II).

Computes, from a workload's graph and trace, the quantities the paper's
Section IV observations rest on:

* **measured MLP** — the widest antichain of memory operations in the
  data+MUST dependence order (how many memory ops *could* be in flight),
* **footprint** — distinct bytes/lines touched over a trace (what decides
  L1 residency and the bloom filter's population),
* **conflict density** — how often two disambiguation-relevant ops really
  overlap at runtime (what NACHOS's checks will find),
* **reuse distances** — per-line gaps between touches (cache behaviour).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.compiler.labels import pair_kind
from repro.ir.graph import DFGraph, MDEKind
from repro.workloads.generator import Workload


@dataclass
class WorkloadProfile:
    """Measured characteristics of one workload over one trace."""

    name: str
    n_ops: int
    n_mem: int
    measured_mlp: int
    footprint_bytes: int
    footprint_lines: int
    conflict_pairs: int          # dynamic (pair, invocation) conflicts
    relevant_pairs: int          # ST-ST/ST-LD/LD-ST pairs x invocations
    reuse_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def conflict_density(self) -> float:
        if not self.relevant_pairs:
            return 0.0
        return self.conflict_pairs / self.relevant_pairs


def measured_mlp(graph: DFGraph) -> int:
    """Widest layer of memory ops under data + MUST-MDE ordering.

    Computes each memory op's depth (longest ordered chain of *memory
    ops* leading to it); ops sharing a depth could issue concurrently,
    so the largest depth-class size is the achievable MLP.
    """
    mem_ids = [op.op_id for op in graph.memory_ops]
    if not mem_ids:
        return 0
    succ: Dict[int, List[int]] = {op.op_id: [] for op in graph.ops}
    for op in graph.ops:
        for src in op.inputs:
            succ[src].append(op.op_id)
    for edge in graph.mdes:
        if edge.kind in (MDEKind.ORDER, MDEKind.FORWARD):
            succ[edge.src].append(edge.dst)

    mem_set = set(mem_ids)
    depth: Dict[int, int] = {}
    for op in graph.ops:  # program order is topological
        oid = op.op_id
        base = depth.get(oid, 0)
        bump = 1 if oid in mem_set else 0
        for nxt in succ[oid]:
            depth[nxt] = max(depth.get(nxt, 0), base + bump)
    classes: Dict[int, int] = defaultdict(int)
    for oid in mem_ids:
        classes[depth.get(oid, 0)] += 1
    return max(classes.values())


def _bucket(distance: int) -> str:
    if distance == 0:
        return "same-invocation"
    if distance <= 2:
        return "<=2"
    if distance <= 8:
        return "<=8"
    if distance <= 32:
        return "<=32"
    return ">32"


def profile_workload(
    workload: Workload, invocations: int = 32, line_bytes: int = 64
) -> WorkloadProfile:
    """Run the trace symbolically and measure the dynamic quantities."""
    graph = workload.graph
    envs = workload.invocations(invocations)
    mem = graph.memory_ops

    touched_bytes = set()
    last_touch: Dict[int, int] = {}
    reuse: Dict[str, int] = defaultdict(int)
    conflicts = 0
    relevant = 0

    for inv, env in enumerate(envs):
        accesses: List[Tuple[int, int, bool]] = []
        for op in mem:
            addr = op.addr.evaluate(env)
            width = op.addr.width
            accesses.append((addr, width, op.is_store))
            for k in range(width):
                touched_bytes.add(addr + k)
            line = addr // line_bytes
            if line in last_touch:
                reuse[_bucket(inv - last_touch[line])] += 1
            last_touch[line] = inv
        for i, older in enumerate(mem):
            a_addr, a_w, _ = accesses[i]
            for j in range(i + 1, len(mem)):
                younger = mem[j]
                if pair_kind(older, younger) is None:
                    continue
                relevant += 1
                b_addr, b_w, _ = accesses[j]
                if a_addr < b_addr + b_w and b_addr < a_addr + a_w:
                    conflicts += 1

    lines = {byte // line_bytes for byte in touched_bytes}
    return WorkloadProfile(
        name=workload.name,
        n_ops=len(graph),
        n_mem=len(mem),
        measured_mlp=measured_mlp(graph),
        footprint_bytes=len(touched_bytes),
        footprint_lines=len(lines),
        conflict_pairs=conflicts,
        relevant_pairs=relevant,
        reuse_histogram=dict(reuse),
    )
