"""The 27 benchmarks of the study (Table II + per-benchmark narrative).

Every spec transcribes its Table II row (ops, memory ops, MLP, dependence
counts, scratchpad %) and encodes the paper's qualitative story through
the mechanism mix:

* stage-1-perfect workloads (gzip, mcf x2, crafty, sjeng, and the
  memory-free blackscholes/ferret) use only named arrays,
* stage-2 workloads (parser, gcc, h264ref, fluidanimate, sar-*,
  freqmine) lean on provenance-resolvable pointer parameters,
* stage-4 workloads (equake, lbm, namd, bodytrack, dwt53) lean on
  multidimensional subscripts,
* the NACHOS-SW slowdown group (art, bzip2, soplex, povray, fft-2d,
  histogram, sar-*, freqmine) keeps opaque pointers or data-dependent
  indices that no static stage can resolve,
* the NACHOS fan-in group (bzip2, sar-pfa-interp1) concentrates MAY
  parents on data-dependent store bursts.
"""

from __future__ import annotations

import zlib
from typing import Dict, List

from repro.ir.address import AddressExpr, AffineExpr, MemObject, MemorySpace, PointerParam
from repro.programs.model import Function, HotPath, Program
from repro.workloads.generator import PATH_WEIGHTS, Workload, build_workload
from repro.workloads.spec import BenchmarkSpec, Mechanism

M = Mechanism


def _mix(**weights: float) -> Dict[Mechanism, float]:
    return {Mechanism(k): v for k, v in weights.items()}


SUITE: List[BenchmarkSpec] = [
    # ----------------------------- SPEC2000 -----------------------------
    BenchmarkSpec(
        name="gzip", suite="spec2000", n_ops=64, n_mem=4, mlp=4,
        pct_local=21, store_frac=0.0,
        mechanism_mix=_mix(distinct=1.0),
        notes="stage-1 perfect; loads only",
    ),
    BenchmarkSpec(
        name="art", suite="spec2000", n_ops=100, n_mem=36, mlp=4,
        dep_st_st=6, dep_st_ld=6, dep_ld_st=10, pct_local=0,
        store_frac=0.30, fp_frac=0.35,
        mechanism_mix=_mix(param_opaque=0.5, distinct=0.3, strided=0.2),
        notes="MAY-heavy; NACHOS-SW slowdown group",
        stride=64,
    ),
    BenchmarkSpec(
        name="181.mcf", suite="spec2000", n_ops=29, n_mem=2, mlp=2,
        pct_local=5, store_frac=0.0,
        mechanism_mix=_mix(distinct=1.0),
        notes="stage-1 perfect; loads only",
    ),
    BenchmarkSpec(
        name="equake", suite="spec2000", n_ops=559, n_mem=215, mlp=16,
        dep_ld_st=12, pct_local=2, store_frac=0.25, fp_frac=0.5,
        mechanism_mix=_mix(multidim=0.8, strided=0.2),
        notes="stage-4 (polyhedral); memory dominated; speedup vs LSQ",
    ),
    BenchmarkSpec(
        name="crafty", suite="spec2000", n_ops=72, n_mem=7, mlp=8,
        pct_local=40, store_frac=0.0,
        mechanism_mix=_mix(distinct=0.6, strided=0.4),
        notes="stage-1 perfect; loads only",
    ),
    BenchmarkSpec(
        name="parser", suite="spec2000", n_ops=81, n_mem=12, mlp=4,
        dep_ld_st=2, pct_local=34, store_frac=0.25,
        mechanism_mix=_mix(param_resolvable=0.5, param_opaque=0.3, distinct=0.2),
        notes="stage-2 converts 29% of MAY (global Table_connector)",
    ),
    # ----------------------------- SPEC2006 -----------------------------
    BenchmarkSpec(
        name="bzip2", suite="spec2006", n_ops=501, n_mem=110, mlp=128,
        dep_st_st=3, dep_ld_st=3, pct_local=27, store_frac=0.45,
        mechanism_mix=_mix(strided=0.86, indirect=0.1, distinct=0.04),
        indirect_range=4096, indirect_on_shared=True, chain_length=1,
        notes="high MAY fan-in (3 ops with ~50 parents); NACHOS ~8% slow",
        stride=64,
    ),
    BenchmarkSpec(
        name="gcc", suite="spec2006", n_ops=47, n_mem=2, mlp=2,
        dep_st_st=3, dep_st_ld=4, pct_local=26, store_frac=0.5,
        mechanism_mix=_mix(param_resolvable=1.0),
        notes="stage-2 effective",
    ),
    BenchmarkSpec(
        name="429.mcf", suite="spec2006", n_ops=30, n_mem=3, mlp=4,
        pct_local=24, store_frac=0.0,
        mechanism_mix=_mix(distinct=1.0),
        notes="stage-1 perfect",
    ),
    BenchmarkSpec(
        name="namd", suite="spec2006", n_ops=527, n_mem=100, mlp=16,
        dep_st_st=6, dep_st_ld=6, dep_ld_st=30, pct_local=41,
        store_frac=0.30, fp_frac=0.6,
        mechanism_mix=_mix(multidim=0.85, distinct=0.15),
        notes="stage-4; speedup vs LSQ",
    ),
    BenchmarkSpec(
        name="soplex", suite="spec2006", n_ops=140, n_mem=32, mlp=4,
        dep_ld_st=8, pct_local=19, store_frac=0.25, fp_frac=0.3,
        mechanism_mix=_mix(param_opaque=0.6, distinct=0.4),
        notes="MAY-heavy; NACHOS-SW slowdown group; 85x scope blowup",
        stride=64,
    ),
    BenchmarkSpec(
        name="povray", suite="spec2006", n_ops=223, n_mem=74, mlp=32,
        dep_st_st=4, dep_st_ld=21, dep_ld_st=24, pct_local=95,
        store_frac=0.30, fp_frac=0.42, chain_length=3,
        mechanism_mix=_mix(param_opaque=0.5, indirect=0.2, strided=0.3),
        indirect_range=2048,
        notes="42% FP critical path serialized by ~30 MAYs; 100x scope blowup",
        stride=64,
    ),
    BenchmarkSpec(
        name="sjeng", suite="spec2006", n_ops=99, n_mem=11, mlp=8,
        pct_local=33, store_frac=0.10,
        mechanism_mix=_mix(strided=0.8, distinct=0.2),
        notes="stage-1 perfect despite a store (54.5% energy saving)",
    ),
    BenchmarkSpec(
        name="464.h264ref", suite="spec2006", n_ops=224, n_mem=42, mlp=8,
        dep_ld_st=5, pct_local=27, store_frac=0.25,
        mechanism_mix=_mix(param_resolvable=0.65, strided=0.3, param_opaque=0.05),
        notes="stage-2; cache hits; LSQ load-to-use penalty => speedup",
    ),
    BenchmarkSpec(
        name="lbm", suite="spec2006", n_ops=147, n_mem=57, mlp=32,
        pct_local=12, store_frac=0.40, fp_frac=0.5, stride=64,
        mechanism_mix=_mix(multidim=0.9, distinct=0.1),
        notes="stage-4; without it 400% slowdown (7.5x critical path)",
    ),
    BenchmarkSpec(
        name="sphinx3", suite="spec2006", n_ops=133, n_mem=20, mlp=32,
        pct_local=0, store_frac=0.10, fp_frac=0.3,
        mechanism_mix=_mix(distinct=0.7, strided=0.3),
        notes="stage-1 mostly; perfect bloom behaviour",
    ),
    # ------------------------------ PARSEC ------------------------------
    BenchmarkSpec(
        name="blackscholes", suite="parsec", n_ops=297, n_mem=0, mlp=1,
        pct_local=4, store_frac=0.0, fp_frac=0.7,
        mechanism_mix=_mix(distinct=1.0),
        notes="compute only; no disambiguation needed",
    ),
    BenchmarkSpec(
        name="bodytrack", suite="parsec", n_ops=285, n_mem=42, mlp=4,
        dep_st_st=30, dep_st_ld=30, dep_ld_st=42, pct_local=10,
        store_frac=0.45, fp_frac=0.4,
        mechanism_mix=_mix(multidim=0.7, strided=0.3),
        notes="stage-4; forwarding heavy (LSQ forward energy, NACHOS ST->LD)",
    ),
    BenchmarkSpec(
        name="dwt53", suite="parsec", n_ops=106, n_mem=16, mlp=16,
        pct_local=11, store_frac=0.30, fp_frac=0.3,
        mechanism_mix=_mix(multidim=0.8, strided=0.2),
        notes="stage-4 (dwt.c:179 multidim stencil)",
    ),
    BenchmarkSpec(
        name="ferret", suite="parsec", n_ops=185, n_mem=0, mlp=1,
        pct_local=29, store_frac=0.0, fp_frac=0.3,
        mechanism_mix=_mix(distinct=1.0),
        notes="no memory operations in the hottest region",
    ),
    BenchmarkSpec(
        name="fft-2d", suite="parsec", n_ops=314, n_mem=80, mlp=4,
        dep_st_st=48, pct_local=18, store_frac=0.45, fp_frac=0.5,
        mechanism_mix=_mix(indirect=0.3, param_opaque=0.3, strided=0.4),
        indirect_range=1024,
        notes="84% of relations redundant (stage 3); bloom hits 20%+",
        stride=64,
    ),
    BenchmarkSpec(
        name="fluidanimate", suite="parsec", n_ops=229, n_mem=28, mlp=8,
        pct_local=14, store_frac=0.20, fp_frac=0.4,
        mechanism_mix=_mix(param_resolvable=0.9, distinct=0.1),
        notes="stage-2 resolves all (serial.cpp:40 globals); no MDEs",
    ),
    BenchmarkSpec(
        name="freqmine", suite="parsec", n_ops=109, n_mem=32, mlp=4,
        dep_st_ld=8, pct_local=17, store_frac=0.35,
        mechanism_mix=_mix(param_resolvable=0.4, indirect=0.3, strided=0.3),
        indirect_range=512, indirect_fields=2,
        notes="NACHOS-SW slowdown group; NACHOS recovers; itemset table "
        "is 2-field records, so cross-field indirect pairs are stage-5 "
        "NOs while same-field ones stay MAY",
        stride=64,
    ),
    BenchmarkSpec(
        name="sar-backprojection", suite="parsec", n_ops=151, n_mem=7, mlp=8,
        pct_local=64, store_frac=0.25, fp_frac=0.4,
        mechanism_mix=_mix(param_resolvable=0.7, param_opaque=0.3),
        notes="stage-2 effective (20-80% MAY->NO)",
    ),
    BenchmarkSpec(
        name="sar-pfa-interp1", suite="parsec", n_ops=500, n_mem=32, mlp=16,
        dep_st_st=12, dep_st_ld=20, dep_ld_st=12, pct_local=19,
        store_frac=0.40, fp_frac=0.4,
        mechanism_mix=_mix(indirect=0.45, strided=0.35, param_resolvable=0.2),
        indirect_range=512, indirect_on_shared=True, chain_length=1,
        notes="43% of mem ops with >2 MAY parents; NACHOS ~8% slow",
        stride=64,
    ),
    BenchmarkSpec(
        name="streamcluster", suite="parsec", n_ops=210, n_mem=32, mlp=16,
        dep_st_st=3, pct_local=1, store_frac=0.15, fp_frac=0.5, stride=64,
        mechanism_mix=_mix(distinct=0.6, strided=0.4),
        notes="streaming; perfect bloom behaviour",
    ),
    BenchmarkSpec(
        name="histogram", suite="parsec", n_ops=522, n_mem=48, mlp=16,
        pct_local=0, store_frac=0.50,
        mechanism_mix=_mix(indirect=0.7, strided=0.3),
        indirect_range=64, chain_length=1,
        notes="data-dependent buckets; real runtime conflicts; stage-3 heavy",
    ),
]

_BY_NAME = {spec.name: spec for spec in SUITE}

#: Benchmarks whose parent functions add huge MAY counts when the
#: analysis scope widens (Section IV-A): name -> opaque parent accesses.
SCOPE_BLOWUP = {
    "bzip2": 96,
    "povray": 80,
    "soplex": 56,
    "parser": 8,
    "art": 8,
    "freqmine": 8,
    "fft-2d": 10,
    "histogram": 8,
    "sar-pfa-interp1": 6,
    "464.h264ref": 4,
    "gcc": 4,
}


def benchmark_names() -> List[str]:
    return [spec.name for spec in SUITE]


def get_spec(name: str) -> BenchmarkSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(_BY_NAME)}"
        ) from None


def _parent_accesses(spec: BenchmarkSpec) -> List[AddressExpr]:
    """Caller-side accesses used by the scope-widening study."""
    out: List[AddressExpr] = []
    n_opaque = SCOPE_BLOWUP.get(spec.name, 0)
    base = 0x40000000 + (zlib.crc32(spec.name.encode()) & 0xFFFF) * 0x1000
    for k in range(n_opaque):
        obj = MemObject(
            f"{spec.name}.caller{k}", 4096, MemorySpace.HEAP, base_addr=base + k * 8192
        )
        param = PointerParam(
            f"{spec.name}.cp{k}", runtime_object=obj, provenance=None
        )
        out.append(AddressExpr(param, AffineExpr.constant(0), 8))
    # A couple of well-known named globals that never add MAY relations.
    for k in range(2):
        obj = MemObject(
            f"{spec.name}.g{k}", 4096, MemorySpace.GLOBAL,
            base_addr=base + 0x100000 + k * 8192,
        )
        out.append(AddressExpr(obj, AffineExpr.constant(0), 8))
    return out


def build_program(spec: BenchmarkSpec, top_k: int = 5) -> Program:
    """Wrap *spec* as a program with *top_k* hot paths for extraction."""

    def factory(k: int):
        return lambda: build_workload(spec, path_index=k).raw_graph

    paths = [
        HotPath(name=f"path{k}", weight=PATH_WEIGHTS[k], build=factory(k))
        for k in range(top_k)
    ]
    fn = Function(
        name=f"{spec.name}.kernel",
        paths=paths,
        parent_accesses=_parent_accesses(spec),
    )
    return Program(name=spec.name, functions=[fn])


def build_suite_workloads(top_k: int = 1) -> List[Workload]:
    """Materialize the hottest *top_k* regions of every benchmark."""
    out: List[Workload] = []
    for spec in SUITE:
        for k in range(top_k):
            out.append(build_workload(spec, path_index=k))
    return out
