"""Region synthesis from a :class:`~repro.workloads.spec.BenchmarkSpec`.

The generator builds a branch-free region DFG whose *disambiguation-
relevant* structure matches one benchmark row of Table II:

* ``n_mem`` non-local memory operations arranged into MLP-sized layers
  (layer k+1's address generation depends on a reduction of layer k's
  loads, bounding the memory parallelism at ``mlp``),
* the C4 dependence counts as exact-address ST-LD / LD-ST / ST-ST pairs,
* the remaining memory ops drawn from the spec's mechanism mix (see
  :mod:`repro.workloads.spec`), which determines which pipeline stage can
  disambiguate them,
* ``pct_local`` scratchpad accesses on a stack object (promoted away by
  the NEEDLE layer before disambiguation),
* compute filler (integer or floating point per ``fp_frac``) forming the
  load-use chains that put memory on the critical path.

The same object also produces the dynamic side: per-invocation bindings
for every induction variable and opaque symbol, giving each memory op a
concrete address stream with the spec's stride/footprint (and therefore
its cache behaviour).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ir.address import (
    AddressExpr,
    AffineExpr,
    IVar,
    MemObject,
    MemorySpace,
    PointerParam,
    Sym,
)
from repro.ir.builder import RegionBuilder
from repro.ir.graph import DFGraph
from repro.ir.ops import Operation
from repro.programs.promote import promote_scratchpad
from repro.workloads.spec import BenchmarkSpec, Mechanism

#: Per-path scaling of region size for the top-5 paths of a benchmark.
PATH_SCALES = (1.0, 0.85, 0.7, 0.6, 0.5)
PATH_WEIGHTS = (0.40, 0.25, 0.15, 0.12, 0.08)

_WIDTH = 8  # all accesses are 8-byte (the paper's 64-bit values)


@dataclass
class Workload:
    """A materialized region plus its dynamic trace generator."""

    spec: BenchmarkSpec
    path_index: int
    seed: int
    graph: DFGraph                    # after scratchpad promotion
    raw_graph: DFGraph                # before promotion (Table II stats)
    n_promoted: int
    ivars: Tuple[IVar, ...]
    syms: Tuple[Sym, ...]
    weight: float = 1.0

    @property
    def name(self) -> str:
        return f"{self.spec.name}/path{self.path_index}"

    def invocations(self, n: int) -> List[Dict[str, int]]:
        """Deterministic per-invocation variable bindings."""
        rng = random.Random((self.seed << 8) ^ 0xA5A5)
        envs: List[Dict[str, int]] = []
        for inv in range(n):
            env: Dict[str, int] = {}
            for k, iv in enumerate(self.ivars):
                if k == 0:
                    env[iv.name] = inv % iv.trip_count
                else:
                    # Secondary induction variables advance out of phase.
                    env[iv.name] = (3 + 7 * inv + 5 * k) % iv.trip_count
            for sym in self.syms:
                env[sym.name] = rng.randrange(self.spec.indirect_range)
            envs.append(env)
        return envs


@dataclass
class _MemPlan:
    """One planned memory operation before graph emission."""

    is_store: bool
    addr: AddressExpr
    mechanism: Optional[Mechanism]
    dep_tag: str = ""


def _alloc_addresses(base: int, size: int) -> Tuple[int, int]:
    """Bump allocator keeping objects line-disjoint."""
    aligned = (base + 63) // 64 * 64
    return aligned, aligned + size + 64


class _RegionPlanner:
    """Plans the memory operations of one region."""

    def __init__(self, spec: BenchmarkSpec, path_index: int, seed: int) -> None:
        self.spec = spec
        self.path_index = path_index
        self.rng = random.Random(seed)
        self.scale = PATH_SCALES[path_index % len(PATH_SCALES)]
        self._next_addr = 0x10000 * (1 + path_index)
        self.ivars: List[IVar] = []
        self.syms: List[Sym] = []

        self.i = IVar("i", spec.trip_count)
        self.j = IVar("j", max(8, spec.trip_count // 4))
        self.ivars = [self.i, self.j]
        self._shared: Optional[MemObject] = None

    # ------------------------------------------------------------------
    def _object(self, name: str, size: int, space=MemorySpace.HEAP) -> MemObject:
        base, self._next_addr = _alloc_addresses(self._next_addr, size)
        return MemObject(
            name=f"{self.spec.name}.{name}", size=size, space=space, base_addr=base
        )

    def _sym(self, name: str) -> Sym:
        # Data-dependent indices are drawn from [0, indirect_range) by
        # Workload.invocations, so the declared bound is always true;
        # it is what arms stage-5 enumeration over the index domain.
        s = Sym(f"{name}", lo=0, hi=self.spec.indirect_range - 1)
        self.syms.append(s)
        return s

    # ------------------------------------------------------------------
    def plan(self) -> List[_MemPlan]:
        spec = self.spec
        n_mem = round(spec.n_mem * self.scale)
        if spec.n_mem > 0:
            n_mem = max(2, n_mem)
        if n_mem == 0:
            return []

        plans: List[_MemPlan] = []
        plans.extend(self._plan_dep_pairs(n_mem))
        n_free = n_mem - len(plans)
        if n_free > 0:
            plans.extend(self._plan_free_ops(n_free, len(plans)))
        return plans

    # ------------------------------------------------------------------
    def _plan_dep_pairs(self, n_mem: int) -> List[_MemPlan]:
        """Exact-address MUST pairs for the Table II C4 counts.

        C4 reports *dynamic* dependence counts; statically we cap the
        dependence pairs at half the memory budget so the mechanism mix
        still shapes the region's ambiguity.
        """
        spec = self.spec
        budget = max(2, n_mem // 2)
        scaled = [
            ("st_ld", max(0, round(spec.dep_st_ld * self.scale / 2))),
            ("ld_st", max(0, round(spec.dep_ld_st * self.scale / 2))),
            ("st_st", max(0, round(spec.dep_st_st * self.scale / 2))),
        ]
        dep_array = self._object("dep", spec.trip_count * _WIDTH + 4096)
        plans: List[_MemPlan] = []
        slot = 0
        for tag, pairs in scaled:
            for _ in range(pairs):
                if budget - len(plans) < 2:
                    return plans
                offset = AffineExpr.of(const=slot * 64, ivs={self.i: _WIDTH})
                addr = AddressExpr(dep_array, offset, width=_WIDTH)
                slot += 1
                first_store = tag in ("st_ld", "st_st")
                second_store = tag in ("ld_st", "st_st")
                plans.append(_MemPlan(first_store, addr, None, dep_tag=f"{tag}:older"))
                plans.append(_MemPlan(second_store, addr, None, dep_tag=f"{tag}:younger"))
        return plans

    # ------------------------------------------------------------------
    def _plan_free_ops(self, n_free: int, n_dep_ops: int) -> List[_MemPlan]:
        spec = self.spec
        counts = spec.mechanism_counts(n_free)

        # Store budget: aim at store_frac over all memory ops.
        target_stores = round(spec.store_frac * (n_free + n_dep_ops))
        # Dep pairs contributed roughly half stores already.
        free_stores = max(0, min(n_free, target_stores - n_dep_ops // 2))

        plans: List[_MemPlan] = []
        # STRIDED first so indirect_on_shared can target its array.
        ordered = sorted(
            counts.items(), key=lambda kv: 0 if kv[0] is Mechanism.STRIDED else 1
        )
        for mech, count in ordered:
            plans.extend(self._plan_mechanism(mech, count))
        self.rng.shuffle(plans)
        for k, plan in enumerate(plans):
            plan.is_store = k < free_stores
        self.rng.shuffle(plans)
        return plans

    def _plan_mechanism(self, mech: Mechanism, count: int) -> List[_MemPlan]:
        if count <= 0:
            return []
        spec = self.spec
        stride = spec.stride
        span = spec.trip_count * stride
        plans: List[_MemPlan] = []

        if mech is Mechanism.DISTINCT:
            for k in range(count):
                obj = self._object(f"arr{k}", span + 64)
                offset = AffineExpr.of(ivs={self.i: stride})
                plans.append(
                    _MemPlan(False, AddressExpr(obj, offset, _WIDTH), mech)
                )

        elif mech is Mechanism.STRIDED:
            # One shared array; ops at distinct constant lane offsets.
            lane = _WIDTH
            wide_stride = max(stride, lane * count)
            obj = self._object("shared", spec.trip_count * wide_stride + 64)
            self._shared = obj
            for k in range(count):
                offset = AffineExpr.of(const=k * lane, ivs={self.i: wide_stride})
                plans.append(
                    _MemPlan(False, AddressExpr(obj, offset, _WIDTH), mech)
                )

        elif mech is Mechanism.PARAM_RESOLVABLE:
            for k in range(count):
                obj = self._object(f"src{k}", span + 64)
                param = PointerParam(
                    name=f"{spec.name}.p{k}", runtime_object=obj, provenance=obj
                )
                offset = AffineExpr.of(ivs={self.i: stride})
                plans.append(
                    _MemPlan(False, AddressExpr(param, offset, _WIDTH), mech)
                )

        elif mech is Mechanism.PARAM_OPAQUE:
            for k in range(count):
                obj = self._object(f"opq{k}", span + 64)
                param = PointerParam(
                    name=f"{spec.name}.q{k}", runtime_object=obj, provenance=None
                )
                offset = AffineExpr.of(ivs={self.i: stride})
                plans.append(
                    _MemPlan(False, AddressExpr(param, offset, _WIDTH), mech)
                )

        elif mech is Mechanism.MULTIDIM:
            # Alternating-induction-variable block accesses: pairs using
            # different IVs have multi-variable affine differences that
            # stage 1 refuses and stage 4 proves disjoint.
            blk_i = spec.trip_count * stride
            blk_j = self.j.trip_count * stride
            blk = max(blk_i, blk_j) + 64
            obj = self._object("grid", blk * count + 64)
            for k in range(count):
                iv = self.i if k % 2 == 0 else self.j
                offset = AffineExpr.of(const=k * blk, ivs={iv: stride})
                plans.append(
                    _MemPlan(False, AddressExpr(obj, offset, _WIDTH), mech)
                )

        elif mech is Mechanism.INDIRECT:
            # Field-structured records: op k reads field k%fields of
            # record ``sym``, so the table is an array of
            # ``indirect_fields``-word records and cross-field ops are
            # disjoint by construction (stage-5 material; fields=1 is
            # the classic fully-ambiguous ``a[b[i]]`` shape).
            fields = max(1, spec.indirect_fields)
            if spec.indirect_on_shared and self._shared is not None:
                obj = self._shared
                fields = 1  # shared-array indexing has no record shape
            else:
                obj = self._object(
                    "table", spec.indirect_range * _WIDTH * fields + 64
                )
            for k in range(count):
                sym = self._sym(f"{self.spec.name}.s{self.path_index}.{k}")
                offset = AffineExpr.of(
                    const=(k % fields) * _WIDTH, syms={sym: fields * _WIDTH}
                )
                plans.append(
                    _MemPlan(False, AddressExpr(obj, offset, _WIDTH), mech)
                )

        else:  # pragma: no cover - exhaustive over Mechanism
            raise AssertionError(mech)
        return plans


def _emit_graph(
    spec: BenchmarkSpec,
    path_index: int,
    plans: Sequence[_MemPlan],
    planner: _RegionPlanner,
) -> DFGraph:
    """Wire the planned memory ops into a full region DFG."""
    b = RegionBuilder(f"{spec.name}/path{path_index}")
    rng = planner.rng
    scale = planner.scale
    n_ops_target = max(4, round(spec.n_ops * scale))

    live_in = b.input("live_in")
    iv_in = b.input("iv")

    fp_countdown = 0.0

    def compute(a, c, tag=""):
        """Emit one filler compute op, FP per the spec's fraction."""
        nonlocal fp_countdown
        fp_countdown += spec.fp_frac
        if fp_countdown >= 1.0:
            fp_countdown -= 1.0
            return b.fmul(a, c, name=tag) if rng.random() < 0.4 else b.fadd(a, c, name=tag)
        return b.add(a, c, name=tag)

    # ------------------------------------------------------------------
    # Memory layers bounded by the spec's MLP.
    # ------------------------------------------------------------------
    mlp = max(1, spec.mlp)
    layers: List[List[_MemPlan]] = []
    for k in range(0, len(plans), mlp):
        layers.append(list(plans[k : k + mlp]))

    sync = live_in
    value_src = live_in
    emitted_mem: List[Operation] = []
    for layer in layers:
        gep = b.gep(iv_in, sync, name="agen")
        loads_of_layer: List[Operation] = []
        for plan in layer:
            if plan.is_store:
                op = b.store_addr(plan.addr, value=value_src, inputs=[gep])
            else:
                op = b.load_addr(plan.addr, inputs=[gep])
                loads_of_layer.append(op)
            emitted_mem.append(op)
        # Load-use chain: a short reduction forms the next layer's
        # address dependency (this is what bounds MLP).
        if loads_of_layer:
            acc = loads_of_layer[0]
            for ld in loads_of_layer[1:]:
                acc = compute(acc, ld)
            prev = acc
            for _ in range(spec.chain_length):
                acc, prev = compute(acc, prev), acc
            sync = acc
            value_src = acc
        else:
            sync = compute(sync, gep)
            value_src = sync

    # ------------------------------------------------------------------
    # Scratchpad (local) accesses — promoted before disambiguation.
    # ------------------------------------------------------------------
    n_local = round(spec.n_local * scale)
    if n_local:
        stack = planner._object("frame", max(4096, n_local * 64), MemorySpace.STACK)
        for k in range(n_local):
            offset = AffineExpr.of(const=k * _WIDTH)
            if k % 3 == 0:
                b.store_addr(
                    AddressExpr(stack, offset, _WIDTH), value=value_src, inputs=[]
                )
            else:
                b.load_addr(AddressExpr(stack, offset, _WIDTH), inputs=[])

    # ------------------------------------------------------------------
    # Compute filler up to the spec's op count.
    # ------------------------------------------------------------------
    # Filler compute is emitted as short *parallel* chains hanging off
    # the last reduction, so it adds area/energy without stretching the
    # critical path (one long chain would mask the memory effects the
    # study measures).
    graph_so_far = b.build(validate=False)
    remaining = n_ops_target - len(graph_so_far)
    while remaining > 0:
        branch = min(6, remaining)
        tail, prev = sync, live_in
        for _ in range(branch):
            tail, prev = compute(tail, prev), tail
        remaining -= branch

    return b.build()


def build_workload(
    spec: BenchmarkSpec, path_index: int = 0, seed: Optional[int] = None
) -> Workload:
    """Materialize one region of *spec* (``path_index`` in [0, 5))."""
    if seed is None:
        # crc32 keeps workloads reproducible across processes (Python's
        # built-in str hash is salted per interpreter run).
        seed = (zlib.crc32(spec.name.encode()) & 0xFFFF) * 31 + path_index
    planner = _RegionPlanner(spec, path_index, seed)
    plans = planner.plan()
    raw = _emit_graph(spec, path_index, plans, planner)
    promo = promote_scratchpad(raw)
    return Workload(
        spec=spec,
        path_index=path_index,
        seed=seed,
        graph=promo.graph,
        raw_graph=raw,
        n_promoted=promo.n_promoted,
        ivars=tuple(planner.ivars),
        syms=tuple(planner.syms),
        weight=PATH_WEIGHTS[path_index % len(PATH_WEIGHTS)],
    )
