"""The 27-benchmark workload suite (135 regions) of the paper's study.

The paper evaluates acceleration paths extracted from SPEC2000, SPEC2006,
and PARSEC (released at IISWC'16).  We cannot ship those sources; instead
each benchmark has a synthetic generator parameterized by its Table II
characteristics (operation counts, memory ops, MLP, dependence counts,
scratchpad fraction) and by the paper's per-benchmark narrative — which
alias-analysis stage resolves its MAY labels, its comparator fan-in
shape, its bloom-filter behaviour, and its cache footprint.

Entry points:

* :data:`~repro.workloads.suite.SUITE` — the 27 benchmark specs,
* :func:`~repro.workloads.suite.get_spec` / ``benchmark_names()``,
* :func:`~repro.workloads.generator.build_workload` — materialize one
  region (graph + invocation trace) for a spec,
* :func:`~repro.workloads.suite.build_program` — the whole program
  (top-5 paths) for the NEEDLE extraction layer.
"""

from repro.workloads.spec import BenchmarkSpec, Mechanism
from repro.workloads.generator import Workload, build_workload
from repro.workloads.micro import MICROS, build_micro, micro_names
from repro.workloads.characterize import (
    WorkloadProfile,
    measured_mlp,
    profile_workload,
)
from repro.workloads.suite import (
    SUITE,
    benchmark_names,
    build_program,
    get_spec,
)

__all__ = [
    "BenchmarkSpec",
    "MICROS",
    "Mechanism",
    "SUITE",
    "Workload",
    "WorkloadProfile",
    "benchmark_names",
    "build_micro",
    "build_program",
    "build_workload",
    "get_spec",
    "measured_mlp",
    "micro_names",
    "profile_workload",
]
