"""Microbenchmarks: classic memory idioms as first-class workloads.

Small, hand-built kernels exercising one memory behaviour each — the
unit vectors of the disambiguation space.  Useful for tests, examples,
and quick what-does-this-system-do-to-X experiments:

=================  ========================================================
``stream_triad``   a[i] = b[i] + s*c[i]; disjoint arrays, pure NO labels
``stencil3``       b[i] = a[i-1]+a[i]+a[i+1]; same-array NO via SCEV
``reduction``      sum += a[i] over a tree; loads only
``pointer_chase``  p = *p chain; serial loads, the MLP=1 extreme
``gather``         y[i] = a[idx[i]]; indirect loads (MAY, rarely conflict)
``scatter``        a[idx[i]] = x[i]; indirect stores (MAY, can conflict)
``rmw``            a[idx[i]] += x[i]; the histogram update
``transpose``      blocked copy with alternating induction variables
                   (stage-4 territory)
=================  ========================================================

Each factory returns a :class:`~repro.workloads.generator.Workload`, so
everything downstream (compare_systems, profiling, the oracle) just
works.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ir.address import AffineExpr, IVar, MemObject, Sym
from repro.ir.builder import RegionBuilder
from repro.workloads.generator import Workload
from repro.workloads.spec import BenchmarkSpec, Mechanism

_WIDTH = 8
UNROLL = 4


def _spec(name: str, graph_len: int, n_mem: int, mlp: int, **kw) -> BenchmarkSpec:
    defaults = dict(
        name=f"micro.{name}",
        suite="micro",
        n_ops=max(graph_len, n_mem, 1),
        n_mem=n_mem,
        mlp=max(1, mlp),
        mechanism_mix={Mechanism.DISTINCT: 1.0},
    )
    defaults.update(kw)
    return BenchmarkSpec(**defaults)


def _wrap(name: str, builder, ivars, syms, mlp: int, **spec_kw) -> Workload:
    graph = builder.build()
    n_mem = len(graph.memory_ops)
    return Workload(
        spec=_spec(name, len(graph), n_mem, mlp, **spec_kw),
        path_index=0,
        seed=0xA11CE,
        graph=graph,
        raw_graph=graph,
        n_promoted=0,
        ivars=tuple(ivars),
        syms=tuple(syms),
    )


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def stream_triad() -> Workload:
    i = IVar("i", 2048)
    a = MemObject("triad.a", 1 << 16, base_addr=0x100000)
    bb = MemObject("triad.b", 1 << 16, base_addr=0x120000)
    c = MemObject("triad.c", 1 << 16, base_addr=0x140000)
    b = RegionBuilder("micro.stream_triad")
    s = b.input("s")
    for k in range(UNROLL):
        off = AffineExpr.of(const=k * _WIDTH, ivs={i: _WIDTH * UNROLL})
        ldb = b.load(bb, off)
        ldc = b.load(c, off)
        prod = b.fmul(ldc, s)
        acc = b.fadd(ldb, prod)
        b.store(a, off, value=acc)
    return _wrap("stream_triad", b, [i], [], mlp=2 * UNROLL, fp_frac=1.0, stride=32)


def stencil3() -> Workload:
    i = IVar("i", 2048)
    a = MemObject("stencil.a", 1 << 16, base_addr=0x200000)
    out = MemObject("stencil.b", 1 << 16, base_addr=0x220000)
    b = RegionBuilder("micro.stencil3")
    base = AffineExpr.of(const=_WIDTH, ivs={i: _WIDTH})
    ld_m = b.load(a, base - AffineExpr.constant(_WIDTH))
    ld_0 = b.load(a, base)
    ld_p = b.load(a, base + AffineExpr.constant(_WIDTH))
    s1 = b.fadd(ld_m, ld_0)
    s2 = b.fadd(s1, ld_p)
    b.store(out, base, value=s2)
    return _wrap("stencil3", b, [i], [], mlp=3, fp_frac=0.6)


def reduction() -> Workload:
    i = IVar("i", 2048)
    a = MemObject("red.a", 1 << 16, base_addr=0x300000)
    b = RegionBuilder("micro.reduction")
    loads = [
        b.load(a, AffineExpr.of(const=k * _WIDTH, ivs={i: _WIDTH * 8}))
        for k in range(8)
    ]
    level = loads
    while len(level) > 1:
        level = [
            b.fadd(level[k], level[k + 1]) for k in range(0, len(level) - 1, 2)
        ] + ([level[-1]] if len(level) % 2 else [])
    return _wrap("reduction", b, [i], [], mlp=8, fp_frac=0.8)


def pointer_chase(depth: int = 6) -> Workload:
    """Each hop's address is data-dependent on the previous load."""
    node = MemObject("chase.pool", 1 << 16, base_addr=0x400000)
    syms = [Sym(f"chase.n{k}") for k in range(depth)]
    b = RegionBuilder("micro.pointer_chase")
    prev = b.input("head")
    for k, sym in enumerate(syms):
        gep = b.gep(prev)
        prev = b.load(node, AffineExpr.of(syms={sym: _WIDTH}), inputs=[gep])
    return _wrap(
        "pointer_chase", b, [], syms, mlp=1, indirect_range=4096,
        mechanism_mix={Mechanism.INDIRECT: 1.0}, store_frac=0.0,
    )


def gather(width: int = 8) -> Workload:
    i = IVar("i", 2048)
    table = MemObject("gather.t", 1 << 16, base_addr=0x500000)
    out = MemObject("gather.y", 1 << 16, base_addr=0x520000)
    syms = [Sym(f"gather.i{k}") for k in range(width)]
    b = RegionBuilder("micro.gather")
    x = b.input("x")
    for k, sym in enumerate(syms):
        gep = b.gep(x)
        ld = b.load(table, AffineExpr.of(syms={sym: _WIDTH}), inputs=[gep])
        b.store(out, AffineExpr.of(const=k * _WIDTH, ivs={i: _WIDTH * width}),
                value=ld)
    return _wrap(
        "gather", b, [i], syms, mlp=width, indirect_range=2048,
        mechanism_mix={Mechanism.INDIRECT: 1.0},
    )


def scatter(width: int = 8) -> Workload:
    i = IVar("i", 2048)
    src = MemObject("scatter.x", 1 << 16, base_addr=0x600000)
    table = MemObject("scatter.t", 1 << 16, base_addr=0x620000)
    syms = [Sym(f"scatter.i{k}") for k in range(width)]
    b = RegionBuilder("micro.scatter")
    for k, sym in enumerate(syms):
        ld = b.load(src, AffineExpr.of(const=k * _WIDTH, ivs={i: _WIDTH * width}))
        b.store(table, AffineExpr.of(syms={sym: _WIDTH}), value=ld)
    return _wrap(
        "scatter", b, [i], syms, mlp=width, indirect_range=64,
        mechanism_mix={Mechanism.INDIRECT: 1.0}, store_frac=0.5,
    )


def rmw(width: int = 4) -> Workload:
    table = MemObject("rmw.t", 1 << 16, base_addr=0x700000)
    syms = [Sym(f"rmw.i{k}") for k in range(width)]
    b = RegionBuilder("micro.rmw")
    x = b.input("x")
    for sym in syms:
        off = AffineExpr.of(syms={sym: _WIDTH})
        ld = b.load(table, off)
        acc = b.add(ld, x)
        b.store(table, off, value=acc)
    return _wrap(
        "rmw", b, [], syms, mlp=width, indirect_range=32,
        mechanism_mix={Mechanism.INDIRECT: 1.0}, store_frac=0.5,
    )


def transpose(blocks: int = 4) -> Workload:
    """Alternating-IV block accesses (the stage-4 pattern)."""
    i = IVar("i", 256)
    j = IVar("j", 256)
    grid = MemObject("tr.grid", 1 << 20, base_addr=0x800000)
    blk = 256 * _WIDTH + 64
    b = RegionBuilder("micro.transpose")
    prev = b.input("x")
    for k in range(blocks):
        iv = i if k % 2 == 0 else j
        off = AffineExpr.of(const=k * blk, ivs={iv: _WIDTH})
        if k % 2 == 0:
            prev = b.load(grid, off)
        else:
            b.store(grid, off, value=prev)
    return _wrap("transpose", b, [i, j], [], mlp=blocks,
                 mechanism_mix={Mechanism.MULTIDIM: 1.0})


MICROS: Dict[str, Callable[[], Workload]] = {
    "stream_triad": stream_triad,
    "stencil3": stencil3,
    "reduction": reduction,
    "pointer_chase": pointer_chase,
    "gather": gather,
    "scatter": scatter,
    "rmw": rmw,
    "transpose": transpose,
}


def build_micro(name: str) -> Workload:
    try:
        return MICROS[name]()
    except KeyError:
        raise KeyError(
            f"unknown microbenchmark {name!r}; known: {', '.join(MICROS)}"
        ) from None


def micro_names() -> List[str]:
    return list(MICROS)
