"""Benchmark specification schema.

Each spec records the Table II columns plus the generation knobs that
control which *ambiguity mechanism* produces each memory operation.  The
mechanisms map one-to-one onto the precision classes of the alias
pipeline:

=================== ======================================= ================
Mechanism           Address shape                           Resolved by
=================== ======================================= ================
DISTINCT            distinct named arrays, affine stride    stage 1 (NO)
STRIDED             same array, distinct constant offsets   stage 1 (NO)
PARAM_RESOLVABLE    opaque pointer, provenance traceable    stage 2 (NO)
PARAM_OPAQUE        opaque pointer, provenance lost         never (MAY);
                                                            runtime disjoint
MULTIDIM            same array, multi-IV affine subscript   stage 4 (NO)
INDIRECT            data-dependent index (``a[b[i]]``)      never (MAY);
                                                            runtime mostly
                                                            disjoint
=================== ======================================= ================

True dependencies (Table II C4) are generated separately as exact-match
pairs and are classified MUST by stage 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple


class Mechanism(enum.Enum):
    DISTINCT = "distinct"
    STRIDED = "strided"
    PARAM_RESOLVABLE = "param_resolvable"
    PARAM_OPAQUE = "param_opaque"
    MULTIDIM = "multidim"
    INDIRECT = "indirect"


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark of the study (one row of Table II + narrative)."""

    name: str
    suite: str                      # spec2000 | spec2006 | parsec | other
    n_ops: int                      # Table II C1: static ops in the DFG
    n_mem: int                      # C2: non-local memory operations
    mlp: int                        # C3: memory-level parallelism
    dep_st_st: int = 0              # C4 dependence counts
    dep_st_ld: int = 0
    dep_ld_st: int = 0
    pct_local: int = 0              # C5: % of memory ops promoted
    store_frac: float = 0.25        # stores / memory ops
    fp_frac: float = 0.0            # floating-point fraction of compute
    mechanism_mix: Dict[Mechanism, float] = field(
        default_factory=lambda: {Mechanism.DISTINCT: 1.0}
    )
    #: Access stride in bytes (64 = new cache line per invocation,
    #: streaming misses; 8 = one miss per eight invocations).
    stride: int = 8
    #: Iteration domain of the region's induction variables.
    trip_count: int = 1024
    #: Value range of data-dependent indices (small => real conflicts).
    indirect_range: int = 64
    #: Record width (in 8-byte fields) of the indirectly-indexed table:
    #: op *k* touches field ``k % indirect_fields`` of record
    #: ``index``, i.e. ``a[fields*index + k%fields]``.  With > 1 field,
    #: cross-field pairs are provably disjoint — but only to an analysis
    #: that reasons about symbolic strides modulo the record width (the
    #: stage-5 separation-logic checker); stages 1--4 keep them MAY.
    indirect_fields: int = 1
    #: INDIRECT ops index the STRIDED shared array instead of their own
    #: table: a few ambiguous ops MAY-alias *many* mutually-disjoint
    #: strided ops — the bzip2/sar-pfa high-fan-in shape of Figure 14.
    indirect_on_shared: bool = False
    #: Extra serial compute chain on the load-use path (critical path).
    chain_length: int = 2
    notes: str = ""

    def __post_init__(self) -> None:
        if self.n_mem > self.n_ops:
            raise ValueError(f"{self.name}: #MEM exceeds #OPs")
        if self.n_mem and self.mlp <= 0:
            raise ValueError(f"{self.name}: memory ops need a positive MLP")
        total = sum(self.mechanism_mix.values())
        if self.n_mem and abs(total - 1.0) > 1e-6:
            raise ValueError(f"{self.name}: mechanism mix sums to {total}, not 1")

    # ------------------------------------------------------------------
    @property
    def n_dep_pairs(self) -> int:
        return self.dep_st_st + self.dep_st_ld + self.dep_ld_st

    @property
    def n_local(self) -> int:
        """Scratchpad ops to synthesize (capped for tractability)."""
        if self.pct_local <= 0:
            return 0
        raw = round(self.n_mem * self.pct_local / max(1, 100 - self.pct_local))
        return min(raw, max(2, self.n_ops // 4))

    @property
    def mem_fraction(self) -> float:
        return self.n_mem / self.n_ops if self.n_ops else 0.0

    def mechanism_counts(self, n_free: int) -> Dict[Mechanism, int]:
        """Split *n_free* untied memory ops across the mechanism mix."""
        counts: Dict[Mechanism, int] = {}
        assigned = 0
        items = sorted(self.mechanism_mix.items(), key=lambda kv: kv[0].value)
        for mech, weight in items[:-1]:
            c = round(weight * n_free)
            counts[mech] = c
            assigned += c
        if items:
            counts[items[-1][0]] = max(0, n_free - assigned)
        return counts
