"""Process-pool fan-out for simulation tasks.

``run_tasks`` maps :class:`SimTask` s over a ``ProcessPoolExecutor``
with order-preserving collection, so results come back in task order
regardless of which worker finished first — parallel and serial runs
are indistinguishable to callers.

The default job count comes from the CLI (``--jobs``) or the
``NACHOS_JOBS`` environment variable and defaults to 1 (serial, no pool
spawned).  Workers share the on-disk result cache with the parent, so a
task that another worker already computed is a cheap unpickle.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

_jobs: Optional[int] = None


def get_jobs() -> int:
    """The effective default parallelism for sweeps."""
    if _jobs is not None:
        return _jobs
    env = os.environ.get("NACHOS_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def set_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default (``None`` restores env/serial)."""
    global _jobs
    _jobs = max(1, jobs) if jobs is not None else None


@dataclass
class SimTask:
    """One (workload, system) simulation request.

    The whole :class:`~repro.workloads.generator.Workload` rides along —
    it is a plain picklable dataclass, and shipping it keeps workers
    stateless (no re-derivation from specs in the child).
    """

    workload: Any
    system: str
    invocations: int
    check: bool = True
    warm: bool = True
    kwargs: dict = field(default_factory=dict)


def _execute(task: SimTask):
    from repro.experiments.common import run_system

    return run_system(
        task.workload,
        task.system,
        invocations=task.invocations,
        check=task.check,
        warm=task.warm,
        **task.kwargs,
    )


def _execute_counted(task: SimTask):
    """Worker wrapper: ship per-task cache-counter deltas back with the
    result.  Forked pool workers never run ``atexit``, so their hit/miss
    counts would otherwise vanish; each worker runs tasks sequentially,
    making the delta per task exact."""
    from repro.runtime.cache import get_cache

    cache = get_cache()
    h0, m0 = cache.hits, cache.misses
    run = _execute(task)
    return run, cache.hits - h0, cache.misses - m0


def run_tasks(tasks: Sequence[SimTask], jobs: Optional[int] = None) -> List[Any]:
    """Run *tasks*, returning :class:`SystemRun` s in task order."""
    tasks = list(tasks)
    n = jobs if jobs is not None else get_jobs()
    if n <= 1 or len(tasks) <= 1:
        return [_execute(t) for t in tasks]
    with ProcessPoolExecutor(max_workers=min(n, len(tasks))) as pool:
        results = list(pool.map(_execute_counted, tasks))
    from repro.runtime.cache import get_cache

    cache = get_cache()
    for _, hits, misses in results:
        cache.add_counts(hits, misses)
    return [run for run, _, _ in results]
