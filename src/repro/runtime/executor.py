"""Process-pool fan-out for simulation tasks.

``run_tasks`` maps :class:`SimTask` s over a ``ProcessPoolExecutor``
with order-preserving collection, so results come back in task order
regardless of which worker finished first — parallel and serial runs
are indistinguishable to callers.

The default job count comes from the CLI (``--jobs``) or the
``NACHOS_JOBS`` environment variable and defaults to 1 (serial, no pool
spawned).  Workers share the on-disk result cache with the parent, so a
task that another worker already computed is a cheap unpickle.

When sweep profiling is enabled (:mod:`repro.obs.profile`), every task
reports its wall time, the pid of the worker that ran it, and its
result-cache hit/miss delta; each batch reports its wall clock and job
count, from which per-worker utilization follows.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.obs.profile import get_profile

_jobs: Optional[int] = None


def get_jobs() -> int:
    """The effective default parallelism for sweeps."""
    if _jobs is not None:
        return _jobs
    env = os.environ.get("NACHOS_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def set_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default (``None`` restores env/serial)."""
    global _jobs
    _jobs = max(1, jobs) if jobs is not None else None


@dataclass
class SimTask:
    """One (workload, system) simulation request.

    The whole :class:`~repro.workloads.generator.Workload` rides along —
    it is a plain picklable dataclass, and shipping it keeps workers
    stateless (no re-derivation from specs in the child).
    """

    workload: Any
    system: str
    invocations: int
    check: bool = True
    warm: bool = True
    kwargs: dict = field(default_factory=dict)


def _execute(task: SimTask):
    from repro.experiments.common import run_system

    return run_system(
        task.workload,
        task.system,
        invocations=task.invocations,
        check=task.check,
        warm=task.warm,
        **task.kwargs,
    )


def _execute_counted(task: SimTask):
    """Worker wrapper: ship per-task cache-counter deltas, wall time,
    and the worker pid back with the result.  Forked pool workers never
    run ``atexit``, so their hit/miss counts would otherwise vanish;
    each worker runs tasks sequentially, making the delta per task
    exact."""
    from repro.runtime.cache import get_cache

    cache = get_cache()
    h0, m0 = cache.hits, cache.misses
    t0 = time.perf_counter()
    run = _execute(task)
    elapsed = time.perf_counter() - t0
    return run, cache.hits - h0, cache.misses - m0, elapsed, os.getpid()


def _task_label(task: SimTask) -> str:
    workload = task.workload
    name = getattr(workload, "name", None) or getattr(
        getattr(workload, "spec", None), "name", "?"
    )
    return str(name)


def _run_serial_profiled(tasks: List[SimTask]) -> List[Any]:
    from repro.runtime.cache import get_cache

    profile = get_profile()
    cache = get_cache()
    pid = os.getpid()
    out: List[Any] = []
    wall0 = time.perf_counter()
    for task in tasks:
        h0, m0 = cache.hits, cache.misses
        t0 = time.perf_counter()
        out.append(_execute(task))
        profile.record_task(
            _task_label(task),
            task.system,
            time.perf_counter() - t0,
            pid,
            hits=cache.hits - h0,
            misses=cache.misses - m0,
        )
    profile.record_sweep(len(tasks), 1, time.perf_counter() - wall0)
    return out


def run_tasks(tasks: Sequence[SimTask], jobs: Optional[int] = None) -> List[Any]:
    """Run *tasks*, returning :class:`SystemRun` s in task order."""
    tasks = list(tasks)
    n = jobs if jobs is not None else get_jobs()
    profile = get_profile()
    if n <= 1 or len(tasks) <= 1:
        if profile.enabled:
            return _run_serial_profiled(tasks)
        return [_execute(t) for t in tasks]
    wall0 = time.perf_counter()
    with ProcessPoolExecutor(max_workers=min(n, len(tasks))) as pool:
        results = list(pool.map(_execute_counted, tasks))
    wall = time.perf_counter() - wall0
    from repro.runtime.cache import get_cache

    cache = get_cache()
    for _, hits, misses, _, _ in results:
        cache.add_counts(hits, misses)
    if profile.enabled:
        for task, (_, hits, misses, seconds, pid) in zip(tasks, results):
            profile.record_task(
                _task_label(task), task.system, seconds, pid,
                hits=hits, misses=misses,
            )
        profile.record_sweep(len(tasks), min(n, len(tasks)), wall)
    return [run for run, _, _, _, _ in results]
