"""Supervised process fan-out for simulation tasks.

``run_tasks`` maps :class:`SimTask` s over a pool of dedicated worker
processes with order-preserving collection, so results come back in
task order regardless of which worker finished first — parallel and
serial runs are indistinguishable to callers.

Unlike a bare ``ProcessPoolExecutor``, the pool here is *supervised*:
each worker owns a duplex pipe and one in-flight task at a time, and
the parent event loop

* detects worker death mid-task (EOF on the pipe) and replaces the
  worker,
* enforces a per-task wall-clock ``timeout`` by SIGKILLing the hung
  worker,
* treats results that fail to unpickle as corrupt,
* requeues the affected task through a deterministic
  exponential-backoff :class:`~repro.runtime.retry.RetryScheduler`
  until it succeeds or exhausts ``max_retries``, and
* journals completions into the active
  :class:`~repro.runtime.checkpoint.SweepCheckpoint` (if any), so a
  killed sweep resumes instead of restarting.

Terminal failures never abort the sweep mid-flight: every other task
still runs, and the :class:`~repro.runtime.retry.SweepOutcome` carries
the partial results plus machine-readable
:class:`~repro.runtime.retry.TaskFailure` records.  ``run_tasks``
raises :class:`~repro.runtime.retry.SweepError` at the end when any
task failed; ``run_tasks_detailed`` hands back the outcome instead.

Fault injection for all of the above lives in
:mod:`repro.runtime.chaos` (``NACHOS_CHAOS``): workers consult the
seeded spec at task pickup and crash / hang / corrupt themselves on
cue, so the recovery paths are pinned by deterministic tests.

The default job count comes from the CLI (``--jobs``) or the
``NACHOS_JOBS`` environment variable and defaults to 1 (serial, no pool
spawned).  Workers share the on-disk result cache with the parent, so a
task that another worker already computed is a cheap unpickle.

When sweep profiling is enabled (:mod:`repro.obs.profile`), every task
reports its wall time, the pid of the worker that ran it, and its
result-cache hit/miss delta; retries, timeouts, worker crashes, corrupt
results, and checkpoint hits are counted too.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.profile import get_profile
from repro.runtime.chaos import (
    CORRUPT as CHAOS_CORRUPT,
    CRASH as CHAOS_CRASH,
    HANG as CHAOS_HANG,
    ChaosCrash,
    ChaosCorrupt,
    ChaosSpec,
    get_chaos,
)
from repro.runtime.checkpoint import SweepCheckpoint, get_checkpoint
from repro.runtime.retry import (
    CORRUPT,
    CRASH,
    ERROR,
    TIMEOUT,
    RetryPolicy,
    RetryScheduler,
    SweepError,
    SweepOutcome,
    TaskFailure,
)

_jobs: Optional[int] = None
_policy: Optional[RetryPolicy] = None

#: Bytes a chaos-corrupted worker ships instead of its result pickle;
#: ``\x00`` is an invalid pickle opcode, so the supervisor's recv fails.
_CORRUPT_BYTES = b"\x00nachos-chaos-corrupt-result"

#: Exceptions that mean "the bytes on the pipe were not a valid result".
_UNPICKLE_ERRORS = (pickle.UnpicklingError, AttributeError, ImportError, ValueError)


def get_jobs() -> int:
    """The effective default parallelism for sweeps."""
    if _jobs is not None:
        return _jobs
    env = os.environ.get("NACHOS_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def set_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default (``None`` restores env/serial)."""
    global _jobs
    _jobs = max(1, jobs) if jobs is not None else None


def get_policy() -> RetryPolicy:
    """The effective retry/timeout policy for sweeps."""
    if _policy is not None:
        return _policy
    return RetryPolicy.from_env()


def set_policy(policy: Optional[RetryPolicy]) -> None:
    """Set the process-wide policy (``None`` restores env/defaults)."""
    global _policy
    _policy = policy


@dataclass
class SimTask:
    """One (workload, system) simulation request.

    The whole :class:`~repro.workloads.generator.Workload` rides along —
    it is a plain picklable dataclass, and shipping it keeps workers
    stateless (no re-derivation from specs in the child).
    """

    workload: Any
    system: str
    invocations: int
    check: bool = True
    warm: bool = True
    kwargs: dict = field(default_factory=dict)


def _execute(task: SimTask):
    from repro.experiments.common import run_system

    return run_system(
        task.workload,
        task.system,
        invocations=task.invocations,
        check=task.check,
        warm=task.warm,
        **task.kwargs,
    )


def _task_label(task: SimTask) -> str:
    workload = task.workload
    name = getattr(workload, "name", None) or getattr(
        getattr(workload, "spec", None), "name", "?"
    )
    return str(name)


def _checkpoint_key(task: SimTask) -> str:
    from repro.experiments.common import task_fingerprint

    return task_fingerprint(
        task.workload, task.system, task.invocations, task.warm, task.kwargs
    )


def _sigkill_self() -> None:
    """Chaos ``abort``: die the way an external SIGKILL would."""
    sig = getattr(signal, "SIGKILL", None)
    if sig is not None:
        os.kill(os.getpid(), sig)
    os._exit(137)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(conn, parent_conn=None) -> None:
    """Dedicated worker loop: recv one ``(index, attempt, task)``, run
    it, send one result envelope; ``None`` shuts the worker down.

    Chaos faults are applied *here*, in the real worker process, so the
    supervisor sees genuine process death, genuine silence past the
    deadline, and genuine garbage on the pipe.

    Fork-context children inherit every parent-side pipe end that
    existed at fork time — including their *own* — so EOF alone cannot
    signal supervisor death.  The loop therefore polls with a timeout
    and exits when it finds itself re-parented (the supervisor was
    SIGKILLed); otherwise killed sweeps would leave orphan workers
    holding the caller's stdout/stderr pipes open forever.
    """
    from repro.runtime.cache import get_cache

    if parent_conn is not None:  # our own parent-side end (fork context)
        try:
            parent_conn.close()
        except OSError:
            pass
    cache = get_cache()
    chaos = get_chaos()
    supervisor = os.getppid()
    while True:
        try:
            if not conn.poll(1.0):
                if os.getppid() != supervisor:
                    break  # supervisor died; don't linger as an orphan
                continue
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        index, attempt, task = msg
        action = chaos.decide(index, attempt) if chaos else None
        if action == CHAOS_CRASH:
            os._exit(3)
        if action == CHAOS_HANG:
            time.sleep(chaos.hang_seconds)
        h0, m0 = cache.hits, cache.misses
        t0 = time.perf_counter()
        try:
            run = _execute(task)
        except Exception as exc:  # the task itself raised: report, stay up
            conn.send(("err", index, f"{type(exc).__name__}: {exc}"))
            continue
        if action == CHAOS_CORRUPT:
            conn.send_bytes(_CORRUPT_BYTES)
            continue
        # Fork-context workers inherit the parent's enabled profile, so
        # fast-vector engines record their batch/fallback telemetry into
        # this process's collector; drain it into the envelope so the
        # supervisor's rollup sees it (mirrors the cache hit counters).
        profile = get_profile()
        vectors = []
        if profile.vectors:
            vectors = list(profile.vectors)
            profile.vectors.clear()
        conn.send(
            (
                "ok",
                index,
                run,
                cache.hits - h0,
                cache.misses - m0,
                time.perf_counter() - t0,
                os.getpid(),
                vectors,
            )
        )
    try:
        conn.close()
    except OSError:
        pass


@dataclass
class _Worker:
    proc: Any
    conn: Any
    index: Optional[int] = None     # in-flight task index
    deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.index is not None


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context("spawn")


def _spawn_worker(ctx) -> _Worker:
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    # The child gets its own parent-side end too, purely so it can close
    # it (fork inherits the fd; spawn pickles None instead).
    proc = ctx.Process(
        target=_worker_main, args=(child_conn, parent_conn), daemon=True
    )
    proc.start()
    child_conn.close()
    return _Worker(proc=proc, conn=parent_conn)


def _kill_worker(worker: _Worker) -> None:
    try:
        worker.proc.kill()
    except (OSError, AttributeError):
        pass
    worker.proc.join(timeout=5)
    try:
        worker.conn.close()
    except OSError:
        pass


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class _Supervision:
    """Shared bookkeeping between the serial and pooled drivers."""

    def __init__(
        self,
        tasks: List[SimTask],
        policy: RetryPolicy,
        checkpoint: Optional[SweepCheckpoint],
    ) -> None:
        self.tasks = tasks
        self.policy = policy
        self.checkpoint = checkpoint
        self.profile = get_profile()
        # Reclaim tmp debris from earlier runs killed mid-put (ours or a
        # previous process's); live writers are spared by pid check.
        from repro.runtime.cache import get_cache

        get_cache().sweep_stale()
        if checkpoint is not None:
            checkpoint.sweep_stale()
        self.sched = RetryScheduler(len(tasks), policy)
        self.results: List[Optional[Any]] = [None] * len(tasks)
        self.failures: List[TaskFailure] = []
        self.checkpoint_hits = 0
        self.keys: Optional[List[str]] = None
        if checkpoint is not None:
            self.keys = [_checkpoint_key(t) for t in tasks]
            for i, key in enumerate(self.keys):
                value = checkpoint.get(key)
                if value is not checkpoint.MISS:
                    self.results[i] = value
                    self.sched.mark_done(i)
                    self.checkpoint_hits += 1
            if self.profile.enabled and self.checkpoint_hits:
                self.profile.record_checkpoint_hits(self.checkpoint_hits)

    def complete(
        self,
        index: int,
        run: Any,
        hits: int,
        misses: int,
        seconds: float,
        pid: int,
    ) -> None:
        self.results[index] = run
        self.sched.record_success(index)
        if self.checkpoint is not None and self.keys is not None:
            self.checkpoint.put(self.keys[index], run)
        if self.profile.enabled:
            self.profile.record_task(
                _task_label(self.tasks[index]),
                self.tasks[index].system,
                seconds,
                pid,
                hits=hits,
                misses=misses,
            )

    def fail_attempt(self, index: int, kind: str, message: str, now: float
                     ) -> Optional[float]:
        """Record one failed attempt; returns backoff delay or ``None``
        when the task is terminally failed."""
        task = self.tasks[index]
        if self.profile.enabled:
            self.profile.record_fault(_task_label(task), task.system, kind)
        delay = self.sched.record_failure(index, now)
        if delay is None:
            failure = TaskFailure(
                index=index,
                region=_task_label(task),
                system=task.system,
                kind=kind,
                attempts=self.sched.attempts(index) + 1,
                message=message,
            )
            self.failures.append(failure)
            if self.profile.enabled:
                self.profile.record_failure(
                    failure.region, failure.system, kind,
                    failure.attempts, message,
                )
            if self.checkpoint is not None:
                self.checkpoint.record_failure(failure.as_dict())
        return delay

    def outcome(self) -> SweepOutcome:
        return SweepOutcome(
            results=self.results,
            failures=self.failures,
            retries=self.sched.retries,
            checkpoint_hits=self.checkpoint_hits,
        )


def _run_serial(tasks: List[SimTask], policy: RetryPolicy) -> SweepOutcome:
    """In-process driver with the same retry semantics as the pool.

    Serial runs cannot preempt a task, so ``timeout`` is not enforced
    here; chaos ``crash``/``corrupt`` surface as exceptions
    (:class:`ChaosCrash` / :class:`ChaosCorrupt`) and exercise the retry
    path, ``hang`` degenerates to a sleep.
    """
    from repro.runtime.cache import get_cache

    sup = _Supervision(tasks, policy, get_checkpoint())
    chaos = get_chaos()
    cache = get_cache()
    pid = os.getpid()
    profile = sup.profile
    wall0 = time.perf_counter()
    while not sup.sched.finished:
        now = time.monotonic()
        claimed = sup.sched.pop_eligible(now)
        if claimed is None:
            nxt = sup.sched.next_eligible_time()
            if nxt is None:  # nothing pending and nothing running: done
                break
            time.sleep(max(0.0, nxt - now))
            continue
        index, attempt = claimed
        if chaos and attempt == 0 and chaos.decide_abort(index):
            _sigkill_self()
        action = chaos.decide(index, attempt) if chaos else None
        h0, m0 = cache.hits, cache.misses
        t0 = time.perf_counter()
        try:
            if action == CHAOS_CRASH:
                raise ChaosCrash(f"injected crash at task {index}.{attempt}")
            if action == CHAOS_CORRUPT:
                raise ChaosCorrupt(f"injected corrupt at task {index}.{attempt}")
            if action == CHAOS_HANG:
                time.sleep(chaos.hang_seconds)
            run = _execute(tasks[index])
        except Exception as exc:
            if isinstance(exc, ChaosCrash):
                kind = CRASH
            elif isinstance(exc, ChaosCorrupt):
                kind = CORRUPT
            else:
                kind = ERROR
            delay = sup.fail_attempt(index, kind, str(exc), time.monotonic())
            if delay is not None:
                time.sleep(delay)
            continue
        sup.complete(
            index, run, cache.hits - h0, cache.misses - m0,
            time.perf_counter() - t0, pid,
        )
    if profile.enabled:
        profile.record_sweep(len(tasks), 1, time.perf_counter() - wall0)
    return sup.outcome()


def _run_pool(
    tasks: List[SimTask], n: int, policy: RetryPolicy
) -> SweepOutcome:
    """The supervised pool driver (see module docstring)."""
    from repro.runtime.cache import get_cache

    sup = _Supervision(tasks, policy, get_checkpoint())
    chaos = get_chaos()
    cache = get_cache()
    profile = sup.profile
    ctx = _mp_context()
    jobs = min(n, sup.sched.unfinished)
    wall0 = time.perf_counter()
    workers: List[_Worker] = [_spawn_worker(ctx) for _ in range(jobs)]

    def on_ok(worker: _Worker, msg: Tuple) -> None:
        _, index, run, hits, misses, seconds, pid = msg[:7]
        cache.add_counts(hits, misses)
        sup.complete(index, run, hits, misses, seconds, pid)
        if len(msg) > 7 and msg[7] and profile.enabled:
            profile.vectors.extend(msg[7])

    def on_soft_failure(worker: _Worker, kind: str, message: str) -> None:
        # The worker survives (corrupt pickle / in-task exception).
        index = worker.index
        worker.index = None
        worker.deadline = None
        if index is not None:
            sup.fail_attempt(index, kind, message, time.monotonic())

    def on_worker_death(worker: _Worker, kind: str, message: str) -> None:
        index = worker.index
        _kill_worker(worker)
        workers.remove(worker)
        if index is not None:
            sup.fail_attempt(index, kind, message, time.monotonic())
        if sup.sched.unfinished > len(workers):
            workers.append(_spawn_worker(ctx))

    try:
        while not sup.sched.finished:
            now = time.monotonic()
            # -- dispatch eligible tasks onto idle workers ---------------
            for worker in workers:
                if worker.busy:
                    continue
                claimed = sup.sched.pop_eligible(now)
                if claimed is None:
                    break
                index, attempt = claimed
                if chaos and attempt == 0 and chaos.decide_abort(index):
                    _sigkill_self()
                try:
                    worker.conn.send((index, attempt, tasks[index]))
                except (OSError, ValueError):
                    # Worker died while idle; don't burn the attempt.
                    sup.sched.requeue(index)
                    _kill_worker(worker)
                    workers.remove(worker)
                    workers.append(_spawn_worker(ctx))
                    break
                worker.index = index
                worker.deadline = (
                    now + policy.timeout if policy.timeout else None
                )
            # -- wait for results, deadlines, or backoff expiries --------
            busy = [w for w in workers if w.busy]
            wait_until: List[float] = [
                w.deadline for w in busy if w.deadline is not None
            ]
            nxt = sup.sched.next_eligible_time()
            if nxt is not None:
                wait_until.append(nxt)
            timeout = (
                max(0.0, min(wait_until) - time.monotonic())
                if wait_until
                else None
            )
            if busy:
                ready = mp_connection.wait(
                    [w.conn for w in busy], timeout=timeout
                )
            else:
                if sup.sched.finished:
                    break
                if timeout is None:
                    break  # nothing running, nothing pending: all terminal
                time.sleep(timeout)
                ready = []
            by_conn: Dict[Any, _Worker] = {w.conn: w for w in workers}
            for conn in ready:
                worker = by_conn.get(conn)
                if worker is None:
                    continue
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    on_worker_death(
                        worker, CRASH,
                        f"worker pid {worker.proc.pid} died mid-task",
                    )
                    continue
                except _UNPICKLE_ERRORS as exc:
                    on_soft_failure(
                        worker, CORRUPT, f"result failed to unpickle: {exc}"
                    )
                    continue
                if not isinstance(msg, tuple) or not msg:
                    on_soft_failure(worker, CORRUPT, "malformed result envelope")
                    continue
                if msg[0] == "ok":
                    worker.index = None
                    worker.deadline = None
                    on_ok(worker, msg)
                else:
                    on_soft_failure(worker, ERROR, str(msg[2]))
            # -- enforce per-task deadlines ------------------------------
            now = time.monotonic()
            for worker in list(workers):
                if (
                    worker.busy
                    and worker.deadline is not None
                    and now >= worker.deadline
                ):
                    on_worker_death(
                        worker, TIMEOUT,
                        f"task exceeded {policy.timeout:.3g}s timeout; "
                        f"worker pid {worker.proc.pid} killed",
                    )
    finally:
        for worker in workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.proc.join(timeout=2)
            if worker.proc.is_alive():
                _kill_worker(worker)
            else:
                try:
                    worker.conn.close()
                except OSError:
                    pass
    if profile.enabled:
        profile.record_sweep(
            len(tasks), jobs, time.perf_counter() - wall0
        )
    return sup.outcome()


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def run_tasks_detailed(
    tasks: Sequence[SimTask],
    jobs: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
) -> SweepOutcome:
    """Run *tasks* under supervision; never raises on task failure.

    Returns a :class:`SweepOutcome` whose ``results`` align
    index-for-index with *tasks* (``None`` where a task terminally
    failed) plus the failure/retry/checkpoint telemetry.
    """
    tasks = list(tasks)
    n = jobs if jobs is not None else get_jobs()
    pol = policy if policy is not None else get_policy()
    if not tasks:
        return SweepOutcome(results=[])
    if n <= 1 or len(tasks) <= 1:
        return _run_serial(tasks, pol)
    return _run_pool(tasks, n, pol)


def run_tasks(
    tasks: Sequence[SimTask],
    jobs: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
) -> List[Any]:
    """Run *tasks*, returning :class:`SystemRun` s in task order.

    Raises :class:`~repro.runtime.retry.SweepError` (carrying the
    partial :class:`~repro.runtime.retry.SweepOutcome`) if any task
    still failed after bounded retries.
    """
    outcome = run_tasks_detailed(tasks, jobs=jobs, policy=policy)
    if not outcome.ok:
        raise SweepError(outcome)
    return outcome.results
