"""Sweep checkpointing: survive a killed run, resume where it stopped.

A :class:`SweepCheckpoint` is a run-scoped journal of completed task
results, keyed by the same content fingerprints as the result cache
(see :func:`repro.experiments.common.task_fingerprint`).  The
supervised executor consults it before scheduling each task and records
every completion into it with an atomic write-temp-fsync-rename, so a
SIGKILL at any instant leaves either a fully valid entry or none — a
resumed sweep (``nachos-repro ... --resume``) replays completed tasks
from the journal and only runs what is left.

Because keys are content-addressed (and carry ``CACHE_SCHEMA``), a
stale checkpoint can never serve a wrong result — at worst it serves
nothing.  Terminal failures are appended to ``failures.jsonl`` so a
degraded run leaves a machine-readable trail next to its results.

The checkpoint root comes from ``NACHOS_CHECKPOINT_DIR`` or
:func:`configure_checkpoint` (what the CLI's ``--resume`` /
``--checkpoint-dir`` flags call).  Checkpointing is off when neither is
set — the content-addressed result cache already makes plain re-runs
warm; the journal exists for cache-disabled runs and for the failure
trail.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.cache import TMP_MAX_AGE_SECONDS, _tmp_prefix, sweep_stale_tmp

CHECKPOINT_SCHEMA = 1

_MISS = object()


class SweepCheckpoint:
    """Atomic on-disk journal of completed sweep tasks."""

    MISS = _MISS

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.stores = 0

    def _task_path(self, key: str) -> Path:
        return self.root / "tasks" / key[:2] / f"{key}.pkl"

    @property
    def _failures_path(self) -> Path:
        return self.root / "failures.jsonl"

    # -- task results ----------------------------------------------------
    def get(self, key: str) -> Any:
        """The journaled result for *key*, or :data:`SweepCheckpoint.MISS`.

        Defensive on every byte: a truncated or garbage entry (a crash
        mid-write on a filesystem without atomic rename, a partial copy)
        reads as a miss, never as a wrong result.
        """
        try:
            with open(self._task_path(key), "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, ValueError):
            return _MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Atomically journal one completed task (tmp + fsync + rename).

        An unpicklable *value* demotes to "not journaled" (the result
        is merely recomputed on resume), and the tmp file is unlinked
        in a ``finally`` so no failure mode leaks it; a kill between
        ``mkstemp`` and that unlink is reclaimed by
        :meth:`sweep_stale`.
        """
        path = self._task_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=_tmp_prefix(), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            self.stores += 1
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            pass
        finally:
            try:
                os.unlink(tmp)  # already gone on the success path
            except OSError:
                pass

    # -- failure journal -------------------------------------------------
    def record_failure(self, failure_dict: Dict[str, Any]) -> None:
        """Append one terminal failure (JSON line, O_APPEND single write)."""
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(failure_dict, sort_keys=True) + "\n"
        try:
            with open(self._failures_path, "a") as fh:
                fh.write(line)
        except OSError:
            pass

    def failures(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        try:
            with open(self._failures_path) as fh:
                for line in fh:
                    line = line.strip()
                    if line:
                        out.append(json.loads(line))
        except (OSError, ValueError):
            pass
        return out

    # -- manifest --------------------------------------------------------
    def write_manifest(self, meta: Dict[str, Any]) -> None:
        """Atomically write the run manifest (tmp + **fsync** + rename).

        The fsync matters: without it, a power loss shortly after the
        rename can land the rename on disk before the data blocks,
        leaving a valid-looking but empty ``manifest.json``.  Same
        discipline as :meth:`put`.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CHECKPOINT_SCHEMA, **meta}
        fd, tmp = tempfile.mkstemp(
            dir=str(self.root), prefix=_tmp_prefix(), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.root / "manifest.json")
        except (OSError, TypeError, ValueError):
            pass  # unserializable meta / IO error: keep the old manifest
        finally:
            try:
                os.unlink(tmp)  # already gone on the success path
            except OSError:
                pass

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.root / "manifest.json") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def entries(self) -> int:
        tasks = self.root / "tasks"
        if not tasks.is_dir():
            return 0
        return sum(1 for _ in tasks.rglob("*.pkl"))

    def sweep_stale(
        self, max_age_seconds: float = TMP_MAX_AGE_SECONDS
    ) -> int:
        """Reclaim orphaned in-flight ``*.tmp`` files (writers killed
        mid-put); returns how many were removed."""
        return sweep_stale_tmp(self.root, max_age_seconds)

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


# ----------------------------------------------------------------------
# Process-wide checkpoint (None = checkpointing off)
# ----------------------------------------------------------------------
_active: Optional[SweepCheckpoint] = None
_configured = False
#: Memoized env-built instance, keyed by the raw env value, so repeated
#: ``get_checkpoint()`` calls under ``NACHOS_CHECKPOINT_DIR`` share one
#: object and its ``hits``/``stores`` counters accumulate instead of
#: resetting on every call (the profile/metrics telemetry reads them).
_env_instance: Optional[Tuple[str, SweepCheckpoint]] = None


def configure_checkpoint(root: Optional[Path]) -> Optional[SweepCheckpoint]:
    """Install (or with ``None``, remove) the process-wide checkpoint."""
    global _active, _configured, _env_instance
    _active = SweepCheckpoint(root) if root is not None else None
    _configured = True
    _env_instance = None
    return _active


def get_checkpoint() -> Optional[SweepCheckpoint]:
    """The active checkpoint: the configured one, else ``NACHOS_CHECKPOINT_DIR``.

    The env-built instance is cached (and invalidated when the env var
    changes), so its telemetry counters survive across calls.
    """
    global _env_instance
    if _configured:
        return _active
    env = os.environ.get("NACHOS_CHECKPOINT_DIR", "")
    if not env:
        _env_instance = None
        return None
    if _env_instance is None or _env_instance[0] != env:
        _env_instance = (env, SweepCheckpoint(Path(env).expanduser()))
    return _env_instance[1]
