"""Bounded retry with deterministic exponential backoff.

The supervised executor (:mod:`repro.runtime.executor`) never gives up
on a task at the first fault: worker crashes, hangs past the per-task
timeout, corrupt result pickles, and in-task exceptions all requeue the
task through a :class:`RetryScheduler` until it either succeeds or
exhausts ``max_retries`` attempts and becomes a terminal
:class:`TaskFailure`.

Everything here is deterministic and time-injected:

* backoff delays are ``base * factor**attempt`` capped at ``maximum``,
  scaled by a seeded jitter drawn from :func:`stable_unit` — the same
  ``(seed, task, attempt)`` always yields the same delay, in any
  process;
* the scheduler itself never reads a clock; callers pass ``now`` in, so
  tests can drive it with a fake clock and assert the full schedule.

A sweep's outcome is a :class:`SweepOutcome`: the results list (``None``
where a task terminally failed), the failure records, and retry /
checkpoint telemetry.  :func:`repro.runtime.executor.run_tasks` raises
:class:`SweepError` when any task terminally failed;
``run_tasks_detailed`` returns the outcome for callers that want the
partial results (the CLI's graceful-degradation path).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Failure kinds, in the order the chaos harness injects them.
CRASH = "crash"        # worker process died (segfault/OOM-kill class)
TIMEOUT = "timeout"    # task ran past the per-task deadline; worker killed
CORRUPT = "corrupt"    # result arrived but did not unpickle/validate
ERROR = "error"        # the task itself raised an exception

FAILURE_KINDS = (CRASH, TIMEOUT, CORRUPT, ERROR)


def stable_unit(seed: int, *parts: Any) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from ``(seed, parts)``.

    sha256-based, so it is identical across processes and Python hash
    randomization — the chaos harness and the backoff jitter both hang
    off this.
    """
    text = "\x1f".join([str(seed)] + [str(p) for p in parts])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision knobs for one sweep.

    ``timeout`` is the per-task wall-clock budget enforced by the pool
    supervisor (``None`` disables it; serial runs cannot preempt a task
    and therefore never time out).  A task is attempted at most
    ``max_retries + 1`` times.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def backoff(self, key: int, attempt: int) -> float:
        """Delay before retrying *key* after failed attempt *attempt*.

        Deterministic in ``(seed, key, attempt)``; always within
        ``raw * [1 - jitter, 1 + jitter]`` of the capped exponential.
        """
        raw = min(
            self.backoff_base * self.backoff_factor ** attempt, self.backoff_max
        )
        u = stable_unit(self.seed, "backoff", key, attempt)
        return raw * (1.0 + self.jitter * (2.0 * u - 1.0))

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Build a policy from ``NACHOS_TIMEOUT`` / ``NACHOS_MAX_RETRIES``
        / ``NACHOS_BACKOFF_{BASE,FACTOR,MAX,SEED}``."""

        def _float(name: str, default):
            raw = os.environ.get(name, "")
            if not raw:
                return default
            try:
                return float(raw)
            except ValueError:
                return default

        def _int(name: str, default: int) -> int:
            raw = os.environ.get(name, "")
            if not raw:
                return default
            try:
                return int(raw)
            except ValueError:
                return default

        timeout = _float("NACHOS_TIMEOUT", None)
        if timeout is not None and timeout <= 0:
            timeout = None
        return cls(
            timeout=timeout,
            max_retries=max(0, _int("NACHOS_MAX_RETRIES", cls.max_retries)),
            backoff_base=_float("NACHOS_BACKOFF_BASE", cls.backoff_base),
            backoff_factor=_float("NACHOS_BACKOFF_FACTOR", cls.backoff_factor),
            backoff_max=_float("NACHOS_BACKOFF_MAX", cls.backoff_max),
            seed=_int("NACHOS_BACKOFF_SEED", cls.seed),
        )


@dataclass
class TaskFailure:
    """One task that exhausted its retries (machine-readable)."""

    index: int
    region: str
    system: str
    kind: str            # one of FAILURE_KINDS
    attempts: int
    message: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "region": self.region,
            "system": self.system,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
        }


@dataclass
class SweepOutcome:
    """What a supervised sweep produced.

    ``results`` aligns index-for-index with the submitted tasks; entries
    are ``None`` exactly where ``failures`` records a terminal failure.
    """

    results: List[Optional[Any]]
    failures: List[TaskFailure] = field(default_factory=list)
    retries: int = 0
    checkpoint_hits: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_report(self) -> Dict[str, Any]:
        """The machine-readable per-task failure report."""
        return {
            "tasks": len(self.results),
            "completed": sum(1 for r in self.results if r is not None),
            "retries": self.retries,
            "checkpoint_hits": self.checkpoint_hits,
            "failures": [f.as_dict() for f in self.failures],
        }


class SweepError(RuntimeError):
    """Raised by ``run_tasks`` when tasks terminally failed.

    Carries the :class:`SweepOutcome`, so catchers still have the
    partial results and the failure report.
    """

    def __init__(self, outcome: SweepOutcome) -> None:
        self.outcome = outcome
        kinds = ", ".join(
            f"{f.region}/{f.system}: {f.kind} x{f.attempts}"
            for f in outcome.failures[:5]
        )
        more = (
            f" (+{len(outcome.failures) - 5} more)"
            if len(outcome.failures) > 5
            else ""
        )
        super().__init__(
            f"{len(outcome.failures)} task(s) failed after retries: {kinds}{more}"
        )


# Task states
_PENDING = 0
_RUNNING = 1
_DONE = 2
_FAILED = 3


class RetryScheduler:
    """Pure attempt-state machine for a fixed task list.

    Indices ``0..n-1`` move ``pending -> running -> done`` or back to
    ``pending`` (with a backoff-delayed eligibility time) on failure,
    until ``max_retries`` is exhausted and they land in ``failed``.
    Time is injected by the caller, so schedules are reproducible.
    """

    def __init__(self, n_tasks: int, policy: RetryPolicy) -> None:
        self.policy = policy
        self._state = [_PENDING] * n_tasks
        self._attempt = [0] * n_tasks
        self._eligible_at = [0.0] * n_tasks
        self._open = n_tasks
        self.retries = 0
        #: terminally failed (index, attempts-made) pairs, in failure order
        self.terminal: List[Tuple[int, int]] = []

    # -- queries ---------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._open == 0

    @property
    def unfinished(self) -> int:
        return self._open

    def attempts(self, index: int) -> int:
        return self._attempt[index]

    def next_eligible_time(self) -> Optional[float]:
        """Earliest eligibility among pending tasks (None if none pend)."""
        times = [
            self._eligible_at[i]
            for i, s in enumerate(self._state)
            if s == _PENDING
        ]
        return min(times) if times else None

    # -- transitions -----------------------------------------------------
    def pop_eligible(self, now: float) -> Optional[Tuple[int, int]]:
        """Claim the lowest-index pending task whose backoff has elapsed.

        Returns ``(index, attempt)`` and marks it running, or ``None``.
        Lowest-index-first keeps dispatch order deterministic.
        """
        for i, s in enumerate(self._state):
            if s == _PENDING and self._eligible_at[i] <= now:
                self._state[i] = _RUNNING
                return i, self._attempt[i]
        return None

    def mark_done(self, index: int) -> None:
        """Complete a task without running it (checkpoint preload)."""
        if self._state[index] != _DONE:
            self._state[index] = _DONE
            self._open -= 1

    def record_success(self, index: int) -> None:
        self._state[index] = _DONE
        self._open -= 1

    def record_failure(self, index: int, now: float) -> Optional[float]:
        """A running attempt failed.  Returns the backoff delay before
        the next attempt, or ``None`` if retries are exhausted (the task
        is now terminally failed)."""
        attempt = self._attempt[index]
        if attempt >= self.policy.max_retries:
            self._state[index] = _FAILED
            self._open -= 1
            self.terminal.append((index, attempt + 1))
            return None
        delay = self.policy.backoff(index, attempt)
        self._attempt[index] = attempt + 1
        self._eligible_at[index] = now + delay
        self._state[index] = _PENDING
        self.retries += 1
        return delay

    def requeue(self, index: int) -> None:
        """Return a claimed task to the queue without burning an attempt
        (the dispatch itself failed, e.g. a dead worker's pipe)."""
        if self._state[index] == _RUNNING:
            self._state[index] = _PENDING
            self._eligible_at[index] = 0.0
