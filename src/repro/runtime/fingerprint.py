"""Content-addressed fingerprints for graphs, configs, and traces.

Cache keys must depend only on *content*, never on process-local
accidents.  The one such accident in the IR is ``MemObject`` /
``PointerParam`` uids, which come from a global counter and therefore
differ between processes (and between build orders within a process).
:func:`graph_fingerprint` canonicalizes them to dense indices in order
of first appearance before hashing, so two structurally identical
workloads — built in different processes, or rebuilt within one — hash
identically.

Everything else (configs, invocation environments) is hashed as
canonical JSON (sorted keys, no whitespace).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Dict, Iterable, Mapping, Optional

from repro.ir.graph import DFGraph
from repro.ir.serialize import graph_to_dict

#: Bump when the cache payload format or simulation semantics change in
#: a way that invalidates stored results.  Schema 3: simulation keys
#: carry the resolved engine mode (reference vs fast), so cross-mode
#: cache hits can never alias the differential equivalence checks.
#: Schema 4: the ``fast-vector`` mode joined the mode set (its results
#: must never alias either older mode's entries, and vice versa).
#: Schema 5: the stage-5 separation-logic checker joined the pipeline
#: (symbolic MAY pairs may now label NO/MUST, changing enforcement
#: plans), graph payloads grew a sym-bounds table, and configs grew
#: ``use_stage5`` — older entries must not be replayed.
CACHE_SCHEMA = 5


def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_graph_payload(graph: DFGraph) -> Dict[str, Any]:
    """``graph_to_dict`` with uids renumbered densely.

    Objects and params are renumbered by order of first reference while
    walking ops in program order, which is deterministic for any given
    graph content regardless of the global uid counter's state.
    """
    payload = graph_to_dict(graph)
    obj_map: Dict[int, int] = {}
    param_map: Dict[int, int] = {}

    params_by_uid = {p["uid"]: p for p in payload["params"]}

    def map_object(uid: int) -> int:
        if uid not in obj_map:
            obj_map[uid] = len(obj_map)
        return obj_map[uid]

    def map_param(uid: int) -> int:
        if uid not in param_map:
            param_map[uid] = len(param_map)
            # A param pins its runtime object (and provenance) ordering.
            entry = params_by_uid[uid]
            map_object(entry["runtime_object"])
            if entry["provenance"] is not None:
                map_object(entry["provenance"])
        return param_map[uid]

    for op in payload["ops"]:
        addr = op.get("addr")
        if addr is None:
            continue
        base = addr["base"]
        if base["kind"] == "param":
            base["uid"] = map_param(base["uid"])
        else:
            base["uid"] = map_object(base["uid"])

    # Objects/params not reachable from any op keep a stable tail order
    # (sorted by name) after the referenced ones.
    for entry in sorted(payload["objects"], key=lambda e: e["name"]):
        map_object(entry["uid"])
    for entry in sorted(payload["params"], key=lambda e: e["name"]):
        map_param(entry["uid"])

    for entry in payload["objects"]:
        entry["uid"] = obj_map[entry["uid"]]
    for entry in payload["params"]:
        entry["uid"] = param_map[entry["uid"]]
        entry["runtime_object"] = obj_map[entry["runtime_object"]]
        if entry["provenance"] is not None:
            entry["provenance"] = obj_map[entry["provenance"]]
    payload["objects"].sort(key=lambda e: e["uid"])
    payload["params"].sort(key=lambda e: e["uid"])
    return payload


def graph_fingerprint(graph: DFGraph) -> str:
    return _sha256(_canonical_json(canonical_graph_payload(graph)))


def _jsonable(value: Any) -> Any:
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def config_fingerprint(cfg: Optional[Any]) -> str:
    """Fingerprint of a (possibly None) config dataclass."""
    if cfg is None:
        return "none"
    return _sha256(
        _canonical_json({"type": type(cfg).__name__, "fields": _jsonable(cfg)})
    )


def envs_fingerprint(envs: Iterable[Mapping[str, int]]) -> str:
    """Fingerprint of an invocation environment stream."""
    return _sha256(_canonical_json([dict(sorted(e.items())) for e in envs]))


def combine(*parts: str) -> str:
    """Combine part fingerprints (plus the schema version) into a key."""
    return _sha256("\x1f".join((f"schema={CACHE_SCHEMA}",) + tuple(parts)))
