"""Content-addressed on-disk result cache.

Entries are pickled Python objects stored under
``<root>/objects/<key[:2]>/<key>.pkl`` where ``key`` is a sha256 over
the content fingerprints of everything the result depends on (see
:mod:`repro.runtime.fingerprint`).  Writes are atomic (tmp + rename),
so concurrent workers can race on the same key safely — last writer
wins with identical bytes.

Hit/miss counters accumulate in memory and are merged into
``<root>/stats.json`` on process exit, which is what
``nachos-repro cache stats`` reports.

Environment knobs:

* ``NACHOS_CACHE_DIR`` — cache root (default ``~/.cache/nachos-repro``)
* ``NACHOS_CACHE=off``/``0`` — disable reads and writes entirely
"""

from __future__ import annotations

import atexit
import json
import os
import pickle
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

_MISS = object()

#: mkstemp prefix for in-flight writes.  The writer's pid is encoded in
#: the name so a stale-tmp sweep can tell an orphan (writer dead — e.g.
#: a worker SIGKILLed mid-put) from a concurrent writer's live file.
_TMP_PREFIX = ".put-"

#: Age past which a tmp file is swept even when its writer pid cannot
#: be checked (unparsable legacy name, or pid recycled to an unrelated
#: process).  No healthy put holds a tmp open for anywhere near this.
TMP_MAX_AGE_SECONDS = 3600.0


def _tmp_prefix() -> str:
    return f"{_TMP_PREFIX}{os.getpid()}-"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # e.g. EPERM: some process owns the pid
    return True


def _tmp_writer_pid(name: str) -> Optional[int]:
    """The writer pid encoded in a tmp filename, or ``None``."""
    if not name.startswith(_TMP_PREFIX):
        return None
    pid_part = name[len(_TMP_PREFIX):].partition("-")[0]
    try:
        return int(pid_part)
    except ValueError:
        return None


def sweep_stale_tmp(
    root: Path, max_age_seconds: float = TMP_MAX_AGE_SECONDS
) -> int:
    """Remove orphaned ``*.tmp`` files under *root*; return the count.

    A tmp file is an orphan when its writer process is gone (a crash or
    SIGKILL between ``mkstemp`` and the cleanup path) or when it is
    older than *max_age_seconds* (covers unparsable names and recycled
    pids).  Live writers — our own in-flight puts included — are left
    alone.  Best-effort on every syscall: a racing unlink is fine.
    """
    removed = 0
    root = Path(root)
    if not root.is_dir():
        return 0
    now = time.time()
    for path in root.rglob("*.tmp"):
        pid = _tmp_writer_pid(path.name)
        stale = pid is not None and not _pid_alive(pid)
        if not stale:
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            stale = age > max_age_seconds
        if stale:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
    return removed


def default_cache_dir() -> Path:
    env = os.environ.get("NACHOS_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "nachos-repro"


def cache_enabled_by_env() -> bool:
    return os.environ.get("NACHOS_CACHE", "").lower() not in ("off", "0", "false")


class ResultCache:
    """Pickle-backed content-addressed store with hit/miss accounting."""

    def __init__(self, root: Optional[Path] = None, enabled: bool = True) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._stats_registered = False

    # -- paths ----------------------------------------------------------
    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    @property
    def _stats_path(self) -> Path:
        return self.root / "stats.json"

    # -- object store ---------------------------------------------------
    def get(self, key: str) -> Any:
        """Return the stored value for *key*, or ``ResultCache.MISS``."""
        if not self.enabled:
            return _MISS
        path = self._object_path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, ValueError):
            # Truncated or garbage entries (crash mid-write, stale
            # schema) demote to a recomputable miss, never an error.
            self._count(hit=False)
            return _MISS
        self._count(hit=True)
        return value

    def put(self, key: str, value: Any) -> None:
        """Store *value* crash-consistently: tmp + fsync + rename, so a
        process killed mid-put leaves either the complete entry or none
        (a later :meth:`get` of a partial file reads as a miss either
        way).

        An unpicklable *value* (``PicklingError``, or ``TypeError`` for
        e.g. generators/locks) demotes to "not cached" — the cache is
        best-effort — and the tmp file is unlinked in a ``finally`` so
        no failure mode can leak it; only a kill between ``mkstemp``
        and that unlink can, which :func:`sweep_stale_tmp` reclaims.
        """
        if not self.enabled:
            return
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=_tmp_prefix(), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            pass
        finally:
            try:
                os.unlink(tmp)  # already gone on the success path
            except OSError:
                pass

    MISS = _MISS

    # -- accounting -----------------------------------------------------
    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
            if not self._stats_registered:
                self._stats_registered = True
                atexit.register(self.flush_stats)

    def add_counts(self, hits: int, misses: int) -> None:
        """Fold counters observed elsewhere (pool workers) into this cache."""
        if hits == 0 and misses == 0:
            return
        with self._lock:
            self.hits += hits
            self.misses += misses
            if not self._stats_registered:
                self._stats_registered = True
                atexit.register(self.flush_stats)

    def flush_stats(self) -> None:
        """Merge this process's counters into the persisted stats file."""
        with self._lock:
            hits, misses = self.hits, self.misses
            self.hits = 0
            self.misses = 0
        if not self.enabled or (hits == 0 and misses == 0):
            return
        tmp = None
        try:
            persisted = self._read_stats_file()
            persisted["hits"] += hits
            persisted["misses"] += misses
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.root), prefix=_tmp_prefix(), suffix=".tmp"
            )
            with os.fdopen(fd, "w") as fh:
                json.dump(persisted, fh)
            os.replace(tmp, self._stats_path)
        except OSError:
            pass  # stats are best-effort; never fail a run over them
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def _read_stats_file(self) -> Dict[str, int]:
        try:
            with open(self._stats_path) as fh:
                data = json.load(fh)
            return {"hits": int(data.get("hits", 0)), "misses": int(data.get("misses", 0))}
        except (OSError, ValueError):
            return {"hits": 0, "misses": 0}

    def sweep_stale(
        self, max_age_seconds: float = TMP_MAX_AGE_SECONDS
    ) -> int:
        """Reclaim orphaned in-flight ``*.tmp`` files (see
        :func:`sweep_stale_tmp`); returns how many were removed."""
        return sweep_stale_tmp(self.root, max_age_seconds)

    def stats(self) -> Dict[str, Any]:
        """Entry count, on-disk bytes, and cumulative hit/miss counters.

        Also sweeps orphaned ``*.tmp`` files (writers killed mid-put)
        and reports how many were reclaimed / are still in flight.
        """
        swept = self.sweep_stale()
        entries = 0
        size = 0
        tmp_in_flight = 0
        objects = self.root / "objects"
        if objects.is_dir():
            for path in objects.rglob("*"):
                name = path.name
                if name.endswith(".pkl"):
                    entries += 1
                    try:
                        size += path.stat().st_size
                    except OSError:
                        pass
                elif name.endswith(".tmp"):
                    tmp_in_flight += 1
        persisted = self._read_stats_file()
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": entries,
            "bytes": size,
            "stale_tmp_removed": swept,
            "tmp_in_flight": tmp_in_flight,
            "hits": persisted["hits"] + self.hits,
            "misses": persisted["misses"] + self.misses,
            "session_hits": self.hits,
            "session_misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every cached object (and the counters); return count.

        Counts and removes leftover ``*.tmp`` files too — a cleared
        cache directory holds nothing, not even crash debris.
        """
        removed = 0
        objects = self.root / "objects"
        if objects.is_dir():
            removed = sum(
                1
                for p in objects.rglob("*")
                if p.name.endswith((".pkl", ".tmp"))
            )
            shutil.rmtree(objects, ignore_errors=True)
        removed += sweep_stale_tmp(self.root, max_age_seconds=0.0)
        try:
            self._stats_path.unlink()
        except OSError:
            pass
        with self._lock:
            self.hits = 0
            self.misses = 0
        return removed


# ----------------------------------------------------------------------
# Process-wide default cache
# ----------------------------------------------------------------------
_default: Optional[ResultCache] = None


def get_cache() -> ResultCache:
    """The process-wide cache (created lazily from the environment)."""
    global _default
    if _default is None:
        _default = ResultCache(enabled=cache_enabled_by_env())
    return _default


def configure_cache(
    root: Optional[Path] = None, enabled: Optional[bool] = None
) -> ResultCache:
    """Replace the process-wide cache (CLI/tests entry point)."""
    global _default
    current = get_cache()
    _default = ResultCache(
        root=root if root is not None else current.root,
        enabled=enabled if enabled is not None else current.enabled,
    )
    return _default
