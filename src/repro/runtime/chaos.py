"""Deterministic fault injection for the supervised sweep runtime.

Every recovery path in :mod:`repro.runtime.executor` is exercised by
*injected* faults rather than hoped-for ones — the same philosophy as
``tests/test_failure_injection.py``, where broken backends prove the
correctness oracle has teeth.  A :class:`ChaosSpec` decides, purely from
``(seed, task index, attempt)``, whether a given attempt should

* ``crash``   — the worker process exits hard (``os._exit``), as a
  segfault or OOM kill would;
* ``hang``    — the worker sleeps ``hang_seconds`` before working, so a
  per-task timeout must fire to recover;
* ``corrupt`` — the worker computes the result but ships garbage bytes
  that fail to unpickle on the supervisor's side;
* ``abort``   — the *supervisor* SIGKILLs itself just before
  dispatching the marked task (simulates killing a sweep mid-flight;
  the checkpoint/``--resume`` tests are built on it).

Decisions are sha256-seeded (:func:`repro.runtime.retry.stable_unit`),
so a chaos campaign is bit-reproducible across processes and immune to
worker scheduling: task 7's attempt 0 crashes (or doesn't) no matter
which worker draws it or when.

The spec travels through the ``NACHOS_CHAOS`` environment variable so
forked/spawned pool workers inherit it.  Grammar (comma-separated)::

    crash=0.05,hang=0.02,corrupt=0.01,seed=42,hang_s=30,crash@3,corrupt@5:1

``kind=p`` sets a per-attempt probability; ``kind@index`` injects at a
task index (attempt 0); ``kind@index:attempt`` pins the attempt too.
``abort@index`` ignores the attempt (it fires on first dispatch).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.runtime.retry import stable_unit

CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"
ABORT = "abort"

_KINDS = (CRASH, HANG, CORRUPT, ABORT)


class ChaosCrash(RuntimeError):
    """Serial-mode stand-in for a worker process dying."""


class ChaosCorrupt(RuntimeError):
    """Serial-mode stand-in for a corrupt result pickle."""


@dataclass(frozen=True)
class ChaosSpec:
    """A parsed, immutable chaos profile."""

    p_crash: float = 0.0
    p_hang: float = 0.0
    p_corrupt: float = 0.0
    seed: int = 0
    hang_seconds: float = 30.0
    #: explicit (kind, task index, attempt) injection points
    points: Tuple[Tuple[str, int, int], ...] = field(default_factory=tuple)

    @property
    def active(self) -> bool:
        return bool(
            self.p_crash or self.p_hang or self.p_corrupt or self.points
        )

    def decide(self, index: int, attempt: int) -> Optional[str]:
        """The fault (if any) for this attempt — explicit points first,
        then independent seeded draws in crash > hang > corrupt order."""
        for kind, i, a in self.points:
            if kind != ABORT and i == index and a == attempt:
                return kind
        for kind, p in (
            (CRASH, self.p_crash),
            (HANG, self.p_hang),
            (CORRUPT, self.p_corrupt),
        ):
            if p > 0.0 and stable_unit(self.seed, "chaos", kind, index, attempt) < p:
                return kind
        return None

    def decide_abort(self, index: int) -> bool:
        return any(kind == ABORT and i == index for kind, i, _ in self.points)


def parse_chaos(spec: str) -> ChaosSpec:
    """Parse the ``NACHOS_CHAOS`` grammar into a :class:`ChaosSpec`."""
    probs = {CRASH: 0.0, HANG: 0.0, CORRUPT: 0.0}
    seed = 0
    hang_seconds = 30.0
    points = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if "@" in token:
            kind, _, where = token.partition("@")
            kind = kind.strip()
            if kind not in _KINDS:
                raise ValueError(f"unknown chaos kind {kind!r} in {token!r}")
            idx_s, _, att_s = where.partition(":")
            points.append((kind, int(idx_s), int(att_s) if att_s else 0))
        elif "=" in token:
            key, _, value = token.partition("=")
            key = key.strip()
            if key in probs:
                probs[key] = float(value)
            elif key == "seed":
                seed = int(value)
            elif key == "hang_s":
                hang_seconds = float(value)
            else:
                raise ValueError(f"unknown chaos knob {key!r} in {token!r}")
        else:
            raise ValueError(f"unparseable chaos token {token!r}")
    return ChaosSpec(
        p_crash=probs[CRASH],
        p_hang=probs[HANG],
        p_corrupt=probs[CORRUPT],
        seed=seed,
        hang_seconds=hang_seconds,
        points=tuple(points),
    )


# ----------------------------------------------------------------------
# Process-wide spec (environment-backed, override for in-process tests)
# ----------------------------------------------------------------------
_override: Optional[ChaosSpec] = None
_parsed: Optional[Tuple[str, ChaosSpec]] = None  # (env string, spec) memo


def set_chaos(spec: Optional[ChaosSpec]) -> None:
    """Install an in-process override (``None`` restores env lookup).

    Pool *workers* read ``NACHOS_CHAOS`` from their inherited
    environment; an override set only in the parent does not cross the
    process boundary — tests that exercise the pool set the env var.
    """
    global _override
    _override = spec


def get_chaos() -> Optional[ChaosSpec]:
    """The active chaos spec, or ``None`` when chaos is off."""
    global _parsed
    if _override is not None:
        return _override if _override.active else None
    raw = os.environ.get("NACHOS_CHAOS", "")
    if not raw:
        return None
    if _parsed is None or _parsed[0] != raw:
        _parsed = (raw, parse_chaos(raw))
    spec = _parsed[1]
    return spec if spec.active else None
