"""The sweep layer: fan (workload × system) grids out and reassemble.

Figure modules call :func:`sweep_comparisons` (the cached/parallel
equivalent of looping ``compare_systems``) or :func:`sweep_runs` for a
flat list of single-system runs.  Task order — and therefore result
order — is the deterministic row-major (workload, system) order, so
figures render identically at any ``--jobs`` value.

Both entry points run under the supervised executor
(:mod:`repro.runtime.executor`): tasks that crash a worker, hang past
the per-task timeout, or return corrupt results are retried with
deterministic backoff, and completed work is journaled into the active
checkpoint so an interrupted sweep resumes.  When a task exhausts its
retries, a :class:`~repro.runtime.retry.SweepError` propagates with the
partial results attached — the CLI catches it per figure and degrades
to a failure report instead of aborting the whole figure set.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.runtime.executor import SimTask, run_tasks
from repro.runtime.retry import RetryPolicy


def sweep_runs(
    tasks: Sequence[SimTask],
    jobs: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
) -> List[Any]:
    """Run an explicit task list; results align index-for-index."""
    return run_tasks(tasks, jobs=jobs, policy=policy)


def sweep_comparisons(
    workloads: Sequence[Any],
    systems: Optional[Tuple[str, ...]] = None,
    invocations: Optional[int] = None,
    check: bool = True,
    warm: bool = True,
    jobs: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
) -> List[Any]:
    """``compare_systems`` for many workloads, fanned across the pool.

    Returns one :class:`~repro.experiments.common.ComparisonResult` per
    workload, in input order.
    """
    from repro.experiments.common import (
        DEFAULT_INVOCATIONS,
        SYSTEMS,
        ComparisonResult,
    )

    if systems is None:
        systems = SYSTEMS
    if invocations is None:
        invocations = DEFAULT_INVOCATIONS
    tasks = [
        SimTask(w, system, invocations, check=check, warm=warm)
        for w in workloads
        for system in systems
    ]
    runs = run_tasks(tasks, jobs=jobs, policy=policy)
    out: List[Any] = []
    i = 0
    for w in workloads:
        cmp = ComparisonResult(workload=w)
        for system in systems:
            cmp.runs[system] = runs[i]
            i += 1
        out.append(cmp)
    return out
