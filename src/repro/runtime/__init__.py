"""Sweep execution runtime: caching, fingerprints, and the process pool.

Import graph note: :mod:`repro.experiments.common` imports the cache and
fingerprint submodules, and :mod:`repro.runtime.executor` imports
``run_system`` lazily inside the worker function — keep it that way to
avoid an import cycle.
"""

from repro.runtime.cache import ResultCache, configure_cache, get_cache
from repro.runtime.executor import SimTask, get_jobs, run_tasks, set_jobs
from repro.runtime.fingerprint import (
    CACHE_SCHEMA,
    combine,
    config_fingerprint,
    envs_fingerprint,
    graph_fingerprint,
)
from repro.runtime.sweep import sweep_comparisons, sweep_runs

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "SimTask",
    "combine",
    "config_fingerprint",
    "configure_cache",
    "envs_fingerprint",
    "get_cache",
    "get_jobs",
    "graph_fingerprint",
    "run_tasks",
    "set_jobs",
    "sweep_comparisons",
    "sweep_runs",
]
