"""Sweep execution runtime: caching, fingerprints, and the supervised pool.

Import graph note: :mod:`repro.experiments.common` imports the cache and
fingerprint submodules, and :mod:`repro.runtime.executor` imports
``run_system`` / ``task_fingerprint`` lazily inside worker/key functions
— keep it that way to avoid an import cycle.
"""

from repro.runtime.cache import ResultCache, configure_cache, get_cache
from repro.runtime.chaos import ChaosSpec, get_chaos, parse_chaos, set_chaos
from repro.runtime.checkpoint import (
    SweepCheckpoint,
    configure_checkpoint,
    get_checkpoint,
)
from repro.runtime.executor import (
    SimTask,
    get_jobs,
    get_policy,
    run_tasks,
    run_tasks_detailed,
    set_jobs,
    set_policy,
)
from repro.runtime.fingerprint import (
    CACHE_SCHEMA,
    combine,
    config_fingerprint,
    envs_fingerprint,
    graph_fingerprint,
)
from repro.runtime.retry import (
    RetryPolicy,
    RetryScheduler,
    SweepError,
    SweepOutcome,
    TaskFailure,
    stable_unit,
)
from repro.runtime.sweep import sweep_comparisons, sweep_runs

__all__ = [
    "CACHE_SCHEMA",
    "ChaosSpec",
    "ResultCache",
    "RetryPolicy",
    "RetryScheduler",
    "SimTask",
    "SweepCheckpoint",
    "SweepError",
    "SweepOutcome",
    "TaskFailure",
    "combine",
    "config_fingerprint",
    "configure_cache",
    "configure_checkpoint",
    "envs_fingerprint",
    "get_cache",
    "get_chaos",
    "get_checkpoint",
    "get_jobs",
    "get_policy",
    "graph_fingerprint",
    "parse_chaos",
    "run_tasks",
    "run_tasks_detailed",
    "set_chaos",
    "set_jobs",
    "set_policy",
    "stable_unit",
    "sweep_comparisons",
    "sweep_runs",
]
