"""Shared experiment plumbing: build, compile, place, simulate, compare.

The three evaluated systems (paper Section III):

* ``opt-lsq``    — no MDEs; the banked CAM + bloom LSQ orders memory,
* ``nachos-sw``  — full 4-stage pipeline; MAY edges serialized,
* ``nachos``     — full pipeline; MAY edges runtime-checked,

plus the ablation/extension systems:

* ``baseline-sw`` — stages 1+3 only (no inter-procedural, no polyhedral),
  enforced in software (Figure 12),
* ``spec-lsq``    — the store-set speculative LSQ ablation,
* ``serial-mem``  — strictly in-order memory (the Table I CFU class),
* ``oracle-sw``   — software-only with perfect trace-derived alias
  knowledge (the limit study's compiler ceiling).

Compilation never mutates ``workload.graph``: every system compiles
into a :meth:`~repro.ir.graph.DFGraph.clone`, so the workload object
stays pristine across systems and figures (and is safe to ship to
worker processes).

Both compile and simulation results are memoized twice over — an
in-process table for repeat calls within one ``nachos-repro all``, and
the content-addressed on-disk cache (:mod:`repro.runtime.cache`) shared
across processes and invocations.  ``nachos-sw`` and ``nachos`` share
one ``PipelineConfig.full()`` compile; correctness is always computed
on a cache miss and stored, so ``check=False`` callers can share
entries with ``check=True`` callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cgra.config import CGRAConfig
from repro.cgra.placement import Placement, place_region
from repro.compiler.oracle_labels import compile_with_oracle
from repro.compiler.pipeline import AliasPipeline, PipelineConfig, PipelineResult
from repro.ir.graph import DFGraph
from repro.memory.config import HierarchyConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.runtime.cache import ResultCache, get_cache
from repro.runtime.fingerprint import (
    combine,
    config_fingerprint,
    envs_fingerprint,
    graph_fingerprint,
)
from repro.sim.backends.lsq import LSQConfig, OptLSQBackend
from repro.sim.backends.nachos_hw import NachosBackend
from repro.sim.backends.nachos_sw import NachosSWBackend
from repro.sim.backends.serial import SerialMemBackend
from repro.sim.backends.spec_lsq import SpecLSQBackend
from repro.sim.config import EngineConfig
from repro.sim.factory import make_engine, resolve_engine_mode
from repro.sim.oracle import golden_execute
from repro.sim.result import SimResult
from repro.workloads.generator import Workload

SYSTEMS = ("opt-lsq", "nachos-sw", "nachos")

#: Default invocation count per region: enough to reach steady cache
#: behaviour while keeping the whole 27-benchmark sweep fast.
DEFAULT_INVOCATIONS = 40


@dataclass
class SystemRun:
    """One system's simulation of one workload."""

    system: str
    sim: SimResult
    pipeline: Optional[PipelineResult]
    correct: bool
    #: MDE count on the graph this system actually simulated (0 for the
    #: LSQ/serial systems, the oracle's edge count for ``oracle-sw``).
    n_mdes: int = 0


@dataclass
class ComparisonResult:
    """All systems on one workload."""

    workload: Workload
    runs: Dict[str, SystemRun] = field(default_factory=dict)

    def cycles(self, system: str) -> int:
        return self.runs[system].sim.cycles

    def slowdown_pct(self, system: str, baseline: str = "opt-lsq") -> float:
        """Positive = *system* slower than *baseline* (Figure 11/15 axis)."""
        return self.runs[system].sim.slowdown_pct_vs(self.runs[baseline].sim)

    def energy(self, system: str) -> float:
        return self.runs[system].sim.total_energy

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.runs.values())


_KNOWN_SYSTEMS = frozenset(
    SYSTEMS + ("baseline-sw", "spec-lsq", "serial-mem", "oracle-sw")
)


def _pipeline_for(system: str) -> Optional[PipelineConfig]:
    if system in ("opt-lsq", "spec-lsq", "serial-mem", "oracle-sw"):
        return None
    if system == "baseline-sw":
        return PipelineConfig.baseline_compiler()
    return PipelineConfig.full()


def _backend_for(system: str, lsq_config: Optional[LSQConfig]):
    if system == "opt-lsq":
        return OptLSQBackend(lsq_config)
    if system == "spec-lsq":
        return SpecLSQBackend()
    if system in ("nachos-sw", "baseline-sw", "oracle-sw"):
        return NachosSWBackend()
    if system == "nachos":
        return NachosBackend()
    if system == "serial-mem":
        return SerialMemBackend()
    raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")


# ----------------------------------------------------------------------
# In-process memo tables (the on-disk cache sits underneath them)
# ----------------------------------------------------------------------
_compile_memo: Dict[Tuple[str, str], PipelineResult] = {}
_oracle_memo: Dict[Tuple[str, str], Tuple[DFGraph, int]] = {}
_bare_memo: Dict[str, DFGraph] = {}
_placement_memo: Dict[Tuple[str, str], Placement] = {}
_sim_memo: Dict[str, Tuple[SimResult, bool, int]] = {}
# Address streams and the golden model are MDE- and backend-independent:
# every system simulating one (graph, envs) pair consumes identical
# streams and checks against the identical golden result, so both are
# memoized by graph identity (graphs themselves are memoized above,
# held strongly here so an id() can't be recycled under a live entry).
_addr_memo: Dict[Tuple[int, str], Tuple[DFGraph, list]] = {}
_golden_memo: Dict[Tuple[int, str], Tuple[DFGraph, "GoldenResult"]] = {}


def clear_memos() -> None:
    """Drop the in-process memo tables (tests / benchmarks)."""
    _compile_memo.clear()
    _oracle_memo.clear()
    _bare_memo.clear()
    _placement_memo.clear()
    _sim_memo.clear()
    _addr_memo.clear()
    _golden_memo.clear()


def workload_fingerprint(workload: Workload) -> str:
    """Content fingerprint of the workload's (pristine) region graph.

    Memoized on the workload object — valid because nothing in the
    experiment layer mutates ``workload.graph`` anymore.
    """
    fp = getattr(workload, "_content_fp", None)
    if fp is None:
        fp = graph_fingerprint(workload.graph)
        workload._content_fp = fp
    return fp


def task_fingerprint(
    workload: Workload,
    system: str,
    invocations: int,
    warm: bool = True,
    kwargs: Optional[Dict] = None,
) -> str:
    """Content fingerprint of one sweep task (checkpoint journal key).

    Depends only on what determines the task's result — the pristine
    region graph, the system, the invocation count, warmup, and any
    config overrides — never on task order or process accidents, so a
    resumed sweep (:mod:`repro.runtime.checkpoint`) recognizes completed
    work across runs and even across figures that share tasks.
    ``check`` is deliberately excluded: correctness is part of the
    simulated record either way (see :func:`run_system`).
    """
    parts = [
        "sweeptask",
        workload_fingerprint(workload),
        system,
        str(int(invocations)),
        "warm" if warm else "cold",
    ]
    for key in sorted(kwargs or {}):
        parts.append(key)
        parts.append(config_fingerprint((kwargs or {})[key]))
    return combine(*parts)


def _bare_graph(workload: Workload, wfp: str) -> DFGraph:
    """The workload graph with MDEs stripped (runtime-only systems)."""
    graph = _bare_memo.get(wfp)
    if graph is None:
        graph = workload.graph.clone(with_mdes=False)
        _bare_memo[wfp] = graph
    return graph


def compile_workload(
    workload: Workload, cfg: PipelineConfig, cache: Optional[ResultCache] = None
) -> PipelineResult:
    """Run the alias pipeline on a clone of the workload's graph.

    Cached in-process per (workload, config) and on disk, so the full
    pipeline runs once per region per config across every figure —
    ``nachos-sw`` and ``nachos`` share the same ``PipelineConfig.full()``
    result.
    """
    cache = cache if cache is not None else get_cache()
    wfp = workload_fingerprint(workload)
    cfg_fp = config_fingerprint(cfg)
    memo_key = (wfp, cfg_fp)
    result = _compile_memo.get(memo_key)
    if result is not None:
        return result
    key = combine("compile", wfp, cfg_fp)
    result = cache.get(key)
    if result is ResultCache.MISS:
        result = AliasPipeline(cfg).run(workload.graph.clone())
        cache.put(key, result)
    _compile_memo[memo_key] = result
    return result


def _oracle_graph(
    workload: Workload, wfp: str, envs, envs_fp: str, cache: ResultCache
) -> Tuple[DFGraph, int]:
    """Graph annotated by the trace-derived perfect compiler."""
    memo_key = (wfp, envs_fp)
    entry = _oracle_memo.get(memo_key)
    if entry is not None:
        return entry
    key = combine("oracle", wfp, envs_fp)
    entry = cache.get(key)
    if entry is ResultCache.MISS:
        graph = workload.graph.clone(with_mdes=False)
        edges = compile_with_oracle(graph, envs)
        entry = (graph, len(edges))
        cache.put(key, entry)
    _oracle_memo[memo_key] = entry
    return entry


def _placement(wfp: str, graph: DFGraph, cgra_config: Optional[CGRAConfig]) -> Placement:
    """Placement is MDE-blind, so one placement serves every system."""
    key = (wfp, config_fingerprint(cgra_config))
    placement = _placement_memo.get(key)
    if placement is None:
        placement = place_region(graph, cgra_config)
        _placement_memo[key] = placement
    return placement


def run_system(
    workload: Workload,
    system: str,
    invocations: int = DEFAULT_INVOCATIONS,
    check: bool = True,
    hierarchy_config: Optional[HierarchyConfig] = None,
    cgra_config: Optional[CGRAConfig] = None,
    lsq_config: Optional[LSQConfig] = None,
    engine_config: Optional[EngineConfig] = None,
    warm: bool = True,
) -> SystemRun:
    """Compile (as the system requires), place, and simulate one workload.

    ``warm=True`` pre-touches the run's working set *in the shared L2*
    so the measurement reflects steady state (the paper's regions execute
    thousands of iterations and their data is LLC resident); the private
    L1 still filters accesses dynamically, so streaming strides miss L1
    and hit the LLC.

    Results are served from the content-addressed cache when an
    identical (graph, trace, system, configs) combination has run
    before.  Correctness against the golden execution is part of the
    cached record; ``check=False`` merely skips *reporting* it.
    """
    if system not in _KNOWN_SYSTEMS:
        raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")
    cache = get_cache()
    cfg = _pipeline_for(system)
    envs = workload.invocations(invocations)
    wfp = workload_fingerprint(workload)
    envs_fp = envs_fingerprint(envs)

    pipeline_result: Optional[PipelineResult] = None
    if cfg is not None:
        pipeline_result = compile_workload(workload, cfg, cache)

    # The *resolved* mode (config > $NACHOS_ENGINE > default) is part of
    # the cache key: both modes are proven bit-exact, but a cross-mode
    # cache hit would silently turn the differential equivalence suite
    # into a self-comparison.
    engine_mode = resolve_engine_mode(engine_config)
    sim_key = combine(
        "sim",
        wfp,
        envs_fp,
        system,
        "oracle" if system == "oracle-sw" else config_fingerprint(cfg),
        str(invocations),
        "warm" if warm else "cold",
        config_fingerprint(hierarchy_config),
        config_fingerprint(cgra_config),
        config_fingerprint(lsq_config),
        config_fingerprint(engine_config),
        f"engine={engine_mode}",
    )
    record = _sim_memo.get(sim_key)
    if record is None:
        cached = cache.get(sim_key)
        if cached is ResultCache.MISS:
            record = _simulate(
                workload,
                wfp,
                system,
                pipeline_result,
                envs,
                envs_fp,
                hierarchy_config,
                cgra_config,
                lsq_config,
                engine_config,
                engine_mode,
                warm,
                cache,
            )
            cache.put(sim_key, record)
        else:
            record = cached
        _sim_memo[sim_key] = record

    sim, correct, n_mdes = record
    return SystemRun(
        system=system,
        sim=sim,
        pipeline=pipeline_result,
        correct=correct if check else True,
        n_mdes=n_mdes,
    )


def _simulate(
    workload: Workload,
    wfp: str,
    system: str,
    pipeline_result: Optional[PipelineResult],
    envs,
    envs_fp: str,
    hierarchy_config: Optional[HierarchyConfig],
    cgra_config: Optional[CGRAConfig],
    lsq_config: Optional[LSQConfig],
    engine_config: Optional[EngineConfig],
    engine_mode: str,
    warm: bool,
    cache: ResultCache,
) -> Tuple[SimResult, bool, int]:
    if system == "oracle-sw":
        graph, n_mdes = _oracle_graph(workload, wfp, envs, envs_fp, cache)
    elif pipeline_result is not None:
        graph = pipeline_result.graph
        n_mdes = len(graph.mdes)
    else:
        graph = _bare_graph(workload, wfp)
        n_mdes = 0

    placement = _placement(wfp, graph, cgra_config)
    hierarchy = MemoryHierarchy(hierarchy_config)
    backend = _backend_for(system, lsq_config)
    engine = make_engine(
        graph, placement, hierarchy, backend, config=engine_config,
        mode=engine_mode,
    )

    # Evaluate every memory op's address once per invocation *per
    # graph*: the warm loop and the engine consume the same stream, and
    # every system over this (graph, envs) pair reuses it.
    mem_ops = graph.memory_ops
    stream_key = (id(graph), envs_fp)
    hit = _addr_memo.get(stream_key)
    if hit is None or hit[0] is not graph:
        addr_streams = [
            {op.op_id: (op.addr.evaluate(env), op.addr.width) for op in mem_ops}
            for env in envs
        ]
        _addr_memo[stream_key] = (graph, addr_streams)
    else:
        addr_streams = hit[1]
    if warm:
        for amap in addr_streams:
            for op in mem_ops:
                hierarchy.l2.access(amap[op.op_id][0], is_write=op.is_store)
        hierarchy.l2.stats.reset()
    sim = engine.run(envs, region_name=workload.name, addr_streams=addr_streams)

    hit = _golden_memo.get(stream_key)
    if hit is None or hit[0] is not graph:
        golden = golden_execute(graph, envs)
        _golden_memo[stream_key] = (graph, golden)
    else:
        golden = hit[1]
    correct = golden.matches(sim.load_values, sim.memory_image)
    return (sim, correct, n_mdes)


def compare_systems(
    workload: Workload,
    invocations: int = DEFAULT_INVOCATIONS,
    systems: tuple = SYSTEMS,
    check: bool = True,
) -> ComparisonResult:
    """Run every requested system on *workload*."""
    result = ComparisonResult(workload=workload)
    for system in systems:
        result.runs[system] = run_system(
            workload, system, invocations=invocations, check=check
        )
    return result
