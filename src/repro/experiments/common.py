"""Shared experiment plumbing: build, compile, place, simulate, compare.

The three evaluated systems (paper Section III):

* ``opt-lsq``    — no MDEs; the banked CAM + bloom LSQ orders memory,
* ``nachos-sw``  — full 4-stage pipeline; MAY edges serialized,
* ``nachos``     — full pipeline; MAY edges runtime-checked,

plus the Figure 12 ablation:

* ``baseline-sw`` — stages 1+3 only (no inter-procedural, no polyhedral),
  enforced in software.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cgra.config import CGRAConfig
from repro.cgra.placement import place_region
from repro.compiler.pipeline import AliasPipeline, PipelineConfig, PipelineResult
from repro.memory.config import HierarchyConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.backends.lsq import LSQConfig, OptLSQBackend
from repro.sim.backends.nachos_hw import NachosBackend
from repro.sim.backends.nachos_sw import NachosSWBackend
from repro.sim.backends.spec_lsq import SpecLSQBackend
from repro.sim.config import EngineConfig
from repro.sim.engine import DataflowEngine
from repro.sim.oracle import golden_execute
from repro.sim.result import SimResult
from repro.workloads.generator import Workload

SYSTEMS = ("opt-lsq", "nachos-sw", "nachos")

#: Default invocation count per region: enough to reach steady cache
#: behaviour while keeping the whole 27-benchmark sweep fast.
DEFAULT_INVOCATIONS = 40


@dataclass
class SystemRun:
    """One system's simulation of one workload."""

    system: str
    sim: SimResult
    pipeline: Optional[PipelineResult]
    correct: bool


@dataclass
class ComparisonResult:
    """All systems on one workload."""

    workload: Workload
    runs: Dict[str, SystemRun] = field(default_factory=dict)

    def cycles(self, system: str) -> int:
        return self.runs[system].sim.cycles

    def slowdown_pct(self, system: str, baseline: str = "opt-lsq") -> float:
        """Positive = *system* slower than *baseline* (Figure 11/15 axis)."""
        return self.runs[system].sim.slowdown_pct_vs(self.runs[baseline].sim)

    def energy(self, system: str) -> float:
        return self.runs[system].sim.total_energy

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.runs.values())


def _pipeline_for(system: str) -> Optional[PipelineConfig]:
    if system in ("opt-lsq", "spec-lsq"):
        return None
    if system == "baseline-sw":
        return PipelineConfig.baseline_compiler()
    return PipelineConfig.full()


def _backend_for(system: str, lsq_config: Optional[LSQConfig]):
    if system == "opt-lsq":
        return OptLSQBackend(lsq_config)
    if system == "spec-lsq":
        return SpecLSQBackend()
    if system in ("nachos-sw", "baseline-sw"):
        return NachosSWBackend()
    if system == "nachos":
        return NachosBackend()
    raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")


def run_system(
    workload: Workload,
    system: str,
    invocations: int = DEFAULT_INVOCATIONS,
    check: bool = True,
    hierarchy_config: Optional[HierarchyConfig] = None,
    cgra_config: Optional[CGRAConfig] = None,
    lsq_config: Optional[LSQConfig] = None,
    engine_config: Optional[EngineConfig] = None,
    warm: bool = True,
) -> SystemRun:
    """Compile (as the system requires), place, and simulate one workload.

    ``warm=True`` pre-touches the run's working set *in the shared L2*
    so the measurement reflects steady state (the paper's regions execute
    thousands of iterations and their data is LLC resident); the private
    L1 still filters accesses dynamically, so streaming strides miss L1
    and hit the LLC.
    """
    graph = workload.graph
    cfg = _pipeline_for(system)
    pipeline_result: Optional[PipelineResult] = None
    if cfg is None:
        graph.clear_mdes()  # the LSQ disambiguates at runtime
    else:
        pipeline_result = AliasPipeline(cfg).run(graph)

    placement = place_region(graph, cgra_config)
    hierarchy = MemoryHierarchy(hierarchy_config)
    backend = _backend_for(system, lsq_config)
    engine = DataflowEngine(
        graph, placement, hierarchy, backend, config=engine_config
    )
    envs = workload.invocations(invocations)
    if warm:
        for env in envs:
            for op in graph.memory_ops:
                addr = op.addr.evaluate(env)
                hierarchy.l2.access(addr, is_write=op.is_store)
        hierarchy.l2.stats.reset()
    sim = engine.run(envs, region_name=workload.name)

    correct = True
    if check:
        golden = golden_execute(graph, envs)
        correct = golden.matches(sim.load_values, sim.memory_image)
    return SystemRun(system=system, sim=sim, pipeline=pipeline_result, correct=correct)


def compare_systems(
    workload: Workload,
    invocations: int = DEFAULT_INVOCATIONS,
    systems: tuple = SYSTEMS,
    check: bool = True,
) -> ComparisonResult:
    """Run every requested system on *workload*."""
    result = ComparisonResult(workload=workload)
    for system in systems:
        result.runs[system] = run_system(
            workload, system, invocations=invocations, check=check
        )
    return result
