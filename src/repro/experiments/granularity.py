"""Table I quantified: what memory disambiguation buys an accelerator.

The paper's Table I classifies accelerators by how they handle memory:
compound-function-unit designs (CFU, C-Cores) serialize memory in
program order; access/program accelerators use an LSQ; NACHOS decouples
them from both.  This experiment quantifies the taxonomy on our regions:

* ``serial-mem`` — the CFU class: strictly in-order memory, no hardware,
* ``opt-lsq``    — the access-accelerator class,
* ``nachos``     — software-driven, hardware-assisted.

The memory-parallel regions (high MLP, many memory ops) show the CFU
class collapsing — exactly the "increase accelerator granularity"
benefit Table I credits NACHOS with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import ascii_table
from repro.cgra.placement import place_region
from repro.compiler.pipeline import AliasPipeline, PipelineConfig
from repro.experiments.common import DEFAULT_INVOCATIONS
from repro.experiments.regions import workload_for
from repro.memory import MemoryHierarchy
from repro.sim import DataflowEngine, NachosBackend, OptLSQBackend
from repro.sim.backends.serial import SerialMemBackend
from repro.workloads.suite import SUITE


@dataclass
class GranularityRow:
    name: str
    mlp: int
    n_mem: int
    serial_cycles: int
    lsq_cycles: int
    nachos_cycles: int

    @property
    def serial_slowdown_pct(self) -> float:
        if self.nachos_cycles == 0:
            return 0.0
        return 100.0 * (self.serial_cycles - self.nachos_cycles) / self.nachos_cycles


@dataclass
class GranularityResult:
    rows: List[GranularityRow]

    @property
    def worst(self) -> GranularityRow:
        return max(self.rows, key=lambda r: r.serial_slowdown_pct)

    @property
    def mean_serial_slowdown(self) -> float:
        withmem = [r for r in self.rows if r.n_mem > 0]
        if not withmem:
            return 0.0
        return sum(r.serial_slowdown_pct for r in withmem) / len(withmem)


def _simulate(workload, backend, envs, use_mdes: bool) -> int:
    graph = workload.graph
    if use_mdes:
        AliasPipeline(PipelineConfig.full()).run(graph)
    else:
        graph.clear_mdes()
    hierarchy = MemoryHierarchy()
    for env in envs:
        for op in graph.memory_ops:
            hierarchy.l2.access(op.addr.evaluate(env), op.is_store)
    engine = DataflowEngine(graph, place_region(graph), hierarchy, backend)
    return engine.run(envs).cycles


def run(invocations: int = DEFAULT_INVOCATIONS) -> GranularityResult:
    rows: List[GranularityRow] = []
    for spec in SUITE:
        workload = workload_for(spec)
        envs = workload.invocations(invocations)
        rows.append(
            GranularityRow(
                name=spec.name,
                mlp=spec.mlp,
                n_mem=len(workload.graph.memory_ops),
                serial_cycles=_simulate(workload, SerialMemBackend(), envs, False),
                lsq_cycles=_simulate(workload, OptLSQBackend(), envs, False),
                nachos_cycles=_simulate(workload, NachosBackend(), envs, True),
            )
        )
    return GranularityResult(rows=rows)


def render(result: GranularityResult) -> str:
    headers = ["App", "MLP", "#MEM", "serial-mem", "opt-lsq", "nachos", "serial +%"]
    rows = [
        (r.name, r.mlp, r.n_mem, r.serial_cycles, r.lsq_cycles, r.nachos_cycles,
         f"{r.serial_slowdown_pct:+.0f}")
        for r in result.rows
    ]
    title = (
        "Table I quantified: in-order (CFU-class) memory vs LSQ vs NACHOS "
        f"(mean serial slowdown {result.mean_serial_slowdown:.0f}%, "
        f"worst {result.worst.name})"
    )
    return title + "\n" + ascii_table(headers, rows)
