"""Table I quantified: what memory disambiguation buys an accelerator.

The paper's Table I classifies accelerators by how they handle memory:
compound-function-unit designs (CFU, C-Cores) serialize memory in
program order; access/program accelerators use an LSQ; NACHOS decouples
them from both.  This experiment quantifies the taxonomy on our regions:

* ``serial-mem`` — the CFU class: strictly in-order memory, no hardware,
* ``opt-lsq``    — the access-accelerator class,
* ``nachos``     — software-driven, hardware-assisted.

The memory-parallel regions (high MLP, many memory ops) show the CFU
class collapsing — exactly the "increase accelerator granularity"
benefit Table I credits NACHOS with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import ascii_table
from repro.experiments.common import DEFAULT_INVOCATIONS
from repro.experiments.regions import workload_for
from repro.runtime.sweep import sweep_comparisons
from repro.workloads.suite import SUITE

GRANULARITY_SYSTEMS = ("serial-mem", "opt-lsq", "nachos")


@dataclass
class GranularityRow:
    name: str
    mlp: int
    n_mem: int
    serial_cycles: int
    lsq_cycles: int
    nachos_cycles: int

    @property
    def serial_slowdown_pct(self) -> float:
        if self.nachos_cycles == 0:
            return 0.0
        return 100.0 * (self.serial_cycles - self.nachos_cycles) / self.nachos_cycles


@dataclass
class GranularityResult:
    rows: List[GranularityRow]

    @property
    def worst(self) -> GranularityRow:
        return max(self.rows, key=lambda r: r.serial_slowdown_pct)

    @property
    def mean_serial_slowdown(self) -> float:
        withmem = [r for r in self.rows if r.n_mem > 0]
        if not withmem:
            return 0.0
        return sum(r.serial_slowdown_pct for r in withmem) / len(withmem)


def run(invocations: int = DEFAULT_INVOCATIONS) -> GranularityResult:
    workloads = [workload_for(spec) for spec in SUITE]
    comparisons = sweep_comparisons(
        workloads, systems=GRANULARITY_SYSTEMS, invocations=invocations,
        check=False,
    )
    rows: List[GranularityRow] = []
    for spec, cmp in zip(SUITE, comparisons):
        rows.append(
            GranularityRow(
                name=spec.name,
                mlp=spec.mlp,
                n_mem=len(cmp.workload.graph.memory_ops),
                serial_cycles=cmp.cycles("serial-mem"),
                lsq_cycles=cmp.cycles("opt-lsq"),
                nachos_cycles=cmp.cycles("nachos"),
            )
        )
    return GranularityResult(rows=rows)


def render(result: GranularityResult) -> str:
    headers = ["App", "MLP", "#MEM", "serial-mem", "opt-lsq", "nachos", "serial +%"]
    rows = [
        (r.name, r.mlp, r.n_mem, r.serial_cycles, r.lsq_cycles, r.nachos_cycles,
         f"{r.serial_slowdown_pct:+.0f}")
        for r in result.rows
    ]
    title = (
        "Table I quantified: in-order (CFU-class) memory vs LSQ vs NACHOS "
        f"(mean serial slowdown {result.mean_serial_slowdown:.0f}%, "
        f"worst {result.worst.name})"
    )
    return title + "\n" + ascii_table(headers, rows)
