"""Idiom x system matrix: the microbenchmarks under every backend.

Runs the eight memory idioms of :mod:`repro.workloads.micro` through all
five disambiguation backends.  The matrix reads like a design guide:
which idiom needs which machinery — and which machinery pays for itself
where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import ascii_table
from repro.experiments.common import run_system
from repro.workloads.micro import build_micro, micro_names

SYSTEMS = ("serial-mem", "opt-lsq", "spec-lsq", "nachos-sw", "nachos")


@dataclass
class MicroRow:
    name: str
    cycles: Dict[str, int]
    may_mdes: int
    correct: bool

    def best_system(self) -> str:
        return min(self.cycles, key=lambda s: self.cycles[s])


@dataclass
class MicroStudyResult:
    rows: List[MicroRow]

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.rows)


def run(invocations: int = 16) -> MicroStudyResult:
    rows: List[MicroRow] = []
    for name in micro_names():
        workload = build_micro(name)
        cycles: Dict[str, int] = {}
        correct = True
        may_mdes = 0
        for system in SYSTEMS:
            result = run_system(workload, system, invocations=invocations)
            if system == "nachos" and result.pipeline is not None:
                may_mdes = len(result.pipeline.may_mdes)
            cycles[system] = result.sim.cycles
            correct = correct and result.correct
        rows.append(
            MicroRow(name=name, cycles=cycles, may_mdes=may_mdes, correct=correct)
        )
    return MicroStudyResult(rows=rows)


def render(result: MicroStudyResult) -> str:
    headers = ["idiom"] + list(SYSTEMS) + ["MAY MDEs", "best", "ok"]
    rows = [
        tuple(
            [r.name]
            + [r.cycles[s] for s in SYSTEMS]
            + [r.may_mdes, r.best_system(), "y" if r.correct else "N"]
        )
        for r in result.rows
    ]
    return "Microbenchmark idiom x system matrix (cycles)\n" + ascii_table(
        headers, rows
    )
