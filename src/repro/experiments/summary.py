"""The headline report: the paper's claims checked programmatically.

Encodes the evaluation section's claims as data, runs every experiment
once, and reports paper-vs-measured with a pass/fail per claim — the
machine-checked version of EXPERIMENTS.md's summary table.  This is what
``nachos-repro summary`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.analysis.tables import ascii_table
from repro.experiments import (
    appendix_model,
    fig06,
    fig07,
    fig09,
    fig11,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    granularity,
    scope_study,
)
from repro.experiments.common import DEFAULT_INVOCATIONS


@dataclass
class ClaimCheck:
    claim_id: str
    paper: str
    measured: str
    passed: bool


@dataclass
class SummaryResult:
    checks: List[ClaimCheck]

    @property
    def passed(self) -> int:
        return sum(1 for c in self.checks if c.passed)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)


def run(invocations: int = DEFAULT_INVOCATIONS) -> SummaryResult:
    checks: List[ClaimCheck] = []

    def add(claim_id: str, paper: str, measured: str, passed: bool) -> None:
        checks.append(ClaimCheck(claim_id, paper, measured, passed))

    # ------------------------------------------------------------- stage 1
    f6 = fig06.run(top_k=5)
    add(
        "F6/stage1",
        "7 of 27 workloads need no further analysis",
        f"{f6.workloads_fully_resolved} of 27 fully resolved",
        f6.workloads_fully_resolved >= 6,
    )

    # ------------------------------------------------------------- stage 2
    f7 = fig07.run(top_k=5)
    strong = [r.name for r in f7.rows if r.converted_pct >= 20]
    add(
        "F7/stage2",
        "10 workloads refined; 20-80% of MAYs converted in 5",
        f"{len(f7.refined_workloads)} refined; >=20% in {len(strong)}",
        len(f7.refined_workloads) >= 5 and len(strong) >= 4,
    )

    # ------------------------------------------------------------- stage 3
    f9 = fig09.run(top_k=5)
    add(
        "F9/stage3",
        "stage 3 removes ~68% of stage-1 relations",
        f"{f9.mean_removed_pct:.0f}% removed (sound MUST-only pruning)",
        f9.mean_removed_pct >= 25.0,
    )

    # -------------------------------------------------------- performance
    f11 = fig11.run(invocations=invocations)
    slow = set(f11.slowdown_group)
    add(
        "F11/serialization",
        "6 apps slow 18-100% under NACHOS-SW",
        f"{len(slow)} apps slow >4% (worst "
        f"{max(r.slowdown_pct for r in f11.rows):.0f}%)",
        {"soplex", "povray", "fft-2d"} <= slow and f11.all_correct,
    )
    add(
        "F11/speedups",
        "6-7 apps speed up 8-62% (LSQ load-to-use)",
        f"{len(f11.speedup_group)} apps faster than the LSQ by >4%",
        len(f11.speedup_group) >= 1,
    )

    f15 = fig15.run(invocations=invocations)
    worst_nachos = max(r.nachos_pct for r in f15.rows)
    add(
        "F15/nachos-tracks-lsq",
        "19 of 27 within 2.5% of OPT-LSQ; worst ~8% (bzip2/sar-pfa)",
        f"{f15.within_2_5} of 27 within 2.5%; worst {worst_nachos:+.1f}%",
        f15.within_2_5 >= 8 and worst_nachos < 15.0 and f15.all_correct,
    )
    recovered = set(f15.improved_over_sw)
    add(
        "F15/recovery",
        "NACHOS recovers the MAY-serialized group (21-46% gains)",
        f"recovered: {', '.join(sorted(recovered)[:5])}...",
        {"soplex", "povray", "fft-2d", "bzip2"} <= recovered,
    )

    # -------------------------------------------------------------- fan-in
    f14 = fig14.run()
    add(
        "F14/fan-in",
        "9 workloads have no MAY parents; bzip2 ~50-parent fan-ins",
        f"{len(f14.no_may_workloads)} with none; bzip2 max "
        f"{next(r.max_fan_in for r in f14.rows if r.name == 'bzip2')}",
        len(f14.no_may_workloads) >= 9
        and next(r.max_fan_in for r in f14.rows if r.name == "bzip2") >= 20,
    )

    # --------------------------------------------------------------- MDEs
    f16 = fig16.run()
    add(
        "F16/mdes",
        "~54 MDEs mean where any; 15 workloads need none",
        f"{f16.mean_mdes:.0f} mean; {len(f16.zero_mde_workloads)} need none",
        len(f16.zero_mde_workloads) >= 10,
    )

    # -------------------------------------------------------------- energy
    f17 = fig17.run(invocations=invocations)
    add(
        "F17/mde-energy",
        "MDEs ~6% of total; zero in 15 workloads; net 21% saving",
        f"MDE {f17.mean_mde_pct:.1f}% mean; zero in "
        f"{len(f17.zero_overhead_workloads)}; saving {f17.mean_saving_pct:.1f}%",
        len(f17.zero_overhead_workloads) >= 10 and f17.mean_saving_pct > 3.0,
    )
    f18 = fig18.run(invocations=invocations)
    zero_bloom = f18.bloom_table()["0"]
    add(
        "F18/opt-lsq",
        "LSQ = 27% of total energy; 9 benchmarks zero bloom hits",
        f"LSQ {f18.mean_lsq_pct:.1f}% mean; {len(zero_bloom)} zero-hit",
        f18.mean_lsq_pct > 5.0 and len(zero_bloom) >= 6,
    )

    # --------------------------------------------------------------- scope
    scope = scope_study.run()
    worst3 = {r.name for r in sorted(scope.rows, key=lambda r: r.factor, reverse=True)[:3]}
    add(
        "S4A/scope",
        "bzip2/povray/soplex blow up 380x/100x/85x when scope widens",
        f"worst three: {', '.join(sorted(worst3))}",
        worst3 == {"bzip2", "povray", "soplex"},
    )

    # ------------------------------------------------------------ appendix
    apx = appendix_model.run()
    add(
        "APX/limit-model",
        "7 benchmarks above 1 MAY/op; all below the breakeven 6",
        f"{len(apx.over_ratio_1)} above 1; breakeven {apx.model.breakeven_ratio:.0f}",
        3 <= len(apx.over_ratio_1) <= 9,
    )

    # --------------------------------------------------------- granularity
    gran = granularity.run(invocations=invocations)
    add(
        "T1/granularity",
        "in-order (CFU-class) memory limits accelerator granularity",
        f"serial-mem mean slowdown {gran.mean_serial_slowdown:.0f}% vs NACHOS",
        gran.mean_serial_slowdown > 50.0,
    )

    return SummaryResult(checks=checks)


def render(result: SummaryResult) -> str:
    headers = ["claim", "paper", "measured", "ok"]
    rows = [
        (c.claim_id, c.paper, c.measured, "PASS" if c.passed else "FAIL")
        for c in result.checks
    ]
    title = (
        f"Reproduction summary: {result.passed}/{len(result.checks)} "
        "shape claims hold"
    )
    return title + "\n" + ascii_table(headers, rows)
