"""Figure 16 — MDEs enforced: NACHOS vs the baseline compiler.

Per benchmark (hottest region): the number of MDEs the full NACHOS
pipeline enforces, as a fraction of what the baseline compiler (stages
1+3 only) would enforce — lower is better — split by MAY/MUST.  The
paper's headline: 7--296 MDEs where any are needed, ~54 on average, and
for fft-2d/povray under 20% of the baseline's count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table, bar
from repro.compiler.pipeline import PipelineConfig
from repro.experiments.regions import compiled_region
from repro.workloads.suite import SUITE


@dataclass
class Fig16Row:
    name: str
    nachos_mdes: int
    nachos_may: int
    nachos_must: int
    baseline_mdes: int

    @property
    def fraction(self) -> float:
        if self.baseline_mdes == 0:
            return 0.0
        return self.nachos_mdes / self.baseline_mdes


@dataclass
class Fig16Result:
    rows: List[Fig16Row]

    @property
    def mean_mdes(self) -> float:
        with_mdes = [r.nachos_mdes for r in self.rows if r.nachos_mdes]
        return sum(with_mdes) / len(with_mdes) if with_mdes else 0.0

    @property
    def zero_mde_workloads(self) -> List[str]:
        return [r.name for r in self.rows if r.nachos_mdes == 0]


def run() -> Fig16Result:
    baseline_cfg = PipelineConfig.baseline_compiler()
    rows: List[Fig16Row] = []
    for spec in SUITE:
        full = compiled_region(spec)
        base = compiled_region(spec, config=baseline_cfg)
        rows.append(
            Fig16Row(
                name=spec.name,
                nachos_mdes=len(full.mdes),
                nachos_may=len(full.may_mdes),
                nachos_must=len(full.must_mdes),
                baseline_mdes=len(base.mdes),
            )
        )
    return Fig16Result(rows=rows)


def render(result: Fig16Result) -> str:
    headers = ["App", "NACHOS", "MAY", "MUST", "baseline", "frac", ""]
    rows = [
        (r.name, r.nachos_mdes, r.nachos_may, r.nachos_must, r.baseline_mdes,
         f"{r.fraction:.2f}", bar(r.fraction, 1.0))
        for r in result.rows
    ]
    title = (
        "Figure 16: MDEs enforced, NACHOS vs baseline compiler "
        f"(mean {result.mean_mdes:.0f} MDEs where any; "
        f"{len(result.zero_mde_workloads)} workloads need none)"
    )
    return title + "\n" + ascii_table(headers, rows)
