"""Figure 9 — stage 3: alias relations retained after simplification.

For each benchmark's top-5 paths: the fraction of enforceable (MUST or
MAY) relations that survive the reachability-based redundancy pruning,
split by label.  The paper's headline: stage 3 removes ~68% of relations
on average, up to 84% (fft-2d).

Measured on the stages 1+2 labeling (stage 4 runs after in our pipeline;
including it would conflate label refinement with pruning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table, bar
from repro.compiler.labels import AliasLabel
from repro.compiler.pipeline import PipelineConfig
from repro.experiments.regions import compile_suite

_CONFIG = PipelineConfig(use_stage2=True, use_stage3=True, use_stage4=False)


@dataclass
class Fig9Row:
    name: str
    retained_pct: float       # of enforceable relations
    retained_may_pct: float
    retained_must_pct: float
    removed: int


@dataclass
class Fig9Result:
    rows: List[Fig9Row]

    @property
    def mean_removed_pct(self) -> float:
        relevant = [r for r in self.rows if r.retained_pct or r.removed]
        if not relevant:
            return 0.0
        return sum(100.0 - r.retained_pct for r in relevant) / len(relevant)


def run(top_k: int = 5) -> Fig9Result:
    rows: List[Fig9Row] = []
    for region_set in compile_suite(top_k=top_k, config=_CONFIG):
        enforceable = retained_may = retained_must = removed = 0
        for result in region_set.results:
            # Denominator per the paper's caption: all relations stage 1
            # determined (so stage-2 MAY->NO conversions also count as
            # simplification).
            s1 = result.stage1
            enforceable += s1.count(AliasLabel.MAY) + s1.count(AliasLabel.MUST)
            retained_may += len(result.plan.retained_may)
            retained_must += len(result.plan.retained_must)
            removed += result.plan.removed
        retained = retained_may + retained_must
        rows.append(
            Fig9Row(
                name=region_set.spec.name,
                retained_pct=100.0 * retained / enforceable if enforceable else 0.0,
                retained_may_pct=100.0 * retained_may / enforceable if enforceable else 0.0,
                retained_must_pct=100.0 * retained_must / enforceable if enforceable else 0.0,
                removed=removed,
            )
        )
    return Fig9Result(rows=rows)


def render(result: Fig9Result) -> str:
    headers = ["App", "%retained", "%MAY", "%MUST", "removed", ""]
    rows = [
        (r.name, f"{r.retained_pct:.1f}", f"{r.retained_may_pct:.1f}",
         f"{r.retained_must_pct:.1f}", r.removed, bar(r.retained_pct, 100.0))
        for r in result.rows
    ]
    title = (
        "Figure 9: relations retained after stage-3 simplification "
        f"(mean removed: {result.mean_removed_pct:.0f}%)"
    )
    return title + "\n" + ascii_table(headers, rows)
