"""Figure 15 — NACHOS vs OPT-LSQ (with the NACHOS-SW marker).

Per benchmark (hottest region): NACHOS's slowdown/speedup against the
optimized LSQ, alongside NACHOS-SW's (the marker in the paper's plot).
The paper's headline: 19 benchmarks within 2.5% of OPT-LSQ; 6 speed up
6--70%; bzip2 and sar-pfa-interp1 slow ~8% from comparator fan-in
contention; NACHOS recovers what MAY serialization cost NACHOS-SW.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table
from repro.experiments.common import DEFAULT_INVOCATIONS
from repro.experiments.regions import workload_for
from repro.runtime.sweep import sweep_comparisons
from repro.workloads.suite import SUITE


@dataclass
class Fig15Row:
    name: str
    nachos_pct: float       # vs OPT-LSQ; positive = slower
    nachos_sw_pct: float
    lsq_cycles: int
    comparator_checks: int
    runtime_forwards: int
    correct: bool


@dataclass
class Fig15Result:
    rows: List[Fig15Row]

    @property
    def within_2_5(self) -> int:
        return sum(1 for r in self.rows if abs(r.nachos_pct) <= 2.5)

    @property
    def improved_over_sw(self) -> List[str]:
        return [
            r.name for r in self.rows if r.nachos_sw_pct - r.nachos_pct > 2.0
        ]

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.rows)


def run(invocations: int = DEFAULT_INVOCATIONS) -> Fig15Result:
    workloads = [workload_for(spec) for spec in SUITE]
    comparisons = sweep_comparisons(workloads, invocations=invocations)
    rows: List[Fig15Row] = []
    for spec, cmp in zip(SUITE, comparisons):
        stats = cmp.runs["nachos"].sim.backend_stats
        rows.append(
            Fig15Row(
                name=spec.name,
                nachos_pct=cmp.slowdown_pct("nachos"),
                nachos_sw_pct=cmp.slowdown_pct("nachos-sw"),
                lsq_cycles=cmp.cycles("opt-lsq"),
                comparator_checks=stats.comparator_checks,
                runtime_forwards=stats.runtime_forwards,
                correct=cmp.all_correct,
            )
        )
    return Fig15Result(rows=rows)


def render(result: Fig15Result) -> str:
    headers = ["App", "NACHOS %", "NACHOS-SW %", "==? checks", "rt-fwd", "ok"]
    rows = [
        (r.name, f"{r.nachos_pct:+.1f}", f"{r.nachos_sw_pct:+.1f}",
         r.comparator_checks, r.runtime_forwards, "y" if r.correct else "N")
        for r in result.rows
    ]
    title = (
        f"Figure 15: NACHOS vs OPT-LSQ ({result.within_2_5}/27 within 2.5%; "
        f"NACHOS > NACHOS-SW in: {', '.join(result.improved_over_sw) or 'none'})"
    )
    return title + "\n" + ascii_table(headers, rows)
