"""Export experiment results as JSON for downstream analysis."""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict


def result_to_dict(name: str, result: Any) -> Dict[str, Any]:
    """Serialize an experiment result (all results are dataclasses)."""
    if not dataclasses.is_dataclass(result):
        raise TypeError(f"{name}: expected a dataclass result, got {type(result)}")
    payload = dataclasses.asdict(result)
    return {"experiment": name, "result": payload}


def result_to_json(name: str, result: Any, indent: int = 2) -> str:
    return json.dumps(result_to_dict(name, result), indent=indent, default=str)


def save_json(name: str, result: Any, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(result_to_json(name, result))
