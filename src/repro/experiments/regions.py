"""Region materialization shared by the compile-time figures.

Figures 6/7/9/14/16 and Table II operate on compiled regions only (no
cycle simulation).  This module materializes the 135-region corpus (27
benchmarks x top-5 paths) and compiles each with a configurable pipeline,
caching per (benchmark, path, config) within one process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.pipeline import AliasPipeline, PipelineConfig, PipelineResult
from repro.workloads.generator import Workload, build_workload
from repro.workloads.suite import SUITE
from repro.workloads.spec import BenchmarkSpec

_workload_cache: Dict[Tuple[str, int], Workload] = {}
_pipeline_cache: Dict[Tuple[str, int, PipelineConfig], PipelineResult] = {}


def workload_for(spec: BenchmarkSpec, path_index: int = 0) -> Workload:
    key = (spec.name, path_index)
    if key not in _workload_cache:
        _workload_cache[key] = build_workload(spec, path_index)
    return _workload_cache[key]


def compiled_region(
    spec: BenchmarkSpec,
    path_index: int = 0,
    config: Optional[PipelineConfig] = None,
) -> PipelineResult:
    cfg = config or PipelineConfig.full()
    key = (spec.name, path_index, cfg)
    if key not in _pipeline_cache:
        workload = workload_for(spec, path_index)
        # apply_mdes=False: compile-only figures must not leave one
        # config's MDEs installed on the shared cached graph.
        _pipeline_cache[key] = AliasPipeline(cfg).run(workload.graph, apply_mdes=False)
    return _pipeline_cache[key]


@dataclass
class RegionSet:
    """Compiled top-k regions of one benchmark."""

    spec: BenchmarkSpec
    results: List[PipelineResult]


def compile_suite(
    top_k: int = 5, config: Optional[PipelineConfig] = None
) -> List[RegionSet]:
    """Compile the top-*k* regions of every benchmark (135 at k=5)."""
    out = []
    for spec in SUITE:
        results = [compiled_region(spec, k, config) for k in range(top_k)]
        out.append(RegionSet(spec=spec, results=results))
    return out


def clear_caches() -> None:
    _workload_cache.clear()
    _pipeline_cache.clear()
