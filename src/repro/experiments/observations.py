"""Section IV's workload observations, measured.

The paper's motivation rests on three measured observations about
acceleration regions:

* **Observation 1** — the compiler can promote a notable fraction of
  memory operations to a scratchpad (12 of 28 apps promote >20%),
* **Observation 2** — heap/global accesses rarely conflict at runtime
  (only 5 of 27 workloads have store-load dependencies; most LSQ checks
  are for independent operations),
* **Observation 3** — memory-op counts and MLP vary wildly across
  workloads (0–38% memory ops, MLP 2–128), so a fixed-size LSQ is
  always wrong for someone.

This experiment reproduces all three from the generated suite using the
dynamic profiler (:mod:`repro.workloads.characterize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table
from repro.experiments.regions import workload_for
from repro.workloads.characterize import measured_mlp, profile_workload
from repro.workloads.suite import SUITE


@dataclass
class ObservationRow:
    name: str
    pct_mem: float            # memory ops / total ops (Obs 3)
    promoted_pct: float       # scratchpad promotion (Obs 1)
    measured_mlp: int         # achievable MLP (Obs 3)
    conflict_density: float   # runtime conflicts / relevant checks (Obs 2)
    footprint_kb: float


@dataclass
class ObservationsResult:
    rows: List[ObservationRow]

    # -- Observation 1 --------------------------------------------------
    @property
    def heavy_promoters(self) -> List[str]:
        return [r.name for r in self.rows if r.promoted_pct > 15.0]

    # -- Observation 2 --------------------------------------------------
    @property
    def mean_conflict_density(self) -> float:
        withmem = [r for r in self.rows if r.pct_mem > 0]
        if not withmem:
            return 0.0
        return sum(r.conflict_density for r in withmem) / len(withmem)

    @property
    def conflicting_workloads(self) -> List[str]:
        return [r.name for r in self.rows if r.conflict_density > 0.01]

    # -- Observation 3 --------------------------------------------------
    @property
    def mlp_range(self) -> tuple:
        mlps = [r.measured_mlp for r in self.rows if r.measured_mlp > 0]
        return (min(mlps), max(mlps)) if mlps else (0, 0)

    @property
    def mem_pct_range(self) -> tuple:
        return (
            min(r.pct_mem for r in self.rows),
            max(r.pct_mem for r in self.rows),
        )


def run(invocations: int = 24) -> ObservationsResult:
    rows: List[ObservationRow] = []
    for spec in SUITE:
        workload = workload_for(spec)
        profile = profile_workload(workload, invocations=invocations)
        total_mem_raw = profile.n_mem + workload.n_promoted
        rows.append(
            ObservationRow(
                name=spec.name,
                pct_mem=100.0 * profile.n_mem / profile.n_ops
                if profile.n_ops
                else 0.0,
                promoted_pct=100.0 * workload.n_promoted / total_mem_raw
                if total_mem_raw
                else 0.0,
                measured_mlp=profile.measured_mlp,
                conflict_density=profile.conflict_density,
                footprint_kb=profile.footprint_bytes / 1024.0,
            )
        )
    return ObservationsResult(rows=rows)


def render(result: ObservationsResult) -> str:
    headers = ["App", "%MEM", "%promoted", "MLP", "conflict density", "footprint KB"]
    rows = [
        (r.name, f"{r.pct_mem:.1f}", f"{r.promoted_pct:.0f}", r.measured_mlp,
         f"{r.conflict_density:.4f}", f"{r.footprint_kb:.1f}")
        for r in result.rows
    ]
    lo, hi = result.mlp_range
    mlo, mhi = result.mem_pct_range
    title = (
        "Section IV observations, measured: "
        f"Obs1 {len(result.heavy_promoters)} heavy promoters; "
        f"Obs2 mean conflict density {result.mean_conflict_density:.4f} "
        f"(conflicting: {', '.join(result.conflicting_workloads) or 'none'}); "
        f"Obs3 MLP {lo}-{hi}, %MEM {mlo:.0f}-{mhi:.0f}"
    )
    return title + "\n" + ascii_table(headers, rows)
