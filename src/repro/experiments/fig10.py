"""Figure 10 — %MEM vs %MAY scatter.

Per benchmark (hottest region): the percentage of region operations that
are memory operations, and the percentage of memory operations carrying
at least one unresolved MAY relation after the full pipeline.  Workloads
where NACHOS-SW's fate is decided live in the high-%MEM half: high %MAY
there means slowdown, low %MAY means the compiler found the parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table
from repro.experiments.regions import compiled_region, workload_for
from repro.workloads.suite import SUITE


@dataclass
class Fig10Row:
    name: str
    pct_mem: float
    pct_may_ops: float


@dataclass
class Fig10Result:
    rows: List[Fig10Row]  # sorted by %MAY, as in the paper's x-axis


def run() -> Fig10Result:
    rows: List[Fig10Row] = []
    for spec in SUITE:
        workload = workload_for(spec)
        result = compiled_region(spec)
        graph = workload.graph
        n_mem = len(graph.memory_ops)
        may_ops = set()
        for edge in result.may_mdes:
            may_ops.add(edge.src)
            may_ops.add(edge.dst)
        rows.append(
            Fig10Row(
                name=spec.name,
                pct_mem=100.0 * n_mem / len(graph) if len(graph) else 0.0,
                pct_may_ops=100.0 * len(may_ops) / n_mem if n_mem else 0.0,
            )
        )
    rows.sort(key=lambda r: r.pct_may_ops)
    return Fig10Result(rows=rows)


def render(result: Fig10Result) -> str:
    headers = ["App", "%MEM", "%MAY ops"]
    rows = [(r.name, f"{r.pct_mem:.1f}", f"{r.pct_may_ops:.1f}") for r in result.rows]
    return (
        "Figure 10: %MEM (memory ops) vs %MAY (ops with MAY relations), "
        "sorted by %MAY\n" + ascii_table(headers, rows)
    )
