"""Seed-variance study: are the headline numbers trace-robust?

Every workload is synthetic: its region layout and invocation trace are
drawn from a seeded generator.  This study rebuilds a set of benchmarks
under several seeds and reports the spread of the headline metric
(NACHOS-SW and NACHOS slowdown vs OPT-LSQ).  The conclusions should be
properties of the benchmark's *structure*, not of one lucky draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.stats import mean
from repro.analysis.tables import ascii_table
from repro.runtime.sweep import sweep_comparisons
from repro.workloads.generator import build_workload
from repro.workloads.suite import get_spec

DEFAULT_BENCHES = ("soplex", "histogram", "464.h264ref", "equake", "bzip2")
DEFAULT_SEEDS = (11, 23, 37, 51, 73)


@dataclass
class VarianceRow:
    name: str
    sw_samples: List[float]
    nachos_samples: List[float]
    correct: bool

    @property
    def sw_mean(self) -> float:
        return mean(self.sw_samples)

    @property
    def sw_spread(self) -> float:
        return max(self.sw_samples) - min(self.sw_samples)

    @property
    def nachos_mean(self) -> float:
        return mean(self.nachos_samples)

    @property
    def sign_stable(self) -> bool:
        """All samples agree on which side of +/-4% the benchmark sits."""
        def cls(x: float) -> int:
            return 1 if x > 4.0 else (-1 if x < -4.0 else 0)

        kinds = {cls(x) for x in self.sw_samples}
        return len(kinds) == 1 or kinds <= {0, 1} or kinds <= {0, -1}


@dataclass
class VarianceResult:
    rows: List[VarianceRow]
    seeds: Sequence[int]

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.rows)

    @property
    def all_sign_stable(self) -> bool:
        return all(r.sign_stable for r in self.rows)


def run(
    invocations: int = 16,
    benches: Sequence[str] = DEFAULT_BENCHES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> VarianceResult:
    workloads = [
        build_workload(get_spec(name), seed=seed)
        for name in benches
        for seed in seeds
    ]
    comparisons = sweep_comparisons(workloads, invocations=invocations)
    rows: List[VarianceRow] = []
    for i, name in enumerate(benches):
        per_bench = comparisons[i * len(seeds) : (i + 1) * len(seeds)]
        sw = [cmp.slowdown_pct("nachos-sw") for cmp in per_bench]
        nachos = [cmp.slowdown_pct("nachos") for cmp in per_bench]
        correct = all(cmp.all_correct for cmp in per_bench)
        rows.append(
            VarianceRow(
                name=name, sw_samples=sw, nachos_samples=nachos, correct=correct
            )
        )
    return VarianceResult(rows=rows, seeds=seeds)


def render(result: VarianceResult) -> str:
    headers = ["App", "SW mean %", "SW min..max", "NACHOS mean %", "stable", "ok"]
    rows = [
        (
            r.name,
            f"{r.sw_mean:+.1f}",
            f"{min(r.sw_samples):+.0f}..{max(r.sw_samples):+.0f}",
            f"{r.nachos_mean:+.1f}",
            "y" if r.sign_stable else "N",
            "y" if r.correct else "N",
        )
        for r in result.rows
    ]
    title = (
        f"Seed-variance study over {len(result.seeds)} generator seeds "
        "(conclusions must not depend on one draw)"
    )
    return title + "\n" + ascii_table(headers, rows)
