"""End-to-end offload study: the hybrid executable's bottom line.

Puts the whole Figure-3 system together: the NACHOS-compiled CGRA on one
side, the 4-way OOO host model on the other, memory fences in between,
and NEEDLE's profile weights deciding how much of the program each path
covers.  Per benchmark: the per-path EDP-based offload decisions over
the top-5 regions, and the resulting end-to-end program speedup and
energy ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table
from repro.experiments.regions import workload_for
from repro.offload import HostCoreModel, plan_offload
from repro.runtime.executor import SimTask
from repro.runtime.sweep import sweep_runs
from repro.workloads.suite import SUITE


@dataclass
class OffloadRow:
    name: str
    offloaded_paths: int
    total_paths: int
    covered_weight: float
    mean_energy_ratio: float      # accel/host on offloaded paths
    program_speedup: float
    program_energy_ratio: float


@dataclass
class OffloadResult:
    rows: List[OffloadRow]

    @property
    def all_offload_something(self) -> bool:
        return all(
            r.offloaded_paths > 0 for r in self.rows if r.total_paths > 0
        )

    @property
    def mean_program_energy_ratio(self) -> float:
        return sum(r.program_energy_ratio for r in self.rows) / len(self.rows)


def run(invocations: int = 12, top_k: int = 3, system: str = "nachos") -> OffloadResult:
    host = HostCoreModel.paper_default()
    all_paths = [
        [workload_for(spec, k) for k in range(top_k)] for spec in SUITE
    ]
    runs = sweep_runs(
        [
            SimTask(w, system, invocations, check=False)
            for paths in all_paths
            for w in paths
        ]
    )
    rows: List[OffloadRow] = []
    for i, spec in enumerate(SUITE):
        paths = all_paths[i]
        accel_cycles = {}
        accel_energy = {}
        for workload, run_result in zip(paths, runs[i * top_k : (i + 1) * top_k]):
            sim = run_result.sim
            accel_cycles[workload.name] = sim.mean_invocation_cycles
            accel_energy[workload.name] = sim.total_energy / max(1, sim.invocations)
        plan = plan_offload(paths, accel_cycles, accel_energy, host=host)
        offloaded = plan.offloaded
        rows.append(
            OffloadRow(
                name=spec.name,
                offloaded_paths=len(offloaded),
                total_paths=len(paths),
                covered_weight=plan.covered_weight,
                mean_energy_ratio=(
                    sum(d.energy_ratio for d in offloaded) / len(offloaded)
                    if offloaded
                    else 1.0
                ),
                program_speedup=plan.program_speedup(),
                program_energy_ratio=plan.program_energy_ratio(),
            )
        )
    return OffloadResult(rows=rows)


def render(result: OffloadResult) -> str:
    headers = [
        "App", "offloaded", "coverage", "E(accel/host)", "prog speedup",
        "prog energy",
    ]
    rows = [
        (
            r.name,
            f"{r.offloaded_paths}/{r.total_paths}",
            f"{r.covered_weight:.2f}",
            f"{r.mean_energy_ratio:.2f}",
            f"{r.program_speedup:.2f}x",
            f"{r.program_energy_ratio:.2f}x",
        )
        for r in result.rows
    ]
    title = (
        "Offload study (EDP decision, top-3 paths): mean program energy "
        f"{result.mean_program_energy_ratio:.2f}x of host-only"
    )
    return title + "\n" + ascii_table(headers, rows)
