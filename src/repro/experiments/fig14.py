"""Figure 14 — fan-in of MAY-alias parents per memory operation.

For the hottest region of each benchmark: the distribution of the number
of older memory operations each memory op MAY-alias with (i.e. incoming
MAY MDEs).  The paper's headline: 9 workloads have no MAY parents at all,
11 have mostly <=1, and bzip2 / sar-pfa-interp1 / fft-2d / soplex /
povray host ops with high fan-in — the source of NACHOS's comparator
contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import ascii_table
from repro.experiments.regions import compiled_region
from repro.workloads.suite import SUITE

BUCKETS = ("0", "1", "2", "3-4", "5+")


def _bucket(fan: int) -> str:
    if fan <= 2:
        return str(fan)
    if fan <= 4:
        return "3-4"
    return "5+"


@dataclass
class Fig14Row:
    name: str
    pct_by_bucket: Dict[str, float]
    max_fan_in: int


@dataclass
class Fig14Result:
    rows: List[Fig14Row]

    @property
    def no_may_workloads(self) -> List[str]:
        return [r.name for r in self.rows if r.pct_by_bucket["0"] == 100.0]

    @property
    def high_fan_in_workloads(self) -> List[str]:
        return [r.name for r in self.rows if r.max_fan_in >= 5]


def run() -> Fig14Result:
    rows: List[Fig14Row] = []
    for spec in SUITE:
        result = compiled_region(spec)
        fan = result.may_fan_in()
        n = len(fan)
        counts = {b: 0 for b in BUCKETS}
        for value in fan.values():
            counts[_bucket(value)] += 1
        pct = {b: (100.0 * c / n if n else 0.0) for b, c in counts.items()}
        if n == 0:
            pct["0"] = 100.0
        rows.append(
            Fig14Row(
                name=spec.name,
                pct_by_bucket=pct,
                max_fan_in=max(fan.values(), default=0),
            )
        )
    return Fig14Result(rows=rows)


def render(result: Fig14Result) -> str:
    headers = ["App"] + [f"%{b}" for b in BUCKETS] + ["max"]
    rows = [
        tuple([r.name] + [f"{r.pct_by_bucket[b]:.0f}" for b in BUCKETS] + [r.max_fan_in])
        for r in result.rows
    ]
    title = (
        "Figure 14: older MAY-alias parents per memory op "
        f"({len(result.no_may_workloads)} workloads with none; high fan-in: "
        f"{', '.join(result.high_fan_in_workloads) or 'none'})"
    )
    return title + "\n" + ascii_table(headers, rows)
