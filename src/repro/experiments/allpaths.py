"""Extension: performance over the full 135-region corpus.

The paper's performance figures use each benchmark's hottest region.
This experiment runs *all* top-5 paths (the full 135-region corpus of
the study) and reports the profile-weighted slowdown per benchmark —
checking that the hottest-path results are not an artifact of region
selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.stats import weighted_mean
from repro.analysis.tables import ascii_table
from repro.experiments.regions import workload_for
from repro.runtime.sweep import sweep_comparisons
from repro.workloads.generator import PATH_WEIGHTS
from repro.workloads.suite import SUITE


@dataclass
class AllPathsRow:
    name: str
    sw_weighted_pct: float       # NACHOS-SW vs OPT-LSQ, weighted by path
    nachos_weighted_pct: float
    per_path_sw: List[float]
    correct: bool


@dataclass
class AllPathsResult:
    rows: List[AllPathsRow]
    top_k: int

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.rows)

    @property
    def slowdown_group(self) -> List[str]:
        return [r.name for r in self.rows if r.sw_weighted_pct > 4.0]


def run(invocations: int = 16, top_k: int = 5) -> AllPathsResult:
    workloads = [
        workload_for(spec, k) for spec in SUITE for k in range(top_k)
    ]
    comparisons = sweep_comparisons(workloads, invocations=invocations)
    rows: List[AllPathsRow] = []
    for i, spec in enumerate(SUITE):
        per_spec = comparisons[i * top_k : (i + 1) * top_k]
        sw_pcts = [cmp.slowdown_pct("nachos-sw") for cmp in per_spec]
        nachos_pcts = [cmp.slowdown_pct("nachos") for cmp in per_spec]
        correct = all(cmp.all_correct for cmp in per_spec)
        weights = list(PATH_WEIGHTS[:top_k])
        rows.append(
            AllPathsRow(
                name=spec.name,
                sw_weighted_pct=weighted_mean(sw_pcts, weights),
                nachos_weighted_pct=weighted_mean(nachos_pcts, weights),
                per_path_sw=sw_pcts,
                correct=correct,
            )
        )
    return AllPathsResult(rows=rows, top_k=top_k)


def render(result: AllPathsResult) -> str:
    headers = ["App", "SW weighted %", "NACHOS weighted %", "SW per path", "ok"]
    rows = [
        (
            r.name,
            f"{r.sw_weighted_pct:+.1f}",
            f"{r.nachos_weighted_pct:+.1f}",
            " ".join(f"{p:+.0f}" for p in r.per_path_sw),
            "y" if r.correct else "N",
        )
        for r in result.rows
    ]
    title = (
        f"All-paths study ({27 * result.top_k} regions, profile weighted): "
        f"slowdown group = {', '.join(result.slowdown_group) or 'none'}"
    )
    return title + "\n" + ascii_table(headers, rows)
