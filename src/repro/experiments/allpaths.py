"""Extension: performance over the full 135-region corpus.

The paper's performance figures use each benchmark's hottest region.
This experiment runs *all* top-5 paths (the full 135-region corpus of
the study) and reports the profile-weighted slowdown per benchmark —
checking that the hottest-path results are not an artifact of region
selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.stats import weighted_mean
from repro.analysis.tables import ascii_table
from repro.experiments.common import compare_systems
from repro.experiments.regions import workload_for
from repro.workloads.generator import PATH_WEIGHTS
from repro.workloads.suite import SUITE


@dataclass
class AllPathsRow:
    name: str
    sw_weighted_pct: float       # NACHOS-SW vs OPT-LSQ, weighted by path
    nachos_weighted_pct: float
    per_path_sw: List[float]
    correct: bool


@dataclass
class AllPathsResult:
    rows: List[AllPathsRow]
    top_k: int

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.rows)

    @property
    def slowdown_group(self) -> List[str]:
        return [r.name for r in self.rows if r.sw_weighted_pct > 4.0]


def run(invocations: int = 16, top_k: int = 5) -> AllPathsResult:
    rows: List[AllPathsRow] = []
    for spec in SUITE:
        sw_pcts: List[float] = []
        nachos_pcts: List[float] = []
        correct = True
        for k in range(top_k):
            workload = workload_for(spec, k)
            cmp = compare_systems(workload, invocations=invocations)
            sw_pcts.append(cmp.slowdown_pct("nachos-sw"))
            nachos_pcts.append(cmp.slowdown_pct("nachos"))
            correct = correct and cmp.all_correct
        weights = list(PATH_WEIGHTS[:top_k])
        rows.append(
            AllPathsRow(
                name=spec.name,
                sw_weighted_pct=weighted_mean(sw_pcts, weights),
                nachos_weighted_pct=weighted_mean(nachos_pcts, weights),
                per_path_sw=sw_pcts,
                correct=correct,
            )
        )
    return AllPathsResult(rows=rows, top_k=top_k)


def render(result: AllPathsResult) -> str:
    headers = ["App", "SW weighted %", "NACHOS weighted %", "SW per path", "ok"]
    rows = [
        (
            r.name,
            f"{r.sw_weighted_pct:+.1f}",
            f"{r.nachos_weighted_pct:+.1f}",
            " ".join(f"{p:+.0f}" for p in r.per_path_sw),
            "y" if r.correct else "N",
        )
        for r in result.rows
    ]
    title = (
        f"All-paths study ({27 * result.top_k} regions, profile weighted): "
        f"slowdown group = {', '.join(result.slowdown_group) or 'none'}"
    )
    return title + "\n" + ascii_table(headers, rows)
