"""Figure 12 — the baseline compiler (stages 1+3 only) vs OPT-LSQ.

Removing the inter-procedural (stage 2) and polyhedral (stage 4) analyses
leaves many more MAY labels; the software-only system then serializes
them.  The paper's headline: 10 applications slow down more than 10%
(lbm worst, ~400%, from a 7.5x longer critical path), and the stage-2
benchmarks (h264ref, sar-pfa-interp1, histogram) and all five stage-4
benchmarks degrade specifically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table
from repro.experiments.common import DEFAULT_INVOCATIONS
from repro.experiments.fig11 import PerfResult, PerfRow
from repro.experiments.regions import workload_for
from repro.runtime.sweep import sweep_comparisons
from repro.workloads.suite import SUITE


def run(invocations: int = DEFAULT_INVOCATIONS) -> PerfResult:
    workloads = [workload_for(spec) for spec in SUITE]
    comparisons = sweep_comparisons(
        workloads, systems=("opt-lsq", "baseline-sw"), invocations=invocations
    )
    rows: List[PerfRow] = []
    for spec, cmp in zip(SUITE, comparisons):
        rows.append(
            PerfRow(
                name=spec.name,
                slowdown_pct=cmp.slowdown_pct("baseline-sw"),
                lsq_cycles=cmp.cycles("opt-lsq"),
                system_cycles=cmp.cycles("baseline-sw"),
                correct=cmp.all_correct,
            )
        )
    return PerfResult(system="baseline-sw", rows=rows)


def render(result: PerfResult) -> str:
    headers = ["App", "%slowdown", "OPT-LSQ cyc", "baseline cyc", "ok"]
    rows = [
        (r.name, f"{r.slowdown_pct:+.1f}", r.lsq_cycles, r.system_cycles,
         "y" if r.correct else "N")
        for r in result.rows
    ]
    over10 = [r.name for r in result.rows if r.slowdown_pct > 10.0]
    title = (
        "Figure 12: baseline compiler (stages 1+3) vs OPT-LSQ; "
        f"{len(over10)} apps slow >10%: {', '.join(over10) or 'none'}"
    )
    return title + "\n" + ascii_table(headers, rows)
