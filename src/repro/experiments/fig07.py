"""Figure 7 — stage 2: inter-procedural MAY -> NO refinement.

For each benchmark's top-5 paths: the MAY/MUST percentages after stage 2
plus the fraction of stage-1 MAY labels stage 2 converted.  The paper's
headline: 10 workloads refined, ~11% of MAY relations converted overall,
20--80% in the five workloads where provenance tracing is most effective
(gcc, parser, sar-*, histogram).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table, bar
from repro.compiler.labels import AliasLabel
from repro.experiments.regions import compile_suite


@dataclass
class Fig7Row:
    name: str
    pct_may: float          # after stage 2
    pct_must: float
    converted_pct: float    # of stage-1 MAY labels resolved by stage 2


@dataclass
class Fig7Result:
    rows: List[Fig7Row]

    @property
    def refined_workloads(self) -> List[str]:
        return [r.name for r in self.rows if r.converted_pct > 0]


def run(top_k: int = 5) -> Fig7Result:
    rows: List[Fig7Row] = []
    for region_set in compile_suite(top_k=top_k):
        pairs = may1 = may2 = must2 = 0
        for result in region_set.results:
            if result.stage2 is None:
                continue
            pairs += result.stage1.total
            may1 += result.stage1.count(AliasLabel.MAY)
            may2 += result.stage2.count(AliasLabel.MAY)
            must2 += result.stage2.count(AliasLabel.MUST)
        converted = 100.0 * (may1 - may2) / may1 if may1 else 0.0
        rows.append(
            Fig7Row(
                name=region_set.spec.name,
                pct_may=100.0 * may2 / pairs if pairs else 0.0,
                pct_must=100.0 * must2 / pairs if pairs else 0.0,
                converted_pct=converted,
            )
        )
    return Fig7Result(rows=rows)


def render(result: Fig7Result) -> str:
    headers = ["App", "%MAY", "%MUST", "MAY->NO", ""]
    rows = [
        (r.name, f"{r.pct_may:.1f}", f"{r.pct_must:.1f}", f"{r.converted_pct:.0f}%",
         bar(r.converted_pct, 100.0))
        for r in result.rows
    ]
    title = (
        "Figure 7: stage 2 refinement of MAY labels (top-5 paths); "
        f"{len(result.refined_workloads)} workloads refined"
    )
    return title + "\n" + ascii_table(headers, rows)
