"""Appendix — limits of decentralized checking.

Evaluates the analytic model ``TOT_nachos / TOT_lsq ~= (Pairs_may / N) *
(E_may / E_lsq)`` on the measured region characteristics and checks the
profitability condition: decentralized checking wins while the average
number of MAY aliases per memory operation stays below ``E_lsq / E_may``
(6 with the paper's conservative costs).  The paper finds only seven
benchmarks above ratio 1 (bzip2, soplex, povray, fft, freqmine, sar,
histogram) and all below 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table
from repro.energy.model import DecentralizedCheckModel
from repro.experiments.regions import compiled_region
from repro.workloads.suite import SUITE


@dataclass
class AppendixRow:
    name: str
    n_mem: int
    pairs_may: int
    ratio: float            # MAY aliases per memory op
    energy_ratio: float     # TOT_nachos / TOT_lsq
    profitable: bool


@dataclass
class AppendixResult:
    model: DecentralizedCheckModel
    rows: List[AppendixRow]

    @property
    def over_ratio_1(self) -> List[str]:
        return [r.name for r in self.rows if r.ratio > 1.0]

    @property
    def all_profitable(self) -> bool:
        return all(r.profitable for r in self.rows)


def run(model: DecentralizedCheckModel = DecentralizedCheckModel()) -> AppendixResult:
    rows: List[AppendixRow] = []
    for spec in SUITE:
        result = compiled_region(spec)
        n_mem = len(result.graph.memory_ops)
        pairs_may = len(result.may_mdes)
        pairs_must = len(result.must_mdes)
        rows.append(
            AppendixRow(
                name=spec.name,
                n_mem=n_mem,
                pairs_may=pairs_may,
                ratio=pairs_may / n_mem if n_mem else 0.0,
                energy_ratio=model.nachos_vs_lsq(n_mem, pairs_may, pairs_must),
                profitable=model.profitable(n_mem, pairs_may),
            )
        )
    return AppendixResult(model=model, rows=rows)


def render(result: AppendixResult) -> str:
    headers = ["App", "#MEM", "MAY MDEs", "MAY/op", "E_n/E_lsq", "profitable"]
    rows = [
        (r.name, r.n_mem, r.pairs_may, f"{r.ratio:.2f}", f"{r.energy_ratio:.3f}",
         "yes" if r.profitable else "NO")
        for r in result.rows
    ]
    title = (
        "Appendix: decentralized checking limit model "
        f"(breakeven {result.model.breakeven_ratio:.1f} MAY aliases/op; "
        f"ratio>1: {', '.join(result.over_ratio_1) or 'none'})"
    )
    return title + "\n" + ascii_table(headers, rows)
