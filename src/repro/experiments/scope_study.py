"""Section IV-A — why alias analysis suits the offload path.

Widens the analysis scope from the extracted region to the whole parent
function and counts the new MAY relations (region op x parent access
pairs the compiler cannot resolve).  The paper's headline: 12 of 27
benchmarks gain MAY relations, 5 gain more than 10x, and bzip2 / povray /
soplex blow up 380x / 100x / 85x — the reason NACHOS analyzes only the
offload path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table
from repro.experiments.regions import workload_for
from repro.programs.scope import widen_scope_study
from repro.workloads.suite import SUITE, build_program


@dataclass
class ScopeRow:
    name: str
    region_may: int
    added_may: int
    factor: float


@dataclass
class ScopeResult:
    rows: List[ScopeRow]

    @property
    def increased(self) -> List[str]:
        return [r.name for r in self.rows if r.added_may > 0]

    @property
    def over_10x(self) -> List[str]:
        return [r.name for r in self.rows if r.factor > 10.0]


def run() -> ScopeResult:
    rows: List[ScopeRow] = []
    for spec in SUITE:
        workload = workload_for(spec)
        program = build_program(spec, top_k=1)
        parent = program.functions[0].parent_accesses
        study = widen_scope_study(workload.graph, parent)
        rows.append(
            ScopeRow(
                name=spec.name,
                region_may=study.region_may,
                added_may=study.added_may,
                factor=study.may_increase_factor,
            )
        )
    return ScopeResult(rows=rows)


def render(result: ScopeResult) -> str:
    headers = ["App", "region MAY", "added MAY", "increase"]
    rows = [
        (r.name, r.region_may, r.added_may, f"{r.factor:.1f}x")
        for r in result.rows
    ]
    title = (
        "Section IV-A: MAY relations when scope widens to the parent function "
        f"({len(result.increased)} benchmarks increased; >10x: "
        f"{', '.join(result.over_10x) or 'none'})"
    )
    return title + "\n" + ascii_table(headers, rows)
