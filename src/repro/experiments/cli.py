"""``nachos-repro`` — regenerate any table or figure from the paper.

Usage::

    nachos-repro list                  # what can be regenerated
    nachos-repro table2                # one artifact
    nachos-repro fig11 fig15           # several
    nachos-repro all                   # everything
    nachos-repro all --jobs 4          # fan simulations across processes
    nachos-repro fig11 --invocations 60
    nachos-repro fig11 --no-cache      # force a cold run
    nachos-repro cache stats           # hit/miss counters, size
    nachos-repro cache clear           # drop every cached result
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Tuple

from repro.runtime.cache import configure_cache, get_cache
from repro.runtime.executor import set_jobs

from repro.experiments import (
    allpaths,
    appendix_model,
    fig06,
    fig07,
    fig09,
    fig10,
    fig11,
    fig12,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    granularity,
    limit_study,
    may_sweep,
    micro_study,
    observations,
    offload_study,
    scope_study,
    summary,
    table2,
    variance,
)

#: name -> (run, render, takes_invocations)
EXPERIMENTS: Dict[str, Tuple[Callable, Callable, bool]] = {
    "table2": (table2.run, table2.render, False),
    "fig06": (fig06.run, fig06.render, False),
    "fig07": (fig07.run, fig07.render, False),
    "fig09": (fig09.run, fig09.render, False),
    "fig10": (fig10.run, fig10.render, False),
    "fig11": (fig11.run, fig11.render, True),
    "fig12": (fig12.run, fig12.render, True),
    "fig14": (fig14.run, fig14.render, False),
    "fig15": (fig15.run, fig15.render, True),
    "fig16": (fig16.run, fig16.render, False),
    "fig17": (fig17.run, fig17.render, True),
    "fig18": (fig18.run, fig18.render, True),
    "scope": (scope_study.run, scope_study.render, False),
    "appendix": (appendix_model.run, appendix_model.render, False),
    "granularity": (granularity.run, granularity.render, True),
    "summary": (summary.run, summary.render, True),
    "allpaths": (allpaths.run, allpaths.render, True),
    "observations": (observations.run, observations.render, True),
    "may-sweep": (may_sweep.run, may_sweep.render, True),
    "offload": (offload_study.run, offload_study.render, True),
    "micro": (micro_study.run, micro_study.render, True),
    "limit": (limit_study.run, limit_study.render, True),
    "variance": (variance.run, variance.render, True),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="nachos-repro",
        description="Regenerate the tables and figures of the NACHOS paper (HPCA'18).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--invocations",
        type=int,
        default=None,
        help="region invocations per simulation (performance/energy figures)",
    )
    parser.add_argument(
        "--svg-dir",
        default=None,
        help="also write each figure as an SVG bar chart into this directory",
    )
    parser.add_argument(
        "--json-dir",
        default=None,
        help="also dump each result as JSON into this directory",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="fan (workload, system) simulations across N processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the on-disk result cache (force a cold run)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default ~/.cache/nachos-repro or $NACHOS_CACHE_DIR)",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None:
        set_jobs(args.jobs)
    if args.no_cache or args.cache_dir:
        configure_cache(
            root=Path(args.cache_dir) if args.cache_dir else None,
            enabled=False if args.no_cache else None,
        )

    names = args.experiments or ["list"]
    if names and names[0] == "cache":
        return _cache_command(names[1:])
    if names == ["list"] or names == []:
        print("Available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all")
        return 0

    if names == ["all"]:
        names = list(EXPERIMENTS)

    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    for name in names:
        run, render, takes_inv = EXPERIMENTS[name]
        start = time.time()
        if takes_inv and args.invocations is not None:
            result = run(invocations=args.invocations)
        else:
            result = run()
        print(render(result))
        print(f"[{name}: {time.time() - start:.1f}s]")
        if args.svg_dir:
            _write_svg(name, result, args.svg_dir)
        if args.json_dir:
            _write_json(name, result, args.json_dir)
        print()

    cache = get_cache()
    if cache.enabled and (cache.hits or cache.misses):
        total = cache.hits + cache.misses
        print(
            f"[cache: {cache.hits}/{total} hits this run "
            f"({100.0 * cache.hits / total:.0f}%)]"
        )
    return 0


def _cache_command(rest) -> int:
    action = rest[0] if rest else "stats"
    cache = get_cache()
    if action == "stats":
        stats = cache.stats()
        total = stats["hits"] + stats["misses"]
        hit_pct = 100.0 * stats["hits"] / total if total else 0.0
        print(f"cache root: {stats['root']}")
        print(f"enabled:    {'yes' if stats['enabled'] else 'no'}")
        print(f"entries:    {stats['entries']}")
        print(f"size:       {stats['bytes'] / (1024 * 1024):.1f} MiB")
        print(f"hits:       {stats['hits']}")
        print(f"misses:     {stats['misses']}")
        print(f"hit rate:   {hit_pct:.1f}%")
        return 0
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    print(f"unknown cache action {action!r}; expected 'stats' or 'clear'", file=sys.stderr)
    return 2


def _write_svg(name: str, result, directory: str) -> None:
    import os

    from repro.experiments.charts import chart_for

    chart = chart_for(name, result)
    if chart is None:
        return
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.svg")
    chart.save(path)
    print(f"[wrote {path}]")


def _write_json(name: str, result, directory: str) -> None:
    import os

    from repro.experiments.export import save_json

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    save_json(name, result, path)
    print(f"[wrote {path}]")


if __name__ == "__main__":
    raise SystemExit(main())
