"""``nachos-repro`` — regenerate any table or figure from the paper.

Usage::

    nachos-repro list                  # what can be regenerated
    nachos-repro table2                # one artifact
    nachos-repro fig11 fig15           # several
    nachos-repro all                   # everything
    nachos-repro all --jobs 4          # fan simulations across processes
    nachos-repro fig11 --invocations 60
    nachos-repro fig11 --no-cache      # force a cold run
    nachos-repro fig11 --metrics m.json  # dump the metrics registry
    nachos-repro all --jobs 4 --timeout 300 --max-retries 3
                                       # supervised: hung tasks killed,
                                       # crashed workers replaced, retried
    nachos-repro all --resume          # continue a killed/crashed sweep
                                       # from its checkpoint journal
    nachos-repro all --failure-report failures.json
                                       # degrade to partial results +
                                       # machine-readable report
    nachos-repro cache stats           # hit/miss counters, size
    nachos-repro cache clear           # drop every cached result
    nachos-repro trace bzip2 --system nachos --out trace.json
                                       # Chrome-trace/Perfetto event dump
    nachos-repro trace bzip2 --system nachos --sanitize
                                       # + check ordering invariants
    nachos-repro verify --fuzz 200 --seed 0
                                       # differential alias fuzzing over
                                       # all five backends + sanitizer
    nachos-repro verify --fuzz 200 --engines all
                                       # + reference/fast/fast-vector
                                       # engine equivalence cross-check
    nachos-repro verify --fuzz 200 --oracle --coverage
                                       # + static cross-checks: stage
                                       # verdicts vs the stage-5 oracle,
                                       # MDE sync coverage per region
    nachos-repro verify --repro fuzz-repros/fuzz-0-41-nachos.json
                                       # rerun a shrunken failure
    nachos-repro fig11 --engine fast-vector
                                       # batch-replaying vector engine
                                       # (bit-exact, separate cache keys)
    nachos-repro profile fig11         # per-stage/per-region wall time,
                                       # cache telemetry, worker usage
    nachos-repro all --ledger perf/history.ndjson
                                       # append this run's telemetry to
                                       # the perf-observatory run ledger
    nachos-repro perf record --bench BENCH_sweep.json
                                       # fold a bench report into the ledger
    nachos-repro perf check            # enforce perf_budgets.toml against
                                       # the ledger (non-zero on regression)
    nachos-repro perf report --out perf_report.md --html perf_report.html
                                       # render the perf-history dashboard
    nachos-repro perf ls               # list ledger records
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Tuple

from repro.runtime.cache import configure_cache, default_cache_dir, get_cache
from repro.runtime.checkpoint import configure_checkpoint, get_checkpoint
from repro.runtime.executor import get_policy, set_jobs, set_policy
from repro.runtime.fingerprint import CACHE_SCHEMA
from repro.runtime.retry import SweepError

from repro.experiments import (
    allpaths,
    appendix_model,
    fig06,
    fig07,
    fig09,
    fig10,
    fig11,
    fig12,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    granularity,
    limit_study,
    may_sweep,
    micro_study,
    observations,
    offload_study,
    scope_study,
    summary,
    table2,
    variance,
)

#: name -> (run, render, takes_invocations)
EXPERIMENTS: Dict[str, Tuple[Callable, Callable, bool]] = {
    "table2": (table2.run, table2.render, False),
    "fig06": (fig06.run, fig06.render, False),
    "fig07": (fig07.run, fig07.render, False),
    "fig09": (fig09.run, fig09.render, False),
    "fig10": (fig10.run, fig10.render, False),
    "fig11": (fig11.run, fig11.render, True),
    "fig12": (fig12.run, fig12.render, True),
    "fig14": (fig14.run, fig14.render, False),
    "fig15": (fig15.run, fig15.render, True),
    "fig16": (fig16.run, fig16.render, False),
    "fig17": (fig17.run, fig17.render, True),
    "fig18": (fig18.run, fig18.render, True),
    "scope": (scope_study.run, scope_study.render, False),
    "appendix": (appendix_model.run, appendix_model.render, False),
    "granularity": (granularity.run, granularity.render, True),
    "summary": (summary.run, summary.render, True),
    "allpaths": (allpaths.run, allpaths.render, True),
    "observations": (observations.run, observations.render, True),
    "may-sweep": (may_sweep.run, may_sweep.render, True),
    "offload": (offload_study.run, offload_study.render, True),
    "micro": (micro_study.run, micro_study.render, True),
    "limit": (limit_study.run, limit_study.render, True),
    "variance": (variance.run, variance.render, True),
}


def main(argv=None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "serve":
        # The daemon owns its own flag set (--port/--socket/...); hand
        # off before this parser can reject them.
        from repro.serve.daemon import main as serve_main

        return serve_main(raw[1:])

    parser = argparse.ArgumentParser(
        prog="nachos-repro",
        description="Regenerate the tables and figures of the NACHOS paper (HPCA'18).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--invocations",
        type=int,
        default=None,
        help="region invocations per simulation (performance/energy figures)",
    )
    parser.add_argument(
        "--svg-dir",
        default=None,
        help="also write each figure as an SVG bar chart into this directory",
    )
    parser.add_argument(
        "--json-dir",
        default=None,
        help="also dump each result as JSON into this directory",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="fan (workload, system) simulations across N processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the on-disk result cache (force a cold run)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget; hung workers are killed and the "
        "task retried (parallel sweeps only; default $NACHOS_TIMEOUT or off)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry a crashed/hung/corrupt/raising task up to N times with "
        "deterministic exponential backoff (default $NACHOS_MAX_RETRIES or 2)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="journal completed sweep tasks to a checkpoint and resume from "
        "it — rerun the same command after a crash/SIGKILL to continue",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="explicit checkpoint location (implies --resume semantics; "
        "default derives from the experiment names, or $NACHOS_CHECKPOINT_DIR)",
    )
    parser.add_argument(
        "--failure-report",
        default=None,
        metavar="PATH",
        help="where to write the machine-readable per-task failure report "
        "when tasks fail after retries (default nachos-failure-report.json)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default ~/.cache/nachos-repro or $NACHOS_CACHE_DIR)",
    )
    parser.add_argument(
        "--engine",
        choices=["reference", "fast", "fast-vector"],
        default=None,
        help="execution engine: 'reference' (per-event heapq loop), "
        "'fast' (invocation schedule templates), or 'fast-vector' "
        "(templates + NumPy batch value pass + guarded invocation "
        "replay); both fast modes are bit-exact — see "
        "docs/simulation.md.  Default $NACHOS_ENGINE or 'reference'.",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="dump a metrics-registry JSON (counters/histograms) after the run",
    )
    parser.add_argument(
        "--system",
        default="nachos",
        help="system for 'trace' (opt-lsq, nachos-sw, nachos, spec-lsq, ...)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path for 'trace' (default trace.json) or for "
        "'perf report' (default: print to stdout)",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="perf-observatory run ledger (NDJSON).  With experiments / "
        "profile / verify: append this run's telemetry.  With 'perf': "
        "the ledger to operate on.  Default $NACHOS_PERF_LEDGER or "
        "perf/history.ndjson",
    )
    parser.add_argument(
        "--budgets",
        default="perf_budgets.toml",
        metavar="PATH",
        help="for 'perf check'/'perf report': the committed budget file",
    )
    parser.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help="for 'perf record': fold a bench_sweep report (BENCH_sweep"
        ".json) into the ledger",
    )
    parser.add_argument(
        "--coverage",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="for 'perf record': fold an approx_coverage --json summary "
        "(PATH) into the ledger; for 'verify' (bare flag): prove each "
        "fuzzed region's installed MDE set covers every oracle-required "
        "happens-before pair",
    )
    parser.add_argument(
        "--serve",
        default=None,
        metavar="PATH",
        help="for 'perf record': fold a bench_serve report (BENCH_serve"
        ".json) into the ledger",
    )
    parser.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="for 'perf report': also render the dashboard as HTML here",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="for 'trace': run the ordering sanitizer over the event stream",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=100,
        metavar="N",
        help="for 'verify': number of fuzzed regions (default 100)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="for 'verify': campaign seed (regions are deterministic in it)",
    )
    parser.add_argument(
        "--systems",
        nargs="+",
        default=None,
        metavar="SYS",
        help="for 'verify': backends to fuzz (default: all five)",
    )
    parser.add_argument(
        "--engines",
        choices=["reference", "both", "all"],
        default="reference",
        help="for 'verify': 'both' cross-checks each clean region between "
        "the reference and fast engines, 'all' between reference, fast "
        "and fast-vector (pickled SimResults must be byte-identical)",
    )
    parser.add_argument(
        "--repro",
        default=None,
        metavar="PATH",
        help="for 'verify': rerun a saved fuzz repro instead of fuzzing",
    )
    parser.add_argument(
        "--repro-dir",
        default="fuzz-repros",
        metavar="DIR",
        help="for 'verify': where shrunken failing regions are dumped",
    )
    parser.add_argument(
        "--oracle",
        action="store_true",
        help="for 'verify': statically cross-check every stage-1..4 "
        "NO/MUST verdict against the stage-5 separation-logic oracle; "
        "with --ledger, also append the suite's stage-5 precision stats",
    )
    parser.add_argument(
        "--inject-stage-fault",
        type=int,
        default=None,
        metavar="SEED",
        help="for 'verify' with --oracle: flip one oracle-refutable MAY "
        "verdict to NO per region at check time — a self-test that the "
        "detection path fires end to end",
    )
    args = parser.parse_args(argv)

    if args.engine is not None:
        # Exported (not just resolved locally) so forked sweep workers
        # inherit the same engine mode as the parent process.
        os.environ["NACHOS_ENGINE"] = args.engine
    if args.jobs is not None:
        set_jobs(args.jobs)
    if args.no_cache or args.cache_dir:
        configure_cache(
            root=Path(args.cache_dir) if args.cache_dir else None,
            enabled=False if args.no_cache else None,
        )
    if args.timeout is not None or args.max_retries is not None:
        base = get_policy()
        set_policy(
            dataclasses.replace(
                base,
                timeout=(
                    args.timeout if args.timeout and args.timeout > 0
                    else None
                )
                if args.timeout is not None
                else base.timeout,
                max_retries=(
                    max(0, args.max_retries)
                    if args.max_retries is not None
                    else base.max_retries
                ),
            )
        )

    names = args.experiments or ["list"]
    if names and names[0] == "cache":
        return _cache_command(names[1:])
    if names and names[0] == "trace":
        return _trace_command(names[1:], args)
    if names and names[0] == "verify":
        return _verify_command(args)
    if names and names[0] == "profile":
        return _profile_command(names[1:], args)
    if names and names[0] == "perf":
        return _perf_command(names[1:], args)
    if names == ["list"] or names == []:
        print("Available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all")
        return 0

    if names == ["all"]:
        names = list(EXPERIMENTS)

    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    _configure_checkpoint_for(names, args)

    stage_seconds = {}
    if args.metrics or args.ledger:
        from repro.obs import enable_profiling

        enable_profiling()

    failed: Dict[str, dict] = {}
    for name in names:
        run, render, takes_inv = EXPERIMENTS[name]
        # perf_counter, not time.time(): these stage timings feed the
        # perf ledger and bench_sweep's per-figure breakdown, which must
        # share one monotonic clock source with the bench harness.
        start = time.perf_counter()
        try:
            if takes_inv and args.invocations is not None:
                result = run(invocations=args.invocations)
            else:
                result = run()
        except SweepError as exc:
            # Graceful degradation: record the per-task failures and move
            # on to the remaining figures instead of aborting the set.
            stage_seconds[name] = time.perf_counter() - start
            failed[name] = exc.outcome.as_report()
            print(
                f"[{name}: FAILED — "
                f"{len(exc.outcome.failures)} task(s) exhausted retries; "
                f"continuing with the remaining experiments]",
                file=sys.stderr,
            )
            continue
        stage_seconds[name] = time.perf_counter() - start
        print(render(result))
        print(f"[{name}: {stage_seconds[name]:.1f}s]")
        if args.svg_dir:
            _write_svg(name, result, args.svg_dir)
        if args.json_dir:
            _write_json(name, result, args.json_dir)
        print()

    if args.metrics:
        _dump_metrics(args.metrics, stage_seconds)
    if args.ledger:
        _append_run_ledger(args.ledger, stage_seconds, jobs=args.jobs)

    cache = get_cache()
    if cache.enabled and (cache.hits or cache.misses):
        total = cache.hits + cache.misses
        print(
            f"[cache: {cache.hits}/{total} hits this run "
            f"({100.0 * cache.hits / total:.0f}%)]"
        )

    if failed:
        report_path = args.failure_report or "nachos-failure-report.json"
        _write_failure_report(report_path, names, failed)
        print(
            f"[{len(failed)}/{len(names)} experiment(s) degraded to partial "
            f"results; failure report written to {report_path}]",
            file=sys.stderr,
        )
        return 3

    checkpoint = get_checkpoint()
    if checkpoint is not None and checkpoint.entries():
        checkpoint.clear()
        print(f"[checkpoint {checkpoint.root} cleared — run complete]")
    return 0


def _configure_checkpoint_for(names, args) -> None:
    """Point the sweep checkpoint at a journal for this figure set.

    ``--checkpoint-dir`` wins; ``--resume`` derives a stable location from
    the experiment names + invocations + cache schema, so rerunning the
    same command after a crash finds the same journal.  Without either,
    ``$NACHOS_CHECKPOINT_DIR`` (handled by :func:`get_checkpoint`) or no
    checkpointing at all.
    """
    if args.checkpoint_dir:
        configure_checkpoint(Path(args.checkpoint_dir))
        return
    if not args.resume:
        return
    digest = hashlib.sha256(
        "|".join(
            [f"schema={CACHE_SCHEMA}", f"inv={args.invocations}"]
            + sorted(names)
        ).encode()
    ).hexdigest()[:16]
    root = default_cache_dir() / "checkpoints" / digest
    configure_checkpoint(root)
    print(f"[resume: checkpoint journal at {root}]")


def _write_failure_report(path: str, names, failed: Dict[str, dict]) -> None:
    """Machine-readable per-task failure report for degraded runs."""
    payload = {
        "schema": 1,
        "tool": "nachos-repro",
        "experiments": list(names),
        "completed": [n for n in names if n not in failed],
        "failed": failed,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _dump_metrics(path: str, stage_seconds: Dict[str, float]) -> None:
    """Write the run's metrics registry (sweep + cache + stage timings)."""
    from repro.obs import (
        MetricsRegistry,
        get_profile,
        metrics_from_cache,
        metrics_from_profile,
    )

    registry = MetricsRegistry()
    for name, seconds in stage_seconds.items():
        registry.gauge(f"stage.{name}.wall_seconds").set(seconds)
    metrics_from_cache(registry=registry)
    metrics_from_profile(get_profile(), registry=registry)
    registry.write_json(path)
    print(f"[wrote metrics to {path}]")


def _resolve_ledger(args):
    from repro.obs import PerfLedger, default_ledger_path

    return PerfLedger(args.ledger if args.ledger else default_ledger_path())


def _append_run_ledger(path, stage_seconds, jobs=None) -> None:
    """Append this run's profile (and fast-vector) telemetry to a ledger."""
    from repro.obs import (
        PerfLedger,
        capture_context,
        get_profile,
        record_from_profile,
        record_from_vector,
    )
    from repro.runtime.executor import get_jobs

    profile = get_profile()
    context = capture_context(
        engine=os.environ.get("NACHOS_ENGINE", "reference"),
        jobs=jobs if jobs is not None else get_jobs(),
    )
    ledger = PerfLedger(path)
    fp = ledger.append(
        record_from_profile(profile, stage_seconds, context=context)
    )
    appended = [f"profile:{fp}"]
    vector = record_from_vector(profile, context=context)
    if vector is not None:
        appended.append(f"vector:{ledger.append(vector)}")
    print(f"[ledger {ledger.path}: appended {', '.join(appended)}]")


def _perf_command(rest, args) -> int:
    """``nachos-repro perf record|check|report|ls`` — the perf
    observatory over the run ledger (see docs/perf.md)."""
    from repro.obs import (
        check_ledger,
        load_budgets,
        record_from_bench,
        record_from_coverage,
        record_from_serve,
        render_html,
        render_markdown,
        render_verdicts,
    )
    from repro.obs.regress import REGRESSION, BudgetError

    action = rest[0] if rest else "ls"
    ledger = _resolve_ledger(args)

    if action == "record":
        if not args.bench and not args.coverage and not args.serve:
            print(
                "usage: nachos-repro perf record (--bench BENCH_sweep.json "
                "| --coverage coverage.json | --serve BENCH_serve.json) "
                "[--ledger PATH]",
                file=sys.stderr,
            )
            return 2
        appended = []
        if args.bench:
            report = json.loads(Path(args.bench).read_text())
            appended.append(("bench", ledger.append(record_from_bench(report))))
        if args.coverage:
            if args.coverage is True:  # bare flag is the 'verify' spelling
                print(
                    "perf record --coverage needs a PATH "
                    "(an approx_coverage --json summary)",
                    file=sys.stderr,
                )
                return 2
            summary = json.loads(Path(args.coverage).read_text())
            appended.append(
                ("coverage", ledger.append(record_from_coverage(summary)))
            )
        if args.serve:
            report = json.loads(Path(args.serve).read_text())
            appended.append(("serve", ledger.append(record_from_serve(report))))
        for source, fp in appended:
            print(f"[ledger {ledger.path}: appended {source} record {fp}]")
        return 0

    records = ledger.records()
    if ledger.skipped:
        print(
            f"[WARNING: skipped {ledger.skipped} unreadable/newer-schema "
            f"ledger line(s)]",
            file=sys.stderr,
        )

    if action == "ls":
        if not records:
            print(f"ledger {ledger.path}: no records")
            return 0
        print(f"ledger {ledger.path}: {len(records)} record(s)")
        for i, record in enumerate(records):
            ctx = record.context
            shape = " ".join(
                f"{k}={ctx[k]}"
                for k in ("mode", "engine", "jobs") if k in ctx
            )
            print(
                f"  [{i:>3}] {record.ts or '-':<20} {record.source:<9} "
                f"fp={record.fingerprint()} sha={ctx.get('git_sha', '?'):<12} "
                f"{len(record.metrics)} metric(s) {shape}"
            )
        return 0

    if action == "check":
        if not Path(args.budgets).exists():
            print(f"budget file not found: {args.budgets}", file=sys.stderr)
            return 2
        try:
            budgets, blessed = load_budgets(args.budgets)
        except BudgetError as exc:
            print(f"bad budget file {args.budgets}: {exc}", file=sys.stderr)
            return 2
        verdicts = check_ledger(records, budgets, blessed)
        print(render_verdicts(verdicts))
        if any(v.status == REGRESSION for v in verdicts):
            print(
                "FAIL: perf budget regression — either fix the hot path or "
                "bless the record in perf_budgets.toml (see docs/perf.md)",
                file=sys.stderr,
            )
            return 1
        return 0

    if action == "report":
        if not records:
            print(f"ledger {ledger.path}: no records to report", file=sys.stderr)
            return 2
        verdicts = []
        if Path(args.budgets).exists():
            try:
                budgets, blessed = load_budgets(args.budgets)
                verdicts = check_ledger(records, budgets, blessed)
            except BudgetError as exc:
                print(
                    f"[WARNING: ignoring bad budget file {args.budgets}: {exc}]",
                    file=sys.stderr,
                )
        markdown = render_markdown(records, verdicts)
        if args.out:
            Path(args.out).write_text(markdown)
            print(f"[wrote {args.out}]")
        if args.html:
            Path(args.html).write_text(render_html(records, verdicts))
            print(f"[wrote {args.html}]")
        if not args.out and not args.html:
            print(markdown, end="")
        return 0

    print(
        f"unknown perf action {action!r}; expected "
        f"'record', 'check', 'report', or 'ls'",
        file=sys.stderr,
    )
    return 2


def _trace_command(rest, args) -> int:
    """``nachos-repro trace <region> --system <sys> --out trace.json``."""
    from collections import Counter as TallyCounter

    from repro.obs import (
        backend_counts,
        chrome_trace,
        metrics_from_run,
        resolve_workload,
        traced_run,
        write_chrome_trace,
    )

    if not rest:
        print("usage: nachos-repro trace <region> [--system SYS] [--out PATH]",
              file=sys.stderr)
        return 2
    try:
        workload = resolve_workload(rest[0])
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    out_path = args.out or "trace.json"
    start = time.perf_counter()
    try:
        run = traced_run(
            workload, args.system, invocations=args.invocations
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    trace = chrome_trace(
        run.tracer,
        graph=run.graph,
        placement=run.placement,
        region=workload.name,
        backend=args.system,
    )
    write_chrome_trace(out_path, trace)

    sim = run.sim
    print(f"region {workload.name} under {args.system}: "
          f"{sim.cycles} cycles over {sim.invocations} invocations "
          f"({'correct' if run.correct else 'INCORRECT'})")
    tally = TallyCounter(e.kind for e in run.tracer.events)
    for kind in sorted(tally):
        print(f"  {kind:<20} {tally[kind]}")
    counted = backend_counts(run.tracer.events)
    stats = sim.backend_stats.as_dict(rates=False)
    if counted == stats:
        print("[trace counters match backend stats]")
    else:
        drift = {k: (counted[k], stats[k]) for k in stats if counted[k] != stats[k]}
        print(f"[WARNING: trace counters diverge from backend stats: {drift}]",
              file=sys.stderr)
    print(f"[wrote {len(trace['traceEvents'])} trace events to {out_path} "
          f"in {time.perf_counter() - start:.1f}s — open in "
          f"https://ui.perfetto.dev]")
    if args.metrics:
        registry = metrics_from_run(sim, tracer=run.tracer)
        registry.write_json(args.metrics)
        print(f"[wrote metrics to {args.metrics}]")
    sanitize_ok = True
    if args.sanitize:
        from repro.verify import sanitize_trace

        backend = sim.backend or args.system
        report = sanitize_trace(
            run.tracer.events, run.graph, backend, region=workload.name
        )
        print(report.render())
        sanitize_ok = report.ok
    return 0 if run.correct and counted == stats and sanitize_ok else 1


def _stage5_suite_record():
    """Stage-5 precision over the real workload sweep, as a ledger record.

    Compiles the hottest region of every suite benchmark (no MDEs
    installed — this is a pure analysis pass) and merges the per-region
    :class:`~repro.compiler.aliasing.stage5.Stage5Stats`, so ``perf
    check`` can pin how many symbolic MAY pairs the separation-logic
    checker resolves on the sweep.
    """
    from repro.compiler import AliasPipeline
    from repro.compiler.aliasing.stage5 import Stage5Stats
    from repro.obs import capture_context, record_from_stage5
    from repro.workloads.suite import build_suite_workloads

    totals = Stage5Stats()
    workloads = build_suite_workloads()
    pipe = AliasPipeline()
    for workload in workloads:
        result = pipe.run(workload.graph, apply_mdes=False)
        if result.stage5_stats is not None:
            totals.merge(result.stage5_stats)
    return record_from_stage5(
        regions=len(workloads),
        symbolic_pairs=totals.symbolic_pairs,
        resolved_no=totals.resolved_no,
        resolved_must=totals.resolved_must,
        context=capture_context(sweep="suite-top1"),
    )


def _verify_command(args) -> int:
    """``nachos-repro verify [--fuzz N --seed S --systems ...]``.

    Differentially fuzzes all (or the named) backends against the golden
    model and the ordering sanitizer; failures are shrunk and dumped as
    standalone repros.  ``--repro FILE`` reruns a saved repro instead.
    """
    from repro.verify import fuzz, rerun, save_failure

    if args.repro:
        import json as _json

        oracle_ok, report = rerun(Path(args.repro))
        print(report.render())
        if _json.loads(Path(args.repro).read_text()).get("static"):
            print(f"static check: {'clean' if oracle_ok else 'FIRING'}")
        else:
            print(f"golden model: {'match' if oracle_ok else 'MISMATCH'}")
        ok = oracle_ok and report.ok
        print(f"repro {args.repro}: {'no longer fails' if ok else 'still failing'}")
        return 0 if ok else 1

    from repro.verify.fuzz import BACKENDS as FUZZ_BACKENDS

    if args.inject_stage_fault is not None and not args.oracle:
        print("--inject-stage-fault requires --oracle", file=sys.stderr)
        return 2
    do_coverage = bool(args.coverage)
    systems = list(args.systems) if args.systems else sorted(FUZZ_BACKENDS)
    engines_note = {
        "both": " [engines: reference+fast]",
        "all": " [engines: reference+fast+fast-vector]",
    }.get(args.engines, "")
    static_note = "".join(
        f" [{name}]"
        for name, on in (("oracle", args.oracle), ("coverage", do_coverage))
        if on
    )
    print(f"fuzzing systems: {', '.join(systems)}" + engines_note + static_note)
    start = time.perf_counter()
    done = {"n": 0}

    def progress(k, n):
        done["n"] = k
        if k and k % 50 == 0:
            print(f"  ... {k}/{n} regions")

    result = fuzz(
        args.fuzz, seed=args.seed, systems=systems, progress=progress,
        engines=args.engines, oracle=args.oracle, coverage=do_coverage,
        fault_seed=args.inject_stage_fault,
    )
    elapsed = time.perf_counter() - start
    static_summary = (
        f" + {result.static_checks} statically cross-checked"
        if result.static_checks
        else ""
    )
    print(
        f"fuzzed {result.regions} region(s) x {len(systems)} system(s) "
        f"({result.runs} differential runs{static_summary}) in {elapsed:.1f}s "
        f"[seed {args.seed}]"
    )
    if args.ledger:
        from repro.obs import PerfLedger, capture_context, record_from_fuzz

        ledger = PerfLedger(args.ledger)
        fp = ledger.append(
            record_from_fuzz(
                result.regions, result.runs, len(result.failures), elapsed,
                seed=args.seed,
                context=capture_context(
                    seed=args.seed, engines=args.engines,
                    systems=",".join(systems),
                    oracle=args.oracle or None,
                    coverage=do_coverage or None,
                ),
            )
        )
        print(f"[ledger {ledger.path}: appended verify record {fp}]")
        if args.oracle:
            fp5 = ledger.append(_stage5_suite_record())
            print(f"[ledger {ledger.path}: appended stage5 record {fp5}]")
    if result.ok:
        checks = ["golden-model match", "sanitizer clean"]
        if args.oracle:
            checks.append("no stage-1..4 oracle contradiction")
        if do_coverage:
            checks.append("MDE sync coverage complete")
        print("all runs clean: " + " + ".join(checks))
        return 0
    repro_dir = Path(args.repro_dir)
    for i, failure in enumerate(result.failures):
        print(failure.describe())
        path = save_failure(
            failure, repro_dir / f"{failure.spec.name}-{failure.system}.json"
        )
        print(f"  repro written to {path} "
              f"(rerun: nachos-repro verify --repro {path})")
    print(f"{len(result.failures)} failing (region, system) pair(s)")
    return 1


def _profile_command(rest, args) -> int:
    """``nachos-repro profile [figure ...|all]`` — wall-time and cache
    telemetry for experiment stages, plus worker utilization when
    ``--jobs`` fans the sweep out."""
    from repro.obs import enable_profiling, get_profile

    names = rest or ["all"]
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    _configure_checkpoint_for(names, args)
    profile = enable_profiling()
    cache = get_cache()
    stage_seconds: Dict[str, float] = {}
    failed: Dict[str, dict] = {}
    for name in names:
        run, _render, takes_inv = EXPERIMENTS[name]
        start = time.perf_counter()
        try:
            if takes_inv and args.invocations is not None:
                run(invocations=args.invocations)
            else:
                run()
        except SweepError as exc:
            failed[name] = exc.outcome.as_report()
            print(
                f"[{name}: FAILED — "
                f"{len(exc.outcome.failures)} task(s) exhausted retries]",
                file=sys.stderr,
            )
        stage_seconds[name] = time.perf_counter() - start

    # Every table below sorts by *name*, never by measured time or by
    # collection order: task records arrive in worker completion order
    # and wall times are noisy, so any time-keyed ordering shuffles from
    # run to run and makes CI log diffs useless.
    print("per-stage wall time:")
    for name in sorted(stage_seconds):
        print(f"  {name:<14} {stage_seconds[name]:8.2f}s")
    print(f"  {'total':<14} {sum(stage_seconds.values()):8.2f}s")

    regions = get_profile().per_region()
    if regions:
        heaviest = max(regions.items(), key=lambda kv: kv[1][1])
        print("\nper-region simulation time:")
        for region in sorted(regions):
            count, seconds = regions[region]
            print(f"  {region:<14} {seconds:8.2f}s over {count} task(s)")
        print(f"  [heaviest: {heaviest[0]}, {heaviest[1][1]:.2f}s]")

    workers = profile.per_worker()
    if len(workers) > 1:
        print("\nper-worker busy time:")
        for i, (pid, busy) in enumerate(sorted(workers.items())):
            print(f"  worker {i:<3} {busy:8.2f}s")
        print(f"  utilization: {100.0 * profile.utilization():.0f}%")

    vectors = profile.vector_rollup()
    if vectors:
        print("\nfast-vector engine (per region, batch replay vs "
              "per-event fallback):")
        print(f"  {'region':<14} {'invocs':>7} {'replayed':>9} "
              f"{'ops vec':>9} {'ops dyn':>9}  fallbacks")
        for region in sorted(vectors):
            v = vectors[region]
            reasons = ", ".join(
                f"{reason}={n}"
                for reason, n in sorted(v["fallback_reasons"].items())
            ) or "-"
            print(
                f"  {region:<14} {v['invocations']:>7} {v['replayed']:>9} "
                f"{v['ops_vectorized']:>9} {v['ops_dynamic']:>9}  {reasons}"
            )

    total = cache.hits + cache.misses
    if total:
        print(f"\ncache: {cache.hits}/{total} hits "
              f"({100.0 * cache.hits / total:.0f}%)")

    counts = profile.fault_counts()
    if counts or profile.checkpoint_hits:
        print("\nsupervision:")
        for kind in sorted(counts):
            print(f"  {kind + ' faults':<18} {counts[kind]}")
        print(f"  {'retries':<18} {profile.retries}")
        print(f"  {'terminal failures':<18} {len(profile.failures)}")
        if profile.checkpoint_hits:
            print(f"  {'checkpoint hits':<18} {profile.checkpoint_hits}")

    if args.metrics:
        _dump_metrics(args.metrics, stage_seconds)
    if args.ledger:
        _append_run_ledger(args.ledger, stage_seconds, jobs=args.jobs)

    if failed:
        report_path = args.failure_report or "nachos-failure-report.json"
        _write_failure_report(report_path, names, failed)
        print(f"[failure report written to {report_path}]", file=sys.stderr)
        return 3
    return 0


def _cache_command(rest) -> int:
    action = rest[0] if rest else "stats"
    cache = get_cache()
    if action == "stats":
        stats = cache.stats()
        total = stats["hits"] + stats["misses"]
        hit_pct = 100.0 * stats["hits"] / total if total else 0.0
        print(f"cache root: {stats['root']}")
        print(f"enabled:    {'yes' if stats['enabled'] else 'no'}")
        print(f"entries:    {stats['entries']}")
        print(f"size:       {stats['bytes'] / (1024 * 1024):.1f} MiB")
        print(f"hits:       {stats['hits']}")
        print(f"misses:     {stats['misses']}")
        print(f"hit rate:   {hit_pct:.1f}%")
        return 0
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
        return 0
    print(f"unknown cache action {action!r}; expected 'stats' or 'clear'", file=sys.stderr)
    return 2


def _write_svg(name: str, result, directory: str) -> None:
    import os

    from repro.experiments.charts import chart_for

    chart = chart_for(name, result)
    if chart is None:
        return
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.svg")
    chart.save(path)
    print(f"[wrote {path}]")


def _write_json(name: str, result, directory: str) -> None:
    import os

    from repro.experiments.export import save_json

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    save_json(name, result, path)
    print(f"[wrote {path}]")


if __name__ == "__main__":
    raise SystemExit(main())
