"""Table II — acceleration region characteristics.

Reports, per benchmark, the *measured* characteristics of the generated
hottest region: static op count, non-local memory ops, MLP, the MUST
dependence counts by kind (ST-ST / ST-LD / LD-ST), and the fraction of
memory operations promoted to the scratchpad.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table
from repro.compiler.labels import AliasLabel, PairKind
from repro.experiments.regions import compiled_region, workload_for
from repro.workloads.suite import SUITE


@dataclass
class Table2Row:
    name: str
    suite: str
    n_ops: int
    n_mem: int
    mlp: int
    dep_st_st: int
    dep_st_ld: int
    dep_ld_st: int
    pct_local: float


@dataclass
class Table2Result:
    rows: List[Table2Row]


def run() -> Table2Result:
    rows: List[Table2Row] = []
    for spec in SUITE:
        workload = workload_for(spec)
        result = compiled_region(spec)
        graph = workload.graph
        deps = {PairKind.ST_ST: 0, PairKind.ST_LD: 0, PairKind.LD_ST: 0}
        for rel in result.plan.retained:
            if rel.label is AliasLabel.MUST:
                deps[rel.kind] += 1
        n_mem = len(graph.memory_ops)
        total_mem_raw = n_mem + workload.n_promoted
        rows.append(
            Table2Row(
                name=spec.name,
                suite=spec.suite,
                n_ops=len(graph),
                n_mem=n_mem,
                mlp=spec.mlp,
                dep_st_st=deps[PairKind.ST_ST],
                dep_st_ld=deps[PairKind.ST_LD],
                dep_ld_st=deps[PairKind.LD_ST],
                pct_local=100.0 * workload.n_promoted / total_mem_raw
                if total_mem_raw
                else 0.0,
            )
        )
    return Table2Result(rows=rows)


def render(result: Table2Result) -> str:
    headers = ["App", "Suite", "#OPs", "#Mem", "MLP", "St-St", "St-Ld", "Ld-St", "%LOC"]
    rows = [
        (
            r.name,
            r.suite,
            r.n_ops,
            r.n_mem,
            r.mlp,
            r.dep_st_st,
            r.dep_st_ld,
            r.dep_ld_st,
            f"{r.pct_local:.0f}",
        )
        for r in result.rows
    ]
    return "Table II: Acceleration Region Characteristics\n" + ascii_table(headers, rows)
