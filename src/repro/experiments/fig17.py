"""Figure 17 — NACHOS energy breakdown and savings vs OPT-LSQ.

Per benchmark (hottest region): NACHOS's dynamic energy split into
COMPUTE / MDE / L1, the MDE share (the cost of memory ordering), and the
net energy saving against the optimized LSQ.  The paper's headline: MDEs
cost ~6% of total on average and nothing at all in 15 of 27 workloads;
net saving ~21% (12--40%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table
from repro.energy.accounting import COMPUTE, L1, MDE
from repro.experiments.common import DEFAULT_INVOCATIONS
from repro.experiments.regions import workload_for
from repro.runtime.sweep import sweep_comparisons
from repro.workloads.suite import SUITE


@dataclass
class Fig17Row:
    name: str
    pct_compute: float
    pct_mde: float
    pct_l1: float
    pct_mem_ops: float          # the number on each bar in the paper
    saving_vs_lsq_pct: float    # positive = NACHOS cheaper


@dataclass
class Fig17Result:
    rows: List[Fig17Row]

    @property
    def mean_mde_pct(self) -> float:
        return sum(r.pct_mde for r in self.rows) / len(self.rows)

    @property
    def zero_overhead_workloads(self) -> List[str]:
        return [r.name for r in self.rows if r.pct_mde < 0.05]

    @property
    def mean_saving_pct(self) -> float:
        return sum(r.saving_vs_lsq_pct for r in self.rows) / len(self.rows)


def run(invocations: int = DEFAULT_INVOCATIONS) -> Fig17Result:
    workloads = [workload_for(spec) for spec in SUITE]
    comparisons = sweep_comparisons(
        workloads, systems=("opt-lsq", "nachos"), invocations=invocations,
        check=False,
    )
    rows: List[Fig17Row] = []
    for spec, cmp in zip(SUITE, comparisons):
        nachos = cmp.runs["nachos"].sim
        breakdown = nachos.energy_breakdown
        total = breakdown.total or 1.0
        lsq_total = cmp.energy("opt-lsq") or 1.0
        graph = cmp.workload.graph
        rows.append(
            Fig17Row(
                name=spec.name,
                pct_compute=100.0 * breakdown.by_category.get(COMPUTE, 0.0) / total,
                pct_mde=100.0 * breakdown.by_category.get(MDE, 0.0) / total,
                pct_l1=100.0 * breakdown.by_category.get(L1, 0.0) / total,
                pct_mem_ops=100.0 * len(graph.memory_ops) / len(graph),
                saving_vs_lsq_pct=100.0 * (1.0 - nachos.total_energy / lsq_total),
            )
        )
    return Fig17Result(rows=rows)


def render(result: Fig17Result) -> str:
    headers = ["App", "%COMPUTE", "%MDE", "%L1", "%mem-ops", "saving vs LSQ"]
    rows = [
        (r.name, f"{r.pct_compute:.1f}", f"{r.pct_mde:.2f}", f"{r.pct_l1:.1f}",
         f"{r.pct_mem_ops:.0f}", f"{r.saving_vs_lsq_pct:+.1f}%")
        for r in result.rows
    ]
    title = (
        f"Figure 17: NACHOS energy (MDE mean {result.mean_mde_pct:.1f}%; "
        f"{len(result.zero_overhead_workloads)} workloads with no MDE energy; "
        f"mean saving {result.mean_saving_pct:.1f}%)"
    )
    return title + "\n" + ascii_table(headers, rows)
