"""Chart adapters: experiment results -> SVG bar charts.

``chart_for(name, result)`` turns any experiment result into a
:class:`~repro.analysis.svgplot.BarChart` mirroring the corresponding
figure in the paper.  Used by the CLI's ``--svg-dir`` flag.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.svgplot import BarChart
from repro.experiments import (
    appendix_model,
    fig06,
    fig07,
    fig09,
    fig10,
    fig11,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    scope_study,
    table2,
)


def _stage_chart(result, title: str) -> BarChart:
    chart = BarChart(title, [r.name for r in result.rows],
                     y_label="% of pairwise relations", stacked=True)
    chart.add_series("MAY", [r.pct_may for r in result.rows])
    chart.add_series("MUST", [r.pct_must for r in result.rows])
    return chart


def chart_for(name: str, result) -> Optional[BarChart]:
    """Build the figure-matching chart, or ``None`` for table artifacts."""
    if name == "fig06":
        return _stage_chart(result, "Figure 6: stage-1 MAY/MUST alias relations")
    if name == "fig07":
        return _stage_chart(result, "Figure 7: after stage-2 refinement")
    if name == "fig09":
        chart = BarChart(
            "Figure 9: relations retained after stage 3",
            [r.name for r in result.rows],
            y_label="% of stage-1 relations",
            stacked=True,
        )
        chart.add_series("MAY", [r.retained_may_pct for r in result.rows])
        chart.add_series("MUST", [r.retained_must_pct for r in result.rows])
        return chart
    if name == "fig10":
        chart = BarChart(
            "Figure 10: %MEM vs %MAY (sorted by %MAY)",
            [r.name for r in result.rows],
            y_label="%",
        )
        chart.add_series("%MEM", [r.pct_mem for r in result.rows])
        chart.add_series("%MAY ops", [r.pct_may_ops for r in result.rows])
        return chart
    if name in ("fig11", "fig12"):
        title = (
            "Figure 11: NACHOS-SW vs OPT-LSQ (%slowdown)"
            if name == "fig11"
            else "Figure 12: baseline compiler vs OPT-LSQ (%slowdown)"
        )
        chart = BarChart(title, [r.name for r in result.rows],
                         y_label="% slowdown (negative = speedup)")
        chart.add_series("slowdown %", [r.slowdown_pct for r in result.rows])
        return chart
    if name == "fig14":
        chart = BarChart(
            "Figure 14: MAY fan-in distribution",
            [r.name for r in result.rows],
            y_label="% of memory ops",
            stacked=True,
        )
        for bucket in ("0", "1", "2", "3-4", "5+"):
            chart.add_series(
                bucket, [r.pct_by_bucket[bucket] for r in result.rows]
            )
        return chart
    if name == "fig15":
        chart = BarChart(
            "Figure 15: NACHOS vs OPT-LSQ (%slowdown)",
            [r.name for r in result.rows],
            y_label="% slowdown (negative = speedup)",
        )
        chart.add_series("NACHOS", [r.nachos_pct for r in result.rows])
        chart.add_series("NACHOS-SW", [r.nachos_sw_pct for r in result.rows])
        return chart
    if name == "fig16":
        chart = BarChart(
            "Figure 16: MDEs enforced vs baseline compiler",
            [r.name for r in result.rows],
            y_label="fraction of baseline MDEs",
            stacked=True,
        )
        total = [max(1, r.baseline_mdes) for r in result.rows]
        chart.add_series(
            "MAY", [r.nachos_may / t for r, t in zip(result.rows, total)]
        )
        chart.add_series(
            "MUST", [r.nachos_must / t for r, t in zip(result.rows, total)]
        )
        return chart
    if name == "fig17":
        chart = BarChart(
            "Figure 17: NACHOS energy breakdown",
            [r.name for r in result.rows],
            y_label="% of total energy",
            stacked=True,
        )
        chart.add_series("COMPUTE", [r.pct_compute for r in result.rows])
        chart.add_series("MDE", [r.pct_mde for r in result.rows])
        chart.add_series("L1", [r.pct_l1 for r in result.rows])
        return chart
    if name == "fig18":
        chart = BarChart(
            "Figure 18: OPT-LSQ energy breakdown",
            [r.name for r in result.rows],
            y_label="% of total energy",
            stacked=True,
        )
        chart.add_series("COMPUTE", [r.pct_compute for r in result.rows])
        chart.add_series("LSQ-BLOOM", [r.pct_bloom for r in result.rows])
        chart.add_series("LSQ-CAM", [r.pct_cam for r in result.rows])
        chart.add_series("L1", [r.pct_l1 for r in result.rows])
        return chart
    if name == "scope":
        chart = BarChart(
            "Section IV-A: MAY increase when scope widens",
            [r.name for r in result.rows],
            y_label="increase factor (x)",
        )
        chart.add_series("factor", [r.factor for r in result.rows])
        return chart
    if name == "appendix":
        chart = BarChart(
            "Appendix: MAY aliases per memory op (breakeven = 6)",
            [r.name for r in result.rows],
            y_label="MAY MDEs / memory op",
        )
        chart.add_series("MAY/op", [r.ratio for r in result.rows])
        return chart
    return None  # table2 and other tabular artifacts have no chart
