"""Causal sweep: how the MAY fraction drives the system gap.

Figure 10 correlates %MAY with NACHOS-SW's fate across benchmarks; this
extension makes the relationship causal.  A parametric workload family
holds everything fixed (ops, memory ops, MLP, stride, dependence
structure) and sweeps only the fraction of memory operations drawn from
the opaque-pointer mechanism from 0% to 100%.  Expected shape:

* NACHOS-SW's slowdown vs OPT-LSQ grows monotonically-ish with %MAY
  (serialization in, performance out),
* NACHOS stays flat — the comparator converts compiler uncertainty into
  a per-check cost instead of a serialization cost,
* NACHOS's MDE energy grows linearly with the retained MAY edges (the
  appendix's pay-as-you-go line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import ascii_table
from repro.compiler.labels import AliasLabel
from repro.runtime.sweep import sweep_comparisons
from repro.workloads.generator import build_workload
from repro.workloads.spec import BenchmarkSpec, Mechanism


def _spec(may_fraction: float) -> BenchmarkSpec:
    opaque = round(may_fraction, 2)
    mix = {Mechanism.PARAM_OPAQUE: opaque, Mechanism.DISTINCT: round(1 - opaque, 2)}
    mix = {m: w for m, w in mix.items() if w > 0}
    return BenchmarkSpec(
        name=f"sweep-may-{int(may_fraction * 100)}",
        suite="synthetic",
        n_ops=160,
        n_mem=32,
        mlp=8,
        store_frac=0.3,
        stride=64,
        mechanism_mix=mix,
        chain_length=1,
    )


@dataclass
class SweepPoint:
    may_fraction: float
    pct_may_pairs: float         # measured at compile time
    sw_slowdown_pct: float       # NACHOS-SW vs OPT-LSQ
    nachos_slowdown_pct: float
    may_mdes: int
    correct: bool


@dataclass
class MaySweepResult:
    points: List[SweepPoint]

    @property
    def all_correct(self) -> bool:
        return all(p.correct for p in self.points)

    @property
    def sw_series(self) -> List[float]:
        return [p.sw_slowdown_pct for p in self.points]

    @property
    def nachos_series(self) -> List[float]:
        return [p.nachos_slowdown_pct for p in self.points]


def run(
    invocations: int = 20,
    fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
) -> MaySweepResult:
    workloads = [build_workload(_spec(frac)) for frac in fractions]
    comparisons = sweep_comparisons(workloads, invocations=invocations)
    points: List[SweepPoint] = []
    for frac, cmp in zip(fractions, comparisons):
        pipeline = cmp.runs["nachos"].pipeline
        points.append(
            SweepPoint(
                may_fraction=frac,
                pct_may_pairs=100.0
                * pipeline.final_labels.fraction(AliasLabel.MAY),
                sw_slowdown_pct=cmp.slowdown_pct("nachos-sw"),
                nachos_slowdown_pct=cmp.slowdown_pct("nachos"),
                may_mdes=len(pipeline.may_mdes),
                correct=cmp.all_correct,
            )
        )
    return MaySweepResult(points=points)


def render(result: MaySweepResult) -> str:
    headers = ["opaque frac", "%MAY pairs", "SW %", "NACHOS %", "MAY MDEs", "ok"]
    rows = [
        (f"{p.may_fraction:.2f}", f"{p.pct_may_pairs:.1f}",
         f"{p.sw_slowdown_pct:+.1f}", f"{p.nachos_slowdown_pct:+.1f}",
         p.may_mdes, "y" if p.correct else "N")
        for p in result.points
    ]
    return (
        "MAY sweep: compiler uncertainty in, serialization out "
        "(NACHOS-SW); flat under NACHOS\n" + ascii_table(headers, rows)
    )
