"""Experiment harness: one module per paper table / figure.

Every module exposes a ``run(...)`` returning a typed result plus a
``render(result)`` returning the printable table the paper reports.  The
CLI (``nachos-repro``) and the pytest benchmarks drive these.
"""

from repro.experiments.common import (
    SYSTEMS,
    ComparisonResult,
    compare_systems,
    run_system,
)

__all__ = ["SYSTEMS", "ComparisonResult", "compare_systems", "run_system"]
