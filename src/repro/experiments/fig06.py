"""Figure 6 — stage 1: MAY and MUST alias relations per benchmark.

For the top-5 accelerated paths of each benchmark, the percentage of
pairwise relations stage 1 labels MAY and MUST (the remainder is NO).
The paper's headline: 7 of 27 workloads need no further analysis, and in
19 of 27 the dominant unresolved label is MAY.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table, bar
from repro.compiler.labels import AliasLabel
from repro.experiments.regions import compile_suite


@dataclass
class StageFigureRow:
    name: str
    pct_may: float
    pct_must: float
    total_pairs: int


@dataclass
class StageFigureResult:
    rows: List[StageFigureRow]
    stage: str

    @property
    def workloads_fully_resolved(self) -> int:
        """Benchmarks with no MAY relations left at this stage."""
        return sum(1 for r in self.rows if r.pct_may == 0.0)


def run(top_k: int = 5) -> StageFigureResult:
    rows: List[StageFigureRow] = []
    for region_set in compile_suite(top_k=top_k):
        pairs = 0
        may = 0
        must = 0
        for result in region_set.results:
            counts = result.stage1.counts()
            pairs += result.stage1.total
            may += counts[AliasLabel.MAY]
            must += counts[AliasLabel.MUST]
        rows.append(
            StageFigureRow(
                name=region_set.spec.name,
                pct_may=100.0 * may / pairs if pairs else 0.0,
                pct_must=100.0 * must / pairs if pairs else 0.0,
                total_pairs=pairs,
            )
        )
    return StageFigureResult(rows=rows, stage="stage 1")


def render(result: StageFigureResult) -> str:
    headers = ["App", "%MAY", "%MUST", "pairs", ""]
    rows = [
        (r.name, f"{r.pct_may:.1f}", f"{r.pct_must:.1f}", r.total_pairs,
         bar(r.pct_may, 100.0))
        for r in result.rows
    ]
    title = (
        f"Figure 6: {result.stage} MAY/MUST alias relations (top-5 paths); "
        f"{result.workloads_fully_resolved} workloads fully resolved"
    )
    return title + "\n" + ascii_table(headers, rows)
