"""Figure 18 — OPT-LSQ dynamic energy breakdown and bloom behaviour.

Per benchmark (hottest region): the LSQ baseline's energy split into
COMPUTE / LSQ-BLOOM / LSQ-CAM / L1, plus the bloom-filter hit rate table
from the bottom of the paper's figure.  The paper's headline: the
optimized LSQ consumes ~27% of total energy (accelerator + L1); nine
benchmarks have perfect (zero-hit) bloom behaviour; store-heavy workloads
(bodytrack, fft-2d, freqmine, sar-pfa-interp1, histogram) exceed 20%
bloom hits and pay the CAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.tables import ascii_table
from repro.energy.accounting import COMPUTE, L1, LSQ_BLOOM, LSQ_CAM
from repro.experiments.common import DEFAULT_INVOCATIONS
from repro.experiments.regions import workload_for
from repro.runtime.executor import SimTask
from repro.runtime.sweep import sweep_runs
from repro.workloads.suite import SUITE

BLOOM_CLASSES = ("0", "0-10", "10-20", "20+")


def bloom_class(hit_pct: float) -> str:
    if hit_pct == 0.0:
        return "0"
    if hit_pct < 10.0:
        return "0-10"
    if hit_pct < 20.0:
        return "10-20"
    return "20+"


@dataclass
class Fig18Row:
    name: str
    pct_compute: float
    pct_bloom: float
    pct_cam: float
    pct_l1: float
    bloom_hit_pct: float
    pct_mem_ops: float

    @property
    def lsq_pct(self) -> float:
        return self.pct_bloom + self.pct_cam


@dataclass
class Fig18Result:
    rows: List[Fig18Row]

    @property
    def mean_lsq_pct(self) -> float:
        return sum(r.lsq_pct for r in self.rows) / len(self.rows)

    def bloom_table(self) -> Dict[str, List[str]]:
        table: Dict[str, List[str]] = {c: [] for c in BLOOM_CLASSES}
        for r in self.rows:
            table[bloom_class(r.bloom_hit_pct)].append(r.name)
        return table


def run(invocations: int = DEFAULT_INVOCATIONS) -> Fig18Result:
    workloads = [workload_for(spec) for spec in SUITE]
    runs = sweep_runs(
        [SimTask(w, "opt-lsq", invocations, check=False) for w in workloads]
    )
    rows: List[Fig18Row] = []
    for spec, workload, run_result in zip(SUITE, workloads, runs):
        sim = run_result.sim
        breakdown = sim.energy_breakdown
        total = breakdown.total or 1.0
        graph = workload.graph
        rows.append(
            Fig18Row(
                name=spec.name,
                pct_compute=100.0 * breakdown.by_category.get(COMPUTE, 0.0) / total,
                pct_bloom=100.0 * breakdown.by_category.get(LSQ_BLOOM, 0.0) / total,
                pct_cam=100.0 * breakdown.by_category.get(LSQ_CAM, 0.0) / total,
                pct_l1=100.0 * breakdown.by_category.get(L1, 0.0) / total,
                bloom_hit_pct=100.0 * sim.backend_stats.bloom_hit_rate,
                pct_mem_ops=100.0 * len(graph.memory_ops) / len(graph),
            )
        )
    return Fig18Result(rows=rows)


def render(result: Fig18Result) -> str:
    headers = ["App", "%COMPUTE", "%BLOOM", "%CAM", "%L1", "bloom-hit%", "%mem"]
    rows = [
        (r.name, f"{r.pct_compute:.1f}", f"{r.pct_bloom:.1f}", f"{r.pct_cam:.1f}",
         f"{r.pct_l1:.1f}", f"{r.bloom_hit_pct:.1f}", f"{r.pct_mem_ops:.0f}")
        for r in result.rows
    ]
    out = [
        f"Figure 18: OPT-LSQ dynamic energy (LSQ mean {result.mean_lsq_pct:.1f}% of total)",
        ascii_table(headers, rows),
        "",
        "Bloom hit classes:",
    ]
    for cls, names in result.bloom_table().items():
        out.append(f"  {cls:>6}: {', '.join(names) or '-'}")
    return "\n".join(out)
