"""Limit study: what could a perfect compiler do, and where does
hardware remain necessary?

Three systems on each benchmark's hottest region:

* ``nachos-sw``   — the real four-stage compiler, software-only,
* ``oracle-sw``   — software-only with *perfect* (trace-derived) alias
  knowledge: the ceiling of any conceivable static analysis,
* ``nachos``      — the real compiler plus the runtime ``==?`` checks.

Readings:

* ``oracle-sw`` ≈ ``nachos-sw``: the real pipeline already extracts all
  statically-knowable independence (the stage-1..4 machinery is not the
  bottleneck),
* ``nachos`` < ``oracle-sw``: the remaining gap is *fundamentally*
  dynamic — the same pair conflicts in some invocations and not others,
  so no static schedule can have it both ways.  The data-dependent
  benchmarks (histogram, scatter-like patterns) live here; that gap is
  the paper's case for the hardware assist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import ascii_table
from repro.experiments.common import DEFAULT_INVOCATIONS
from repro.experiments.regions import workload_for
from repro.runtime.executor import SimTask
from repro.runtime.sweep import sweep_runs
from repro.workloads.suite import SUITE

LIMIT_SYSTEMS = ("nachos-sw", "oracle-sw", "nachos")


@dataclass
class LimitRow:
    name: str
    nachos_sw_cycles: int
    oracle_sw_cycles: int
    nachos_cycles: int
    oracle_mdes: int
    correct: bool

    @property
    def compiler_gap_pct(self) -> float:
        """How much better a perfect compiler would do than ours."""
        if self.oracle_sw_cycles == 0:
            return 0.0
        return 100.0 * (self.nachos_sw_cycles - self.oracle_sw_cycles) / self.oracle_sw_cycles

    @property
    def hardware_gap_pct(self) -> float:
        """What runtime checks buy beyond *any* static analysis."""
        if self.nachos_cycles == 0:
            return 0.0
        return 100.0 * (self.oracle_sw_cycles - self.nachos_cycles) / self.nachos_cycles


@dataclass
class LimitResult:
    rows: List[LimitRow]

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.rows)

    @property
    def hardware_needed(self) -> List[str]:
        """Benchmarks where even the oracle compiler loses to NACHOS."""
        return [r.name for r in self.rows if r.hardware_gap_pct > 4.0]


def run(invocations: int = DEFAULT_INVOCATIONS) -> LimitResult:
    workloads = [workload_for(spec) for spec in SUITE]
    runs = sweep_runs(
        [
            SimTask(w, system, invocations)
            for w in workloads
            for system in LIMIT_SYSTEMS
        ]
    )
    rows: List[LimitRow] = []
    for i, spec in enumerate(SUITE):
        sw, oracle, hw = runs[3 * i : 3 * i + 3]
        rows.append(
            LimitRow(
                name=spec.name,
                nachos_sw_cycles=sw.sim.cycles,
                oracle_sw_cycles=oracle.sim.cycles,
                nachos_cycles=hw.sim.cycles,
                oracle_mdes=oracle.n_mdes,
                correct=sw.correct and hw.correct and oracle.correct,
            )
        )
    return LimitResult(rows=rows)


def render(result: LimitResult) -> str:
    headers = [
        "App", "nachos-sw", "oracle-sw", "nachos", "compiler gap %",
        "hw gap %", "oracle MDEs",
    ]
    rows = [
        (r.name, r.nachos_sw_cycles, r.oracle_sw_cycles, r.nachos_cycles,
         f"{r.compiler_gap_pct:+.1f}", f"{r.hardware_gap_pct:+.1f}", r.oracle_mdes)
        for r in result.rows
    ]
    title = (
        "Limit study: perfect-compiler ceiling vs hardware checks "
        f"(hardware fundamentally needed: {', '.join(result.hardware_needed) or 'none'})"
    )
    return title + "\n" + ascii_table(headers, rows)
