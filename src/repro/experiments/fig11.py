"""Figure 11 — NACHOS-SW performance vs OPT-LSQ.

Per benchmark (hottest region): percentage slowdown of the software-only
system normalized to the optimized LSQ.  Positive = slowdown, negative =
speedup.  The paper's headline: 21 of 27 within ~4%; a MAY-serialized
group slows 18--100%; 6--7 benchmarks speed up 8--62% thanks to the
load-to-use cycles the LSQ pipeline adds on cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import ascii_table
from repro.experiments.common import DEFAULT_INVOCATIONS
from repro.experiments.regions import workload_for
from repro.runtime.sweep import sweep_comparisons
from repro.workloads.suite import SUITE


@dataclass
class PerfRow:
    name: str
    slowdown_pct: float     # vs OPT-LSQ; positive = slower
    lsq_cycles: int
    system_cycles: int
    correct: bool


@dataclass
class PerfResult:
    system: str
    rows: List[PerfRow]

    @property
    def slowdown_group(self) -> List[str]:
        return [r.name for r in self.rows if r.slowdown_pct > 4.0]

    @property
    def speedup_group(self) -> List[str]:
        return [r.name for r in self.rows if r.slowdown_pct < -4.0]

    @property
    def within_pct(self) -> int:
        return sum(1 for r in self.rows if abs(r.slowdown_pct) <= 4.0)

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.rows)


def run(invocations: int = DEFAULT_INVOCATIONS, system: str = "nachos-sw") -> PerfResult:
    workloads = [workload_for(spec) for spec in SUITE]
    comparisons = sweep_comparisons(
        workloads, systems=("opt-lsq", system), invocations=invocations
    )
    rows: List[PerfRow] = []
    for spec, cmp in zip(SUITE, comparisons):
        rows.append(
            PerfRow(
                name=spec.name,
                slowdown_pct=cmp.slowdown_pct(system),
                lsq_cycles=cmp.cycles("opt-lsq"),
                system_cycles=cmp.cycles(system),
                correct=cmp.all_correct,
            )
        )
    return PerfResult(system=system, rows=rows)


def render(result: PerfResult) -> str:
    headers = ["App", "%slowdown", "OPT-LSQ cyc", f"{result.system} cyc", "ok"]
    rows = [
        (r.name, f"{r.slowdown_pct:+.1f}", r.lsq_cycles, r.system_cycles,
         "y" if r.correct else "N")
        for r in result.rows
    ]
    title = (
        f"Figure 11: {result.system} vs OPT-LSQ "
        f"(slowdowns: {', '.join(result.slowdown_group) or 'none'}; "
        f"speedups: {', '.join(result.speedup_group) or 'none'})"
    )
    return title + "\n" + ascii_table(headers, rows)
