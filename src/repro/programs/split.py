"""Region splitting: fit oversized paths onto a bounded fabric.

A NEEDLE path can exceed the CGRA's capacity (32x32 = 1024 functional
units).  Rather than reject it, the extraction layer can split it into a
chain of subregions along program order: each subregion receives the
previous one's live values as fresh ``INPUT`` operations and executes as
its own fenced offload.  Memory ordering across the cut is free — the
fence between invocations orders everything, exactly like the
CPU/accelerator fences of the paper's framework.

Splitting preserves program order and every intra-chunk dependence; a
cut value re-enters the next chunk as a live-in (in the real system it
would round-trip through the scratchpad).  Each chunk is a well-formed
region in its own right: it compiles, simulates, and checks against the
program-order oracle independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.ir.graph import DFGraph
from repro.ir.opcodes import Opcode
from repro.ir.ops import Operation


@dataclass
class SplitRegion:
    """One chunk of a split path."""

    index: int
    graph: DFGraph
    #: original op id -> this chunk's INPUT op id, for values imported
    #: from earlier chunks.
    imports: Dict[int, int]


def split_region(graph: DFGraph, max_ops: int) -> List[SplitRegion]:
    """Split *graph* into program-order chunks of at most *max_ops* ops.

    Values crossing a cut become INPUT ops in the consuming chunk (the
    fabric would spill them through the scratchpad between offloads).
    MDEs whose endpoints land in different chunks are dropped — the
    inter-chunk fence supersedes them; MDEs within a chunk are kept.
    """
    if max_ops < 2:
        raise ValueError("chunks need room for at least an input and an op")
    if len(graph) <= max_ops:
        return [SplitRegion(index=0, graph=graph, imports={})]

    chunks: List[SplitRegion] = []
    ops = graph.ops
    position = 0
    produced_in: Dict[int, int] = {}  # original op id -> chunk index

    while position < len(ops):
        chunk_graph = DFGraph(f"{graph.name}/part{len(chunks)}")
        imports: Dict[int, int] = {}
        id_map: Dict[int, int] = {}
        next_id = 0

        def ensure_import(orig_id: int) -> int:
            nonlocal next_id
            if orig_id in imports:
                return imports[orig_id]
            inp = Operation(next_id, Opcode.INPUT, name=f"live{orig_id}")
            chunk_graph.add_op(inp)
            imports[orig_id] = next_id
            id_map[orig_id] = next_id
            next_id += 1
            return imports[orig_id]

        # First pass: find which external values this chunk will need so
        # imports precede consumers in program order.
        window = ops[position : position + max_ops]
        external = []
        member_ids = {op.op_id for op in window}
        for op in window:
            for src in op.inputs:
                if src not in member_ids and src not in external:
                    external.append(src)
        # Imports consume capacity too; shrink the window to fit.
        while len(window) + len(external) > max_ops and len(window) > 1:
            window = window[:-1]
            member_ids = {op.op_id for op in window}
            external = []
            for op in window:
                for src in op.inputs:
                    if src not in member_ids and src not in external:
                        external.append(src)

        for orig_id in external:
            ensure_import(orig_id)
        for op in window:
            id_map[op.op_id] = next_id
            chunk_graph.add_op(
                Operation(
                    op_id=next_id,
                    opcode=op.opcode,
                    inputs=tuple(id_map[s] for s in op.inputs),
                    addr=op.addr,
                    name=op.name,
                )
            )
            produced_in[op.op_id] = len(chunks)
            next_id += 1

        for edge in graph.mdes:
            if edge.src in member_ids and edge.dst in member_ids:
                from repro.ir.graph import MemoryDependencyEdge

                chunk_graph.add_mde(
                    MemoryDependencyEdge(
                        id_map[edge.src], id_map[edge.dst], edge.kind
                    )
                )

        chunk_graph.validate()
        chunks.append(
            SplitRegion(index=len(chunks), graph=chunk_graph, imports=imports)
        )
        position += len(window)

    return chunks
