"""Scratchpad promotion of local data (paper Section IV, Observation 1).

The compiler can perfectly disambiguate accesses to objects it allocated
itself (stack variables, region-private globals) and promotes them to a
local scratchpad: they leave the coherent memory space, need no LSQ/MDE
treatment, and complete in one cycle.  Table II column C5 reports 20%+ of
operations promoted in 12 of 28 applications.

In the IR this rewrites LOAD/STORE ops whose runtime base object is
local (:attr:`~repro.ir.address.MemObject.is_local`) into SPAD_LOAD /
SPAD_STORE compute ops with the same operands — they keep their latency
and dataflow shape but no longer participate in disambiguation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import DFGraph
from repro.ir.opcodes import Opcode
from repro.ir.ops import Operation


@dataclass
class PromotionResult:
    graph: DFGraph
    n_promoted: int
    n_kept: int

    @property
    def promoted_fraction(self) -> float:
        total = self.n_promoted + self.n_kept
        return self.n_promoted / total if total else 0.0


def promote_scratchpad(graph: DFGraph) -> PromotionResult:
    """Return a copy of *graph* with local accesses promoted."""
    out = DFGraph(graph.name)
    promoted = 0
    kept = 0
    for op in graph.ops:
        if op.is_memory and op.addr.runtime_base.is_local:
            promoted += 1
            opcode = Opcode.SPAD_LOAD if op.is_load else Opcode.SPAD_STORE
            out.add_op(
                Operation(
                    op_id=op.op_id,
                    opcode=opcode,
                    inputs=op.inputs,
                    addr=None,
                    name=op.name or f"spad{op.op_id}",
                )
            )
        else:
            if op.is_memory:
                kept += 1
            out.add_op(
                Operation(
                    op_id=op.op_id,
                    opcode=op.opcode,
                    inputs=op.inputs,
                    addr=op.addr,
                    name=op.name,
                )
            )
    # MDEs never survive promotion: the pipeline re-runs afterwards.
    return PromotionResult(graph=out, n_promoted=promoted, n_kept=kept)
