"""The Section IV-A scope-widening study.

"Why is alias analysis suited to accelerators?"  The paper widens the
alias-analysis scope from the offloaded path to the whole parent function
and measures how many *new* MAY relations appear between region memory
operations and parent-function memory operations.  For 12 of 27
benchmarks the MAY count grows; bzip2, povray, and soplex grow 380x,
100x, and 85x — the motivation for restricting analysis to the offload
path.

We reproduce this by pairing every region memory operation with every
``parent_access`` of the owning function and classifying each pair with
the stage-1 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.compiler.aliasing.stage1 import analyze_stage1
from repro.compiler.aliasing.symbolic import compare_offsets
from repro.compiler.labels import AliasLabel
from repro.ir.address import AddressExpr, MemObject, PointerParam
from repro.ir.graph import DFGraph


@dataclass
class ScopeStudyResult:
    """MAY counts before and after widening the analysis scope."""

    region_may: int          # MAY pairs inside the region (path scope)
    added_may: int           # new MAY pairs vs parent-function accesses
    added_pairs: int         # all new pairs considered

    @property
    def may_increase_factor(self) -> float:
        """How many times the MAY count grew (paper's 380x/100x/85x)."""
        if self.region_may == 0:
            return float(self.added_may) if self.added_may else 1.0
        return (self.region_may + self.added_may) / self.region_may


def _stage1_label(a: AddressExpr, b: AddressExpr) -> AliasLabel:
    """Stage-1 classification of one cross-scope pair."""
    base_a, base_b = a.base, b.base
    if isinstance(base_a, MemObject) and isinstance(base_b, MemObject):
        if base_a.uid != base_b.uid:
            return AliasLabel.NO
        return compare_offsets(a, b, single_iv_only=True).label
    if (
        isinstance(base_a, PointerParam)
        and isinstance(base_b, PointerParam)
        and base_a.uid == base_b.uid
    ):
        return compare_offsets(a, b, single_iv_only=True).label
    return AliasLabel.MAY


def widen_scope_study(
    graph: DFGraph, parent_accesses: List[AddressExpr]
) -> ScopeStudyResult:
    """Count the MAY relations added by widening to the parent function."""
    region_matrix = analyze_stage1(graph)
    region_may = region_matrix.count(AliasLabel.MAY)

    added_pairs = 0
    added_may = 0
    # Parent accesses are conservatively treated as stores, so every
    # (region op, parent access) pair is disambiguation relevant.
    for op in graph.memory_ops:
        for parent in parent_accesses:
            added_pairs += 1
            if _stage1_label(op.addr, parent) is AliasLabel.MAY:
                added_may += 1

    return ScopeStudyResult(
        region_may=region_may, added_may=added_may, added_pairs=added_pairs
    )
