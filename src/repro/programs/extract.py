"""NEEDLE-style hot-path extraction (paper Figure 3, step 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ir.graph import DFGraph
from repro.programs.model import Function, HotPath, Program
from repro.programs.promote import promote_scratchpad


@dataclass
class AccelRegion:
    """One offloadable acceleration region."""

    program: str
    function: str
    path: str
    weight: float
    graph: DFGraph
    n_promoted: int  # memory ops promoted to the scratchpad

    @property
    def name(self) -> str:
        return f"{self.program}/{self.function}/{self.path}"


def extract_regions(
    program: Program,
    top_k: int = 5,
    promote_locals: bool = True,
) -> List[AccelRegion]:
    """Extract the *top_k* hottest paths of every function as regions.

    Each region graph is freshly materialized, validated, and — mirroring
    the paper's compiler — has its local (stack) accesses promoted to the
    scratchpad so only non-local data reaches the disambiguation stages.
    """
    regions: List[AccelRegion] = []
    for fn in program.functions:
        for path in fn.hottest(top_k):
            graph = path.materialize()
            promoted = 0
            if promote_locals:
                result = promote_scratchpad(graph)
                graph = result.graph
                promoted = result.n_promoted
            regions.append(
                AccelRegion(
                    program=program.name,
                    function=fn.name,
                    path=path.name,
                    weight=path.weight,
                    graph=graph,
                    n_promoted=promoted,
                )
            )
    regions.sort(key=lambda r: r.weight, reverse=True)
    return regions
