"""Mini program model and the NEEDLE-like extraction front-end.

The paper's toolchain (Figure 3, step 1) uses NEEDLE to auto-partition an
application: it profiles the program, forms branch-free superblock paths
from the hottest traces, and offloads them to the CGRA.  This package is
the analogue for our synthetic programs:

* :class:`~repro.programs.model.Program` / ``Function`` / ``HotPath``
  describe an application as functions containing weighted candidate
  paths plus the caller-side context (argument provenance, other memory
  accesses in the parent function),
* :func:`~repro.programs.extract.extract_regions` picks the hottest paths
  (top-5 per benchmark => the 135 regions of the study),
* :func:`~repro.programs.promote.promote_scratchpad` implements the
  local-data promotion of Section IV Observation 1: accesses to stack /
  scratchpad-allocated objects leave the coherent memory space and need
  no disambiguation,
* :func:`~repro.programs.scope.widen_scope_study` reproduces the
  Section IV-A experiment (what happens to MAY labels when the analysis
  scope grows from the offload path to the whole parent function).
"""

from repro.programs.model import Function, HotPath, Program
from repro.programs.extract import AccelRegion, extract_regions
from repro.programs.promote import PromotionResult, promote_scratchpad
from repro.programs.scope import ScopeStudyResult, widen_scope_study

__all__ = [
    "AccelRegion",
    "Function",
    "HotPath",
    "Program",
    "PromotionResult",
    "ScopeStudyResult",
    "extract_regions",
    "promote_scratchpad",
    "widen_scope_study",
]
