"""Application model: functions, hot paths, and caller context."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.ir.address import AddressExpr
from repro.ir.graph import DFGraph

#: A path is produced lazily so extraction can re-materialize fresh
#: graphs (op ids / MDE state are per-instance).
GraphFactory = Callable[[], DFGraph]


@dataclass
class HotPath:
    """One branch-free candidate trace through a function.

    ``weight`` is the fraction of dynamic instructions the profile
    attributes to this path; NEEDLE offloads the hottest ones.
    """

    name: str
    weight: float
    build: GraphFactory

    def materialize(self) -> DFGraph:
        graph = self.build()
        graph.validate()
        return graph


@dataclass
class Function:
    """A function: candidate paths plus its caller-visible memory context.

    ``parent_accesses`` are the memory accesses the function performs
    *outside* any extracted path — the operations that enter the alias
    universe when the analysis scope is widened to the whole function
    (Section IV-A).
    """

    name: str
    paths: List[HotPath] = field(default_factory=list)
    parent_accesses: List[AddressExpr] = field(default_factory=list)

    def hottest(self, k: int = 5) -> List[HotPath]:
        return sorted(self.paths, key=lambda p: p.weight, reverse=True)[:k]


@dataclass
class Program:
    """A whole application (one per benchmark)."""

    name: str
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r} in program {self.name!r}")

    @property
    def all_paths(self) -> List[HotPath]:
        return [p for fn in self.functions for p in fn.paths]
