"""The cycle-level dataflow execution engine.

One :class:`DataflowEngine` simulates a placed region over a sequence of
invocations.  Within an invocation:

* source ops (INPUT/CONST) complete at the invocation start,
* a compute op starts when all operands have arrived (operand-network hop
  latency included) and completes after its opcode latency,
* memory ops hand control to the disambiguation backend once their
  address (and, for stores, value) operands arrive; the backend decides
  *when* the cache access or forward happens, using the engine's
  ``do_load`` / ``do_store`` / ``forward_load`` services.

The engine also runs the functional value semantics of
:mod:`repro.sim.values` so that backend ordering mistakes corrupt values
observably (see :mod:`repro.sim.oracle`): loads read byte-granular value
memory at their completion instant, stores publish at theirs, and every
ordering constraint between conflicting operations separates the two
instants by at least one cycle.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.cgra.placement import Placement
from repro.energy.accounting import EnergyLedger
from repro.energy.config import EnergyEvent
from repro.ir.graph import DFGraph
from repro.ir.opcodes import Opcode, is_fp
from repro.ir.ops import Operation
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs import tracer as obs
from repro.sim.config import EngineConfig
from repro.sim.result import BackendStats, SimResult
from repro.sim.values import ValueMemory, forwarded_value, mix

_OPCODE_ID = {opcode: i for i, opcode in enumerate(Opcode)}


class _OpRun:
    """Per-invocation dynamic state of one operation."""

    __slots__ = (
        "pending_addr",
        "pending_value",
        "addr_time",
        "value_time",
        "inputs_time",
        "addr_notified",
        "value_notified",
        "completed",
        "start_time",
        "complete_time",
    )

    def __init__(self, pending_addr: int, pending_value: int, t0: int = 0) -> None:
        self.pending_addr = pending_addr
        self.pending_value = pending_value
        self.addr_time = t0
        self.value_time = t0
        self.inputs_time = t0
        self.addr_notified = False
        self.value_notified = False
        self.completed = False
        self.start_time = -1
        self.complete_time = -1


class DataflowEngine:
    """Simulates a region graph against one disambiguation backend."""

    def __init__(
        self,
        graph: DFGraph,
        placement: Placement,
        hierarchy: MemoryHierarchy,
        backend: "DisambiguationBackend",
        energy: Optional[EnergyLedger] = None,
        config: Optional[EngineConfig] = None,
        recorder: Optional["TimelineRecorder"] = None,
        tracer: Optional["obs.Tracer"] = None,
    ) -> None:
        self.graph = graph
        self.placement = placement
        self.hierarchy = hierarchy
        self.backend = backend
        self.energy = energy if energy is not None else EnergyLedger()
        self.config = config or EngineConfig()
        self.recorder = recorder
        self.tracer = tracer if tracer is not None else obs.NULL_TRACER
        # Hot paths test `self._trace is not None`: one load + identity
        # check when tracing is off, so production sweeps pay ~nothing.
        self._trace = self.tracer if self.tracer.enabled else None

        self.memory = ValueMemory()
        self.values: Dict[int, int] = {}
        self.addr_of: Dict[int, Tuple[int, int]] = {}
        self.load_values: Dict[Tuple[int, int], int] = {}

        self._events: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = count()
        self._run: Dict[int, _OpRun] = {}
        self._inv_index = 0
        self._inv_end = 0

        self._ops = graph.ops
        # Per-producer delivery plan, precomputed once per engine:
        # src op_id -> [(user, n_addr, n_value, multiplicity, hops, route)].
        # n_addr/n_value count how many of the user's operand positions
        # this producer feeds (a store's value slot counted separately);
        # multiplicity is the raw position count (network traffic).
        self._targets: Dict[int, List[Tuple[Operation, int, int, int, int, int]]] = {
            op.op_id: [] for op in self._ops
        }
        for user in self._ops:
            last = len(user.inputs) - 1
            counts: Dict[int, List[int]] = {}
            for pos, src in enumerate(user.inputs):
                c = counts.setdefault(src, [0, 0, 0])
                if user.is_store and pos == last:
                    c[1] += 1
                else:
                    c[0] += 1
                c[2] += 1
            uid = user.op_id
            for src, (n_addr, n_value, mult) in counts.items():
                self._targets[src].append(
                    (
                        user,
                        n_addr,
                        n_value,
                        mult,
                        placement.hops(src, uid),
                        placement.route_latency(src, uid),
                    )
                )
        # The common-case (no link contention) delivery plan folds the
        # per-target branches of _finish into data: the NET_LINK count is
        # pre-multiplied (hops * mult, zero when network charging is off)
        # so the hot loop is one charge + one delivery per target.
        charge_net = self.config.charge_network
        self._contention = self.config.model_link_contention
        self._plans: Dict[int, List[Tuple[Operation, int, int, int, int]]] = {
            src: [
                (user, n_addr, n_value, hops * mult if charge_net else 0, route)
                for user, n_addr, n_value, mult, hops, route in targets
            ]
            for src, targets in self._targets.items()
        }
        # Per-op execution plan: (latency, ALU energy event, opcode mix
        # id, input tuple) resolved once instead of per event.
        self._exec_plan: Dict[int, Tuple[int, EnergyEvent, int, Tuple[int, ...]]] = {
            op.op_id: (
                op.latency,
                EnergyEvent.ALU_FP if is_fp(op.opcode) else EnergyEvent.ALU_INT,
                _OPCODE_ID[op.opcode],
                tuple(op.inputs),
            )
            for op in self._ops
        }
        # Per-op invocation-reset plan (avoids per-invocation property
        # calls): (op, pending_addr, pending_value, kick) where kick is
        # 1 = source, 2 = constant-address memory, 3 = zero-input compute.
        self._op_init: List[Tuple[Operation, int, int, int]] = []
        self._mem_ops: List[Operation] = []
        for op in self._ops:
            n_inputs = len(op.inputs)
            if op.is_store:
                pa, pv = n_inputs - 1, 1
            else:
                pa, pv = n_inputs, 0
            if op.opcode in (Opcode.INPUT, Opcode.CONST):
                kick = 1
            elif op.is_memory and pa == 0:
                kick = 2
            elif not op.is_memory and not op.inputs:
                kick = 3
            else:
                kick = 0
            self._op_init.append((op, pa, pv, kick))
            if op.is_memory:
                self._mem_ops.append(op)
        self._addr_streams: Optional[List[Dict[int, Tuple[int, int]]]] = None
        # Per-directed-link next-free cycle (only with link contention).
        self._link_free: Dict[Tuple, int] = {}
        backend.attach(self, graph, placement)

    # ------------------------------------------------------------------
    # Event plumbing (also used by backends)
    # ------------------------------------------------------------------
    def schedule(self, time: int, fn: Callable[[], None]) -> None:
        heapq.heappush(self._events, (time, next(self._seq), fn))

    def _drain_events(self) -> None:
        while self._events:
            _, _, fn = heapq.heappop(self._events)
            fn()

    # ------------------------------------------------------------------
    # Public run loop
    # ------------------------------------------------------------------
    def run(
        self,
        invocations: Iterable[Mapping[str, int]],
        region_name: Optional[str] = None,
        addr_streams: Optional[List[Dict[int, Tuple[int, int]]]] = None,
    ) -> SimResult:
        """Simulate *invocations* and return the result.

        ``addr_streams`` optionally supplies pre-evaluated memory
        addresses — one ``{op_id: (addr, width)}`` map per invocation —
        so callers that already walked the trace (e.g. to warm the L2)
        don't pay for ``AddressExpr.evaluate`` twice.
        """
        self._addr_streams = addr_streams
        per_inv: List[int] = []
        clock = 0
        n = 0
        for env in invocations:
            start = clock
            end = self._run_invocation(n, start, env)
            per_inv.append(end - start)
            clock = end + self.config.invocation_gap
            n += 1

        total = max(clock - self.config.invocation_gap, 0) if n else 0
        return SimResult(
            region=region_name or self.graph.name,
            backend=self.backend.name,
            invocations=n,
            cycles=total,
            per_invocation_cycles=per_inv,
            energy=self.energy,
            backend_stats=self.backend.stats,
            load_values=dict(self.load_values),
            memory_image=self.memory.snapshot(),
            l1_hits=self.hierarchy.l1.stats.hits,
            l1_misses=self.hierarchy.l1.stats.misses,
        )

    # ------------------------------------------------------------------
    def _run_invocation(self, inv: int, t0: int, env: Mapping[str, int]) -> int:
        self._inv_index = inv
        self._inv_end = t0
        if self._trace is not None:
            self._trace.inv = inv
        self.values.clear()
        if self._addr_streams is not None:
            self.addr_of = self._addr_streams[inv]
        else:
            self.addr_of = {
                op.op_id: (op.addr.evaluate(env), op.addr.width)
                for op in self._mem_ops
            }
        run_map = self._run
        run_map.clear()
        for op, pa, pv, _ in self._op_init:
            run_map[op.op_id] = _OpRun(pa, pv, t0)

        self.backend.begin_invocation(inv, t0, self.addr_of)

        for op, _, _, kick in self._op_init:
            if kick == 0:
                continue
            if kick == 1:
                self._complete_source(op, t0)
            elif kick == 2:
                # Constant-address memory op: address is ready at t0.
                run_map[op.op_id].addr_notified = True
                self.schedule(t0, self._make_addr_notify(op, t0))
            else:
                # Zero-input compute (e.g. a promoted scratchpad access
                # with a constant address) fires at the invocation start.
                self._start_compute(op, t0)

        self._drain_events()
        self.backend.end_invocation()
        if self._trace is not None:
            self._trace.emit(obs.INVOCATION, t0, dur=self._inv_end - t0)
        if self.recorder is not None:
            self.recorder.capture(self.graph, inv, t0, self._inv_end, self._run)
        return self._inv_end

    def _make_addr_notify(self, op: Operation, t: int) -> Callable[[], None]:
        return lambda: self.backend.on_addr_ready(op, t)

    # ------------------------------------------------------------------
    # Value helpers
    # ------------------------------------------------------------------
    def _source_value(self, op: Operation, inv: int) -> int:
        if op.opcode is Opcode.CONST:
            return mix(0xC0, op.op_id)
        return mix(0x1F, op.op_id, inv)

    def _compute_value(self, op: Operation) -> int:
        _, _, mix_id, inputs = self._exec_plan[op.op_id]
        return mix(mix_id, *(self.values[i] for i in inputs))

    # ------------------------------------------------------------------
    # Completion paths
    # ------------------------------------------------------------------
    def _complete_source(self, op: Operation, t: int) -> None:
        self.values[op.op_id] = self._source_value(op, self._inv_index)
        self._run[op.op_id].start_time = t
        if self._trace is not None:
            self._trace.emit(obs.OP_SOURCE, t, op=op.op_id)
        self._finish(op, t)

    def _start_compute(self, op: Operation, t: int) -> None:
        latency, alu_event, mix_id, inputs = self._exec_plan[op.op_id]
        done = t + latency
        self._run[op.op_id].start_time = t
        if self._trace is not None:
            self._trace.emit(obs.OP_EXEC, t, dur=latency, op=op.op_id)
        self.energy.charge(alu_event)

        def complete() -> None:
            values = self.values
            values[op.op_id] = mix(mix_id, *(values[i] for i in inputs))
            self._finish(op, done)

        self.schedule(done, complete)

    def _finish(self, op: Operation, t: int) -> None:
        """Deliver *op*'s value to consumers and record completion."""
        state = self._run[op.op_id]
        state.completed = True
        state.complete_time = t
        self._inv_end = max(self._inv_end, t)
        if op.is_memory:
            self.backend.on_memory_complete(op, t)

        if self._contention:
            charge_network = self.config.charge_network
            for user, n_addr, n_value, mult, hops, route in self._targets[op.op_id]:
                if charge_network and hops:
                    self.energy.charge(EnergyEvent.NET_LINK, hops * mult)
                if hops:
                    # One route walk (and link reservation) per operand
                    # position; the delivery lands at the first walk's
                    # arrival, matching per-position delivery order.
                    arrive = self._route_with_contention(op.op_id, user.op_id, t)
                    for _ in range(mult - 1):
                        self._route_with_contention(op.op_id, user.op_id, t)
                else:
                    arrive = t + route
                self._deliver(user, n_addr, n_value, arrive)
            return

        charge = self.energy.charge
        deliver = self._deliver
        for user, n_addr, n_value, net, route in self._plans[op.op_id]:
            if net:
                charge(EnergyEvent.NET_LINK, net)
            deliver(user, n_addr, n_value, t + route)

    def _route_with_contention(self, src: int, dst: int, t: int) -> int:
        """Walk the XY route reserving one cycle per directed link."""
        hop_latency = self.placement.config.hop_latency
        when = t
        for link in self.placement.xy_route(src, dst):
            start = max(when, self._link_free.get(link, 0))
            self._link_free[link] = start + 1
            when = start + hop_latency
        return when

    def _deliver(self, user: Operation, n_addr: int, n_value: int, t: int) -> None:
        """Credit *user* with operand arrivals from one producer.

        ``n_addr`` / ``n_value`` are the position counts precomputed in
        ``_targets`` — a producer may feed several operand positions
        (e.g. both the address and the value of a store).
        """
        state = self._run[user.op_id]
        if n_value:
            state.pending_value -= n_value
            if t > state.value_time:
                state.value_time = t
        if n_addr:
            state.pending_addr -= n_addr
            if t > state.addr_time:
                state.addr_time = t
        if t > state.inputs_time:
            state.inputs_time = t

        if user.is_memory:
            if state.pending_addr == 0 and not state.addr_notified:
                state.addr_notified = True
                self.backend.on_addr_ready(user, state.addr_time)
            if (
                user.is_store
                and state.pending_value == 0
                and not state.value_notified
            ):
                state.value_notified = True
                self.backend.on_value_ready(user, state.value_time)
        elif state.pending_addr == 0:
            self._start_compute(user, state.inputs_time)

    # ------------------------------------------------------------------
    # Backend services
    # ------------------------------------------------------------------
    def state_of(self, op_id: int) -> _OpRun:
        return self._run[op_id]

    def do_load(self, op: Operation, t_start: int) -> int:
        """Issue *op*'s cache read beginning at ``t_start``.

        Returns the completion cycle.  The value is read from value
        memory at the completion instant; every ordered older store has
        published strictly earlier and every ordered younger store
        publishes strictly later (backends guarantee both).

        Same-cycle semantics: completion events draining in the same
        cycle run in scheduling (FIFO) order, and a store publishes at
        its completion instant — so a store whose completion has already
        drained *is* observed by a load reading at the same cycle.
        ``tests/test_litmus.py::test_same_cycle_drain_order`` pins this.
        """
        addr, width = self.addr_of[op.op_id]
        edge = self.placement.edge_latency(op.op_id)
        result = self.hierarchy.access(addr, is_write=False, cycle=t_start + edge)
        self.energy.charge(EnergyEvent.L1_READ)
        if self.config.charge_network:
            hops = self.placement.edge_hops(op.op_id)
            if hops:
                self.energy.charge(EnergyEvent.NET_LINK, 2 * hops)
        done = result.complete + edge
        self._run[op.op_id].start_time = t_start
        if self._trace is not None:
            self._trace.emit(
                obs.MEM_LOAD,
                t_start,
                dur=done - t_start,
                op=op.op_id,
                args={"addr": addr, "width": width},
            )

        def complete() -> None:
            value = self.memory.load(addr, width)
            self.values[op.op_id] = value
            self.load_values[(self._inv_index, op.op_id)] = value
            self._finish(op, done)

        self.schedule(done, complete)
        return done

    def do_store(self, op: Operation, t_start: int) -> int:
        """Issue *op*'s cache write beginning at ``t_start``."""
        addr, width = self.addr_of[op.op_id]
        edge = self.placement.edge_latency(op.op_id)
        result = self.hierarchy.access(addr, is_write=True, cycle=t_start + edge)
        self.energy.charge(EnergyEvent.L1_WRITE)
        if self.config.charge_network:
            hops = self.placement.edge_hops(op.op_id)
            if hops:
                self.energy.charge(EnergyEvent.NET_LINK, hops)
        value = self.values[op.inputs[-1]]
        done = result.complete
        self._run[op.op_id].start_time = t_start
        if self._trace is not None:
            self._trace.emit(
                obs.MEM_STORE,
                t_start,
                dur=done - t_start,
                op=op.op_id,
                args={"addr": addr, "width": width},
            )

        def complete() -> None:
            self.memory.store(addr, width, value)
            self.values[op.op_id] = value
            self._finish(op, done)

        self.schedule(done, complete)
        return done

    def forward_load(self, op: Operation, src_store: Operation, t: int) -> int:
        """Complete load *op* at ``t`` with *src_store*'s value."""
        addr, width = self.addr_of[op.op_id]
        value = forwarded_value(self.values[src_store.inputs[-1]], width)
        self._run[op.op_id].start_time = t
        if self._trace is not None:
            self._trace.emit(
                obs.MEM_FORWARD,
                t,
                op=op.op_id,
                args={"src": src_store.op_id, "addr": addr, "width": width},
            )

        def complete() -> None:
            self.values[op.op_id] = value
            self.load_values[(self._inv_index, op.op_id)] = value
            self._finish(op, t)

        self.schedule(t, complete)
        return t


class DisambiguationBackend:
    """Interface every memory-ordering backend implements."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = BackendStats()
        self.engine: Optional[DataflowEngine] = None
        self.graph: Optional[DFGraph] = None
        self.placement: Optional[Placement] = None
        self._trace = None

    # -- lifecycle ------------------------------------------------------
    def attach(
        self, engine: DataflowEngine, graph: DFGraph, placement: Placement
    ) -> None:
        self.engine = engine
        self.graph = graph
        self.placement = placement
        self._trace = engine.tracer if engine.tracer.enabled else None

    def begin_invocation(
        self, inv: int, t0: int, addr_of: Dict[int, Tuple[int, int]]
    ) -> None:
        raise NotImplementedError

    def end_invocation(self) -> None:
        pass

    # -- batched replay (fast-vector engine) ----------------------------
    def replay_signature(self, addr_of: Dict[int, Tuple[int, int]]):
        """Conservative key over every address-dependent decision.

        The fast-vector engine (:mod:`repro.sim.vector`) replays a
        captured invocation schedule only when this signature matches
        the capture's.  The contract: for a fixed (graph, placement,
        config) and fixed persistent backend state, two invocations
        with equal signatures — and equal memory-hierarchy access
        outcomes, which the engine verifies live — make *identical*
        decisions (issue order, forwards, waits, verdicts, energy and
        stat charges).  It must be a pure function of ``addr_of`` and
        persistent cross-invocation state, evaluated before
        ``begin_invocation``.  ``None`` (the default) means this
        backend never supports batched replay.
        """
        return None

    def replay_carryover(self):
        """Opaque token for persistent state mutated last invocation.

        Backends with cross-invocation state (e.g. SPEC-LSQ's store-set
        predictor) return what the just-finished invocation changed, so
        a replayed invocation can re-apply the same mutation via
        :meth:`apply_carryover` without running.  ``None`` = stateless.
        """
        return None

    def apply_carryover(self, token) -> None:
        """Re-apply a :meth:`replay_carryover` token (replay path)."""

    # -- engine notifications -------------------------------------------
    def on_addr_ready(self, op: Operation, t: int) -> None:
        raise NotImplementedError

    def on_value_ready(self, op: Operation, t: int) -> None:
        raise NotImplementedError

    def on_memory_complete(self, op: Operation, t: int) -> None:
        raise NotImplementedError
