"""Simulation outputs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.energy.accounting import EnergyBreakdown, EnergyLedger


@dataclass
class BackendStats:
    """Backend-specific dynamic event counters."""

    # OPT-LSQ
    bloom_probes: int = 0
    bloom_hits: int = 0
    cam_checks: int = 0
    lsq_forwards: int = 0
    # NACHOS
    comparator_checks: int = 0
    comparator_conflicts: int = 0
    runtime_forwards: int = 0
    order_waits: int = 0
    # SPEC-LSQ (speculative baseline)
    speculations: int = 0
    violations: int = 0
    replays: int = 0

    @property
    def misprediction_rate(self) -> float:
        return self.violations / self.speculations if self.speculations else 0.0

    @property
    def bloom_hit_rate(self) -> float:
        return self.bloom_hits / self.bloom_probes if self.bloom_probes else 0.0


@dataclass
class SimResult:
    """Everything one simulation run produces."""

    region: str
    backend: str
    invocations: int
    cycles: int
    per_invocation_cycles: List[int]
    energy: EnergyLedger
    backend_stats: BackendStats
    load_values: Dict[Tuple[int, int], int] = field(default_factory=dict)
    memory_image: Tuple[Tuple[int, int], ...] = ()
    l1_hits: int = 0
    l1_misses: int = 0

    # ------------------------------------------------------------------
    @property
    def mean_invocation_cycles(self) -> float:
        if not self.per_invocation_cycles:
            return 0.0
        return sum(self.per_invocation_cycles) / len(self.per_invocation_cycles)

    @property
    def energy_breakdown(self) -> EnergyBreakdown:
        return self.energy.breakdown()

    @property
    def total_energy(self) -> float:
        return self.energy.total

    def speedup_over(self, other: "SimResult") -> float:
        """>1 means *self* is faster than *other*."""
        if self.cycles == 0:
            return float("inf")
        return other.cycles / self.cycles

    def slowdown_pct_vs(self, other: "SimResult") -> float:
        """Positive = slower than *other* (Figure 11/15 convention)."""
        if other.cycles == 0:
            return 0.0
        return (self.cycles - other.cycles) / other.cycles * 100.0
