"""Simulation outputs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.energy.accounting import EnergyBreakdown, EnergyLedger


@dataclass
class BackendStats:
    """Backend-specific dynamic event counters."""

    # OPT-LSQ
    bloom_probes: int = 0
    bloom_hits: int = 0
    cam_checks: int = 0
    lsq_forwards: int = 0
    # NACHOS
    comparator_checks: int = 0
    comparator_conflicts: int = 0
    runtime_forwards: int = 0
    order_waits: int = 0
    # SPEC-LSQ (speculative baseline)
    speculations: int = 0
    violations: int = 0
    replays: int = 0

    #: The integer counter field names, in declaration order.
    COUNTERS = (
        "bloom_probes",
        "bloom_hits",
        "cam_checks",
        "lsq_forwards",
        "comparator_checks",
        "comparator_conflicts",
        "runtime_forwards",
        "order_waits",
        "speculations",
        "violations",
        "replays",
    )

    # -- derived rates (all guarded against empty denominators) ---------
    @property
    def misprediction_rate(self) -> float:
        return self.violations / self.speculations if self.speculations else 0.0

    @property
    def bloom_hit_rate(self) -> float:
        return self.bloom_hits / self.bloom_probes if self.bloom_probes else 0.0

    @property
    def cam_check_rate(self) -> float:
        """CAM searches per bloom probe (energy-relevant filter quality)."""
        return self.cam_checks / self.bloom_probes if self.bloom_probes else 0.0

    @property
    def conflict_rate(self) -> float:
        """Fraction of ``==?`` comparator checks that found an overlap."""
        if not self.comparator_checks:
            return 0.0
        return self.comparator_conflicts / self.comparator_checks

    @property
    def forward_rate(self) -> float:
        """Runtime ST->LD forwards per comparator conflict."""
        if not self.comparator_conflicts:
            return 0.0
        return self.runtime_forwards / self.comparator_conflicts

    @property
    def mde_resolutions(self) -> int:
        """Dynamic MDE resolution events (serialized waits + checks)."""
        return self.order_waits + self.comparator_checks

    @property
    def order_wait_fraction(self) -> float:
        """Of all dynamic MDE resolutions, the fraction serialized as
        completion waits (vs resolved by a runtime comparator check)."""
        total = self.mde_resolutions
        return self.order_waits / total if total else 0.0

    @property
    def replay_rate(self) -> float:
        return self.replays / self.speculations if self.speculations else 0.0

    def as_dict(self, rates: bool = True) -> dict:
        """Counters (ints) plus, optionally, the derived rates (floats).

        This is the export surface the metrics registry consumes; rates
        are safe on any counter combination (empty denominators -> 0.0).
        """
        out = {name: getattr(self, name) for name in self.COUNTERS}
        if rates:
            out.update(
                bloom_hit_rate=self.bloom_hit_rate,
                cam_check_rate=self.cam_check_rate,
                conflict_rate=self.conflict_rate,
                forward_rate=self.forward_rate,
                misprediction_rate=self.misprediction_rate,
                order_wait_fraction=self.order_wait_fraction,
                replay_rate=self.replay_rate,
            )
        return out


@dataclass
class SimResult:
    """Everything one simulation run produces."""

    region: str
    backend: str
    invocations: int
    cycles: int
    per_invocation_cycles: List[int]
    energy: EnergyLedger
    backend_stats: BackendStats
    load_values: Dict[Tuple[int, int], int] = field(default_factory=dict)
    memory_image: Tuple[Tuple[int, int], ...] = ()
    l1_hits: int = 0
    l1_misses: int = 0

    # ------------------------------------------------------------------
    @property
    def mean_invocation_cycles(self) -> float:
        if not self.per_invocation_cycles:
            return 0.0
        return sum(self.per_invocation_cycles) / len(self.per_invocation_cycles)

    @property
    def energy_breakdown(self) -> EnergyBreakdown:
        return self.energy.breakdown()

    @property
    def total_energy(self) -> float:
        return self.energy.total

    def speedup_over(self, other: "SimResult") -> float:
        """>1 means *self* is faster than *other*."""
        if self.cycles == 0:
            return float("inf")
        return other.cycles / self.cycles

    def slowdown_pct_vs(self, other: "SimResult") -> float:
        """Positive = slower than *other* (Figure 11/15 convention)."""
        if other.cycles == 0:
            return 0.0
        return (self.cycles - other.cycles) / other.cycles * 100.0
