"""Engine-level timing knobs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class EngineConfig:
    """Latencies that are properties of the fabric, not of a backend."""

    #: Execution-path selector: ``"reference"`` (the per-event heapq
    #: loop), ``"fast"`` (invocation schedule templates + calendar
    #: queue), ``"fast-vector"`` (templates plus the NumPy batch value
    #: pass and guarded invocation replay) — the fast modes are
    #: bit-exact by the differential equivalence suite — or ``None`` =
    #: decide from ``$NACHOS_ENGINE`` (default reference).
    #: See :func:`repro.sim.factory.make_engine`.
    mode: Optional[str] = None
    #: Cycles to hand a store's value straight to a forwarded load.
    forward_latency: int = 1
    #: Cycles for a 1-bit ORDER ready-signal to reach the younger op.
    order_signal_latency: int = 1
    #: Idle cycles between region invocations (fence/token reset).
    invocation_gap: int = 1
    #: Charge operand-network energy per hop (disable for ablations).
    charge_network: bool = True
    #: Model mesh-link *contention*: each directed link carries one
    #: operand per cycle along its XY route, so congested paths delay
    #: deliveries.  Off by default (the paper's static network is
    #: compiler-scheduled to avoid conflicts); the NoC ablation bench
    #: quantifies what dynamic contention would cost.
    model_link_contention: bool = False
