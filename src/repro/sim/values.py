"""Deterministic functional value semantics.

The timing simulator also computes *values* so that ordering bugs are
observable: every compute op mixes its input values, stores write tokens
to byte-granular memory, and loads read them back.  If a backend lets a
load slip past an aliasing store, the load's value — and everything
downstream — changes, and the program-order oracle catches it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

_MASK = (1 << 64) - 1


def mix(*parts: int) -> int:
    """A stable 64-bit hash mixer (splitmix-style); not cryptographic."""
    acc = 0x9E3779B97F4A7C15
    for p in parts:
        acc = (acc ^ (p & _MASK)) * 0xBF58476D1CE4E5B9 & _MASK
        acc ^= acc >> 31
    return acc


def mix_array(*parts):
    """Vectorized :func:`mix` over NumPy ``uint64`` arrays.

    Each part may be a ``uint64`` array or a Python int (broadcast).
    Bit-exact with :func:`mix` element-wise: ``uint64`` multiplication
    wraps modulo 2**64 exactly like the masked Python arithmetic, so
    ``mix_array(a, b)[i] == mix(int(a[i]), int(b[i]))`` for every lane.
    Used by the fast-vector engine's batch value pass
    (:mod:`repro.sim.vector`); imports NumPy lazily so the rest of the
    value semantics stays dependency-free.
    """
    import numpy as np

    mult = np.uint64(0xBF58476D1CE4E5B9)
    shift = np.uint64(31)
    acc = np.uint64(0x9E3779B97F4A7C15)
    # uint64 wraparound is the point; silence NumPy's scalar-overflow
    # warning so -W error runs stay clean.
    with np.errstate(over="ignore"):
        for p in parts:
            if not isinstance(p, np.ndarray):
                p = np.uint64(p & _MASK)
            acc = (acc ^ p) * mult
            acc = acc ^ (acc >> shift)
    return acc


def forwarded_value(value: int, width: int) -> int:
    """What a load observes when *value* is forwarded to it.

    Identical to storing *value* and immediately loading it back, so a
    forwarded load and a cache-served load of the same store agree.
    """
    return mix(*(mix(value, k) for k in range(width)))


class ValueMemory:
    """Byte-granular memory holding 64-bit tokens.

    A store of value ``v`` and width ``w`` at address ``a`` writes a
    byte-specific token derived from ``v`` to each byte in ``[a, a+w)``;
    a load hashes together the tokens of the bytes it covers.  Partial
    overlaps therefore produce distinct (and order-sensitive) values.
    """

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}

    def store(self, addr: int, width: int, value: int) -> None:
        for k in range(width):
            self._bytes[addr + k] = mix(value, k)

    def load(self, addr: int, width: int) -> int:
        return mix(*(self._bytes.get(addr + k, 0) for k in range(width)))

    def snapshot(self) -> Tuple[Tuple[int, int], ...]:
        """Canonical final-state image for equality comparison."""
        return tuple(sorted(self._bytes.items()))

    def __len__(self) -> int:
        return len(self._bytes)
