"""Engine-mode resolution and construction.

One switch, three spellings, one precedence order::

    EngineConfig(mode=...)   >   $NACHOS_ENGINE   >   "reference"

``reference`` is the per-event heapq engine (:class:`DataflowEngine`);
``fast`` is the template-replaying engine (:class:`FastEngine`);
``fast-vector`` adds the batch value pass and guarded invocation replay
(:class:`~repro.sim.vector.VectorEngine`).  Both fast modes are proven
bit-exact by ``tests/test_engine_equivalence.py``.  Every simulation
entry point (``run_system``, ``traced_run``, the fuzzer's cross-check)
builds engines through :func:`make_engine`, and the sweep cache key
includes the *resolved* mode — so a fast-mode result can never be
served where a reference-mode result was requested (which would make
the differential suite vacuous) and vice versa.

Both fast modes refuse two combinations and fall back to the reference
engine loudly (a :class:`EngineModeFallback` warning, so ``-W error``
turns it fatal):

* an **enabled tracer** — the one-event-per-counter trace contract is
  defined against the reference event loop;
* ``model_link_contention=True`` — mesh-link reservations persist
  across invocations, so static timing is not invocation-invariant and
  the schedule template would be wrong.

``fast-vector`` additionally needs NumPy; without it the factory falls
back to plain ``fast`` (same warning category) rather than dying — the
scalar template path needs no third-party code.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from repro.sim.config import EngineConfig
from repro.sim.engine import DataflowEngine
from repro.sim.fast import FastEngine

ENGINE_MODES = ("reference", "fast", "fast-vector")


class EngineModeFallback(UserWarning):
    """Fast mode was requested but unsupported for this run."""


def resolve_engine_mode(config: Optional[EngineConfig] = None) -> str:
    """The engine mode this process would run: config, env, or default."""
    mode = (
        (config.mode if config is not None else None)
        or os.environ.get("NACHOS_ENGINE")
        or "reference"
    )
    if mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES} "
            "(EngineConfig.mode or $NACHOS_ENGINE)"
        )
    return mode


def make_engine(
    graph,
    placement,
    hierarchy,
    backend,
    energy=None,
    config: Optional[EngineConfig] = None,
    recorder=None,
    tracer=None,
    mode: Optional[str] = None,
) -> DataflowEngine:
    """Build the engine the resolved mode calls for (with loud fallback).

    ``mode`` overrides resolution — callers that already folded the
    resolved mode into a cache key pass it back in so the key and the
    engine can never disagree.
    """
    resolved = mode if mode is not None else resolve_engine_mode(config)
    if resolved not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {resolved!r}; expected one of {ENGINE_MODES}"
        )
    if resolved in ("fast", "fast-vector"):
        reason = None
        if tracer is not None and tracer.enabled:
            reason = (
                "event tracing is enabled (the one-event-per-counter trace "
                "contract is defined against the reference event loop)"
            )
        elif config is not None and config.model_link_contention:
            reason = (
                "model_link_contention=True (mesh-link state persists "
                "across invocations, so schedule templates would be wrong)"
            )
        if reason is None:
            cls = FastEngine
            if resolved == "fast-vector":
                from repro.sim.vector import HAVE_NUMPY, VectorEngine

                if HAVE_NUMPY:
                    cls = VectorEngine
                else:
                    warnings.warn(
                        "engine mode 'fast-vector' needs NumPy, which is "
                        "unavailable; falling back to the fast engine",
                        EngineModeFallback,
                        stacklevel=2,
                    )
            return cls(
                graph,
                placement,
                hierarchy,
                backend,
                energy=energy,
                config=config,
                recorder=recorder,
                tracer=tracer,
            )
        warnings.warn(
            f"engine mode {resolved!r} ignored: {reason}; "
            "falling back to the reference engine",
            EngineModeFallback,
            stacklevel=2,
        )
    return DataflowEngine(
        graph,
        placement,
        hierarchy,
        backend,
        energy=energy,
        config=config,
        recorder=recorder,
        tracer=tracer,
    )
