"""The program-order golden model.

Executes a region's invocations strictly in program order with the same
functional value semantics as the timing engine.  Any backend that
enforces memory ordering correctly must reproduce the oracle's load
values and final memory image exactly — this is the correctness contract
the property-based tests check for all three disambiguation schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from repro.ir.graph import DFGraph
from repro.ir.opcodes import Opcode
from repro.sim.engine import _OPCODE_ID
from repro.sim.values import ValueMemory, mix


@dataclass
class GoldenResult:
    """Reference outputs of program-order execution."""

    load_values: Dict[Tuple[int, int], int] = field(default_factory=dict)
    memory_image: Tuple[Tuple[int, int], ...] = ()

    def matches(self, load_values: Mapping[Tuple[int, int], int], memory_image) -> bool:
        return (
            dict(self.load_values) == dict(load_values)
            and tuple(self.memory_image) == tuple(memory_image)
        )


def golden_execute(
    graph: DFGraph, invocations: Iterable[Mapping[str, int]]
) -> GoldenResult:
    """Run *graph* in strict program order over *invocations*."""
    memory = ValueMemory()
    result = GoldenResult()
    for inv, env in enumerate(invocations):
        values: Dict[int, int] = {}
        for op in graph.ops:
            if op.opcode is Opcode.CONST:
                values[op.op_id] = mix(0xC0, op.op_id)
            elif op.opcode is Opcode.INPUT:
                values[op.op_id] = mix(0x1F, op.op_id, inv)
            elif op.is_load:
                addr = op.addr.evaluate(env)
                values[op.op_id] = memory.load(addr, op.addr.width)
                result.load_values[(inv, op.op_id)] = values[op.op_id]
            elif op.is_store:
                addr = op.addr.evaluate(env)
                value = values[op.inputs[-1]]
                memory.store(addr, op.addr.width, value)
                values[op.op_id] = value
            else:
                values[op.op_id] = mix(
                    _OPCODE_ID[op.opcode], *(values[i] for i in op.inputs)
                )
    result.memory_image = memory.snapshot()
    return result
