"""OPT-LSQ: the paper's optimized load-store-queue baseline (§VIII-C).

An address-partitioned LSQ (banked by line address, 48 entries and 2
ports per bank) fronted by a bloom filter:

* memory operations carry compiler-assigned ages (8-bit ids, TRIPS-style)
  and must **issue into the LSQ in program order** — the in-order-issue
  effect that puts the LSQ on the load-to-use critical path (+2 cycles on
  every access);
* every access probes the bloom filter; only bloom hits pay the CAM
  search energy;
* loads search the store queue: an exactly-matching youngest older store
  forwards its value; partial overlaps wait for the stores to retire and
  then read the cache;
* stores wait for every conflicting older in-flight access before
  writing (ST-ST write ordering and LD-ST anti-dependences);
* a full bank stalls issue — and, because issue is in-order, everything
  younger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.energy.config import EnergyEvent
from repro.ir.graph import DFGraph
from repro.ir.ops import Operation
from repro.obs import tracer as obs
from repro.sim.backends.base import (
    alias_code,
    alias_pair_bytes,
    ranges_exact,
    ranges_overlap,
)
from repro.sim.engine import DataflowEngine, DisambiguationBackend
from repro.sim.values import mix


@dataclass(frozen=True)
class LSQConfig:
    """Geometry of the optimized LSQ (paper Figure 3)."""

    banks: int = 4
    entries_per_bank: int = 48
    issue_width: int = 2          # CAM ports per bank (ops/cycle/bank)
    pipeline_penalty: int = 2     # load-to-use cycles added by the LSQ
    bloom_bits: int = 1024
    bloom_hashes: int = 2
    forward_latency: int = 1
    line_bytes: int = 64

    @classmethod
    def paper_default(cls) -> "LSQConfig":
        return cls()


class _Bloom:
    """A counting bloom filter over cache-line addresses."""

    def __init__(self, bits: int, hashes: int) -> None:
        self.bits = bits
        self.hashes = hashes
        self._counts: Dict[int, int] = {}

    def signature(self, line: int) -> Tuple[int, ...]:
        return tuple(mix(line, k + 1) % self.bits for k in range(self.hashes))

    def probe(self, line: int) -> bool:
        return all(self._counts.get(b, 0) > 0 for b in self.signature(line))

    def insert(self, line: int) -> None:
        for b in self.signature(line):
            self._counts[b] = self._counts.get(b, 0) + 1

    def remove(self, line: int) -> None:
        # An invocation-boundary reset may clear the filter while an
        # access is still draining; its removal must not underflow
        # counters the matching insert no longer owns.
        for b in self.signature(line):
            count = self._counts.get(b, 0)
            if count <= 1:
                self._counts.pop(b, None)
            else:
                self._counts[b] = count - 1

    def clear(self) -> None:
        self._counts.clear()


class OptLSQBackend(DisambiguationBackend):
    """The centralized hardware baseline."""

    name = "opt-lsq"

    def __init__(self, config: Optional[LSQConfig] = None) -> None:
        super().__init__()
        self.config = config or LSQConfig.paper_default()
        self._order: List[int] = []
        self._rank: Dict[int, int] = {}
        # Per-invocation state:
        self._addr_ready: Dict[int, int] = {}
        self._value_ready: Dict[int, int] = {}
        self._addr_of: Dict[int, Tuple[int, int]] = {}
        self._inflight: Dict[int, Tuple[int, int]] = {}  # op -> (addr, width)
        self._bank_load: Dict[int, int] = {}
        self._next = 0
        self._slot_time = 0
        self._bank_slot: Dict[int, List[int]] = {}
        self._issue_time: Dict[int, int] = {}
        self._load_bloom = _Bloom(1, 1)
        self._store_bloom = _Bloom(1, 1)
        self._load_waits: Dict[int, Set[int]] = {}
        self._store_waits: Dict[int, Set[int]] = {}
        self._resume_time: Dict[int, int] = {}
        self._forward_from: Dict[int, List[int]] = {}  # store -> loads
        self._done: Set[int] = set()

    # ------------------------------------------------------------------
    def attach(self, engine: DataflowEngine, graph: DFGraph, placement) -> None:
        super().attach(engine, graph, placement)
        self._order = [op.op_id for op in graph.memory_ops]
        self._rank = {oid: i for i, oid in enumerate(self._order)}

    def begin_invocation(self, inv, t0, addr_of) -> None:
        self._addr_ready.clear()
        self._value_ready.clear()
        self._addr_of = addr_of
        self._inflight.clear()
        self._bank_load = {b: 0 for b in range(self.config.banks)}
        self._next = 0
        self._slot_time = t0
        self._bank_slot = {}
        self._issue_time.clear()
        self._load_bloom = _Bloom(self.config.bloom_bits, self.config.bloom_hashes)
        self._store_bloom = _Bloom(self.config.bloom_bits, self.config.bloom_hashes)
        self._load_waits.clear()
        self._store_waits.clear()
        self._resume_time.clear()
        self._forward_from.clear()
        self._done.clear()

    # ------------------------------------------------------------------
    def replay_signature(self, addr_of):
        """Canonical pattern of every address relation the LSQ consults.

        Decisions branch on (a) pairwise overlap/exactness between an
        issuing op and older in-flight ops, (b) which ops share a bank
        (slot arbitration and bank-full stalls compare bank ids only
        for equality, never their values), and (c) bloom probe results,
        which depend only on which filter bits the in-flight lines'
        signatures share.  Banks and bloom bits are therefore
        canonicalized by first occurrence: two invocations whose
        addresses induce the same *relational* structure schedule
        identically even when the raw addresses differ every time —
        which they do, and is what makes LSQ replay fire at all.
        """
        cfg = self.config
        order = self._order
        ranges = [addr_of[oid] for oid in order]
        lines = [r[0] // cfg.line_bytes for r in ranges]
        canon: Dict[int, int] = {}
        bank_pat = tuple(
            canon.setdefault(line % cfg.banks, len(canon)) for line in lines
        )
        bit_canon: Dict[int, int] = {}
        bloom_pat = tuple(
            bit_canon.setdefault(mix(line, k + 1) % cfg.bloom_bits, len(bit_canon))
            for line in lines
            for k in range(cfg.bloom_hashes)
        )
        return (bank_pat, alias_pair_bytes(ranges), bloom_pat)

    # ------------------------------------------------------------------
    def _bank_of(self, addr: int) -> int:
        return (addr // self.config.line_bytes) % self.config.banks

    def _line_of(self, addr: int) -> int:
        return addr // self.config.line_bytes

    def _alloc_slot(self, t: int, bank: int) -> int:
        """Respect in-order issue and the per-bank CAM port count."""
        # Program order: never issue earlier than the previous op.
        t = max(t, self._slot_time)
        slot = self._bank_slot.get(bank)
        if slot is None or t > slot[0]:
            self._bank_slot[bank] = [t, 1]
        elif slot[1] < self.config.issue_width:
            slot[1] += 1
            t = slot[0]
        else:
            self._bank_slot[bank] = [slot[0] + 1, 1]
            t = slot[0] + 1
        self._slot_time = t
        return t

    # ------------------------------------------------------------------
    # Engine notifications
    # ------------------------------------------------------------------
    def on_addr_ready(self, op: Operation, t: int) -> None:
        self._addr_ready[op.op_id] = t
        self._pump(t)

    def on_value_ready(self, op: Operation, t: int) -> None:
        self._value_ready[op.op_id] = t
        if op.op_id in self._issue_time:
            self._maybe_execute_store(op.op_id, t)
        for load_id in self._forward_from.pop(op.op_id, []):
            self._complete_forward(load_id, op.op_id, t)

    def on_memory_complete(self, op: Operation, t: int) -> None:
        oid = op.op_id
        self._done.add(oid)
        if oid in self._inflight:
            addr, _ = self._inflight.pop(oid)
            self._bank_load[self._bank_of(addr)] -= 1
            bloom = self._store_bloom if op.is_store else self._load_bloom
            bloom.remove(self._line_of(addr))
            if self._trace is not None:
                self._trace.emit(
                    obs.LSQ_DEQUEUE,
                    t,
                    op=oid,
                    args={"occupancy": sum(self._bank_load.values())},
                )

        resume = t + 1
        for waiter, waiting in list(self._load_waits.items()):
            if oid in waiting:
                waiting.discard(oid)
                self._resume_time[waiter] = max(
                    self._resume_time.get(waiter, 0), resume
                )
                if not waiting:
                    del self._load_waits[waiter]
                    self._launch_load(waiter, self._resume_time[waiter])
        for waiter, waiting in list(self._store_waits.items()):
            if oid in waiting:
                waiting.discard(oid)
                self._resume_time[waiter] = max(
                    self._resume_time.get(waiter, 0), resume
                )
                if not waiting:
                    self._maybe_execute_store(waiter, resume)
        self.engine.schedule(resume, lambda: self._pump(resume))

    # ------------------------------------------------------------------
    # In-order issue
    # ------------------------------------------------------------------
    def _pump(self, now: int) -> None:
        while self._next < len(self._order):
            oid = self._order[self._next]
            if oid not in self._addr_ready:
                return
            addr, _ = self._addr_of[oid]
            bank = self._bank_of(addr)
            if self._bank_load[bank] >= self.config.entries_per_bank:
                return  # head-of-line blocked on a full bank
            t = self._alloc_slot(max(self._addr_ready[oid], now), bank)
            self._next += 1
            self._issue(oid, t)

    def _issue(self, oid: int, t: int) -> None:
        op = self.graph.op(oid)
        addr, width = self._addr_of[oid]
        line = self._line_of(addr)
        self._issue_time[oid] = t
        self._inflight[oid] = (addr, width)
        self._bank_load[self._bank_of(addr)] += 1

        # Bloom probe: loads check the store bloom; stores check both.
        self.engine.energy.charge(EnergyEvent.LSQ_BLOOM)
        self.stats.bloom_probes += 1
        if op.is_load:
            hit = self._store_bloom.probe(line)
        else:
            hit = self._store_bloom.probe(line) or self._load_bloom.probe(line)
        if self._trace is not None:
            self._trace.emit(obs.BLOOM_PROBE, t, op=oid, args={"hit": hit})
            self._trace.emit(
                obs.LSQ_ENQUEUE,
                t,
                op=oid,
                args={"occupancy": sum(self._bank_load.values()), "bank": self._bank_of(addr)},
            )
        if hit:
            self.stats.bloom_hits += 1
            self.stats.cam_checks += 1
            if self._trace is not None:
                self._trace.emit(obs.CAM_SEARCH, t, op=oid)
            self.engine.energy.charge(
                EnergyEvent.LSQ_CAM_STORE if op.is_store else EnergyEvent.LSQ_CAM_LOAD
            )

        my_rank = self._rank[oid]
        conflicts = []
        for other, other_range in self._inflight.items():
            if other == oid or self._rank[other] >= my_rank:
                continue
            other_op = self.graph.op(other)
            if op.is_load and not other_op.is_store:
                continue  # LD-LD needs no ordering
            if ranges_overlap(other_range, (addr, width)):
                conflicts.append(other)

        bloom = self._store_bloom if op.is_store else self._load_bloom
        bloom.insert(line)

        if op.is_load:
            self._issue_load(oid, t, conflicts)
        else:
            self._store_waits[oid] = set(conflicts)
            self._resume_time[oid] = max(self._resume_time.get(oid, 0), t)
            self._maybe_execute_store(oid, t)

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def _issue_load(self, oid: int, t: int, conflicts: List[int]) -> None:
        op = self.graph.op(oid)
        addr_range = self._addr_of[oid]
        stores = [c for c in conflicts if self.graph.op(c).is_store]
        if stores:
            youngest = max(stores, key=lambda s: self._rank[s])
            if ranges_exact(self._addr_of[youngest], addr_range):
                # Store-to-load forwarding from the SQ.
                self.stats.lsq_forwards += 1
                if self._trace is not None:
                    self._trace.emit(
                        obs.LSQ_FORWARD, t, op=oid, args={"src": youngest}
                    )
                self.engine.energy.charge(EnergyEvent.LSQ_FORWARD)
                if youngest in self._value_ready:
                    self._complete_forward(oid, youngest, t)
                else:
                    self._forward_from.setdefault(youngest, []).append(oid)
                return
            # Partial overlap: wait for all conflicting stores to retire,
            # then read the (now coherent) cache.
            self._load_waits[oid] = set(stores)
            self._resume_time[oid] = max(self._resume_time.get(oid, 0), t)
            return
        self._launch_load(oid, t)

    def _launch_load(self, oid: int, t: int) -> None:
        op = self.graph.op(oid)
        self.engine.do_load(op, t + self.config.pipeline_penalty)

    def _complete_forward(self, load_id: int, store_id: int, now: int) -> None:
        load = self.graph.op(load_id)
        store = self.graph.op(store_id)
        t = max(
            self._issue_time[load_id],
            self._value_ready[store_id],
            now,
        ) + self.config.forward_latency
        self.engine.forward_load(load, store, t)

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------
    def _maybe_execute_store(self, oid: int, now: int) -> None:
        if oid not in self._store_waits:
            return
        if self._store_waits[oid]:
            return
        if oid not in self._value_ready:
            return
        del self._store_waits[oid]
        op = self.graph.op(oid)
        # `now` is the resume timestamp computed by the caller (e.g. the
        # completion of a conflicting access +1); folding it into the max
        # keeps the store's issue time correct even when `_resume_time`
        # was not updated first.
        t = max(
            self._issue_time[oid],
            self._value_ready[oid],
            self._resume_time.get(oid, 0),
            now,
        )
        self.engine.do_store(op, t + self.config.pipeline_penalty)
