"""Shared MDE-enforcement machinery for the NACHOS backends.

Both NACHOS-SW and NACHOS enforce compiler-inserted MDEs instead of using
an LSQ.  The difference is confined to MAY edges:

* NACHOS-SW resolves a MAY edge only when the older operation completes
  (it is treated exactly like an ORDER edge);
* NACHOS additionally owns a ``==?`` comparator at the younger op's
  functional unit and can resolve a MAY edge early when the runtime
  addresses do not overlap — and can even *forward* a conflicting store's
  value to a load.

This base class implements the whole protocol with the hardware checks
behind a flag (:attr:`hardware_checks`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.energy.config import EnergyEvent
from repro.ir.graph import DFGraph, MDEKind, MemoryDependencyEdge
from repro.ir.ops import Operation
from repro.obs import tracer as obs
from repro.sim.engine import DataflowEngine, DisambiguationBackend

Pair = Tuple[int, int]


def ranges_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    """Do byte ranges (addr, width) intersect?"""
    return a[0] < b[0] + b[1] and b[0] < a[0] + a[1]


def ranges_exact(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    return a == b


def alias_code(a: Tuple[int, int], b: Tuple[int, int]) -> int:
    """Both alias verdicts a backend can ask about a pair, as one int.

    Bit 1 = the ranges overlap, bit 0 = they match exactly — the only
    two address predicates any backend decision branches on, so a tuple
    of these codes is a sound replay-signature component.
    """
    return 2 * (a[0] < b[0] + b[1] and b[0] < a[0] + a[1]) + (a == b)


try:  # pragma: no cover - exercised by both branches across environments
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None


def alias_pair_bytes(ranges: List[Tuple[int, int]]) -> bytes:
    """All-pairs :func:`alias_code`, packed one byte per pair.

    Pair order is ``(i, j)`` for ``i < j``, iterated ``j`` outer — the
    order the scalar double loop produces — so two calls are equal iff
    every pairwise verdict matches.  The packed form exists because the
    fast-vector engine computes this per *invocation* as a replay key:
    an M-op region has M*(M-1)/2 pairs, and building (then hashing) a
    tuple of that many ints dominated replay dispatch.  The O(M^2) work
    runs as NumPy broadcasting when available; the scalar loop is the
    fallback.
    """
    n = len(ranges)
    if n < 2:
        return b""
    if _np is not None:
        s = _np.fromiter((r[0] for r in ranges), dtype=_np.int64, count=n)
        w = _np.fromiter((r[1] for r in ranges), dtype=_np.int64, count=n)
        e = s + w
        overlap = (s[:, None] < e[None, :]) & (s[None, :] < e[:, None])
        exact = (s[:, None] == s[None, :]) & (w[:, None] == w[None, :])
        code = (overlap.astype(_np.uint8) << 1) | exact.astype(_np.uint8)
        # code is symmetric; row-major lower triangle == (j outer, i inner).
        j, i = _np.tril_indices(n, k=-1)
        return code[j, i].tobytes()
    out = bytearray()
    for j in range(1, n):
        rj = ranges[j]
        for i in range(j):
            out.append(alias_code(ranges[i], rj))
    return bytes(out)


class MDEBackendBase(DisambiguationBackend):
    """Enforces ORDER / FORWARD / MAY edges over the dataflow fabric."""

    #: Subclasses set this: True enables the runtime ==? comparator.
    hardware_checks = False
    #: Comparators available at each younger op's functional unit.
    comparators_per_fu = 1

    def __init__(self) -> None:
        super().__init__()
        self._parents: Dict[int, List[MemoryDependencyEdge]] = {}
        self._children: Dict[int, List[MemoryDependencyEdge]] = {}
        self._forward_src: Dict[int, int] = {}  # load -> forwarding store
        # Per-invocation state:
        self._addr_ready: Dict[int, int] = {}
        self._value_ready: Dict[int, int] = {}
        self._completed: Dict[int, int] = {}
        self._resolved: Dict[Pair, int] = {}       # edge -> resolution cycle
        self._conflict: Dict[Pair, bool] = {}      # comparator verdicts
        self._checked: Set[Pair] = set()
        self._fu_free: Dict[int, List[int]] = {}   # comparator pool per op
        self._issued: Set[int] = set()
        self._addr_of: Dict[int, Tuple[int, int]] = {}
        self._t0 = 0
        self._blocked_since: Dict[int, int] = {}   # tracing only

    # ------------------------------------------------------------------
    def attach(self, engine: DataflowEngine, graph: DFGraph, placement) -> None:
        super().attach(engine, graph, placement)
        self._parents = {op.op_id: [] for op in graph.memory_ops}
        self._children = {op.op_id: [] for op in graph.memory_ops}
        self._forward_src = {}
        for edge in graph.mdes:
            self._parents[edge.dst].append(edge)
            self._children[edge.src].append(edge)
            if edge.kind is MDEKind.FORWARD:
                self._forward_src[edge.dst] = edge.src

    def begin_invocation(self, inv, t0, addr_of) -> None:
        self._addr_ready.clear()
        self._value_ready.clear()
        self._completed.clear()
        self._resolved.clear()
        self._conflict.clear()
        self._checked.clear()
        self._fu_free.clear()
        self._issued.clear()
        self._addr_of = addr_of
        self._t0 = t0
        self._blocked_since.clear()

    # ------------------------------------------------------------------
    def replay_signature(self, addr_of):
        """Alias verdicts of every MAY pair the comparator could check.

        Without hardware checks no decision reads an address at all
        (MAY edges serialize like ORDER edges), so the signature is
        empty: every invocation of a region schedules identically and
        the fast-vector engine can always attempt a replay.  With
        checks, ``_run_check`` branches on overlap and
        ``_try_forward_runtime`` on exactness — both per MAY edge — so
        the per-edge :func:`alias_code` tuple pins every verdict.
        """
        if not self.hardware_checks:
            return ()
        return tuple(
            alias_code(addr_of[edge.src], addr_of[edge.dst])
            for edge in self.graph.mdes
            if edge.kind is MDEKind.MAY
        )

    # ------------------------------------------------------------------
    # Engine notifications
    # ------------------------------------------------------------------
    def on_addr_ready(self, op: Operation, t: int) -> None:
        self._addr_ready[op.op_id] = t
        if self.hardware_checks:
            self._schedule_checks_for(op, t)
        self._try_issue(op.op_id, t)

    def on_value_ready(self, op: Operation, t: int) -> None:
        self._value_ready[op.op_id] = t
        self._try_issue(op.op_id, t)
        # A store's value becoming ready can unblock forwarded loads.
        for edge in self._children.get(op.op_id, []):
            if edge.kind in (MDEKind.FORWARD, MDEKind.MAY):
                self._retry(edge.dst, t)

    def on_memory_complete(self, op: Operation, t: int) -> None:
        self._completed[op.op_id] = t
        signal = self.engine.config.order_signal_latency
        for edge in self._children.get(op.op_id, []):
            pair = (edge.src, edge.dst)
            if pair in self._resolved:
                continue
            when = t + signal
            self._resolved[pair] = when
            if edge.kind is MDEKind.ORDER or (
                edge.kind is MDEKind.MAY and not self.hardware_checks
            ):
                # A MAY edge without hardware checks (NACHOS-SW) is
                # serialized exactly like an ORDER edge (1-bit).
                self.engine.energy.charge(EnergyEvent.MDE_MUST)
                self.stats.order_waits += 1
                if self._trace is not None:
                    self._emit_order_wait(edge, when)
            elif (
                edge.kind is MDEKind.MAY
                and self.hardware_checks
                and self._conflict.get(pair) is True
                and edge.dst not in self._issued
            ):
                # NACHOS with a conflicting `==?` verdict that was not
                # satisfied by a forward: the younger op really stalled
                # until this completion — an order wait, even though no
                # 1-bit MDE signal was charged for it.
                self.stats.order_waits += 1
                if self._trace is not None:
                    self._emit_order_wait(edge, when)
            self._retry(edge.dst, when)

    # ------------------------------------------------------------------
    def _retry(self, op_id: int, when: int) -> None:
        self.engine.schedule(when, lambda: self._try_issue(op_id, when))

    # ------------------------------------------------------------------
    # Tracing helpers (no-ops unless a tracer is attached)
    # ------------------------------------------------------------------
    def _emit_order_wait(self, edge: MemoryDependencyEdge, when: int) -> None:
        """One order-wait span per serialized edge resolution.

        The wait extent runs from the younger op's address readiness
        (if it was already waiting) to the resolution instant.
        """
        dst_ready = self._addr_ready.get(edge.dst)
        wait = max(0, when - dst_ready) if dst_ready is not None else 0
        self._trace.emit(
            obs.ORDER_WAIT,
            when - wait,
            dur=wait,
            op=edge.dst,
            args={"src": edge.src, "edge": edge.kind.name.lower()},
        )

    def _note_blocked(self, op_id: int, now: int) -> None:
        self._blocked_since.setdefault(op_id, now)

    def _emit_unblocked(self, op_id: int, t_issue: int) -> None:
        since = self._blocked_since.pop(op_id, None)
        if since is not None and t_issue > since:
            self._trace.emit(
                obs.OP_BLOCKED, since, dur=t_issue - since, op=op_id
            )

    # ------------------------------------------------------------------
    # NACHOS comparator (hardware_checks only)
    # ------------------------------------------------------------------
    def _schedule_checks_for(self, op: Operation, t: int) -> None:
        """New address available: schedule ==? checks it participates in."""
        oid = op.op_id
        for edge in self._parents.get(oid, []):
            if edge.kind is MDEKind.MAY and edge.src in self._addr_ready:
                self._schedule_check(edge)
        for edge in self._children.get(oid, []):
            if edge.kind is MDEKind.MAY and edge.dst in self._addr_ready:
                self._schedule_check(edge)

    def _schedule_check(self, edge: MemoryDependencyEdge) -> None:
        pair = (edge.src, edge.dst)
        if pair in self._checked or pair in self._resolved:
            return
        self._checked.add(pair)
        route = self.placement.route_latency(edge.src, edge.dst)
        ready = max(
            self._addr_ready[edge.dst],
            self._addr_ready[edge.src] + route,
        )
        # One comparison per comparator per cycle at the younger op's
        # functional unit; simultaneous parents arbitrate (round-robin
        # modeled as FCFS over the comparator pool).
        pool = self._fu_free.setdefault(
            edge.dst, [self._t0] * self.comparators_per_fu
        )
        slot = min(range(len(pool)), key=lambda k: pool[k])
        start = max(ready, pool[slot])
        pool[slot] = start + 1
        self.engine.schedule(start + 1, lambda: self._run_check(edge, start + 1))

    def _run_check(self, edge: MemoryDependencyEdge, t: int) -> None:
        pair = (edge.src, edge.dst)
        if pair in self._resolved:
            return  # parent completed first
        self.engine.energy.charge(EnergyEvent.MDE_MAY_CHECK)
        self.stats.comparator_checks += 1
        conflict = ranges_overlap(self._addr_of[edge.src], self._addr_of[edge.dst])
        self._conflict[pair] = conflict
        if self._trace is not None:
            self._trace.emit(
                obs.COMPARATOR_CHECK,
                t,
                op=edge.dst,
                args={"src": edge.src, "conflict": conflict},
            )
        if conflict:
            self.stats.comparator_conflicts += 1
            # Resolution waits for the older op's completion — but the
            # younger op must still re-evaluate: an exactly-matching
            # conflicting store can forward its value (ST->LD).
            self._retry(edge.dst, t)
            return
        self._resolved[pair] = t
        self._retry(edge.dst, t)

    # ------------------------------------------------------------------
    # Issue logic
    # ------------------------------------------------------------------
    def _try_issue(self, op_id: int, now: int) -> None:
        if op_id in self._issued:
            return
        op = self.graph.op(op_id)
        if op_id not in self._addr_ready:
            return
        if op.is_store and op_id not in self._value_ready:
            return

        if op.is_load and op_id in self._forward_src:
            self._try_forward_static(op, now)
            return

        parents = self._parents.get(op_id, [])
        unresolved = [e for e in parents if (e.src, e.dst) not in self._resolved]

        if unresolved:
            if self._trace is not None:
                self._note_blocked(op_id, now)
            if self.hardware_checks and op.is_load:
                self._try_forward_runtime(op, unresolved, now)
            return

        t_start = self._addr_ready[op_id]
        if op.is_store:
            t_start = max(t_start, self._value_ready[op_id])
        for e in parents:
            t_start = max(t_start, self._resolved[(e.src, e.dst)])
        self._issued.add(op_id)
        if self._trace is not None:
            self._emit_unblocked(op_id, t_start)
        if op.is_load:
            self.engine.do_load(op, t_start)
        else:
            self.engine.do_store(op, t_start)

    # ------------------------------------------------------------------
    def _try_forward_static(self, op: Operation, now: int) -> None:
        """Complete a load via its compile-time FORWARD edge.

        MDE insertion guarantees the forwarding store is the youngest
        older store that can alias the load, so only its value matters.
        """
        src_id = self._forward_src[op.op_id]
        if src_id not in self._value_ready:
            return
        src = self.graph.op(src_id)
        route = self.placement.route_latency(src_id, op.op_id)
        t = max(
            self._addr_ready[op.op_id],
            self._value_ready[src_id] + route,
        ) + self.engine.config.forward_latency
        self._issued.add(op.op_id)
        if self._trace is not None:
            self._emit_unblocked(op.op_id, t)
        self.engine.energy.charge(EnergyEvent.MDE_FORWARD)
        self.engine.forward_load(op, src, t)

    def _try_forward_runtime(
        self, op: Operation, unresolved: List[MemoryDependencyEdge], now: int
    ) -> None:
        """NACHOS-only: forward from a conflicting MAY store.

        Safe when exactly one parent is unresolved, it is a store whose
        verdict is a *conflict* that exactly covers the load, and its
        value has arrived: every other potentially-aliasing older store
        has either completed (writing memory the conflicting store will
        logically supersede — the two conflicting stores overlap each
        other and are therefore mutually ordered) or was proven
        non-conflicting.
        """
        if len(unresolved) != 1:
            return
        edge = unresolved[0]
        pair = (edge.src, edge.dst)
        if self._conflict.get(pair) is not True:
            return
        src = self.graph.op(edge.src)
        if not src.is_store:
            return
        if not ranges_exact(self._addr_of[edge.src], self._addr_of[op.op_id]):
            return
        if edge.src not in self._value_ready:
            return
        route = self.placement.route_latency(edge.src, op.op_id)
        t = max(
            self._addr_ready[op.op_id],
            self._value_ready[edge.src] + route,
        ) + self.engine.config.forward_latency
        self._issued.add(op.op_id)
        self.stats.runtime_forwards += 1
        if self._trace is not None:
            self._trace.emit(
                obs.RUNTIME_FORWARD, t, op=op.op_id, args={"src": edge.src}
            )
            self._emit_unblocked(op.op_id, t)
        self.engine.energy.charge(EnergyEvent.MDE_FORWARD)
        self.engine.forward_load(op, src, t)
