"""NACHOS-SW: compiler-only enforcement (paper Section V).

All MDEs — including MAY edges, which the compiler could not prove — are
enforced as dataflow ordering: the younger memory operation waits for the
older one to complete.  No disambiguation hardware exists; memory
operations with no incoming MDEs go straight to the cache, which is what
gives NACHOS-SW its load-to-use advantage over the LSQ on cache hits.
"""

from __future__ import annotations

from repro.sim.backends.base import MDEBackendBase


class NachosSWBackend(MDEBackendBase):
    """Software-only memory disambiguation (MAY serialized as MUST)."""

    name = "nachos-sw"
    hardware_checks = False
