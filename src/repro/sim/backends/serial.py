"""SERIAL-MEM: strictly in-order memory execution (Table I's CFU class).

Compound-function-unit accelerators (CFU, C-Cores) terminate accelerated
blocks at memory operations, so memory executes in program order with no
disambiguation hardware at all — the paper's Table I lists this as the
"Inorder" memory-ordering class whose granularity NACHOS unlocks.

This backend models that class on the same fabric: every memory
operation waits for the previous memory operation to complete before
touching the cache.  It needs no compiler labels and no hardware, and it
is trivially correct; it exists to quantify the granularity argument
(``experiments/granularity.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.ops import Operation
from repro.obs import tracer as obs
from repro.sim.engine import DisambiguationBackend


class SerialMemBackend(DisambiguationBackend):
    """Program-order memory execution; zero disambiguation cost."""

    name = "serial-mem"

    def __init__(self) -> None:
        super().__init__()
        self._order: list = []
        self._index: Dict[int, int] = {}
        self._addr_ready: Dict[int, int] = {}
        self._value_ready: Dict[int, int] = {}
        self._completed: Dict[int, int] = {}
        self._issued: set = set()
        self._t0 = 0
        self._blocked_since: Dict[int, int] = {}  # tracing only

    def attach(self, engine, graph, placement) -> None:
        super().attach(engine, graph, placement)
        self._order = [op.op_id for op in graph.memory_ops]
        self._index = {oid: k for k, oid in enumerate(self._order)}

    def begin_invocation(self, inv, t0, addr_of) -> None:
        self._addr_ready.clear()
        self._value_ready.clear()
        self._completed.clear()
        self._issued.clear()
        self._t0 = t0
        self._blocked_since.clear()

    def replay_signature(self, addr_of):
        # Program-order issue never reads an address: every invocation
        # of a region schedules identically, so replay is always sound.
        return ()

    # ------------------------------------------------------------------
    def on_addr_ready(self, op: Operation, t: int) -> None:
        self._addr_ready[op.op_id] = t
        self._try(op, t)

    def on_value_ready(self, op: Operation, t: int) -> None:
        self._value_ready[op.op_id] = t
        self._try(op, t)

    def on_memory_complete(self, op: Operation, t: int) -> None:
        self._completed[op.op_id] = t
        idx = self._index[op.op_id] + 1
        if idx < len(self._order):
            nxt = self.graph.op(self._order[idx])
            self.engine.schedule(t + 1, lambda: self._try(nxt, t + 1))

    # ------------------------------------------------------------------
    def _try(self, op: Operation, now: int) -> None:
        oid = op.op_id
        if oid in self._issued:
            return
        if oid not in self._addr_ready:
            return
        if op.is_store and oid not in self._value_ready:
            return
        idx = self._index[oid]
        t = max(self._addr_ready[oid], now)
        if op.is_store:
            t = max(t, self._value_ready[oid])
        if idx > 0:
            prev = self._order[idx - 1]
            if prev not in self._completed:
                if self._trace is not None:
                    # Ready but serialized behind the previous memory op.
                    self._blocked_since.setdefault(oid, t)
                return
            t = max(t, self._completed[prev] + 1)
        self._issued.add(oid)
        if self._trace is not None:
            since = self._blocked_since.pop(oid, None)
            if since is not None and t > since:
                self._trace.emit(obs.OP_BLOCKED, since, dur=t - since, op=oid)
        if op.is_load:
            self.engine.do_load(op, t)
        else:
            self.engine.do_store(op, t)
