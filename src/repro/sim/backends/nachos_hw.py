"""NACHOS: hardware-assisted runtime checking of MAY edges (Section VII).

Each memory operation with MAY-alias parents owns a result register and a
single ``==?`` comparator in its functional unit.  Older parents' resolved
addresses arrive over the operand network and are compared round-robin —
one check per cycle — against the younger op's address:

* no overlap: the parent's result bit is set immediately; the younger op
  may proceed without waiting for the parent to execute,
* overlap: the bit is set only when the parent completes — or, for an
  exactly-matching store-to-load conflict, the store's value is forwarded
  directly (the runtime ST->LD forwarding the paper credits for
  bodytrack).

The single comparator per op is the source of the fan-in contention the
paper reports for bzip2 and sar-pfa-interp1: many MAY parents arriving in
the same cycle serialize their checks.
"""

from __future__ import annotations

from repro.sim.backends.base import MDEBackendBase


class NachosBackend(MDEBackendBase):
    """Software-driven, hardware-assisted disambiguation.

    ``comparators_per_fu`` is an ablation knob (default 1, the paper's
    design): extra comparators per functional unit relieve the fan-in
    arbitration that slows bzip2 / sar-pfa-interp1, at the area cost the
    paper's appendix trades off.
    """

    name = "nachos"
    hardware_checks = True

    def __init__(self, comparators_per_fu: int = 1) -> None:
        super().__init__()
        if comparators_per_fu < 1:
            raise ValueError("need at least one comparator per FU")
        self.comparators_per_fu = comparators_per_fu
