"""Memory-disambiguation backends: OPT-LSQ, SPEC-LSQ, NACHOS-SW, NACHOS."""

from repro.sim.backends.lsq import LSQConfig, OptLSQBackend
from repro.sim.backends.nachos_sw import NachosSWBackend
from repro.sim.backends.nachos_hw import NachosBackend
from repro.sim.backends.spec_lsq import SpecLSQBackend, SpecLSQConfig, StoreSetPredictor

__all__ = [
    "LSQConfig",
    "NachosBackend",
    "NachosSWBackend",
    "OptLSQBackend",
    "SpecLSQBackend",
    "SpecLSQConfig",
    "StoreSetPredictor",
]
