"""SPEC-LSQ: a speculative, out-of-order-issue LSQ baseline.

The paper's OPT-LSQ issues memory operations into the queue in program
order, which puts the LSQ on the load-to-use critical path.  The OOO
literature the paper cites (store sets [Chrysos & Emer], fire-and-forget,
NoSQ) instead lets loads issue *speculatively* before older stores'
addresses are known and repairs the rare ordering violation.  The paper
declines to build these for accelerators ("require complex prediction
structures"); we implement one as an extra baseline so the trade-off is
measurable (see ``benchmarks/test_ablation_spec_lsq.py``).

Model:

* memory ops enter the LSQ when their own address resolves — no in-order
  issue constraint and no front-end pipeline penalty,
* a load with no known in-flight conflict and some *unresolved* older
  stores consults a store-set predictor (the static (store, load) pairs
  that violated before): a predicted dependence waits; otherwise the
  load **speculates**, reading as of its ready time,
* when the last older store's address arrives the speculation resolves:
  no late conflict keeps the early completion; a late conflict is a
  **violation** — the load replays after the conflicting stores retire,
  pays a flush penalty, and trains the predictor (persistently across
  invocations, so steady state mispredicts only truly input-dependent
  conflicts),
* stores never speculate (a publish cannot be retracted): they wait for
  every older access's address and every conflicting older access's
  completion.

Values remain exact: a load reads byte memory at its *final* completion
instant, so a replayed load observes the store it violated — the
program-order oracle validates every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.energy.config import EnergyEvent
from repro.ir.graph import DFGraph
from repro.ir.ops import Operation
from repro.obs import tracer as obs
from repro.sim.backends.base import (
    alias_code,
    alias_pair_bytes,
    ranges_exact,
    ranges_overlap,
)
from repro.sim.engine import DataflowEngine, DisambiguationBackend


@dataclass(frozen=True)
class SpecLSQConfig:
    """Speculative LSQ parameters."""

    forward_latency: int = 1
    #: Cycles to flush and replay a violated load (pipeline repair).
    replay_penalty: int = 8


class StoreSetPredictor:
    """Minimal store-set predictor: remembers violating static pairs."""

    def __init__(self) -> None:
        self._pairs: Set[Tuple[int, int]] = set()
        self.trainings = 0

    def predicts_dependence(self, store_id: int, load_id: int) -> bool:
        return (store_id, load_id) in self._pairs

    def train(self, store_id: int, load_id: int) -> None:
        if (store_id, load_id) not in self._pairs:
            self._pairs.add((store_id, load_id))
            self.trainings += 1

    def __len__(self) -> int:
        return len(self._pairs)


class SpecLSQBackend(DisambiguationBackend):
    """Out-of-order issue LSQ with store-set dependence speculation."""

    name = "spec-lsq"

    def __init__(self, config: Optional[SpecLSQConfig] = None) -> None:
        super().__init__()
        self.config = config or SpecLSQConfig()
        self.predictor = StoreSetPredictor()
        self._rank: Dict[int, int] = {}
        self._stores_before: Dict[int, List[int]] = {}
        self._older_mem: Dict[int, List[int]] = {}
        # Per-invocation state:
        self._addr_ready: Dict[int, int] = {}
        self._value_ready: Dict[int, int] = {}
        self._completed: Dict[int, int] = {}
        self._addr_of: Dict[int, Tuple[int, int]] = {}
        self._issued: Set[int] = set()
        # Event wait-lists: op_id -> callbacks run when that event fires.
        self._addr_waiters: Dict[int, List[Callable[[int], None]]] = {}
        self._value_waiters: Dict[int, List[Callable[[int], None]]] = {}
        self._complete_waiters: Dict[int, List[Callable[[int], None]]] = {}
        #: Pairs trained during the current invocation (replay carryover).
        self._trained_log: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    def attach(self, engine: DataflowEngine, graph: DFGraph, placement) -> None:
        super().attach(engine, graph, placement)
        mem = graph.memory_ops
        self._rank = {op.op_id: k for k, op in enumerate(mem)}
        self._sig_order = [op.op_id for op in mem]
        self._stores_before = {
            op.op_id: [s.op_id for s in mem if s.is_store and s.op_id < op.op_id]
            for op in mem
        }
        self._older_mem = {
            op.op_id: [o.op_id for o in mem if o.op_id < op.op_id] for op in mem
        }

    def begin_invocation(self, inv, t0, addr_of) -> None:
        self._addr_ready.clear()
        self._value_ready.clear()
        self._completed.clear()
        self._issued.clear()
        self._addr_waiters.clear()
        self._value_waiters.clear()
        self._complete_waiters.clear()
        self._addr_of = addr_of
        self._trained_log = []

    # ------------------------------------------------------------------
    def replay_signature(self, addr_of):
        """Pairwise alias verdicts plus the predictor's current pairs.

        Every speculation/violation decision branches on overlap or
        exactness between two memory ops (``_conflicting``,
        ``_finish_load``) or on ``predicts_dependence`` — persistent
        state the signature must pin, since a trained pair flips a
        later identical invocation from speculate to wait.
        """
        ranges = [addr_of[oid] for oid in self._sig_order]
        return (
            alias_pair_bytes(ranges),
            tuple(sorted(self.predictor._pairs)),
        )

    def replay_carryover(self):
        # The pairs this invocation trained: the only cross-invocation
        # state.  A replayed invocation with a matching signature would
        # have trained exactly these, so re-applying them keeps the
        # predictor's trajectory identical.
        return tuple(self._trained_log)

    def apply_carryover(self, token) -> None:
        for store_id, load_id in token:
            self.predictor.train(store_id, load_id)
        self._trained_log = list(token)

    # ------------------------------------------------------------------
    # Wait-list plumbing
    # ------------------------------------------------------------------
    def _when_addr(self, op_id: int, fn: Callable[[int], None]) -> None:
        if op_id in self._addr_ready:
            fn(self._addr_ready[op_id])
        else:
            self._addr_waiters.setdefault(op_id, []).append(fn)

    def _when_value(self, op_id: int, fn: Callable[[int], None]) -> None:
        if op_id in self._value_ready:
            fn(self._value_ready[op_id])
        else:
            self._value_waiters.setdefault(op_id, []).append(fn)

    def _when_complete(self, op_id: int, fn: Callable[[int], None]) -> None:
        if op_id in self._completed:
            fn(self._completed[op_id])
        else:
            self._complete_waiters.setdefault(op_id, []).append(fn)

    def _when_all(
        self,
        waiter,
        ids: List[int],
        then: Callable[[int], None],
        floor: int = 0,
    ) -> None:
        """Run *then* once *waiter* has fired for every id in *ids*."""
        remaining = {"n": len(ids), "t": floor}
        if not ids:
            then(floor)
            return

        def one(t: int) -> None:
            remaining["n"] -= 1
            remaining["t"] = max(remaining["t"], t)
            if remaining["n"] == 0:
                then(remaining["t"])

        for op_id in ids:
            waiter(op_id, one)

    # ------------------------------------------------------------------
    # Engine notifications
    # ------------------------------------------------------------------
    def on_addr_ready(self, op: Operation, t: int) -> None:
        self._addr_ready[op.op_id] = t
        self.stats.bloom_probes += 1
        self.engine.energy.charge(EnergyEvent.LSQ_BLOOM)
        self.stats.cam_checks += 1
        self.engine.energy.charge(
            EnergyEvent.LSQ_CAM_STORE if op.is_store else EnergyEvent.LSQ_CAM_LOAD
        )
        if self._trace is not None:
            # Every resolved address probes and CAM-searches the queue
            # (no bloom filtering in this OOO model, hence no hit arg).
            self._trace.emit(obs.BLOOM_PROBE, t, op=op.op_id)
            self._trace.emit(obs.CAM_SEARCH, t, op=op.op_id)
        for fn in self._addr_waiters.pop(op.op_id, []):
            fn(t)
        if op.is_load:
            self._handle_load(op, t)
        else:
            self._maybe_store(op)

    def on_value_ready(self, op: Operation, t: int) -> None:
        self._value_ready[op.op_id] = t
        for fn in self._value_waiters.pop(op.op_id, []):
            fn(t)

    def on_memory_complete(self, op: Operation, t: int) -> None:
        self._completed[op.op_id] = t
        for fn in self._complete_waiters.pop(op.op_id, []):
            fn(t)

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def _conflicting(self, oid: int, among: List[int]) -> List[int]:
        my_range = self._addr_of[oid]
        return [
            s for s in among if ranges_overlap(self._addr_of[s], my_range)
        ]

    def _handle_load(self, op: Operation, t_ready: int) -> None:
        oid = op.op_id
        if oid in self._issued:
            return
        resolved = [s for s in self._stores_before[oid] if s in self._addr_ready]
        unresolved = [s for s in self._stores_before[oid] if s not in self._addr_ready]
        known_live = [
            s for s in self._conflicting(oid, resolved) if s not in self._completed
        ]
        predicted = [
            s for s in unresolved if self.predictor.predicts_dependence(s, oid)
        ]

        if not unresolved:
            self._issued.add(oid)
            self._finish_load(op, t_ready)
            return

        if known_live or predicted:
            # A known in-flight conflict (or a predicted one) gates the
            # load: wait until every older store address is known, then
            # take the precise path.  This forgoes some speculation but
            # never retracts anything.
            self._issued.add(oid)
            self._when_all(
                self._when_addr,
                unresolved,
                lambda t: self._finish_load(op, max(t_ready, t)),
                floor=t_ready,
            )
            return

        # Speculate: read now, verify when the stragglers resolve.
        self._issued.add(oid)
        self.stats.speculations += 1
        t_spec = t_ready
        if self._trace is not None:
            self._trace.emit(obs.SPECULATION, t_spec, op=oid)

        def verify(_t: int) -> None:
            late = [
                s
                for s in self._conflicting(oid, unresolved)
                if not self._store_observed_by(s, t_spec)
            ]
            if late:
                self.stats.violations += 1
                if self._trace is not None:
                    self._trace.emit(
                        obs.VIOLATION, _t, op=oid, args={"stores": list(late)}
                    )
                for s in late:
                    if not self.predictor.predicts_dependence(s, oid):
                        self._trained_log.append((s, oid))
                    self.predictor.train(s, oid)
                all_conflicts = self._conflicting(oid, self._stores_before[oid])
                live = [s for s in all_conflicts if s not in self._completed]
                # The replay cannot begin before the violation is detected
                # (`_t`, the verify instant) — flooring at `t_spec` would
                # let the replayed read slip in front of a violated store
                # completing between speculation and detection.
                self._when_all(
                    self._when_complete,
                    live,
                    lambda t: self._replayed_read(op, t),
                    floor=_t,
                )
            else:
                self.engine.do_load(op, t_spec)

        self._when_all(self._when_addr, unresolved, verify, floor=t_spec)

    def _store_observed_by(self, store_id: int, t_spec: int) -> bool:
        """Did *store_id*'s publish land in time for a read at ``t_spec``?

        The engine drains same-cycle events in scheduling order and a
        store's value is published to byte memory at its completion
        instant, so by the time the verify callback runs, any store whose
        completion cycle is <= ``t_spec`` has already published and the
        speculative read observed it.  Using a strict `<` here would count
        a store completing exactly at ``t_spec`` as a violation and force
        a spurious replay (pinned by the same-cycle litmus test).
        """
        return store_id in self._completed and self._completed[store_id] <= t_spec

    def _replayed_read(self, op: Operation, t_last_store: int) -> None:
        self.stats.replays += 1
        if self._trace is not None:
            self._trace.emit(
                obs.REPLAY,
                t_last_store,
                dur=self.config.replay_penalty,
                op=op.op_id,
            )
        self.engine.do_load(op, t_last_store + self.config.replay_penalty)

    def _finish_load(self, op: Operation, t: int) -> None:
        """All older store addresses known: forward, wait, or read."""
        oid = op.op_id
        conflicts = self._conflicting(oid, self._stores_before[oid])
        live = [s for s in conflicts if s not in self._completed]
        if live:
            youngest = max(live, key=lambda s: self._rank[s])
            if ranges_exact(self._addr_of[youngest], self._addr_of[oid]):
                self.stats.lsq_forwards += 1
                if self._trace is not None:
                    self._trace.emit(
                        obs.LSQ_FORWARD, t, op=oid, args={"src": youngest}
                    )
                self.engine.energy.charge(EnergyEvent.LSQ_FORWARD)
                self._when_value(
                    youngest,
                    lambda tv: self.engine.forward_load(
                        op,
                        self.graph.op(youngest),
                        max(t, tv) + self.config.forward_latency,
                    ),
                )
                return
            self._when_all(
                self._when_complete,
                live,
                lambda tc: self.engine.do_load(op, max(t, tc + 1)),
                floor=t,
            )
            return
        done = [self._completed[s] for s in conflicts if s in self._completed]
        start = max(t, max(done) + 1) if done else t
        self.engine.do_load(op, start)

    # ------------------------------------------------------------------
    # Stores — never speculative
    # ------------------------------------------------------------------
    def _maybe_store(self, op: Operation) -> None:
        oid = op.op_id
        if oid in self._issued:
            return
        self._issued.add(oid)
        older = self._older_mem[oid]

        def with_value(tv: int) -> None:
            def with_addrs(ta: int) -> None:
                conflicts = self._conflicting(oid, older)
                live = [c for c in conflicts if c not in self._completed]
                done = [self._completed[c] for c in conflicts if c in self._completed]
                floor = max(self._addr_ready[oid], tv, ta)
                if done:
                    floor = max(floor, max(done) + 1)
                self._when_all(
                    self._when_complete,
                    live,
                    lambda tc: self.engine.do_store(op, max(floor, tc + 1)),
                    floor=floor,
                )

            pending = [o for o in older if o not in self._addr_ready]
            self._when_all(self._when_addr, pending, with_addrs, floor=tv)

        self._when_value(oid, with_value)
