"""The fast-vector execution path: batch value lowering + guarded replay.

:class:`VectorEngine` extends :class:`~repro.sim.fast.FastEngine` with
two batch mechanisms, both bit-exact with the reference engine:

* **Template lowering** (:class:`_VectorProgram`).  A region's schedule
  template is compiled once per (graph, placement, engine config) into
  flat NumPy arrays: the value program as opcode/operand-index arrays, a
  per-static-op arrival table (start / complete offsets relative to
  ``t0``), per-dynamic-op static-input arrival offsets (the cycle, again
  ``t0``-relative, at which a memory op's last static address or value
  operand lands at the backend), and a bulk per-invocation energy
  vector.  The lowered program is cached on the graph object, so the
  five systems sweeping one workload share a single lowering.

* **Batch value pass.**  ``run()`` evaluates the value program for *all*
  invocations of the region in one vectorized NumPy pass
  (:func:`repro.sim.values.mix_array` is bit-exact with
  :func:`~repro.sim.values.mix`), materialising each invocation's live
  static values as one matrix column.  The per-invocation dicts land in
  the template's shared ``value_cache``, so every engine over the same
  graph — whatever its backend — reuses them.

* **Guarded speculative replay.**  Dynamic behaviour (the
  disambiguation backend's decisions plus the memory hierarchy) is the
  only thing that varies across invocations.  Each backend publishes a
  :meth:`~repro.sim.engine.DisambiguationBackend.replay_signature` — a
  conservative key over every address-dependent decision it makes.  The
  first invocation with a given signature runs on the per-event path
  with capture instrumentation: the engine records every hierarchy
  access (relative issue cycle and its observed start/complete), every
  memory-op completion in drain order, the invocation's energy and
  backend-stat deltas, and the backend's persistent-state carryover.
  Later invocations with the same signature *replay*: the hierarchy is
  live-driven with the current addresses at the captured relative
  cycles — the hierarchy itself is ground truth, never emulated — and
  each access's (start, complete) is verified against the capture.  Any
  mismatch restores the hierarchy from a targeted snapshot (only the
  cache sets the replay touched, plus MSHR/port state) and falls back
  to the full per-event path for that invocation, re-capturing.

Soundness rests on two facts.  Values and timing are independent by
construction (tokens are mixed, never branched on), so the batch value
pass can never change a schedule.  And a backend's schedule is a pure
function of (graph, placement, config, signature, hierarchy access
outcomes, persistent state): equal signatures with verified-equal
access outcomes therefore reproduce the captured schedule exactly —
including issue order, forwards, waits, energy charges and stat
increments — which is what lets the replay path skip event simulation
entirely and bulk-apply the captured deltas.

Fallback rules (per invocation, cheapest test first):

========================  ============================================
reason                    trigger
========================  ============================================
``recorder``              a timeline recorder is attached (it walks
                          per-op run state the replay never builds)
``replay-disabled``       divergences outran replays
                          (``DIVERGENCE_MARGIN``), captures outran
                          replays (``CAPTURE_MARGIN``), or this
                          signature struck out (``SIGNATURE_STRIKES``)
``backend-opaque``        ``replay_signature()`` returned ``None``
``first-capture``         no capture exists for this signature yet
``divergence``            a captured access verified wrong; state was
                          restored and this invocation re-captures
                          (unless the signature just struck out)
========================  ============================================

An enabled tracer or ``model_link_contention`` is refused at
construction exactly like :class:`FastEngine`; the factory falls back
to the reference engine for those, and to ``fast`` when NumPy is
unavailable.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.energy.config import EnergyEvent
from repro.ir.ops import Operation
from repro.sim.fast import (
    FastEngine,
    _KICK2,
    _NOTIFY_ADDR,
    _NOTIFY_K2,
    _NOTIFY_VALUE,
    _Template,
    _VAL_CONST,
    _VAL_INPUT,
    _VAL_MIX,
)
from repro.sim.result import BackendStats
from repro.sim.values import forwarded_value, mix

try:  # pragma: no cover - exercised by both branches across environments
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

#: True when the fast-vector engine can run in this interpreter.
HAVE_NUMPY = _np is not None

_EVENT_INDEX = {ev: i for i, ev in enumerate(EnergyEvent)}

# Issue-record kinds (mirror the engine's three memory services).
_MEM_LOAD = 0
_MEM_STORE = 1
_MEM_FORWARD = 2

_MISSING = object()


class _VectorProgram:
    """A template lowered to flat arrays (see module docstring)."""

    __slots__ = (
        "row_ids",
        "row_of",
        "vp_kind",
        "vp_aux",
        "vp_in_off",
        "vp_in_idx",
        "n_rows",
        "static_ids",
        "static_start",
        "static_complete",
        "dyn_ids",
        "dyn_addr_off",
        "dyn_value_off",
        "energy_vector",
        "_matrices",
    )

    def __init__(self, tpl: _Template) -> None:
        # -- value program: opcode / aux / CSR operand-index arrays -----
        rows = tpl.value_program
        self.n_rows = len(rows)
        self.row_ids = [oid for _k, oid, _aux, _ins in rows]
        self.row_of = {oid: r for r, oid in enumerate(self.row_ids)}
        self.vp_kind = _np.asarray([k for k, _o, _a, _i in rows], dtype=_np.uint8)
        self.vp_aux = _np.asarray(
            [aux if k != _VAL_INPUT else oid for k, oid, aux, _i in rows],
            dtype=_np.uint64,
        )
        offsets = [0]
        operand_rows: List[int] = []
        for kind, _oid, _aux, inputs in rows:
            if kind == _VAL_MIX:
                operand_rows.extend(self.row_of[i] for i in inputs)
            offsets.append(len(operand_rows))
        self.vp_in_off = _np.asarray(offsets, dtype=_np.int64)
        self.vp_in_idx = _np.asarray(operand_rows, dtype=_np.int64)

        # -- static-op arrival table (offsets relative to t0) -----------
        times = tpl.static_times
        self.static_ids = _np.asarray(
            [op.op_id for op, _s, _c in times], dtype=_np.int64
        )
        self.static_start = _np.asarray([s for _o, s, _c in times], dtype=_np.int64)
        self.static_complete = _np.asarray([c for _o, _s, c in times], dtype=_np.int64)

        # -- dynamic ops' static-input arrival offsets ------------------
        # The template's notify actions are exactly the cycles at which a
        # memory op's final fully-static address / value operand reaches
        # the backend; -1 marks "fed by something dynamic" (the operand
        # arrives via live _DELIVER replay instead).
        addr_off: Dict[int, int] = {}
        value_off: Dict[int, int] = {}
        for actions in [tpl.kick_actions] + tpl.event_actions:
            for a in actions:
                kind = a[0]
                if kind == _NOTIFY_ADDR:
                    addr_off[a[1].op_id] = a[2]
                elif kind == _NOTIFY_VALUE:
                    value_off[a[1].op_id] = a[2]
                elif kind in (_KICK2, _NOTIFY_K2):
                    addr_off.setdefault(a[1].op_id, 0)
        dyn_ids = sorted(set(addr_off) | set(value_off))
        self.dyn_ids = _np.asarray(dyn_ids, dtype=_np.int64)
        self.dyn_addr_off = _np.asarray(
            [addr_off.get(oid, -1) for oid in dyn_ids], dtype=_np.int64
        )
        self.dyn_value_off = _np.asarray(
            [value_off.get(oid, -1) for oid in dyn_ids], dtype=_np.int64
        )

        # -- bulk per-invocation energy vector --------------------------
        vec = _np.zeros(len(EnergyEvent), dtype=_np.int64)
        vec[_EVENT_INDEX[EnergyEvent.ALU_INT]] = tpl.n_alu_int
        vec[_EVENT_INDEX[EnergyEvent.ALU_FP]] = tpl.n_alu_fp
        vec[_EVENT_INDEX[EnergyEvent.NET_LINK]] = tpl.net_charge
        self.energy_vector = vec

        self._matrices: Dict[int, "_np.ndarray"] = {}

    # ------------------------------------------------------------------
    def batch(self, n: int) -> Optional["_np.ndarray"]:
        """Evaluate the value program for invocations ``0..n-1`` at once.

        Returns a ``(n_rows, n)`` uint64 matrix (column = invocation) or
        ``None`` when no static value is live.  Cached per ``n``.
        """
        if not self.n_rows:
            return None
        m = self._matrices.get(n)
        if m is not None:
            return m
        from repro.sim.values import mix_array

        inv = _np.arange(n, dtype=_np.uint64)
        m = _np.empty((self.n_rows, n), dtype=_np.uint64)
        kinds = self.vp_kind
        aux = self.vp_aux
        off = self.vp_in_off
        idx = self.vp_in_idx
        for r in range(self.n_rows):
            k = kinds[r]
            if k == _VAL_INPUT:
                m[r] = mix_array(0x1F, int(aux[r]), inv)
            elif k == _VAL_CONST:
                m[r] = aux[r]
            else:
                lo, hi = int(off[r]), int(off[r + 1])
                m[r] = mix_array(int(aux[r]), *(m[int(j)] for j in idx[lo:hi]))
        self._matrices[n] = m
        return m

    def static_arrivals(self, t0s) -> Dict[str, "_np.ndarray"]:
        """Absolute backend-arrival cycles per dynamic op per invocation.

        ``t0s`` is an array of invocation start cycles; offsets of -1
        (dynamically fed operands) stay -1.
        """
        t0s = _np.asarray(t0s, dtype=_np.int64)[:, None]
        addr = _np.where(
            self.dyn_addr_off >= 0, self.dyn_addr_off + t0s, self.dyn_addr_off
        )
        value = _np.where(
            self.dyn_value_off >= 0, self.dyn_value_off + t0s, self.dyn_value_off
        )
        return {"op_ids": self.dyn_ids, "addr": addr, "value": value}


class _Capture:
    """One captured invocation schedule for a replay signature."""

    __slots__ = (
        "access_plan",
        "mem_seq",
        "energy_delta",
        "stats_delta",
        "carryover",
        "rel_end",
    )


class _HierarchyGuard:
    """Targeted snapshot of the hierarchy state a replay may touch.

    Every mutation ``MemoryHierarchy.access`` can make is confined to
    the cache sets of the accessed lines (per level), the cache stats,
    the MSHR table and the port schedule — so that is all the guard
    copies, keeping a failed replay O(accesses), not O(cache).
    """

    __slots__ = ("_h", "_levels", "_outstanding", "_ports")

    def __init__(self, hierarchy, addrs) -> None:
        self._h = hierarchy
        levels = []
        for cache in (hierarchy.l1, hierarchy.l2):
            n_sets = cache.config.n_sets
            sets = cache._sets
            entries = {}
            for addr in addrs:
                idx = cache.line_of(addr) % n_sets
                if idx not in entries:
                    ways = sets.get(idx)
                    entries[idx] = None if ways is None else list(ways.items())
            st = cache.stats
            levels.append(
                (
                    cache,
                    entries,
                    (
                        st.read_hits,
                        st.read_misses,
                        st.write_hits,
                        st.write_misses,
                        st.evictions,
                        st.writebacks,
                    ),
                )
            )
        self._levels = levels
        self._outstanding = dict(hierarchy._outstanding)
        self._ports = list(hierarchy._port_free)

    def restore(self) -> None:
        for cache, entries, st in self._levels:
            sets = cache._sets
            for idx, items in entries.items():
                if items is None:
                    sets.pop(idx, None)
                else:
                    sets[idx] = OrderedDict(items)
            s = cache.stats
            (
                s.read_hits,
                s.read_misses,
                s.write_hits,
                s.write_misses,
                s.evictions,
                s.writebacks,
            ) = st
        h = self._h
        h._outstanding.clear()
        h._outstanding.update(self._outstanding)
        h._port_free[:] = self._ports


class VectorEngine(FastEngine):
    """Batch-replaying engine, bit-exact with :class:`DataflowEngine`."""

    #: Replay is disabled engine-wide once divergences outnumber
    #: successful replays by this margin: the region's hierarchy timing
    #: varies per invocation faster than captures pay off, and every
    #: further attempt is pure overhead.  Convergent regions pay one
    #: divergence per signature (the cold->warm transition) and then
    #: replay repeatedly, so their margin goes negative and stays there.
    DIVERGENCE_MARGIN = 4
    #: Replay is likewise disabled once captures outnumber successful
    #: replays by this margin (signature churn: the region keeps
    #: presenting new alias patterns, so instrumented captures pile up
    #: without ever being replayed often enough to pay for themselves).
    CAPTURE_MARGIN = 8
    #: Divergences a single signature may accumulate before it is
    #: declared dead (its timing varies per invocation, not just across
    #: the one-time cache warm-up; stop re-capturing it).
    SIGNATURE_STRIKES = 2

    def __init__(self, *args, **kwargs) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError(
                "VectorEngine requires NumPy; use make_engine(), which "
                "falls back to the fast engine"
            )
        super().__init__(*args, **kwargs)
        self._vec: Optional[_VectorProgram] = None
        self._captures: Dict[tuple, _Capture] = {}
        self._strikes: Dict[tuple, int] = {}
        self._dead: set = set()
        self._cap_issues: Optional[List[tuple]] = None
        self._cap_order: Optional[List[int]] = None
        self._replay_off = False
        self._n_ops = len(self._ops)
        self.vector_stats: Dict[str, object] = {
            "invocations": 0,
            "captured": 0,
            "replayed": 0,
            "divergences": 0,
            "ops_vectorized": 0,
            "ops_dynamic": 0,
            "fallback_reasons": {},
        }

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def _ensure_vector(self) -> _VectorProgram:
        """Fetch (or build) this region's lowered program.

        Like the schedule template it lowers, the program depends only
        on (graph, placement, engine config), so it is cached on the
        graph object and shared across systems.
        """
        vec = self._vec
        if vec is None:
            tpl = self._template
            if tpl is None:
                tpl = self._attach_template()
            cache = self.graph.__dict__.setdefault("_vector_program_cache", {})
            key = (id(self.placement), dataclasses.astuple(self.config))
            hit = cache.get(key)
            if hit is None or hit[0] is not self.placement:
                cache[key] = hit = (self.placement, _VectorProgram(tpl))
            self._vec = vec = hit[1]
        return vec

    # ------------------------------------------------------------------
    # Batch value pass
    # ------------------------------------------------------------------
    def run(self, invocations, region_name=None, addr_streams=None):
        envs = (
            invocations if isinstance(invocations, list) else list(invocations)
        )
        if self._template is None:
            self._attach_template()
        vec = self._ensure_vector()
        tpl = self._template
        matrix = vec.batch(len(envs))
        if matrix is not None:
            # One C-level pass materialises every invocation's live
            # static values; dict insertion order matches the scalar
            # path (value_program order) by construction.
            cache = tpl.value_cache
            ids = vec.row_ids
            cols = matrix.T.tolist()
            for i in range(len(envs)):
                if i not in cache:
                    cache[i] = dict(zip(ids, cols[i]))
        result = super().run(envs, region_name, addr_streams)
        self._record_profile(region_name or self.graph.name)
        return result

    def _static_values(self, tpl: _Template, inv: int) -> Dict[int, int]:
        vals = tpl.value_cache.get(inv)
        if vals is None:  # direct _run_invocation call; scalar fallback
            vals = {}
            for kind, oid, aux, inputs in tpl.value_program:
                if kind == _VAL_MIX:
                    vals[oid] = mix(aux, *(vals[i] for i in inputs))
                elif kind == _VAL_CONST:
                    vals[oid] = aux
                else:
                    vals[oid] = mix(0x1F, oid, inv)
            tpl.value_cache[inv] = vals
        return vals

    # ------------------------------------------------------------------
    # Invocation dispatch: replay when possible, else capture
    # ------------------------------------------------------------------
    def _run_invocation(self, inv, t0, env):
        if self._template is None:
            self._attach_template()
        self._ensure_vector()
        st = self.vector_stats
        st["invocations"] += 1
        if self.recorder is not None:
            return self._fallback(inv, t0, env, "recorder")
        if self._replay_off:
            return self._fallback(inv, t0, env, "replay-disabled")
        if self._addr_streams is not None:
            addr_of = self._addr_streams[inv]
        else:
            addr_of = {
                op.op_id: (op.addr.evaluate(env), op.addr.width)
                for op in self._mem_ops
            }
        sig = self.backend.replay_signature(addr_of)
        if sig is None:
            return self._fallback(inv, t0, env, "backend-opaque")
        if sig in self._dead:
            # This signature struck out: its hierarchy timing diverged
            # on every retry (so it varies per invocation, not just
            # across the one-time cold->warm transition); further
            # capture attempts would only add instrumentation overhead.
            return self._fallback(inv, t0, env, "replay-disabled")
        cap = self._captures.get(sig)
        if cap is not None:
            end = self._replay(inv, t0, cap, addr_of)
            if end is not None:
                st["replayed"] += 1
                st["ops_vectorized"] += self._n_ops
                return end
            st["divergences"] += 1
            del self._captures[sig]
            if (
                st["divergences"] - st["replayed"]
                >= self.DIVERGENCE_MARGIN
            ):
                self._replay_off = True
                return self._fallback(inv, t0, env, "replay-disabled")
            strikes = self._strikes.get(sig, 0) + 1
            self._strikes[sig] = strikes
            if strikes >= self.SIGNATURE_STRIKES:
                self._dead.add(sig)
                return self._fallback(inv, t0, env, "divergence")
            return self._fallback(inv, t0, env, "divergence", sig)
        return self._fallback(inv, t0, env, "first-capture", sig)

    # ------------------------------------------------------------------
    # Capture path
    # ------------------------------------------------------------------
    def _fallback(self, inv, t0, env, reason: str, sig=None):
        st = self.vector_stats
        reasons = st["fallback_reasons"]
        reasons[reason] = reasons.get(reason, 0) + 1
        tpl = self._template
        st["ops_vectorized"] += tpl.n_static
        st["ops_dynamic"] += self._n_ops - tpl.n_static
        if sig is None:
            return FastEngine._run_invocation(self, inv, t0, env)

        issues: List[tuple] = []
        completion_order: List[int] = []
        accesses: List[Tuple[int, int, int]] = []
        hierarchy = self.hierarchy
        real_access = hierarchy.access

        def tapped(addr, is_write, cycle):
            res = real_access(addr, is_write, cycle)
            accesses.append((cycle, res.start, res.complete))
            return res

        energy_before = dict(self.energy.counts)
        stats = self.backend.stats
        names = BackendStats.COUNTERS
        stats_before = [getattr(stats, name) for name in names]
        self._cap_issues = issues
        self._cap_order = completion_order
        hierarchy.access = tapped
        try:
            end = FastEngine._run_invocation(self, inv, t0, env)
        finally:
            del hierarchy.access
            self._cap_issues = None
            self._cap_order = None

        plan: List[Tuple[int, bool, int, int, int]] = []
        ai = 0
        for kind, op, done, _src in issues:
            if kind != _MEM_FORWARD:
                cycle, start, complete = accesses[ai]
                ai += 1
                plan.append(
                    (op.op_id, kind == _MEM_STORE, cycle - t0, start - t0,
                     complete - t0)
                )
        if ai != len(accesses):
            # Something other than do_load/do_store touched the
            # hierarchy mid-invocation; the capture model no longer
            # holds, so stop replaying rather than risk exactness.
            self._replay_off = True
            return end

        if len(completion_order) != len(issues):
            # A completion never drained (or drained twice) — the
            # capture is not a faithful schedule; stop replaying.
            self._replay_off = True
            return end
        cap = _Capture()
        cap.access_plan = plan
        # Completion (drain) order is recorded live, not reconstructed:
        # a backend may issue an access whose completion cycle is in
        # the *past* (e.g. a speculative load verified late), and the
        # queue runs such an event at the current cycle — so sorting by
        # completion cycle would misplace it.  Each service pushes a
        # marker right after its completion closure at the same cycle;
        # FIFO buckets (and the late-insert heap) drain the marker
        # immediately after the closure, yielding the exact order.
        cap.mem_seq = [
            (issues[i][0], issues[i][1], issues[i][3])
            for i in completion_order
        ]
        counts = self.energy.counts
        cap.energy_delta = tuple(
            (ev, counts[ev] - before)
            for ev, before in energy_before.items()
            if counts[ev] != before
        )
        cap.stats_delta = tuple(
            (name, getattr(stats, name) - before)
            for name, before in zip(names, stats_before)
            if getattr(stats, name) != before
        )
        cap.carryover = self.backend.replay_carryover()
        cap.rel_end = end - t0
        self._captures[sig] = cap
        st["captured"] += 1
        if st["captured"] - st["replayed"] >= self.CAPTURE_MARGIN:
            self._replay_off = True
        return end

    # Issue recording: each service appends exactly one record in call
    # order, which keeps records aligned index-for-index with the
    # hierarchy accesses the capture tap observed.  The marker event is
    # pushed right after the service pushed its completion closure (at
    # the same cycle), so it drains immediately after the completion —
    # recording the true drain position of each memory op.
    def _record_issue(self, record: tuple, done: int) -> None:
        issues = self._cap_issues
        index = len(issues)
        issues.append(record)
        order = self._cap_order
        self._queue.push(done, lambda: order.append(index))

    def do_load(self, op: Operation, t_start: int) -> int:
        done = super().do_load(op, t_start)
        if self._cap_issues is not None:
            self._record_issue((_MEM_LOAD, op, done, None), done)
        return done

    def do_store(self, op: Operation, t_start: int) -> int:
        done = super().do_store(op, t_start)
        if self._cap_issues is not None:
            self._record_issue((_MEM_STORE, op, done, None), done)
        return done

    def forward_load(self, op: Operation, src_store: Operation, t: int) -> int:
        done = super().forward_load(op, src_store, t)
        if self._cap_issues is not None:
            self._record_issue((_MEM_FORWARD, op, done, src_store), done)
        return done

    # ------------------------------------------------------------------
    # Replay path
    # ------------------------------------------------------------------
    def _replay(self, inv, t0, cap: _Capture, addr_of) -> Optional[int]:
        """Replay a captured invocation; ``None`` means divergence
        (hierarchy state already restored)."""
        hierarchy = self.hierarchy
        guard = _HierarchyGuard(
            hierarchy, [addr_of[oid][0] for oid, _w, _c, _s, _e in cap.access_plan]
        )
        access = hierarchy.access
        for oid, is_write, rel_cycle, rel_start, rel_complete in cap.access_plan:
            res = access(addr_of[oid][0], is_write, t0 + rel_cycle)
            if res.start - t0 != rel_start or res.complete - t0 != rel_complete:
                guard.restore()
                return None

        # The schedule is confirmed: bulk-apply the captured outcome.
        backend = self.backend
        if cap.carryover is not None:
            backend.apply_carryover(cap.carryover)
        counts = self.energy.counts
        for ev, delta in cap.energy_delta:
            counts[ev] += delta
        stats = backend.stats
        for name, delta in cap.stats_delta:
            setattr(stats, name, getattr(stats, name) + delta)

        self._inv_index = inv
        self._t0 = t0
        vals = dict(self._static_values(self._template, inv))
        exec_plan = self._exec_plan
        memory = self.memory
        load_values = self.load_values

        def val(oid: int) -> int:
            v = vals.get(oid, _MISSING)
            if v is _MISSING:
                _lat, _ev, mix_id, inputs = exec_plan[oid]
                v = mix(mix_id, *(val(i) for i in inputs))
                vals[oid] = v
            return v

        for kind, op, src in cap.mem_seq:
            addr, width = addr_of[op.op_id]
            if kind == _MEM_LOAD:
                v = memory.load(addr, width)
                load_values[(inv, op.op_id)] = v
            elif kind == _MEM_FORWARD:
                v = forwarded_value(val(src.inputs[-1]), width)
                load_values[(inv, op.op_id)] = v
            else:
                v = val(op.inputs[-1])
                memory.store(addr, width, v)
            vals[op.op_id] = v

        end = t0 + cap.rel_end
        self._inv_end = end
        return end

    # ------------------------------------------------------------------
    def _record_profile(self, region: str) -> None:
        from repro.obs.profile import get_profile

        prof = get_profile()
        if prof.enabled:
            prof.record_vector(region, self.backend.name, self.vector_stats)
