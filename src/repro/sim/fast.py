"""The fast execution path: invocation schedule templates + calendar queue.

A NACHOS region is a branch-free dataflow graph, so every operation with
no transitive memory-dependent input — the *static subgraph*: sources,
address arithmetic, pure compute chains — executes with exactly the same
relative timing on every invocation.  Only memory operations, their
dependents, and the disambiguation backend's machinery (the subject of
the paper) actually vary.  :class:`FastEngine` exploits that split:

* **Invocation schedule templates.**  On the first invocation the engine
  mini-simulates the static subgraph once and compiles it into a
  template: a ``t0`` action program (what the synchronous kick phase
  does), one precompiled queue event per *relevant* static op, bulk
  energy counts, and a topologically ordered value program restricted to
  static values that something dynamic actually reads.  Later
  invocations replay the template instead of re-simulating: no per-op
  run-state allocation, no per-event closure creation, no delivery walks
  for static-only fanout — and for memory ops fed entirely by static
  producers, no per-delivery bookkeeping either: the backend notify
  fires directly at the captured final-arrival position.

* **Slotted event queue.**  :class:`_CalendarQueue` replaces per-event
  ``heapq`` churn with per-cycle buckets (a dict keyed by cycle plus a
  small heap of occupied cycles).  Same-cycle events drain in push
  (FIFO) order — the engine contract pinned by
  ``tests/test_litmus.py::test_same_cycle_drain_order`` — and a tiny
  overflow heap preserves exact ``(time, seq)`` semantics for the
  never-observed-in-practice case of an event scheduled in the past.

**Bit-exactness is the contract.**  The template keeps one queue event
per static op that still *does* something (pushes a later template event
or delivers an operand to a dynamic consumer), pushed at the exact
moment the reference engine would have pushed it.  Push chronology is
what breaks same-cycle ties, and the memory hierarchy (LRU, ports,
MSHRs) plus ``load_values`` insertion order are call-order sensitive —
so preserving the interleaving of every event that can reach the
backend or the hierarchy is mandatory, and sufficient: the differential
suite (``tests/test_engine_equivalence.py``) asserts byte-identical
pickled :class:`~repro.sim.result.SimResult` across modes.

What the template may *not* assume invalidates it: an enabled tracer
(the one-event-per-counter contract needs the reference loop) and
``model_link_contention`` (mesh-link state is cross-invocation, so
static timing is no longer invocation-invariant).  The factory
(:func:`repro.sim.factory.make_engine`) falls back to the reference
engine — loudly — in both cases; constructing :class:`FastEngine`
directly with either raises.
"""

from __future__ import annotations

import dataclasses
import heapq
from functools import partial
from itertools import count
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.energy.config import EnergyEvent
from repro.ir.opcodes import Opcode
from repro.ir.ops import Operation
from repro.sim.engine import DataflowEngine, _OpRun
from repro.sim.values import mix

# Template/kick action opcodes (first tuple element).  Actions refer to
# template events by *index* so a captured template is engine-free: the
# same region simulated under five backends shares one capture (cached
# on the graph object), and each engine binds its own event closures.
_PUSH = 0          # (_PUSH, time_offset, event_index)
_DELIVER = 1       # (_DELIVER, user_op, n_addr, n_value, arrive_offset)
_KICK2 = 2         # (_KICK2, op) — constant-address memory notify at t0
_NOTIFY_ADDR = 3   # (_NOTIFY_ADDR, user_op, time_offset)
_NOTIFY_VALUE = 4  # (_NOTIFY_VALUE, user_op, time_offset)
_NOTIFY_K2 = 5     # (_NOTIFY_K2, op) — early addr notify of a kick==2 op

# Value-program opcodes.
_VAL_INPUT = 0   # mix(0x1F, op_id, inv) — matches _source_value
_VAL_CONST = 1   # invocation-invariant, pre-mixed at capture
_VAL_MIX = 2     # mix(mix_id, *inputs)


class _CalendarQueue:
    """Per-cycle event buckets with exact ``(time, seq)`` heapq order.

    Items are zero-argument callables.  Within a bucket, list order is
    push order, which *is* seq order; across buckets, a min-heap of
    occupied cycles gives time order.  Pushes landing on the cycle
    currently draining append to the live bucket and are picked up by
    the index-based drain loop — exactly heapq's behaviour for a
    same-cycle push (larger seq than everything already queued).  Pushes
    strictly in the past (no engine or backend does this today) go to a
    small overflow heap drained before the current bucket continues,
    again matching heapq.
    """

    __slots__ = ("push", "drain", "size")

    def __init__(self) -> None:
        # All queue state lives in closure cells: ``push`` runs for
        # every scheduled event, and cell loads are measurably cheaper
        # than attribute lookups at that call rate.
        buckets: Dict[int, List[Callable[[], None]]] = {}
        cycles: List[int] = []
        late: List[Tuple[int, int, Callable[[], None]]] = []
        seq = count()
        now = -1
        heappush = heapq.heappush
        heappop = heapq.heappop

        def push(time: int, fn: Callable[[], None]) -> None:
            # An existing bucket is always current-or-future (drained
            # buckets are deleted), so the append path needs no time
            # comparison at all.
            bucket = buckets.get(time)
            if bucket is not None:
                bucket.append(fn)
            elif time >= now:
                buckets[time] = [fn]
                heappush(cycles, time)
            else:
                heappush(late, (time, next(seq), fn))

        def drain() -> None:
            nonlocal now
            while cycles:
                cycle = heappop(cycles)
                bucket = buckets[cycle]
                now = cycle
                i = 0
                while i < len(bucket):
                    bucket[i]()
                    i += 1
                    while late:
                        heappop(late)[2]()
                del buckets[cycle]
            now = -1

        def size() -> int:
            return sum(len(b) for b in buckets.values()) + len(late)

        self.push = push
        self.drain = drain
        self.size = size

    def __len__(self) -> int:
        return self.size()


class _Template:
    """One region's compiled static schedule (see module docstring)."""

    __slots__ = (
        "kick_actions",
        "event_actions",
        "n_alu_int",
        "n_alu_fp",
        "net_charge",
        "static_end",
        "value_program",
        "value_cache",
        "dyn_init",
        "static_times",
        "n_static",
        "n_events",
        "n_elided",
    )


class FastEngine(DataflowEngine):
    """Template-replaying engine, bit-exact with :class:`DataflowEngine`."""

    def __init__(self, *args, **kwargs) -> None:
        self._queue = _CalendarQueue()
        super().__init__(*args, **kwargs)
        if self._trace is not None:
            raise ValueError(
                "FastEngine cannot honour the trace contract; use "
                "make_engine(), which falls back to the reference engine"
            )
        if self._contention:
            raise ValueError(
                "FastEngine requires model_link_contention=False (link "
                "state is cross-invocation); use make_engine()"
            )
        self._template: Optional[_Template] = None
        self._fires: List[Optional[Callable[[], None]]] = []
        self._t0 = 0
        # Shadow the method with the queue's push: every event the
        # engine or a backend schedules then skips a dispatch layer.
        self.schedule = self._queue.push

    # -- event plumbing (backends call schedule through here) -----------
    def schedule(self, time: int, fn: Callable[[], None]) -> None:
        self._queue.push(time, fn)

    def _drain_events(self) -> None:
        self._queue.drain()

    # ------------------------------------------------------------------
    # Template capture: one mini-simulation of the static subgraph
    # ------------------------------------------------------------------
    def _static_op_ids(self) -> Set[int]:
        """Ops with no transitive memory-dependent input (sources and
        pure compute); memory ops and everything downstream of one are
        dynamic."""
        by_id = {op.op_id: op for op in self._ops}
        static: Dict[int, bool] = {}
        for op in self._ops:
            stack = [op.op_id]
            while stack:
                oid = stack[-1]
                if oid in static:
                    stack.pop()
                    continue
                cur = by_id[oid]
                if cur.is_memory:
                    static[oid] = False
                    stack.pop()
                    continue
                unresolved = [i for i in cur.inputs if i not in static]
                if unresolved:
                    stack.extend(unresolved)
                    continue
                static[oid] = all(static[i] for i in cur.inputs)
                stack.pop()
        return {oid for oid, s in static.items() if s}

    def _build_template(self) -> _Template:
        static_ids = self._static_op_ids()
        by_id = {op.op_id: op for op in self._ops}
        exec_plan = self._exec_plan
        plans = self._plans

        # Memory ops whose addr (or, for stores, value) operand set is
        # fed entirely by static producers: every arrival is capture-time
        # constant, so the per-delivery bookkeeping prefolds into one
        # backend-notify action at the exact drain position where the
        # reference engine's final delivery lands.  The op's _OpRun
        # pendings then simply stay at their initial (non-zero) values —
        # nothing reads them once no runtime delivery can reach the op,
        # and the non-zero sentinel keeps _deliver's notify guards inert
        # for any remaining mixed-component deliveries.
        stat_feed: Dict[int, List[int]] = {}  # user -> [n_addr, n_value]
        dyn_feed: Dict[int, List[int]] = {}
        for src_id, plan in plans.items():
            table = stat_feed if src_id in static_ids else dyn_feed
            for user, n_addr, n_value, _net, _route in plan:
                if user.is_memory:
                    tot = table.setdefault(user.op_id, [0, 0])
                    tot[0] += n_addr
                    tot[1] += n_value
        addr_track: Dict[int, List[int]] = {}  # user -> [remaining, max_arrive]
        value_track: Dict[int, List[int]] = {}
        for uid, (na, nv) in stat_feed.items():
            dyn = dyn_feed.get(uid, (0, 0))
            if na and not dyn[0]:
                addr_track[uid] = [na, 0]
            if nv and not dyn[1]:
                value_track[uid] = [nv, 0]

        kick_actions: List[tuple] = []
        #: (completion_offset, actions, op) in push order.
        events: List[Tuple[int, list, Operation]] = []
        mini: List[Tuple[int, int, int]] = []  # (done, seq, event_index)
        seq = count()
        pend: Dict[int, List[int]] = {}  # static op -> [pending, inputs_time]
        run_times: Dict[int, Tuple[int, int]] = {}  # op -> (start, complete)
        value_order: List[Operation] = []  # completion (drain) order
        counters = {"int": 0, "fp": 0, "net": 0, "end": 0}

        for op, pa, _pv, kick in self._op_init:
            if kick == 0 and op.op_id in static_ids:
                pend[op.op_id] = [pa, 0]

        def start_compute(op: Operation, t: int, out: list) -> None:
            latency, alu_event, _mix_id, _inputs = exec_plan[op.op_id]
            if alu_event is EnergyEvent.ALU_FP:
                counters["fp"] += 1
            else:
                counters["int"] += 1
            done = t + latency
            actions: list = []
            idx = len(events)
            events.append((done, actions, op))
            out.append((_PUSH, done, idx))
            heapq.heappush(mini, (done, next(seq), idx))
            run_times[op.op_id] = (t, done)

        def finish(op: Operation, t: int, out: list) -> None:
            if t > counters["end"]:
                counters["end"] = t
            for user, n_addr, n_value, net, route in plans[op.op_id]:
                counters["net"] += net
                arrive = t + route
                state = pend.get(user.op_id)
                if state is not None:  # static consumer: fold in
                    state[0] -= n_addr
                    if arrive > state[1]:
                        state[1] = arrive
                    if state[0] == 0:
                        start_compute(user, state[1], out)
                else:  # dynamic consumer: replay or prefold
                    uid = user.op_id
                    at = addr_track.get(uid) if n_addr else None
                    vt = value_track.get(uid) if n_value else None
                    da, dv = n_addr, n_value
                    if at is not None:
                        at[0] -= n_addr
                        if arrive > at[1]:
                            at[1] = arrive
                        da = 0
                    if vt is not None:
                        vt[0] -= n_value
                        if arrive > vt[1]:
                            vt[1] = arrive
                        dv = 0
                    if da or dv:
                        out.append((_DELIVER, user, da, dv, arrive))
                    elif uid in kick2_unseen and uid not in early_addr:
                        # Reference quirk, faithfully replayed: a kick
                        # delivery reaching a constant-address memory op
                        # before its kick entry finds pending_addr == 0
                        # and triggers an early addr notify (the kick
                        # entry then schedules a second one).  A real
                        # _DELIVER replays this by itself; a fully
                        # elided one needs the explicit action.
                        out.append((_NOTIFY_K2, user))
                    if uid in kick2_unseen:
                        early_addr.add(uid)
                    # Final arrival: notify in _deliver's branch order
                    # (addr before value).
                    if at is not None and at[0] == 0:
                        out.append((_NOTIFY_ADDR, user, at[1]))
                    if vt is not None and vt[0] == 0:
                        out.append((_NOTIFY_VALUE, user, vt[1]))

        # Kick phase, replicating the reference kick loop's exact order:
        # sources complete (and deliver) synchronously, constant-address
        # memory notifies are queued, zero-input computes start.
        kick2_unseen = {
            op.op_id for op, _pa, _pv, k in self._op_init if k == 2
        }
        early_addr: Set[int] = set()
        for op, _pa, _pv, kick in self._op_init:
            if kick == 0:
                continue
            if kick == 1:  # INPUT/CONST source — always static
                value_order.append(op)
                run_times[op.op_id] = (0, 0)
                finish(op, 0, kick_actions)
            elif kick == 2:  # dynamic: constant-address memory op
                kick2_unseen.discard(op.op_id)
                kick_actions.append((_KICK2, op))
            else:  # kick == 3: zero-input compute — always static
                start_compute(op, 0, kick_actions)

        while mini:
            done, _, idx = heapq.heappop(mini)
            _, actions, op = events[idx]
            value_order.append(op)
            finish(op, done, actions)

        # Value liveness: a static value matters only if a dynamic op
        # reads it — dynamic computes read all their inputs, stores read
        # their value slot (directly and via forwarding); addresses come
        # from addr_of, never from the value network.
        live: Set[int] = set()
        work: List[int] = []
        for op in self._ops:
            if op.op_id in static_ids:
                continue
            roots = [op.inputs[-1]] if op.is_store else (
                [] if op.is_memory else op.inputs
            )
            for src in roots:
                if src in static_ids and src not in live:
                    live.add(src)
                    work.append(src)
        while work:
            for src in by_id[work.pop()].inputs:  # inputs of static are static
                if src not in live:
                    live.add(src)
                    work.append(src)

        value_program: List[tuple] = []
        for op in value_order:
            oid = op.op_id
            if oid not in live:
                continue
            if op.opcode is Opcode.CONST:
                value_program.append((_VAL_CONST, oid, mix(0xC0, oid), ()))
            elif op.opcode is Opcode.INPUT:
                value_program.append((_VAL_INPUT, oid, 0, ()))
            else:
                _lat, _ev, mix_id, inputs = exec_plan[oid]
                value_program.append((_VAL_MIX, oid, mix_id, inputs))

        # Elide events whose action list does nothing observable: no
        # dynamic delivery and no (transitively useful) push.  A push
        # target always has a larger index than its pusher, so one
        # reverse sweep settles usefulness.
        useful = [False] * len(events)
        for idx in range(len(events) - 1, -1, -1):
            _, actions, _ = events[idx]
            actions[:] = [
                a for a in actions if a[0] != _PUSH or useful[a[2]]
            ]
            useful[idx] = bool(actions)
        kick_actions[:] = [
            a for a in kick_actions if a[0] != _PUSH or useful[a[2]]
        ]

        tpl = _Template()
        tpl.kick_actions = kick_actions
        tpl.event_actions = [e[1] for e in events]
        tpl.n_alu_int = counters["int"]
        tpl.n_alu_fp = counters["fp"]
        tpl.net_charge = counters["net"]
        tpl.static_end = counters["end"]
        tpl.value_program = value_program
        tpl.value_cache = {}
        tpl.dyn_init = [
            entry for entry in self._op_init if entry[0].op_id not in static_ids
        ]
        tpl.static_times = [
            (by_id[oid], s, c) for oid, (s, c) in run_times.items()
        ]
        tpl.n_static = len(static_ids)
        tpl.n_events = sum(1 for u in useful if u)
        tpl.n_elided = len(events) - tpl.n_events
        return tpl

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _attach_template(self) -> _Template:
        """Fetch (or capture) this region's template and bind it.

        Capture depends only on (graph, placement, engine config) —
        never on the backend, hierarchy, or invocation stream — so it
        is cached on the graph object and shared by every engine built
        over the same compiled artifacts: in a sweep, the 5+ systems
        simulating one workload pay for one capture, not five.  Values
        hold the placement strongly, so an ``id()`` can't be recycled
        under a live cache entry.
        """
        cache = self.graph.__dict__.setdefault("_fast_template_cache", {})
        key = (id(self.placement), dataclasses.astuple(self.config))
        hit = cache.get(key)
        if hit is None or hit[0] is not self.placement:
            cache[key] = hit = (self.placement, self._build_template())
        tpl = hit[1]
        self._template = tpl
        self._fires = [
            partial(self._fire, actions) if actions else None
            for actions in tpl.event_actions
        ]
        return tpl

    def _fire(self, actions: list) -> None:
        """Run one template event: push later template events and
        deliver operands to dynamic consumers, in captured order."""
        t0 = self._t0
        push = self._queue.push
        deliver = self._deliver
        fires = self._fires
        backend = self.backend
        for a in actions:
            kind = a[0]
            if kind == _PUSH:
                push(t0 + a[1], fires[a[2]])
            elif kind == _DELIVER:
                deliver(a[1], a[2], a[3], t0 + a[4])
            elif kind == _NOTIFY_ADDR:
                backend.on_addr_ready(a[1], t0 + a[2])
            else:
                backend.on_value_ready(a[1], t0 + a[2])

    def _run_invocation(self, inv, t0, env):
        tpl = self._template
        if tpl is None:
            tpl = self._attach_template()
        self._inv_index = inv
        self._t0 = t0
        # Every static completion the reference engine would fold into
        # _inv_end is known from the template; dynamic completions max
        # over it during the drain as usual.
        self._inv_end = t0 + tpl.static_end
        self.values.clear()
        if self._addr_streams is not None:
            self.addr_of = self._addr_streams[inv]
        else:
            self.addr_of = {
                op.op_id: (op.addr.evaluate(env), op.addr.width)
                for op in self._mem_ops
            }
        run_map = self._run
        run_map.clear()
        for op, pa, pv, _ in tpl.dyn_init:
            run_map[op.op_id] = _OpRun(pa, pv, t0)
        if self.recorder is not None:
            # Timeline capture walks every op's run state; static ops
            # get theirs prefilled from the template offsets.
            for op, start_off, complete_off in tpl.static_times:
                state = _OpRun(0, 0, t0)
                state.completed = True
                state.start_time = t0 + start_off
                state.complete_time = t0 + complete_off
                run_map[op.op_id] = state

        # Live static values depend only on (graph, inv) — INPUT sources
        # mix the invocation index, never the environment — so the
        # template memoizes them: in a sweep, the systems sharing this
        # template replay each invocation's values with one dict copy.
        vals = tpl.value_cache.get(inv)
        if vals is None:
            vals = {}
            for kind, oid, aux, inputs in tpl.value_program:
                if kind == _VAL_MIX:
                    vals[oid] = mix(aux, *(vals[i] for i in inputs))
                elif kind == _VAL_CONST:
                    vals[oid] = aux
                else:
                    vals[oid] = mix(0x1F, oid, inv)
            tpl.value_cache[inv] = vals
        self.values.update(vals)

        # Bulk energy: same event counts the reference engine charges
        # one call at a time (ledger order is fixed at construction, so
        # charge order never shows in the pickled result).
        energy = self.energy
        if tpl.n_alu_int:
            energy.charge(EnergyEvent.ALU_INT, tpl.n_alu_int)
        if tpl.n_alu_fp:
            energy.charge(EnergyEvent.ALU_FP, tpl.n_alu_fp)
        if tpl.net_charge:
            energy.charge(EnergyEvent.NET_LINK, tpl.net_charge)

        self.backend.begin_invocation(inv, t0, self.addr_of)

        push = self._queue.push
        deliver = self._deliver
        fires = self._fires
        backend = self.backend
        for a in tpl.kick_actions:
            kind = a[0]
            if kind == _PUSH:
                push(t0 + a[1], fires[a[2]])
            elif kind == _DELIVER:
                deliver(a[1], a[2], a[3], t0 + a[4])
            elif kind == _NOTIFY_ADDR:
                backend.on_addr_ready(a[1], t0 + a[2])
            elif kind == _NOTIFY_VALUE:
                backend.on_value_ready(a[1], t0 + a[2])
            elif kind == _NOTIFY_K2:
                op = a[1]
                run_map[op.op_id].addr_notified = True
                backend.on_addr_ready(op, t0)
            else:
                op = a[1]
                run_map[op.op_id].addr_notified = True
                push(t0, self._make_addr_notify(op, t0))

        self._queue.drain()
        self.backend.end_invocation()
        if self.recorder is not None:
            self.recorder.capture(self.graph, inv, t0, self._inv_end, self._run)
        return self._inv_end
